"""Benchmark: throughput of the thread-id <-> move index transformations.

These are the per-thread arithmetic kernels of the paper (Appendices A-D);
their batch versions are the hot path of every vectorized neighborhood
evaluation, so their throughput matters for the wall-clock cost of the whole
reproduction.
"""

import numpy as np
import pytest

from repro.mappings import (
    ExactKHammingMapping,
    ThreeHammingMapping,
    TwoHammingMapping,
    minimal_k_tetrahedral_batch,
)

#: Largest solution size of the paper's evaluation (Figure 8's 1501x1517).
N_LARGE = 1517
#: Number of flat indices transformed per benchmark round.
BATCH = 100_000


@pytest.fixture(scope="module")
def flat_indices_2h():
    mapping = TwoHammingMapping(N_LARGE)
    rng = np.random.default_rng(0)
    return mapping, rng.integers(0, mapping.size, size=BATCH)


@pytest.fixture(scope="module")
def flat_indices_3h():
    mapping = ThreeHammingMapping(N_LARGE)
    rng = np.random.default_rng(0)
    return mapping, rng.integers(0, mapping.size, size=BATCH)


@pytest.mark.benchmark(group="mappings")
def test_two_hamming_one_to_two_batch(benchmark, flat_indices_2h):
    """Appendix B closed form, 100k indices per call."""
    mapping, indices = flat_indices_2h
    moves = benchmark(mapping.from_flat_batch, indices)
    assert moves.shape == (BATCH, 2)


@pytest.mark.benchmark(group="mappings")
def test_two_hamming_two_to_one_batch(benchmark, flat_indices_2h):
    """Appendix A closed form, 100k moves per call."""
    mapping, indices = flat_indices_2h
    moves = mapping.from_flat_batch(indices)
    back = benchmark(mapping.to_flat_batch, moves)
    assert np.array_equal(back, indices)


@pytest.mark.benchmark(group="mappings")
def test_three_hamming_one_to_three_batch(benchmark, flat_indices_3h):
    """Appendix C (Newton-Raphson) transformation, 100k indices per call."""
    mapping, indices = flat_indices_3h
    moves = benchmark(mapping.from_flat_batch, indices)
    assert moves.shape == (BATCH, 3)


@pytest.mark.benchmark(group="mappings")
def test_three_hamming_three_to_one_batch(benchmark, flat_indices_3h):
    """Appendix D transformation, 100k moves per call."""
    mapping, indices = flat_indices_3h
    moves = mapping.from_flat_batch(indices)
    back = benchmark(mapping.to_flat_batch, moves)
    assert np.array_equal(back, indices)


@pytest.mark.benchmark(group="mappings")
def test_newton_raphson_solver_batch(benchmark):
    """The cubic solver at the heart of the one-to-three transformation."""
    rng = np.random.default_rng(1)
    y = rng.integers(1, 10**12, size=BATCH)
    k = benchmark(minimal_k_tetrahedral_batch, y)
    assert k.shape == (BATCH,)


@pytest.mark.benchmark(group="mappings-ablation")
def test_ablation_scalar_vs_vectorized_two_hamming(benchmark):
    """Ablation: per-thread (scalar) transformation loop vs the batch version.

    This quantifies why the vectorized backend is the default execution mode
    of the simulator.
    """
    mapping = TwoHammingMapping(N_LARGE)
    indices = np.arange(5_000)

    def scalar_loop():
        return [mapping.from_flat(int(i)) for i in indices]

    moves = benchmark(scalar_loop)
    assert len(moves) == 5_000


@pytest.mark.benchmark(group="mappings-ablation")
def test_ablation_exact_combinatorial_unranking(benchmark):
    """Ablation: exact integer unranking (the ground-truth mapping) for k=3."""
    mapping = ExactKHammingMapping(N_LARGE, 3)
    indices = np.arange(2_000)
    moves = benchmark(mapping.from_flat_batch, indices)
    assert moves.shape == (2_000, 3)
