"""Ablation benchmarks: quantify the design choices DESIGN.md calls out.

Each benchmark runs one ablation sweep from :mod:`repro.harness.ablations`
and attaches the modeled times/speedups of every configuration to
``extra_info`` so the full sweep is recorded in the benchmark output.
"""

import pytest

from repro.harness import (
    block_size_ablation,
    cpu_cores_ablation,
    device_ablation,
    multi_gpu_ablation,
    texture_ablation,
)


@pytest.mark.benchmark(group="ablations")
def test_block_size_sweep(benchmark):
    """Threads-per-block choice for the 2-Hamming kernel on 101x117."""
    points = benchmark.pedantic(block_size_ablation, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = {p.label: p.gpu_time for p in points}
    # 256-thread blocks (the library default) must be at least as good as
    # tiny 32-thread blocks for a large launch.
    by_label = {p.label: p.gpu_time for p in points}
    assert by_label["block=256"] <= by_label["block=32"] * 1.05


@pytest.mark.benchmark(group="ablations")
def test_texture_memory_sweep(benchmark):
    """Texture binding of the PPP matrix (the Figure 8 "GPUTexture" variant)."""
    points = benchmark.pedantic(texture_ablation, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = {p.label: p.gpu_time for p in points}
    by_label = {p.label: p.gpu_time for p in points}
    assert by_label["1-Hamming/texture"] <= by_label["1-Hamming/global"]


@pytest.mark.benchmark(group="ablations")
def test_device_generation_sweep(benchmark):
    """G80 vs Tesla C1060 vs GTX 280 for the same 2-Hamming kernel."""
    points = benchmark.pedantic(device_ablation, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = {p.label: p.speedup for p in points}
    speedups = {p.label: p.speedup for p in points}
    assert speedups["NVIDIA GTX 280"] > speedups["NVIDIA 8800 GTX (G80)"]


@pytest.mark.benchmark(group="ablations")
def test_multi_gpu_scaling_sweep(benchmark):
    """The paper's multi-GPU perspective: 1, 2, 4, 8 simulated devices."""
    points = benchmark.pedantic(multi_gpu_ablation, rounds=1, iterations=1)
    times = {p.label: p.gpu_time for p in points}
    benchmark.extra_info["sweep"] = times
    assert times["8 GPU(s)"] < times["1 GPU(s)"]


@pytest.mark.benchmark(group="ablations")
def test_cpu_cores_sweep(benchmark):
    """Would a multi-core CPU baseline erase the GPU advantage?  (No.)"""
    points = benchmark.pedantic(cpu_cores_ablation, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = {p.label: p.speedup for p in points}
    assert all(p.speedup > 1.0 for p in points)
