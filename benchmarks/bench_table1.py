"""Benchmark: regeneration of Table I (1-Hamming tabu search on the PPP).

The benchmark measures the wall-clock cost of producing one table row and of
the whole table at the selected scale; the paper-comparable quantities
(mean fitness, #solutions, modeled CPU/GPU seconds) are attached to the
benchmark's ``extra_info`` so they appear in ``--benchmark-verbose`` output
and in saved benchmark JSON.
"""

import pytest

from repro.harness import format_experiment_table, run_ppp_experiment, table_one


@pytest.mark.benchmark(group="table1")
def test_table1_single_row(benchmark, bench_scale):
    """One row of Table I: one instance, `trials` tabu-search runs."""
    spec = bench_scale.table_instances[0]

    def run_row():
        return run_ppp_experiment(
            spec,
            1,
            trials=bench_scale.trials,
            max_iterations=bench_scale.iteration_cap(spec, 1),
        )

    row = benchmark.pedantic(run_row, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(row.as_dict())
    assert row.num_trials == bench_scale.trials


@pytest.mark.benchmark(group="table1")
def test_table1_full(benchmark, bench_scale):
    """The complete Table I regeneration at the selected scale."""
    rows = benchmark.pedantic(lambda: table_one(bench_scale), rounds=1, iterations=1,
                              warmup_rounds=0)
    benchmark.extra_info["table"] = format_experiment_table(
        rows, title=f"Table I ({bench_scale.name} scale)", include_acceleration=False
    )
    benchmark.extra_info["total_successes"] = sum(r.successes for r in rows)
    assert len(rows) == len(bench_scale.table_instances)
    # Paper shape: the 1-Hamming GPU version is NOT faster than the CPU for
    # the (small) table instances.
    assert all(r.acceleration < 1.5 for r in rows)
