"""Benchmark: regeneration of Table III (3-Hamming tabu search on the PPP).

Table III is the paper's headline result: the 3-Hamming neighborhood is
impractical on the CPU but affordable on the GPU, and it finds far more
solutions than the smaller neighborhoods.
"""

import pytest

from repro.harness import format_experiment_table, run_ppp_experiment, table_one, table_three


@pytest.mark.benchmark(group="table3")
def test_table3_single_row(benchmark, bench_scale):
    """One row of Table III: one instance, `trials` tabu-search runs."""
    spec = bench_scale.table_instances[0]

    def run_row():
        return run_ppp_experiment(
            spec,
            3,
            trials=bench_scale.trials,
            max_iterations=bench_scale.iteration_cap(spec, 3),
        )

    row = benchmark.pedantic(run_row, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(row.as_dict())
    assert row.num_trials == bench_scale.trials


@pytest.mark.benchmark(group="table3")
def test_table3_full(benchmark, bench_scale):
    """The complete Table III regeneration at the selected scale."""
    rows = benchmark.pedantic(lambda: table_three(bench_scale), rounds=1, iterations=1,
                              warmup_rounds=0)
    benchmark.extra_info["table"] = format_experiment_table(
        rows, title=f"Table III ({bench_scale.name} scale)"
    )
    assert len(rows) == len(bench_scale.table_instances)
    # Paper shape: the 3-Hamming accelerations are the largest of the three
    # neighborhoods and every instance benefits.
    assert all(r.acceleration > 1.0 for r in rows)


@pytest.mark.benchmark(group="table3")
def test_table3_vs_table1_solution_quality(benchmark, bench_scale):
    """Large neighborhoods find at least as many solutions as the 1-Hamming one."""

    def run_both():
        return table_one(bench_scale), table_three(bench_scale)

    rows1, rows3 = benchmark.pedantic(run_both, rounds=1, iterations=1, warmup_rounds=0)
    successes1 = sum(r.successes for r in rows1)
    successes3 = sum(r.successes for r in rows3)
    benchmark.extra_info["successes_1hamming"] = successes1
    benchmark.extra_info["successes_3hamming"] = successes3
    assert successes3 >= successes1
