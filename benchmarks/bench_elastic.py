"""Benchmark: elastic fleets under failure/join schedules, and checkpoint cost.

The lockstep runner guarantees that device failures, elastic rejoins and
checkpoint/restore cycles never change *what* is computed — only where and
when.  This benchmark runs the paper's batched tabu protocol (reduced
transfer mode) on a 4-device simulated fleet under four schedules and
compares their makespans:

* **static** — the undisturbed 4-device fleet (baseline);
* **fail** — one device dies mid-run; its replicas migrate to the
  survivors, which then carry the remaining iterations at 3/4 capacity;
* **rejoin** — the dead device comes back later in the run and the fleet
  re-expands to full width;
* **checkpointed** — the static schedule with periodic checkpoints to
  disk, followed by a restore-and-finish leg from the last snapshot.

Every schedule must reproduce the static per-trial records bit-for-bit,
and the checkpointed run's *simulated* accounting must equal the static
run exactly (checkpointing is free in simulated time; only wall clock
pays).  The benchmark asserts all of that before reporting

* the degraded-fleet slowdown (fail vs static makespan),
* the recovery won back by the rejoin,
* the wall-clock overhead of periodic checkpointing, and
* that the restored leg finishes with identical records.

Run as a script (``python benchmarks/bench_elastic.py [--smoke]``) or via
``pytest benchmarks/bench_elastic.py --benchmark-only``.  Both entry
points write ``benchmarks/BENCH_elastic.json``.
"""

import argparse
import json
import tempfile
import time
from pathlib import Path

import pytest

from repro.harness import run_ppp_experiment

#: Paper-protocol configuration: a Table-2/3 sized instance, 2-Hamming
#: neighborhood, 50 independent tabu trials in batched lockstep.
SPEC = (73, 73)
ORDER = 2
TRIALS = 50
MAX_ITERATIONS = 40
FAIL_AT = 15
JOIN_AT = 28
CHECKPOINT_EVERY = 16

#: Reduced configuration for CI smoke runs.
SMOKE_SPEC = (41, 41)
SMOKE_TRIALS = 12
SMOKE_MAX_ITERATIONS = 10
SMOKE_FAIL_AT = 4
SMOKE_JOIN_AT = 7
SMOKE_CHECKPOINT_EVERY = 4

DEVICES = 4
DEAD_DEVICE = 3

JSON_PATH = Path(__file__).resolve().parent / "BENCH_elastic.json"


def run_config(spec, trials, max_iterations, **kwargs) -> dict:
    """One batched reduced-mode experiment; returns records + accounting."""
    start = time.perf_counter()
    row = run_ppp_experiment(
        spec,
        ORDER,
        trials=trials,
        max_iterations=max_iterations,
        evaluator_factory="multi-gpu",
        trial_mode="batched",
        transfer_mode="reduced",
        devices=DEVICES,
        **kwargs,
    )
    wall_s = time.perf_counter() - start
    return {
        "records": [(t.fitness, t.iterations, t.success) for t in row.trials],
        "wall_s": wall_s,
        "sim_elapsed_s": row.sim_elapsed_s,
        "transfer_time_s": row.transfer_time_s,
        "h2d_bytes": row.h2d_bytes,
        "d2h_bytes": row.d2h_bytes,
        "p2p_bytes": row.p2p_bytes,
    }


def measure(*, smoke: bool = False) -> dict:
    """Run the four schedules; assert the resilience guarantees hold."""
    spec = SMOKE_SPEC if smoke else SPEC
    trials = SMOKE_TRIALS if smoke else TRIALS
    max_iterations = SMOKE_MAX_ITERATIONS if smoke else MAX_ITERATIONS
    fail_at = SMOKE_FAIL_AT if smoke else FAIL_AT
    join_at = SMOKE_JOIN_AT if smoke else JOIN_AT
    every = SMOKE_CHECKPOINT_EVERY if smoke else CHECKPOINT_EVERY

    configs: dict[str, dict] = {}
    configs["static"] = run_config(spec, trials, max_iterations)
    configs["fail"] = run_config(
        spec, trials, max_iterations, fault_plan=f"fail:{DEAD_DEVICE}@{fail_at}"
    )
    configs["rejoin"] = run_config(
        spec, trials, max_iterations,
        fault_plan=f"fail:{DEAD_DEVICE}@{fail_at},join:{DEAD_DEVICE}@{join_at}",
    )
    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "checkpoint.json"
        configs["checkpointed"] = run_config(
            spec, trials, max_iterations,
            checkpoint_every=every, checkpoint_path=snapshot,
        )
        configs["restored"] = run_config(
            spec, trials, max_iterations, restore=snapshot
        )

    reference = configs["static"]["records"]
    for label, result in configs.items():
        assert result["records"] == reference, f"{label} trajectories diverged"
    static = configs["static"]
    # Checkpointing is free in simulated time: only the wall clock pays.
    assert configs["checkpointed"]["sim_elapsed_s"] == static["sim_elapsed_s"]
    # Losing a device mid-run must cost simulated time, and the rejoin must
    # win some of it back.
    assert configs["fail"]["sim_elapsed_s"] > static["sim_elapsed_s"]
    assert configs["rejoin"]["sim_elapsed_s"] <= configs["fail"]["sim_elapsed_s"]

    payload = {
        "benchmark": "elastic_fleet",
        "instance": {"m": spec[0], "n": spec[1], "order": ORDER},
        "trials": trials,
        "max_iterations": max_iterations,
        "devices": DEVICES,
        "fail_at": fail_at,
        "join_at": join_at,
        "checkpoint_every": every,
        "smoke": smoke,
        "configs": {
            label: {key: value for key, value in result.items() if key != "records"}
            for label, result in configs.items()
        },
        "degraded_slowdown": (
            configs["fail"]["sim_elapsed_s"] / static["sim_elapsed_s"]
        ),
        "rejoin_recovery": (
            configs["fail"]["sim_elapsed_s"] / configs["rejoin"]["sim_elapsed_s"]
        ),
        "checkpoint_wall_overhead": (
            configs["checkpointed"]["wall_s"] / static["wall_s"]
        ),
    }
    return payload


def write_json(payload: dict, path: Path = JSON_PATH) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.mark.benchmark(group="elastic")
def test_elastic_fleet(benchmark):
    """Failure/join schedules and checkpointing preserve the trajectories."""
    payload = benchmark.pedantic(
        lambda: measure(smoke=True), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info.update(payload["configs"])
    assert payload["degraded_slowdown"] > 1.0
    assert payload["rejoin_recovery"] >= 1.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI (seconds, not minutes)")
    parser.add_argument("--json", type=Path, default=JSON_PATH,
                        help="where to write the machine-readable results")
    args = parser.parse_args()
    payload = measure(smoke=args.smoke)
    spec = payload["instance"]
    print(f"instance {spec['m']} x {spec['n']}, {spec['order']}-Hamming, "
          f"{payload['trials']} trials, cap {payload['max_iterations']} iterations, "
          f"{payload['devices']} devices (fail@{payload['fail_at']}, "
          f"join@{payload['join_at']})")
    header = (f"{'schedule':<14} {'wall':>8} {'makespan':>10} "
              f"{'transfer':>10} {'h2d':>10} {'p2p':>10}")
    print(header)
    for label, result in payload["configs"].items():
        print(f"{label:<14} {result['wall_s']:>7.3f}s "
              f"{result['sim_elapsed_s'] * 1e3:>8.2f}ms "
              f"{result['transfer_time_s'] * 1e3:>8.2f}ms "
              f"{result['h2d_bytes']:>9d}B {result['p2p_bytes']:>9d}B")
    print(f"degraded fleet x{payload['degraded_slowdown']:.3f} slower, "
          f"rejoin wins back x{payload['rejoin_recovery']:.3f}; "
          f"checkpointing costs x{payload['checkpoint_wall_overhead']:.2f} wall")
    write_json(payload, args.json)
    print(f"wrote {args.json}")


if __name__ == "__main__":
    main()
