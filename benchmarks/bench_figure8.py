"""Benchmark: regeneration of Figure 8 (GPU acceleration vs PPP instance size).

The paper's Figure 8 plots the CPU and GPU execution times of 10 000
1-Hamming tabu-search iterations for instance sizes 101x117 ... 1501x1517;
the GPU overtakes the CPU around 201x217 and reaches ~x10.8 at the largest
size.  The benchmark regenerates the whole series and asserts that shape.
"""

import pytest

from repro.harness import figure_eight, format_figure8_series


@pytest.mark.benchmark(group="figure8")
def test_figure8_first_points(benchmark, bench_scale):
    """The small-instance end of the sweep (fast; exercises the crossover)."""
    points = benchmark.pedantic(
        lambda: figure_eight(bench_scale, max_points=5), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["series"] = [p.as_dict() for p in points]
    assert len(points) == 5
    # Crossover shape: slowest point is at (or below) parity, later points accelerate.
    assert points[0].acceleration < 1.2
    assert points[-1].acceleration > points[0].acceleration


@pytest.mark.benchmark(group="figure8")
def test_figure8_full_sweep(benchmark, bench_scale):
    """All fifteen instance sizes of the paper's sweep."""
    points = benchmark.pedantic(
        lambda: figure_eight(bench_scale), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["table"] = format_figure8_series(
        points, title=f"Figure 8 ({bench_scale.name} scale)"
    )
    assert len(points) == len(bench_scale.figure8_instances)
    accelerations = [p.acceleration for p in points]
    # Monotone growth of the acceleration factor with the instance size.
    assert all(b >= a for a, b in zip(accelerations, accelerations[1:]))
    # The paper reports ~x1.1 at 201x217 and ~x10.8 at 1501x1517: require the
    # same order of magnitude (a generous band, as documented in EXPERIMENTS.md).
    assert 0.5 <= accelerations[1] <= 4.0
    assert accelerations[-1] >= 5.0
