"""Benchmark: host wall-clock of the simulator itself, per transfer mode.

The simulator's value is measured in *simulated* seconds, but its usability
is measured in *host* seconds: the paper-protocol pipeline bench (50 batched
tabu trials, 2-Hamming, 40 lockstep iterations) used to take ~12-14 s of
host time per transfer mode.  This benchmark tracks that wall clock after
the hot-loop rework — precompiled PPP delta evaluators, cached kernel move
tables and array-backed timeline accounting — against the recorded
pre-change numbers, and reports lockstep iterations per second.

The speedup is pure host-side engineering: every run stays bit-identical to
the slow path (same seeds -> same trajectories, byte counters and simulated
makespans), which ``tests/localsearch/test_fastpath_identity.py`` enforces.

Run as a script (``python benchmarks/bench_simspeed.py [--smoke]``) or via
``pytest benchmarks/bench_simspeed.py --benchmark-only``.  Both entry points
write ``benchmarks/BENCH_simspeed.json``.  With ``--smoke`` the script also
acts as a CI regression guard: it exits non-zero when the smoke wall clock
regresses more than 2x over the recorded smoke baseline.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import pytest

from repro.harness import run_ppp_experiment
from repro.localsearch import TRANSFER_MODES

#: Paper-protocol configuration (matches bench_pipeline).
SPEC = (73, 73)
ORDER = 2
TRIALS = 50
MAX_ITERATIONS = 40

#: Reduced configuration for CI smoke runs.
SMOKE_TRIALS = 20
SMOKE_MAX_ITERATIONS = 8

JSON_PATH = Path(__file__).resolve().parent / "BENCH_simspeed.json"

#: Pre-change wall clocks of the full 50-trial protocol, measured on the
#: reference machine immediately before the hot-loop rework (same workload,
#: same interpreter).  Kept in the report so the JSON always shows the
#: before/after pair the speedup claims are made against.
PRE_CHANGE_WALL_S = {
    "full": 13.780,
    "delta": 11.790,
    "reduced": 12.241,
    "persistent": 12.226,
}

#: Recorded post-change smoke wall clocks (reference machine).  The CI guard
#: fails when a smoke run takes more than ``GUARD_FACTOR`` times this.
SMOKE_BASELINE_WALL_S = {
    "full": 0.15,
    "delta": 0.15,
    "reduced": 0.15,
    "persistent": 0.15,
}
GUARD_FACTOR = 2.0


def run_mode(mode: str, trials: int, max_iterations: int) -> dict:
    """One batched GPU experiment under ``mode``; wall-clock accounting only."""
    start = time.perf_counter()
    row = run_ppp_experiment(
        SPEC,
        ORDER,
        trials=trials,
        max_iterations=max_iterations,
        evaluator_factory="gpu",
        trial_mode="batched",
        transfer_mode=mode,
    )
    wall_s = time.perf_counter() - start
    lockstep_iterations = max(int(round(row.mean_iterations)), 1) + 1  # + initial block
    return {
        "wall_s": wall_s,
        "eval_wall_s": row.eval_wall_s,
        "host_overhead_s": max(0.0, wall_s - row.eval_wall_s),
        "iterations_per_s": lockstep_iterations / wall_s,
        "mean_iterations": row.mean_iterations,
        "sim_elapsed_s": row.sim_elapsed_s,
        "kernel_launches": row.kernel_launches,
        "h2d_bytes": row.h2d_bytes,
        "d2h_bytes": row.d2h_bytes,
    }


def measure(*, smoke: bool = False) -> dict:
    trials = SMOKE_TRIALS if smoke else TRIALS
    max_iterations = SMOKE_MAX_ITERATIONS if smoke else MAX_ITERATIONS
    modes = {mode: run_mode(mode, trials, max_iterations) for mode in TRANSFER_MODES}
    payload = {
        "benchmark": "simulator_wall_clock",
        "instance": {"m": SPEC[0], "n": SPEC[1], "order": ORDER},
        "trials": trials,
        "max_iterations": max_iterations,
        "smoke": smoke,
        "modes": modes,
        "guard_factor": GUARD_FACTOR,
    }
    if smoke:
        payload["smoke_baseline_wall_s"] = SMOKE_BASELINE_WALL_S
    else:
        payload["pre_change_wall_s"] = PRE_CHANGE_WALL_S
        payload["speedup"] = {
            mode: PRE_CHANGE_WALL_S[mode] / modes[mode]["wall_s"]
            for mode in TRANSFER_MODES
        }
    return payload


def write_json(payload: dict, path: Path = JSON_PATH) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def check_guard(payload: dict) -> list[str]:
    """Smoke regression guard: wall clock must stay within GUARD_FACTOR of baseline."""
    failures = []
    for mode, baseline in SMOKE_BASELINE_WALL_S.items():
        wall = payload["modes"][mode]["wall_s"]
        if wall > GUARD_FACTOR * baseline:
            failures.append(
                f"{mode}: smoke wall {wall:.3f}s exceeds {GUARD_FACTOR:.0f}x "
                f"baseline {baseline:.3f}s"
            )
    return failures


@pytest.mark.benchmark(group="simspeed")
def test_simulator_wall_clock(benchmark):
    """The smoke protocol stays within the regression guard in every mode."""
    payload = benchmark.pedantic(
        lambda: measure(smoke=True), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info.update(payload["modes"])
    assert not check_guard(payload)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI (also enables the guard)")
    parser.add_argument("--json", type=Path, default=JSON_PATH,
                        help="where to write the machine-readable results")
    args = parser.parse_args()
    payload = measure(smoke=args.smoke)
    print(f"simulator wall clock: {payload['trials']} trials, "
          f"cap {payload['max_iterations']} iterations")
    header = (f"{'mode':<10} {'wall':>9} {'eval':>9} {'overhead':>9} "
              f"{'iters/s':>9}" + ("" if args.smoke else f" {'before':>9} {'speedup':>8}"))
    print(header)
    for mode in TRANSFER_MODES:
        result = payload["modes"][mode]
        line = (f"{mode:<10} {result['wall_s']:>8.3f}s {result['eval_wall_s']:>8.3f}s "
                f"{result['host_overhead_s']:>8.3f}s {result['iterations_per_s']:>9.1f}")
        if not args.smoke:
            line += (f" {PRE_CHANGE_WALL_S[mode]:>8.3f}s"
                     f" {payload['speedup'][mode]:>7.1f}x")
        print(line)
    write_json(payload, args.json)
    print(f"wrote {args.json}")
    if args.smoke:
        failures = check_guard(payload)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            raise SystemExit(1)
        print("smoke guard passed")


if __name__ == "__main__":
    main()
