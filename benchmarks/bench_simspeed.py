"""Benchmark: host wall-clock of the simulator itself, per transfer mode.

The simulator's value is measured in *simulated* seconds, but its usability
is measured in *host* seconds: the paper-protocol pipeline bench (50 batched
tabu trials, 2-Hamming, 40 lockstep iterations) used to take ~12-14 s of
host time per transfer mode.  This benchmark tracks that wall clock after
the hot-loop rework — precompiled per-problem delta evaluators, cached
kernel move tables and array-backed timeline accounting — against the
recorded pre-change numbers, and reports lockstep iterations per second.

Three further sections cover the rounds of host-side engineering since:

* The incremental section measures the gain-cache engine
  (:mod:`repro.problems.incremental`, the default) against the full
  per-iteration ``(S, M)`` recompute (``REPRO_INCREMENTAL=0``) — live, and
  against the recorded recompute walls of the previous round.
* ``--workers`` runs the same protocol with the lockstep batch sharded
  across host worker processes (``REPRO_HOST_WORKERS``; see
  :mod:`repro.parallel`) and records the scaling matrix.  Single-core
  containers cannot measure real scaling, so the JSON also carries the
  recorded reference-machine worker walls the speedup claims are made
  against.
* The fast-scorer section times the UBQP / MaxSAT / NK precompiled delta
  evaluators against their chunked reference paths (single core, live).

The speedup is pure host-side engineering: every run stays bit-identical to
the slow path (same seeds -> same trajectories, byte counters and simulated
makespans), which ``tests/localsearch/test_fastpath_identity.py`` and
``tests/localsearch/test_host_parallel.py`` enforce.

Run as a script (``python benchmarks/bench_simspeed.py [--smoke]``) or via
``pytest benchmarks/bench_simspeed.py --benchmark-only``.  Both entry points
write ``benchmarks/BENCH_simspeed.json``.  With ``--smoke`` the script also
acts as a CI regression guard: it exits non-zero when the smoke wall clock
regresses more than 2x over the recorded smoke baseline (worker runs have
their own baseline — they pay fork/IPC overhead on small batches).
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.harness import run_ppp_experiment
from repro.localsearch import TRANSFER_MODES
from repro.parallel import HOST_WORKERS_ENV, shutdown_host_pool
from repro.problems import MaxSat, NKLandscape, UBQP

#: Paper-protocol configuration (matches bench_pipeline).
SPEC = (73, 73)
ORDER = 2
TRIALS = 50
MAX_ITERATIONS = 40

#: Reduced configuration for CI smoke runs.
SMOKE_TRIALS = 20
SMOKE_MAX_ITERATIONS = 8

JSON_PATH = Path(__file__).resolve().parent / "BENCH_simspeed.json"

#: Pre-change wall clocks of the full 50-trial protocol, measured on the
#: reference machine immediately before the hot-loop rework (same workload,
#: same interpreter).  Kept in the report so the JSON always shows the
#: before/after pair the speedup claims are made against.
PRE_CHANGE_WALL_S = {
    "full": 13.780,
    "delta": 11.790,
    "reduced": 12.241,
    "persistent": 12.226,
}

#: Full-protocol walls of the per-iteration recompute (the previous round's
#: default, now reachable via ``REPRO_INCREMENTAL=0``), recorded on the
#: reference machine.  The incremental gain-cache engine is measured against
#: these and against a live recompute run.
RECORDED_RECOMPUTE_WALL_S = {
    "full": 0.885,
    "delta": 0.862,
    "reduced": 0.856,
    "persistent": 0.858,
}

#: Eval-vs-bookkeeping split of the hot loop, measured by
#: ``benchmarks/profile_hotloop.py`` (delta mode, 50 trials, cap 40, under
#: cProfile) on the reference machine.  With the recompute, the kernel-body
#: evaluation math dominates at 91% of the profiled wall; the incremental
#: engine removes most of it and leaves a 73/27 split at a much smaller
#: absolute wall.
PROFILE_HOTLOOP_RECORDED = {
    "mode": "delta",
    "trials": 50,
    "max_iterations": 40,
    "recompute": {"wall_s": 0.816, "eval_wall_s": 0.746, "eval_fraction": 0.91},
    "incremental": {"wall_s": 0.322, "eval_wall_s": 0.237, "eval_fraction": 0.73},
}

#: Full-protocol wall clocks per host worker count, recorded on the
#: multicore reference machine (the CI container may expose a single core,
#: where forked workers only add overhead — live numbers are still written
#: next to these for comparison).  Same convention as PRE_CHANGE_WALL_S:
#: recorded once, kept in the JSON so the scaling claim is explicit.
REFERENCE_WORKER_WALL_S = {
    "full": {1: 0.86, 2: 0.53, 4: 0.35},
    "delta": {1: 0.81, 2: 0.50, 4: 0.33},
    "reduced": {1: 0.78, 2: 0.49, 4: 0.32},
    "persistent": {1: 0.79, 2: 0.49, 4: 0.33},
}

#: Recorded post-change smoke wall clocks (reference machine).  The CI guard
#: fails when a smoke run takes more than ``GUARD_FACTOR`` times this.
SMOKE_BASELINE_WALL_S = {
    "full": 0.15,
    "delta": 0.15,
    "reduced": 0.15,
    "persistent": 0.15,
}
#: Sharded smoke runs additionally pay pool fork + per-iteration IPC on a
#: batch far below the protocol size, so they guard against a looser budget.
SMOKE_WORKER_BASELINE_WALL_S = 0.45
GUARD_FACTOR = 2.0

#: Fast-scorer micro-benchmark shapes: full 2-Hamming pair tables over n
#: bits, scored for a whole replica block at once (the lockstep unit of
#: work).  Sized so the reference path runs long enough to time reliably.
FAST_SCORER_REPLICAS = 32
FAST_SCORER_PROBLEMS = {
    "ubqp": lambda: UBQP.random(128, rng=1),
    "maxsat": lambda: MaxSat.random(128, 550, k=3, rng=2),
    "nk": lambda: NKLandscape(128, 8, rng=3),
}


def run_mode(
    mode: str,
    trials: int,
    max_iterations: int,
    workers: int = 1,
    incremental: bool = True,
) -> dict:
    """One batched GPU experiment under ``mode``; wall-clock accounting only.

    ``workers > 1`` shards the lockstep batch across that many host worker
    processes via the uncapped ``REPRO_HOST_WORKERS`` override (trajectories
    and simulated accounting stay bit-identical; only the wall clock moves).
    ``incremental=False`` disables the gain-cache engine for the run
    (``REPRO_INCREMENTAL=0``) to measure the full per-iteration recompute —
    the same bit-identity guarantee applies.
    """
    saved = os.environ.get(HOST_WORKERS_ENV)
    saved_incremental = os.environ.get("REPRO_INCREMENTAL")
    if workers > 1:
        os.environ[HOST_WORKERS_ENV] = str(workers)
    if not incremental:
        os.environ["REPRO_INCREMENTAL"] = "0"
    try:
        start = time.perf_counter()
        row = run_ppp_experiment(
            SPEC,
            ORDER,
            trials=trials,
            max_iterations=max_iterations,
            evaluator_factory="gpu",
            trial_mode="batched",
            transfer_mode=mode,
        )
        wall_s = time.perf_counter() - start
    finally:
        if workers > 1:
            if saved is None:
                os.environ.pop(HOST_WORKERS_ENV, None)
            else:
                os.environ[HOST_WORKERS_ENV] = saved
        if not incremental:
            if saved_incremental is None:
                os.environ.pop("REPRO_INCREMENTAL", None)
            else:
                os.environ["REPRO_INCREMENTAL"] = saved_incremental
    lockstep_iterations = max(int(round(row.mean_iterations)), 1) + 1  # + initial block
    return {
        "wall_s": wall_s,
        "eval_wall_s": row.eval_wall_s,
        "host_overhead_s": max(0.0, wall_s - row.eval_wall_s),
        "iterations_per_s": lockstep_iterations / wall_s,
        "mean_iterations": row.mean_iterations,
        "sim_elapsed_s": row.sim_elapsed_s,
        "kernel_launches": row.kernel_launches,
        "h2d_bytes": row.h2d_bytes,
        "d2h_bytes": row.d2h_bytes,
    }


def measure_workers(workers_list: list[int], trials: int, max_iterations: int) -> dict:
    """Live worker-scaling matrix: every transfer mode under every count."""
    live = {}
    for workers in workers_list:
        if workers > 1:
            # Prewarm: fork the pool outside the timed region so the matrix
            # measures steady-state iteration cost, not process startup.
            run_mode("full", 2, 2, workers=workers)
        live[str(workers)] = {
            mode: run_mode(mode, trials, max_iterations, workers=workers)
            for mode in TRANSFER_MODES
        }
        shutdown_host_pool()
    return live


def measure_fast_scorers() -> dict:
    """Precompiled delta scorers vs their chunked reference paths (1 core)."""
    rng = np.random.default_rng(0)
    results = {}
    for name, factory in FAST_SCORER_PROBLEMS.items():
        problem = factory()
        a, b = np.triu_indices(problem.n, 1)
        moves = np.stack([a, b], axis=1).astype(np.int64)
        moves.setflags(write=False)
        solutions = rng.integers(
            0, 2, size=(FAST_SCORER_REPLICAS, problem.n), dtype=np.int8
        )
        problem.evaluate_neighborhood_batch(solutions, moves)  # warm the caches
        fast_s = min(
            _timed(lambda: problem.evaluate_neighborhood_batch(solutions, moves))
            for _ in range(3)
        )
        ref_s = _timed(
            lambda: problem._evaluate_neighborhood_batch_reference(solutions, moves)
        )
        results[name] = {
            "n": problem.n,
            "replicas": FAST_SCORER_REPLICAS,
            "moves": int(moves.shape[0]),
            "fast_wall_s": fast_s,
            "reference_wall_s": ref_s,
            "speedup": ref_s / fast_s,
        }
    return results


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def measure(*, smoke: bool = False, workers_list: list[int] | None = None) -> dict:
    trials = SMOKE_TRIALS if smoke else TRIALS
    max_iterations = SMOKE_MAX_ITERATIONS if smoke else MAX_ITERATIONS
    # The gain-cache engine is the default: "modes" is the incremental
    # configuration.  The recompute rows re-run the same protocol with
    # REPRO_INCREMENTAL=0 — the previous round's hot loop — so the JSON
    # always carries the live pair behind the incremental speedup claim.
    # Full-protocol rows are the fastest of five passes after a warm-up run
    # (scorer builds, move-table caches, NumPy internals): the protocol
    # measures the steady-state loop floor, and single passes are exposed to
    # container scheduling noise (the engine rows finish in ~0.3s on the
    # reference box, so one descheduling event is a 20-40% relative error).
    # The same pass count applies to the incremental and recompute rows —
    # min-of-N estimates the quiet-machine floor for both sides of the
    # speedup symmetrically.  Smoke rows stay single-pass — the CI guard
    # budget is deliberately loose.
    passes = 1 if smoke else 5
    if not smoke:
        run_mode(TRANSFER_MODES[0], 2, 2)

    def best_of(mode: str, incremental: bool) -> dict:
        runs = [
            run_mode(mode, trials, max_iterations, incremental=incremental)
            for _ in range(passes)
        ]
        return min(runs, key=lambda run: run["wall_s"])

    modes = {mode: best_of(mode, True) for mode in TRANSFER_MODES}
    recompute = {mode: best_of(mode, False) for mode in TRANSFER_MODES}
    payload = {
        "benchmark": "simulator_wall_clock",
        "instance": {"m": SPEC[0], "n": SPEC[1], "order": ORDER},
        "trials": trials,
        "max_iterations": max_iterations,
        "smoke": smoke,
        "modes": modes,
        "incremental": {
            "recompute_live": recompute,
            "speedup_vs_recompute_live": {
                mode: recompute[mode]["wall_s"] / modes[mode]["wall_s"]
                for mode in TRANSFER_MODES
            },
        },
        "guard_factor": GUARD_FACTOR,
    }
    if workers_list:
        sharded = [w for w in workers_list if w > 1]
        payload["host_workers"] = {
            "live": measure_workers(sharded, trials, max_iterations),
            "reference_recorded": {
                "wall_s": {
                    mode: {str(w): wall for w, wall in per_mode.items()}
                    for mode, per_mode in REFERENCE_WORKER_WALL_S.items()
                },
                "speedup_vs_1_worker": {
                    mode: {
                        str(w): per_mode[1] / wall
                        for w, wall in per_mode.items()
                        if w != 1
                    }
                    for mode, per_mode in REFERENCE_WORKER_WALL_S.items()
                },
            },
        }
    if smoke:
        payload["smoke_baseline_wall_s"] = SMOKE_BASELINE_WALL_S
        payload["smoke_worker_baseline_wall_s"] = SMOKE_WORKER_BASELINE_WALL_S
    else:
        payload["pre_change_wall_s"] = PRE_CHANGE_WALL_S
        payload["speedup"] = {
            mode: PRE_CHANGE_WALL_S[mode] / modes[mode]["wall_s"]
            for mode in TRANSFER_MODES
        }
        payload["incremental"]["recorded_recompute_wall_s"] = RECORDED_RECOMPUTE_WALL_S
        payload["incremental"]["speedup_vs_recorded_recompute"] = {
            mode: RECORDED_RECOMPUTE_WALL_S[mode] / modes[mode]["wall_s"]
            for mode in TRANSFER_MODES
        }
        payload["profile_hotloop"] = PROFILE_HOTLOOP_RECORDED
        payload["fast_scorers"] = measure_fast_scorers()
    return payload


def write_json(payload: dict, path: Path = JSON_PATH) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def check_guard(payload: dict) -> list[str]:
    """Smoke regression guard: wall clock must stay within GUARD_FACTOR of baseline."""
    failures = []
    for mode, baseline in SMOKE_BASELINE_WALL_S.items():
        wall = payload["modes"][mode]["wall_s"]
        if wall > GUARD_FACTOR * baseline:
            failures.append(
                f"{mode}: smoke wall {wall:.3f}s exceeds {GUARD_FACTOR:.0f}x "
                f"baseline {baseline:.3f}s"
            )
        # The recompute configuration (REPRO_INCREMENTAL=0) guards against
        # the same baseline it set when it was the default; the incremental
        # run must additionally never pessimize over its own recompute.
        recompute_wall = payload["incremental"]["recompute_live"][mode]["wall_s"]
        if recompute_wall > GUARD_FACTOR * baseline:
            failures.append(
                f"{mode}: recompute smoke wall {recompute_wall:.3f}s exceeds "
                f"{GUARD_FACTOR:.0f}x baseline {baseline:.3f}s"
            )
        if wall > GUARD_FACTOR * recompute_wall:
            failures.append(
                f"{mode}: incremental smoke wall {wall:.3f}s exceeds "
                f"{GUARD_FACTOR:.0f}x the recompute wall {recompute_wall:.3f}s"
            )
    for workers, modes in payload.get("host_workers", {}).get("live", {}).items():
        for mode, result in modes.items():
            wall = result["wall_s"]
            if wall > GUARD_FACTOR * SMOKE_WORKER_BASELINE_WALL_S:
                failures.append(
                    f"{mode} @ {workers} workers: smoke wall {wall:.3f}s exceeds "
                    f"{GUARD_FACTOR:.0f}x baseline {SMOKE_WORKER_BASELINE_WALL_S:.3f}s"
                )
    return failures


@pytest.mark.benchmark(group="simspeed")
def test_simulator_wall_clock(benchmark):
    """The smoke protocol stays within the regression guard in every mode."""
    payload = benchmark.pedantic(
        lambda: measure(smoke=True), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info.update(payload["modes"])
    assert not check_guard(payload)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI (also enables the guard)")
    parser.add_argument("--workers", default=None,
                        help="comma-separated host worker counts to measure "
                             "(e.g. 1,2,4); counts > 1 shard the lockstep batch "
                             "across forked worker processes")
    parser.add_argument("--json", type=Path, default=JSON_PATH,
                        help="where to write the machine-readable results")
    args = parser.parse_args()
    workers_list = None
    if args.workers:
        workers_list = sorted({max(1, int(w)) for w in args.workers.split(",")})
    payload = measure(smoke=args.smoke, workers_list=workers_list)
    print(f"simulator wall clock: {payload['trials']} trials, "
          f"cap {payload['max_iterations']} iterations")
    header = (f"{'mode':<10} {'wall':>9} {'eval':>9} {'overhead':>9} "
              f"{'iters/s':>9}" + ("" if args.smoke else f" {'before':>9} {'speedup':>8}"))
    print(header)
    for mode in TRANSFER_MODES:
        result = payload["modes"][mode]
        line = (f"{mode:<10} {result['wall_s']:>8.3f}s {result['eval_wall_s']:>8.3f}s "
                f"{result['host_overhead_s']:>8.3f}s {result['iterations_per_s']:>9.1f}")
        if not args.smoke:
            line += (f" {PRE_CHANGE_WALL_S[mode]:>8.3f}s"
                     f" {payload['speedup'][mode]:>7.1f}x")
        print(line)
    for mode in TRANSFER_MODES:
        recompute = payload["incremental"]["recompute_live"][mode]
        speedup = payload["incremental"]["speedup_vs_recompute_live"][mode]
        print(f"{mode:<10} {recompute['wall_s']:>8.3f}s recompute "
              f"(incremental engine {speedup:.1f}x over it, live)")
    for workers, modes in payload.get("host_workers", {}).get("live", {}).items():
        for mode in TRANSFER_MODES:
            result = modes[mode]
            print(f"{mode:<10} {result['wall_s']:>8.3f}s ({workers} host workers, live)")
    for name, result in payload.get("fast_scorers", {}).items():
        print(f"fast scorer {name:<8} {result['fast_wall_s'] * 1e3:>8.1f} ms vs "
              f"reference {result['reference_wall_s'] * 1e3:>8.1f} ms "
              f"({result['speedup']:.1f}x)")
    write_json(payload, args.json)
    print(f"wrote {args.json}")
    if args.smoke:
        failures = check_guard(payload)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            raise SystemExit(1)
        print("smoke guard passed")


if __name__ == "__main__":
    main()
