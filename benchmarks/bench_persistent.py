"""Benchmark: the persistent-kernel iteration loop vs per-iteration launches.

The device-resident pipeline (``reduced`` mode) already shrank per-iteration
PCIe traffic to ``O(S)``; the remaining per-iteration fixed cost is the
kernel launch overhead itself.  The ``persistent`` mode folds the whole
lockstep loop — delta scatter, neighborhood evaluation, fused reduction/
selection and tabu-memory update — into **one** launch per run, with the
host only draining a 16 B/replica result ring and writing ``O(S)``
early-stop flags.  This benchmark runs the paper's multi-trial tabu protocol
on the 73x73 2-Hamming instance and compares

* **kernel launches** — ``reduced`` pays one launch per lockstep iteration,
  ``persistent`` pays one per *run* (the headline launches/iteration →
  launches/run collapse);
* **PCIe traffic** — the persistent loop also drops the per-iteration delta
  packet and tabu stamps (the grid scatters its own selection);
* **simulated elapsed time** — the stream-timeline makespan, where the ring
  drain hides under the resident loop.

All modes produce bit-identical per-trial records (same seeds, same
trajectories); the benchmark asserts that, and asserts the launch count
drops by at least the lockstep iteration count, before reporting.

Run as a script (``python benchmarks/bench_persistent.py [--smoke]``) or via
``pytest benchmarks/bench_persistent.py --benchmark-only``.  Both entry
points write ``benchmarks/BENCH_persistent.json``.
"""

import argparse
import json
import time
from pathlib import Path

import pytest

from repro.harness import run_ppp_experiment

#: Paper-protocol configuration: the Table-2/3 73x73 instance, 2-Hamming
#: neighborhood, 50 independent tabu trials in batched lockstep.
SPEC = (73, 73)
ORDER = 2
TRIALS = 50
MAX_ITERATIONS = 40

#: Reduced configuration for CI smoke runs.
SMOKE_TRIALS = 20
SMOKE_MAX_ITERATIONS = 8

#: The modes being compared: the per-iteration-launch pipeline vs the
#: single persistent launch (``full`` rides along as the seed baseline).
MODES = ("full", "reduced", "persistent")

JSON_PATH = Path(__file__).resolve().parent / "BENCH_persistent.json"


def run_mode(mode: str, trials: int, max_iterations: int) -> dict:
    """One batched GPU experiment under ``mode``; returns records + accounting."""
    start = time.perf_counter()
    row = run_ppp_experiment(
        SPEC,
        ORDER,
        trials=trials,
        max_iterations=max_iterations,
        evaluator_factory="gpu",
        trial_mode="batched",
        transfer_mode=mode,
    )
    wall_s = time.perf_counter() - start
    # Tabu always moves, so every lockstep step advances each still-active
    # replica by one iteration: the lockstep count is the longest trial's.
    lockstep_iterations = max(t.iterations for t in row.trials)
    return {
        "records": [(t.fitness, t.iterations, t.success) for t in row.trials],
        "wall_s": wall_s,
        "kernel_launches": row.kernel_launches,
        "lockstep_iterations": lockstep_iterations,
        "launches_per_iteration": row.kernel_launches / lockstep_iterations,
        "h2d_bytes": row.h2d_bytes,
        "d2h_bytes": row.d2h_bytes,
        "sim_elapsed_s": row.sim_elapsed_s,
        "overlap_saved_s": row.overlap_saved_s,
    }


def measure(*, smoke: bool = False) -> dict:
    """Compare the launch economics of the three modes; assert bit-identity."""
    trials = SMOKE_TRIALS if smoke else TRIALS
    max_iterations = SMOKE_MAX_ITERATIONS if smoke else MAX_ITERATIONS
    modes = {mode: run_mode(mode, trials, max_iterations) for mode in MODES}
    reference = modes["full"]["records"]
    for mode, result in modes.items():
        assert result["records"] == reference, f"{mode} trajectories diverged from full"
    reduced, persistent = modes["reduced"], modes["persistent"]
    # The acceptance invariant: one launch per run, and the launch count
    # shrinks by at least the iteration count relative to reduced mode.
    assert persistent["kernel_launches"] == 1, persistent["kernel_launches"]
    launch_reduction = reduced["kernel_launches"] / persistent["kernel_launches"]
    assert launch_reduction >= persistent["lockstep_iterations"], (
        launch_reduction,
        persistent["lockstep_iterations"],
    )
    payload = {
        "benchmark": "persistent_kernel_loop",
        "instance": {"m": SPEC[0], "n": SPEC[1], "order": ORDER},
        "trials": trials,
        "max_iterations": max_iterations,
        "smoke": smoke,
        "modes": {
            mode: {key: value for key, value in result.items() if key != "records"}
            for mode, result in modes.items()
        },
        "launch_reduction": launch_reduction,
        "h2d_reduction": reduced["h2d_bytes"] / persistent["h2d_bytes"],
        "sim_speedup": reduced["sim_elapsed_s"] / persistent["sim_elapsed_s"],
    }
    return payload


def write_json(payload: dict, path: Path = JSON_PATH) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.mark.benchmark(group="persistent")
def test_persistent_launch_collapse(benchmark):
    """Persistent mode issues one launch per run and beats reduced on elapsed time."""
    payload = benchmark.pedantic(
        lambda: measure(smoke=True), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info.update(payload["modes"])
    reduced = payload["modes"]["reduced"]
    persistent = payload["modes"]["persistent"]
    assert persistent["kernel_launches"] == 1
    assert payload["launch_reduction"] >= persistent["lockstep_iterations"]
    assert persistent["sim_elapsed_s"] < reduced["sim_elapsed_s"]
    assert persistent["h2d_bytes"] < reduced["h2d_bytes"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI (seconds, not minutes)")
    parser.add_argument("--json", type=Path, default=JSON_PATH,
                        help="where to write the machine-readable results")
    args = parser.parse_args()
    payload = measure(smoke=args.smoke)
    spec = payload["instance"]
    print(f"instance {spec['m']} x {spec['n']}, {spec['order']}-Hamming, "
          f"{payload['trials']} trials, cap {payload['max_iterations']} iterations")
    header = (f"{'mode':<11} {'launches':>9} {'ln/iter':>8} {'wall':>9} "
              f"{'sim elapsed':>12} {'h2d':>12} {'d2h':>12}")
    print(header)
    for mode in MODES:
        result = payload["modes"][mode]
        print(f"{mode:<11} {result['kernel_launches']:>9d} "
              f"{result['launches_per_iteration']:>8.2f} {result['wall_s']:>8.3f}s "
              f"{result['sim_elapsed_s'] * 1e3:>10.2f}ms "
              f"{result['h2d_bytes']:>11d}B {result['d2h_bytes']:>11d}B")
    print(f"launches: x{payload['launch_reduction']:.0f} fewer (persistent vs reduced, "
          f">= {payload['modes']['persistent']['lockstep_iterations']} lockstep iterations); "
          f"h2d bytes: x{payload['h2d_reduction']:.1f} less; "
          f"simulated time: x{payload['sim_speedup']:.2f} faster")
    write_json(payload, args.json)
    print(f"wrote {args.json}")


if __name__ == "__main__":
    main()
