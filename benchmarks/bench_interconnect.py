"""Benchmark: topology-aware transfer routing under host-uplink contention.

The seed transfer model priced every PCIe copy against a private link, so a
4-GPU pool uploaded four replica slices in the time of one.  With the
interconnect engine the shared host root complex is a contended resource:
concurrent transfers time-share its bandwidth, and every byte kept *off*
the uplink (fused reductions, persistent ring drains, peer-routed delta
packets) buys a second, larger win on a busy host.

This benchmark runs the paper's multi-trial tabu protocol (batched lockstep
trials, 4 simulated GTX 280s) under the dedicated-link and the
shared-uplink topologies, across the full / reduced / persistent transfer
modes with peer routing on and off, and compares

* **contention loss** — the shared-uplink makespan over the dedicated one
  for the same mode; the modes that keep bytes off the host (reduced /
  persistent, with peer-routed delta slices) must lose the least, while
  full mode — hauling the whole ``S x M`` fitness matrix over the root
  complex every iteration — loses the most;
* **uplink pressure** — bytes, transactions, busy time and stall totals of
  the root complex per mode, straight from the engine's per-link
  accounting (peer routing must cut the uplink transaction count);
* **the upload phase** — the 4 simultaneous replica-slice uploads of a
  resident session must take at least 3x the dedicated-link time on the
  shared uplink (each slice sees ~1/4 of the root complex);
* **bit-identical trajectories** — every configuration must reproduce the
  dedicated full-mode per-trial records exactly (topology and routing are
  timing properties, never functional ones).

Run as a script (``python benchmarks/bench_interconnect.py [--smoke]``) or
via ``pytest benchmarks/bench_interconnect.py --benchmark-only``.  Both
entry points write ``benchmarks/BENCH_interconnect.json``.
"""

import argparse
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import MultiGPUEvaluator
from repro.harness.experiment import ExperimentRow, _collect_transfer_stats
from repro.localsearch.multistart import MultiStartRunner
from repro.neighborhoods import KHammingNeighborhood
from repro.problems.instances import PPPInstanceSpec, instance_seed, make_table_instance

#: Paper-protocol configuration: a Table-2/3 sized instance, 2-Hamming
#: neighborhood, 50 independent tabu trials in batched lockstep, 4 GPUs.
SPEC = (73, 73)
ORDER = 2
TRIALS = 50
MAX_ITERATIONS = 40
DEVICES = 4

#: Reduced configuration for CI smoke runs.
SMOKE_SPEC = (41, 41)
SMOKE_TRIALS = 12
SMOKE_MAX_ITERATIONS = 10

JSON_PATH = Path(__file__).resolve().parent / "BENCH_interconnect.json"

#: (label, transfer_mode, peer_routing) configurations compared under both
#: topologies.  Persistent mode scatters its deltas on-device, so the peer
#: toggle is moot there; full mode has no resident session to route.
CONFIGS = (
    ("full", "full", True),
    ("reduced-no-p2p", "reduced", False),
    ("reduced-p2p", "reduced", True),
    ("persistent", "persistent", True),
)


def run_config(spec, trials, max_iterations, *, transfer_mode, peer_routing, topology):
    """One batched multi-GPU experiment; returns records + engine accounting."""
    m, n = spec
    problem = make_table_instance(PPPInstanceSpec(m, n), trial=0)
    neighborhood = KHammingNeighborhood(problem.n, ORDER)
    evaluator = MultiGPUEvaluator(
        problem,
        neighborhood,
        devices=DEVICES,
        peer_routing=peer_routing,
        topology=topology,
    )
    runner = MultiStartRunner(
        evaluator,
        algorithm="tabu",
        max_iterations=max_iterations,
        transfer_mode=transfer_mode,
    )
    seeds = [instance_seed(m, n, trial) for trial in range(trials)]
    start = time.perf_counter()
    results = runner.run(seeds=seeds)
    wall_s = time.perf_counter() - start
    row = ExperimentRow(instance=PPPInstanceSpec(m, n), order=ORDER)
    _collect_transfer_stats(evaluator, row)
    engine = evaluator.pool.engine
    uplink_transfers = (
        engine.link_transfers("uplink") if engine.topology.uplink is not None else 0
    )
    evaluator.close()
    return {
        "records": [(r.best_fitness, r.iterations, r.success) for r in results],
        "wall_s": wall_s,
        "makespan_s": row.sim_elapsed_s,
        "h2d_bytes": row.h2d_bytes,
        "d2h_bytes": row.d2h_bytes,
        "p2p_bytes": row.p2p_bytes,
        "uplink_busy_s": row.uplink_busy_s,
        "uplink_utilization": row.uplink_utilization,
        "uplink_transfers": uplink_transfers,
        "contention_stall_s": row.contention_stall_s,
        "topology": row.topology,
    }


def measure_upload_phase(spec, *, replicas: int = 65536) -> dict:
    """The acceptance scenario: 4 simultaneous replica-slice uploads.

    Opens a resident session over a large replica block under both
    topologies and returns the upload-phase makespans; on the shared root
    complex each slice sees ~1/4 of the uplink, so the phase must take at
    least 3x the dedicated-link time — with bit-identical device state.
    """
    m, n = spec
    problem = make_table_instance(PPPInstanceSpec(m, n), trial=0)
    neighborhood = KHammingNeighborhood(problem.n, ORDER)
    rng = np.random.default_rng(0)
    solutions = rng.integers(0, 2, size=(replicas, problem.n)).astype(np.int8)
    phases = {}
    for topology in ("dedicated", "shared"):
        evaluator = MultiGPUEvaluator(
            problem, neighborhood, devices=DEVICES, topology=topology
        )
        evaluator.begin_search(solutions)
        phases[topology] = evaluator.scheduler.makespan
        evaluator.close()
    phases["slowdown"] = phases["shared"] / phases["dedicated"]
    phases["replicas"] = replicas
    return phases


def measure(*, smoke: bool = False) -> dict:
    """Compare modes x topologies; assert ordering and bit-identity."""
    spec = SMOKE_SPEC if smoke else SPEC
    trials = SMOKE_TRIALS if smoke else TRIALS
    max_iterations = SMOKE_MAX_ITERATIONS if smoke else MAX_ITERATIONS
    configs: dict[str, dict] = {}
    for label, transfer_mode, peer_routing in CONFIGS:
        for topology in ("dedicated", "shared"):
            configs[f"{label}/{topology}"] = run_config(
                spec, trials, max_iterations,
                transfer_mode=transfer_mode,
                peer_routing=peer_routing,
                topology=topology,
            )
    reference = configs["full/dedicated"]["records"]
    for label, result in configs.items():
        assert result["records"] == reference, f"{label} trajectories diverged"

    loss = {}
    host_bytes = {}
    for label, _mode, _peer in CONFIGS:
        contended = configs[f"{label}/shared"]
        dedicated = configs[f"{label}/dedicated"]
        loss[label] = contended["makespan_s"] / dedicated["makespan_s"]
        host_bytes[label] = contended["h2d_bytes"] + contended["d2h_bytes"]
        assert contended["makespan_s"] >= dedicated["makespan_s"] * (1 - 1e-12), (
            f"{label}: the shared uplink cannot be faster than dedicated links"
        )
        assert contended["uplink_busy_s"] > 0.0
        assert dedicated["uplink_busy_s"] == 0.0
    # The point of the model: the less a mode ships over the host, the less
    # it loses to contention.  Full mode hauls the whole S x M fitness
    # matrix over the root complex every iteration and loses the most;
    # the reduced and persistent pipelines keep orders of magnitude fewer
    # bytes on the uplink and their makespans barely move.
    assert loss["full"] >= loss["reduced-p2p"]
    assert loss["full"] >= loss["persistent"]
    assert host_bytes["full"] > host_bytes["reduced-no-p2p"]
    assert host_bytes["reduced-no-p2p"] > host_bytes["persistent"]
    # Peer routing replaces the per-device slice uploads with one hub
    # packet + P2P forwards: fewer uplink transactions, bytes on the mesh.
    assert (
        configs["reduced-p2p/shared"]["uplink_transfers"]
        < configs["reduced-no-p2p/shared"]["uplink_transfers"]
    )
    assert configs["reduced-p2p/shared"]["p2p_bytes"] > 0

    upload_phase = measure_upload_phase(spec)
    assert upload_phase["slowdown"] >= 3.0, (
        "4 concurrent replica uploads must take >= 3x the dedicated time "
        f"on the shared uplink, got x{upload_phase['slowdown']:.2f}"
    )

    payload = {
        "benchmark": "interconnect_contention",
        "instance": {"m": spec[0], "n": spec[1], "order": ORDER},
        "trials": trials,
        "max_iterations": max_iterations,
        "devices": DEVICES,
        "smoke": smoke,
        "configs": {
            label: {key: value for key, value in result.items() if key != "records"}
            for label, result in configs.items()
        },
        "contention_loss": loss,
        "uplink_host_bytes": host_bytes,
        "upload_phase": upload_phase,
    }
    payload["full_vs_persistent_loss_ratio"] = loss["full"] / loss["persistent"]
    payload["full_vs_persistent_uplink_bytes"] = (
        host_bytes["full"] / host_bytes["persistent"]
    )
    return payload


def write_json(payload: dict, path: Path = JSON_PATH) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.mark.benchmark(group="interconnect")
def test_interconnect_contention(benchmark):
    """Modes that keep bytes off the shared uplink lose the least makespan."""
    payload = benchmark.pedantic(
        lambda: measure(smoke=True), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info.update(payload["contention_loss"])
    assert payload["contention_loss"]["full"] >= payload["contention_loss"]["persistent"]
    assert payload["upload_phase"]["slowdown"] >= 3.0
    assert payload["full_vs_persistent_uplink_bytes"] > 1.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI (seconds, not minutes)")
    parser.add_argument("--json", type=Path, default=JSON_PATH,
                        help="where to write the machine-readable results")
    args = parser.parse_args()
    payload = measure(smoke=args.smoke)
    spec = payload["instance"]
    print(f"instance {spec['m']} x {spec['n']}, {spec['order']}-Hamming, "
          f"{payload['trials']} trials, cap {payload['max_iterations']} iterations, "
          f"{payload['devices']} GPUs")
    header = (f"{'config':<24} {'makespan':>10} {'h2d':>10} {'d2h':>10} {'p2p':>10} "
              f"{'uplink busy':>12} {'stall':>10} {'ops':>6}")
    print(header)
    for label, result in payload["configs"].items():
        print(f"{label:<24} {result['makespan_s'] * 1e3:>8.2f}ms "
              f"{result['h2d_bytes']:>9d}B {result['d2h_bytes']:>9d}B "
              f"{result['p2p_bytes']:>9d}B "
              f"{result['uplink_busy_s'] * 1e3:>10.2f}ms "
              f"{result['contention_stall_s'] * 1e3:>8.2f}ms "
              f"{result['uplink_transfers']:>6d}")
    print("contention loss (shared makespan / dedicated makespan):")
    for label, ratio in payload["contention_loss"].items():
        print(f"  {label:<20} x{ratio:.4f}")
    up = payload["upload_phase"]
    print(f"upload phase ({up['replicas']} replicas over 4 GPUs): "
          f"{up['dedicated'] * 1e3:.2f}ms dedicated -> {up['shared'] * 1e3:.2f}ms "
          f"shared (x{up['slowdown']:.2f} slower)")
    print(f"full mode puts x{payload['full_vs_persistent_uplink_bytes']:.0f} more "
          f"bytes on the uplink than persistent and loses "
          f"x{payload['full_vs_persistent_loss_ratio']:.4f} more makespan")
    write_json(payload, args.json)
    print(f"wrote {args.json}")


if __name__ == "__main__":
    main()
