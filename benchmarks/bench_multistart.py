"""Benchmark: batched lockstep multi-start vs the serial 50-trial loop.

The solution-parallel execution engine advances all trials of the paper's
protocol in lockstep, turning the 50 per-iteration neighborhood evaluations
into one batched ``(S, n) -> (S, M)`` call.  This benchmark measures

* the **wall-clock** speedup of ``trial_mode="batched"`` over the serial
  trial loop on a small Table-1 instance (order 1), and
* the **simulated** transfer / launch savings of the single ``S x M`` GPU
  launch: uploading the solution block once and paying one launch overhead
  per iteration instead of once per replica per iteration.

Run it as a script (``python benchmarks/bench_multistart.py [--smoke]``) or
through ``pytest benchmarks/bench_multistart.py --benchmark-only``.  The
script entry point writes ``benchmarks/BENCH_multistart.json`` so the perf
trajectory is tracked across PRs.
"""

import argparse
import json
import time
from pathlib import Path

import pytest

from repro.core import GPUEvaluator
from repro.harness import run_ppp_experiment
from repro.localsearch import MultiStartRunner, TabuSearch
from repro.neighborhoods import KHammingNeighborhood
from repro.problems.instances import instance_seed, make_table_instance

#: Small Table-1 configuration (the smoke-scale Table I instance, 1-Hamming).
SPEC = (25, 25)
ORDER = 1
TRIALS = 50
MAX_ITERATIONS = 200

#: Reduced configuration for CI smoke runs.
SMOKE_TRIALS = 15
SMOKE_MAX_ITERATIONS = 50

JSON_PATH = Path(__file__).resolve().parent / "BENCH_multistart.json"


def _run(trial_mode: str, trials: int = TRIALS, max_iterations: int = MAX_ITERATIONS):
    return run_ppp_experiment(
        SPEC, ORDER, trials=trials, max_iterations=max_iterations, trial_mode=trial_mode
    )


def measure_wall_clock(
    trials: int = TRIALS, max_iterations: int = MAX_ITERATIONS
) -> dict:
    """Wall-clock seconds of the serial loop vs the batched lockstep engine."""
    start = time.perf_counter()
    serial = _run("serial", trials, max_iterations)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    batched = _run("batched", trials, max_iterations)
    batched_s = time.perf_counter() - start
    records = lambda row: [(t.fitness, t.iterations, t.success) for t in row.trials]
    assert records(serial) == records(batched), "batched records diverged from serial"
    return {
        "serial_s": serial_s,
        "batched_s": batched_s,
        "speedup": serial_s / batched_s,
    }


def measure_simulated_savings(
    trials: int = TRIALS, max_iterations: int = MAX_ITERATIONS
) -> dict:
    """Simulated launch/transfer amortization of the single S x M GPU launch."""
    problem = make_table_instance(SPEC, trial=0)
    neighborhood = KHammingNeighborhood(problem.n, ORDER)
    seeds = [instance_seed(SPEC[0], SPEC[1], trial) for trial in range(trials)]

    serial_ev = GPUEvaluator(problem, neighborhood)
    search = TabuSearch(serial_ev, max_iterations=max_iterations)
    for seed in seeds:
        search.run(rng=seed)
    serial_stats = serial_ev.context.stats

    batched_ev = GPUEvaluator(problem, neighborhood)
    runner = MultiStartRunner(batched_ev, algorithm="tabu", max_iterations=max_iterations)
    runner.run(seeds=seeds)
    batched_stats = batched_ev.context.stats

    return {
        "serial_launches": serial_stats.kernel_launches,
        "batched_launches": batched_stats.kernel_launches,
        "serial_transfer_time_s": serial_stats.transfer_time,
        "batched_transfer_time_s": batched_stats.transfer_time,
        "serial_simulated_s": serial_stats.total_time,
        "batched_simulated_s": batched_stats.total_time,
        "serial_h2d_bytes": serial_stats.h2d_bytes,
        "serial_d2h_bytes": serial_stats.d2h_bytes,
        "batched_h2d_bytes": batched_stats.h2d_bytes,
        "batched_d2h_bytes": batched_stats.d2h_bytes,
        "launch_reduction": serial_stats.kernel_launches / batched_stats.kernel_launches,
        "transfer_time_reduction": (
            serial_stats.transfer_time / batched_stats.transfer_time
        ),
    }


@pytest.mark.benchmark(group="multistart")
def test_batched_multistart_speedup(benchmark):
    """Batched lockstep execution is >= 3x faster than the serial trial loop."""
    wall = benchmark.pedantic(measure_wall_clock, rounds=1, iterations=1, warmup_rounds=0)
    savings = measure_simulated_savings()
    benchmark.extra_info.update(wall)
    benchmark.extra_info.update(savings)
    assert wall["speedup"] >= 3.0, f"expected >= 3x, got x{wall['speedup']:.2f}"
    # The lockstep engine issues (at most) one launch per iteration instead
    # of one per replica per iteration.
    assert savings["batched_launches"] < savings["serial_launches"]
    assert savings["batched_transfer_time_s"] < savings["serial_transfer_time_s"]


def main() -> None:
    parser = argparse.ArgumentParser(
        description="batched lockstep multi-start vs the serial trial loop"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI (seconds, not minutes)")
    parser.add_argument("--json", type=Path, default=JSON_PATH,
                        help="where to write the machine-readable results")
    args = parser.parse_args()
    trials = SMOKE_TRIALS if args.smoke else TRIALS
    max_iterations = SMOKE_MAX_ITERATIONS if args.smoke else MAX_ITERATIONS

    wall = measure_wall_clock(trials, max_iterations)
    print(f"instance {SPEC[0]} x {SPEC[1]}, {ORDER}-Hamming, {trials} trials, "
          f"cap {max_iterations} iterations")
    print(f"serial trial loop : {wall['serial_s']:.3f} s")
    print(f"batched lockstep  : {wall['batched_s']:.3f} s")
    print(f"wall-clock speedup: x{wall['speedup']:.1f}")
    savings = measure_simulated_savings(trials, max_iterations)
    print()
    print("simulated GPU accounting (one S x M launch per iteration):")
    print(f"  kernel launches : {savings['serial_launches']} -> "
          f"{savings['batched_launches']} (x{savings['launch_reduction']:.1f} fewer)")
    print(f"  transfer time   : {savings['serial_transfer_time_s']:.4f} s -> "
          f"{savings['batched_transfer_time_s']:.4f} s "
          f"(x{savings['transfer_time_reduction']:.1f} less)")
    print(f"  simulated total : {savings['serial_simulated_s']:.4f} s -> "
          f"{savings['batched_simulated_s']:.4f} s")
    payload = {
        "benchmark": "multistart_lockstep",
        "instance": {"m": SPEC[0], "n": SPEC[1], "order": ORDER},
        "trials": trials,
        "max_iterations": max_iterations,
        "smoke": args.smoke,
        "wall_clock": wall,
        "simulated": savings,
    }
    args.json.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.json}")


if __name__ == "__main__":
    main()
