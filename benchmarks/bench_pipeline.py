"""Benchmark: transfer modes of the device-resident search pipeline.

The paper's GPU implementation keeps the candidate solution resident on the
device and copies back only what the host needs.  This benchmark runs the
paper's multi-trial tabu protocol (batched lockstep trials on the simulated
GPU) under the three transfer modes and compares

* **PCIe traffic** — ``full`` re-uploads the ``(S, n)`` block and downloads
  all ``S x M`` fitnesses every iteration; ``delta`` uploads only flipped-bit
  pairs; ``reduced`` additionally fuses the argmin reduction on-device and
  downloads 16 bytes per replica;
* **simulated elapsed time** — the stream-timeline makespan, where transfers
  issued on the copy stream hide under kernel execution;
* **wall-clock time** — the host-side cost of shuffling less data.

All three modes produce bit-identical per-trial records (same seeds, same
trajectories); the benchmark asserts that before reporting.

Run as a script (``python benchmarks/bench_pipeline.py [--smoke]``) or via
``pytest benchmarks/bench_pipeline.py --benchmark-only``.  Both entry points
write ``benchmarks/BENCH_pipeline.json`` so the perf trajectory is tracked
across PRs.
"""

import argparse
import json
import time
from pathlib import Path

import pytest

from repro.harness import run_ppp_experiment
from repro.localsearch import TRANSFER_MODES

#: Paper-protocol configuration: a Table-2/3 sized instance, 2-Hamming
#: neighborhood, 50 independent tabu trials in batched lockstep.
SPEC = (73, 73)
ORDER = 2
TRIALS = 50
MAX_ITERATIONS = 40

#: Reduced configuration for CI smoke runs.  The neighborhood must stay
#: large enough (``S·M`` over the reduction-launch break-even) for the fused
#: reduction to beat the full fitness download — the same crossover the
#: paper observes for its small 1-Hamming kernels.
SMOKE_SPEC = (73, 73)
SMOKE_TRIALS = 20
SMOKE_MAX_ITERATIONS = 8

JSON_PATH = Path(__file__).resolve().parent / "BENCH_pipeline.json"


def run_mode(mode: str, spec, trials: int, max_iterations: int) -> dict:
    """One batched GPU experiment under ``mode``; returns records + accounting."""
    start = time.perf_counter()
    row = run_ppp_experiment(
        spec,
        ORDER,
        trials=trials,
        max_iterations=max_iterations,
        evaluator_factory="gpu",
        trial_mode="batched",
        transfer_mode=mode,
    )
    wall_s = time.perf_counter() - start
    return {
        "records": [(t.fitness, t.iterations, t.success) for t in row.trials],
        "wall_s": wall_s,
        # Split of the measured wall clock: time inside kernel bodies (the
        # NumPy evaluation math) vs everything else the simulator does
        # (transfer pricing, timeline accounting, selection bookkeeping).
        "eval_wall_s": row.eval_wall_s,
        "host_overhead_s": max(0.0, wall_s - row.eval_wall_s),
        "h2d_bytes": row.h2d_bytes,
        "d2h_bytes": row.d2h_bytes,
        "sim_elapsed_s": row.sim_elapsed_s,
        "overlap_saved_s": row.overlap_saved_s,
        "mean_iterations": row.mean_iterations,
    }


def measure(*, smoke: bool = False) -> dict:
    """Compare the three transfer modes; assert bit-identical trajectories."""
    spec = SMOKE_SPEC if smoke else SPEC
    trials = SMOKE_TRIALS if smoke else TRIALS
    max_iterations = SMOKE_MAX_ITERATIONS if smoke else MAX_ITERATIONS
    modes = {
        mode: run_mode(mode, spec, trials, max_iterations) for mode in TRANSFER_MODES
    }
    reference = modes["full"]["records"]
    for mode, result in modes.items():
        assert result["records"] == reference, f"{mode} trajectories diverged from full"
    payload = {
        "benchmark": "pipeline_transfer_modes",
        "instance": {"m": spec[0], "n": spec[1], "order": ORDER},
        "trials": trials,
        "max_iterations": max_iterations,
        "smoke": smoke,
        "modes": {
            mode: {key: value for key, value in result.items() if key != "records"}
            for mode, result in modes.items()
        },
    }
    full, reduced = modes["full"], modes["reduced"]
    payload["d2h_reduction"] = full["d2h_bytes"] / reduced["d2h_bytes"]
    payload["h2d_reduction"] = full["h2d_bytes"] / modes["delta"]["h2d_bytes"]
    payload["sim_speedup"] = full["sim_elapsed_s"] / reduced["sim_elapsed_s"]
    return payload


def write_json(payload: dict, path: Path = JSON_PATH) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.mark.benchmark(group="pipeline")
def test_pipeline_transfer_modes(benchmark):
    """Reduced mode moves O(S) bytes per iteration and beats full on simulated time."""
    payload = benchmark.pedantic(
        lambda: measure(smoke=True), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info.update(payload["modes"])
    full, reduced = payload["modes"]["full"], payload["modes"]["reduced"]
    assert reduced["d2h_bytes"] < full["d2h_bytes"]
    assert payload["modes"]["delta"]["h2d_bytes"] < full["h2d_bytes"]
    assert reduced["sim_elapsed_s"] < full["sim_elapsed_s"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI (seconds, not minutes)")
    parser.add_argument("--json", type=Path, default=JSON_PATH,
                        help="where to write the machine-readable results")
    args = parser.parse_args()
    payload = measure(smoke=args.smoke)
    spec = payload["instance"]
    print(f"instance {spec['m']} x {spec['n']}, {spec['order']}-Hamming, "
          f"{payload['trials']} trials, cap {payload['max_iterations']} iterations")
    header = (f"{'mode':<10} {'wall':>9} {'eval':>9} {'overhead':>9} "
              f"{'sim elapsed':>12} {'overlap':>10} {'h2d':>12} {'d2h':>12}")
    print(header)
    for mode in TRANSFER_MODES:
        result = payload["modes"][mode]
        print(f"{mode:<10} {result['wall_s']:>8.3f}s {result['eval_wall_s']:>8.3f}s "
              f"{result['host_overhead_s']:>8.3f}s "
              f"{result['sim_elapsed_s'] * 1e3:>10.2f}ms "
              f"{result['overlap_saved_s'] * 1e3:>8.2f}ms "
              f"{result['h2d_bytes']:>11d}B {result['d2h_bytes']:>11d}B")
    print(f"d2h bytes: x{payload['d2h_reduction']:.1f} less (reduced vs full); "
          f"h2d bytes: x{payload['h2d_reduction']:.1f} less (delta vs full); "
          f"simulated time: x{payload['sim_speedup']:.2f} faster (reduced vs full)")
    write_json(payload, args.json)
    print(f"wrote {args.json}")


if __name__ == "__main__":
    main()
