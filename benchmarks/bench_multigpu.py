"""Benchmark: the concurrent multi-GPU scheduler and the pinned-memory model.

The paper's conclusion sketches the multi-GPU perspective — partition the
neighborhood, one partition per device.  This benchmark runs the paper's
multi-trial tabu protocol (batched lockstep trials, reduced transfer mode)
on a single simulated GTX 280 and on concurrently-scheduled pools of 2 and
4 of them, in both the pageable and the pinned host-memory model, and
compares

* **cross-device makespan vs the serialized per-device sum** — the pool's
  overlap-aware elapsed time must sit strictly below what the same work
  would cost run one device after another (true concurrent issue, not a
  per-step max);
* **pinned vs pageable transfer totals** — staging the per-iteration
  delta/result packets through pinned memory must strictly cut the summed
  transfer time of the same workload;
* **peer-to-peer routing** — the delta packets of non-hub devices travel
  over P2P links; their bytes appear in the p2p counters and never in the
  host-facing H2D/D2H counters.

Every configuration must reproduce the single-GPU per-trial records
bit-for-bit (same seeds, same trajectories); the benchmark asserts that
before reporting.

Run as a script (``python benchmarks/bench_multigpu.py [--smoke]``) or via
``pytest benchmarks/bench_multigpu.py --benchmark-only``.  Both entry points
write ``benchmarks/BENCH_multigpu.json`` so the perf trajectory is tracked
across PRs.
"""

import argparse
import json
import time
from pathlib import Path

import pytest

from repro.harness import run_ppp_experiment

#: Paper-protocol configuration: a Table-2/3 sized instance, 2-Hamming
#: neighborhood, 50 independent tabu trials in batched lockstep.
SPEC = (73, 73)
ORDER = 2
TRIALS = 50
MAX_ITERATIONS = 40

#: Reduced configuration for CI smoke runs.
SMOKE_SPEC = (41, 41)
SMOKE_TRIALS = 12
SMOKE_MAX_ITERATIONS = 10

JSON_PATH = Path(__file__).resolve().parent / "BENCH_multigpu.json"

#: Device-pool sizes compared against the single-GPU baseline.
POOL_SIZES = (2, 4)


def run_config(spec, trials, max_iterations, *, devices, pinned) -> dict:
    """One batched reduced-mode experiment; returns records + accounting."""
    start = time.perf_counter()
    row = run_ppp_experiment(
        spec,
        ORDER,
        trials=trials,
        max_iterations=max_iterations,
        evaluator_factory="multi-gpu" if devices > 1 else "gpu",
        trial_mode="batched",
        transfer_mode="reduced",
        devices=devices if devices > 1 else None,
        pinned=pinned,
    )
    wall_s = time.perf_counter() - start
    return {
        "records": [(t.fitness, t.iterations, t.success) for t in row.trials],
        "wall_s": wall_s,
        "sim_elapsed_s": row.sim_elapsed_s,
        "serialized_device_s": row.serialized_device_s,
        "cross_device_overlap_s": row.cross_device_overlap_s,
        "transfer_time_s": row.transfer_time_s,
        "h2d_bytes": row.h2d_bytes,
        "d2h_bytes": row.d2h_bytes,
        "p2p_bytes": row.p2p_bytes,
        "device_elapsed_s": row.device_elapsed_s,
        "num_devices": row.num_devices,
        "pinned": row.pinned,
    }


def measure(*, smoke: bool = False) -> dict:
    """Compare pool sizes and memory kinds; assert bit-identical trajectories."""
    spec = SMOKE_SPEC if smoke else SPEC
    trials = SMOKE_TRIALS if smoke else TRIALS
    max_iterations = SMOKE_MAX_ITERATIONS if smoke else MAX_ITERATIONS
    configs: dict[str, dict] = {}
    for devices in (1, *POOL_SIZES):
        for pinned in (False, True):
            label = f"gpu{devices}-{'pinned' if pinned else 'pageable'}"
            configs[label] = run_config(
                spec, trials, max_iterations, devices=devices, pinned=pinned
            )
    reference = configs["gpu1-pageable"]["records"]
    for label, result in configs.items():
        assert result["records"] == reference, f"{label} trajectories diverged"
    for devices in POOL_SIZES:
        for kind in ("pageable", "pinned"):
            multi = configs[f"gpu{devices}-{kind}"]
            assert multi["sim_elapsed_s"] < multi["serialized_device_s"], (
                f"gpu{devices}-{kind}: concurrent makespan must beat the "
                "serialized per-device sum"
            )
            assert multi["p2p_bytes"] > 0
    for devices in (1, *POOL_SIZES):
        pageable = configs[f"gpu{devices}-pageable"]
        pinned = configs[f"gpu{devices}-pinned"]
        assert pinned["transfer_time_s"] < pageable["transfer_time_s"], (
            f"gpu{devices}: pinned staging must cut the transfer total"
        )
    payload = {
        "benchmark": "multigpu_scheduler",
        "instance": {"m": spec[0], "n": spec[1], "order": ORDER},
        "trials": trials,
        "max_iterations": max_iterations,
        "smoke": smoke,
        "configs": {
            label: {key: value for key, value in result.items() if key != "records"}
            for label, result in configs.items()
        },
    }
    largest = configs[f"gpu{max(POOL_SIZES)}-pageable"]
    payload["cross_device_overlap_ratio"] = (
        largest["serialized_device_s"] / largest["sim_elapsed_s"]
    )
    payload["multi_gpu_speedup"] = (
        configs["gpu1-pageable"]["sim_elapsed_s"] / largest["sim_elapsed_s"]
    )
    payload["pinned_transfer_reduction"] = (
        configs["gpu1-pageable"]["transfer_time_s"]
        / configs["gpu1-pinned"]["transfer_time_s"]
    )
    return payload


def write_json(payload: dict, path: Path = JSON_PATH) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.mark.benchmark(group="multigpu")
def test_multigpu_scheduler(benchmark):
    """Concurrent pools beat the serialized sum; pinned beats pageable."""
    payload = benchmark.pedantic(
        lambda: measure(smoke=True), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info.update(payload["configs"])
    assert payload["cross_device_overlap_ratio"] > 1.0
    assert payload["pinned_transfer_reduction"] > 1.0
    assert payload["multi_gpu_speedup"] > 1.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small configuration for CI (seconds, not minutes)")
    parser.add_argument("--json", type=Path, default=JSON_PATH,
                        help="where to write the machine-readable results")
    args = parser.parse_args()
    payload = measure(smoke=args.smoke)
    spec = payload["instance"]
    print(f"instance {spec['m']} x {spec['n']}, {spec['order']}-Hamming, "
          f"{payload['trials']} trials, cap {payload['max_iterations']} iterations")
    header = (f"{'config':<16} {'wall':>8} {'makespan':>10} {'serialized':>11} "
              f"{'transfer':>10} {'h2d':>10} {'p2p':>10}")
    print(header)
    for label, result in payload["configs"].items():
        print(f"{label:<16} {result['wall_s']:>7.3f}s "
              f"{result['sim_elapsed_s'] * 1e3:>8.2f}ms "
              f"{result['serialized_device_s'] * 1e3:>9.2f}ms "
              f"{result['transfer_time_s'] * 1e3:>8.2f}ms "
              f"{result['h2d_bytes']:>9d}B {result['p2p_bytes']:>9d}B")
    print(f"largest pool: serialized/makespan x{payload['cross_device_overlap_ratio']:.2f}, "
          f"multi-GPU speedup x{payload['multi_gpu_speedup']:.2f} vs one device; "
          f"pinned transfer total x{payload['pinned_transfer_reduction']:.2f} less")
    write_json(payload, args.json)
    print(f"wrote {args.json}")


if __name__ == "__main__":
    main()
