"""Benchmark: continuous-batching solve server vs drain-and-refill.

An open-loop Poisson load generator submits solve jobs (1-8 replicas,
heterogeneous iteration budgets) to the solve server at a range of offered
loads, expressed as multiples of the batch's calibrated service capacity
(replica-iterations per simulated second).  Each (devices, load) point is
replayed twice over the identical trace:

* **continuous** — tenants join the live lockstep batch at step boundaries
  and retire the moment their budget or stopping rule fires; freed replica
  slots are refilled immediately from the queue;
* **drain** — the run-to-completion baseline: a new batch of queued jobs is
  admitted only once the previous batch fully drained to its straggler.

Reported per point: p50/p99 job latency, goodput (completions per simulated
second), mean batch occupancy and makespan.  The headline assertion — at a
saturating offered load on 4 simulated GPUs, continuous batching sustains
>= 1.5x the drain goodput at equal-or-lower p99 latency with mean occupancy
>= 80% — runs in both the full and the smoke configuration, and the smoke
wall clock is guarded against regressing more than 2x over the recorded
baseline.

Run as a script (``python benchmarks/bench_service.py [--smoke]``) or via
``pytest benchmarks/bench_service.py --benchmark-only``.  Both entry points
write ``benchmarks/BENCH_service.json``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import pytest

from repro.core import GPUEvaluator, MultiGPUEvaluator
from repro.harness import format_service_table
from repro.neighborhoods import KHammingNeighborhood
from repro.problems import PermutedPerceptronProblem
from repro.service import (
    SolveServer,
    calibrate_step_time,
    poisson_trace,
    saturating_rate,
)

#: Instance and batch configuration shared by every point.
SPEC = (31, 31)
ORDER = 1
INSTANCE_SEED = 7
TRACE_SEED = 11
TRANSFER_MODE = "reduced"
CAPACITY_PER_DEVICE = 16
REPLICAS = (1, 8)
BUDGET = (10, 150)

#: Full sweep: offered load x device count; the headline point is
#: ``HEADLINE_DEVICES`` at ``HEADLINE_LOAD`` (the saturating load).
DEVICES_SWEEP = (1, 2, 4, 8)
LOADS = (0.7, 1.0, 1.5)
NUM_JOBS = 100
HEADLINE_DEVICES = 4
HEADLINE_LOAD = 1.5

#: CI smoke: the headline point only, on a shorter trace.
SMOKE_DEVICES_SWEEP = (HEADLINE_DEVICES,)
SMOKE_LOADS = (HEADLINE_LOAD,)
SMOKE_NUM_JOBS = 80

#: Recorded smoke wall clock (reference machine); the CI guard fails the
#: benchmark when the measured smoke wall regresses past GUARD_FACTOR x this.
REFERENCE_SMOKE_WALL_S = 3.2
GUARD_FACTOR = 2.0

JSON_PATH = Path(__file__).resolve().parent / "BENCH_service.json"


def make_evaluator(problem, neighborhood, devices: int):
    if devices == 1:
        return GPUEvaluator(problem, neighborhood)
    return MultiGPUEvaluator(problem, neighborhood, devices=devices)


def run_point(problem, neighborhood, devices, capacity, jobs, policy) -> dict:
    evaluator = make_evaluator(problem, neighborhood, devices)
    try:
        server = SolveServer(
            evaluator,
            capacity=capacity,
            policy=policy,
            transfer_mode=TRANSFER_MODE,
        )
        report = server.run_trace(jobs)
    finally:
        evaluator.close()
    return report.summary_row()


def measure(*, smoke: bool = False) -> dict:
    """Sweep the (devices, load) grid; assert the headline criteria."""
    sweep = SMOKE_DEVICES_SWEEP if smoke else DEVICES_SWEEP
    loads = SMOKE_LOADS if smoke else LOADS
    num_jobs = SMOKE_NUM_JOBS if smoke else NUM_JOBS
    mean_job_work = (sum(REPLICAS) / 2) * (sum(BUDGET) / 2)

    start = time.perf_counter()
    problem = PermutedPerceptronProblem.generate(*SPEC, rng=INSTANCE_SEED)
    neighborhood = KHammingNeighborhood(problem.n, ORDER)

    step_times: dict[str, float] = {}
    results: dict[str, dict] = {}
    for devices in sweep:
        capacity = CAPACITY_PER_DEVICE * devices
        calibrator = make_evaluator(problem, neighborhood, devices)
        try:
            step_time = calibrate_step_time(
                calibrator, capacity=capacity, transfer_mode=TRANSFER_MODE
            )
        finally:
            calibrator.close()
        step_times[str(devices)] = step_time
        per_load: dict[str, dict] = {}
        for load in loads:
            rate = saturating_rate(step_time, capacity, mean_job_work, load=load)
            jobs = poisson_trace(
                num_jobs, rate, rng=TRACE_SEED, replicas=REPLICAS, budget=BUDGET
            )
            per_load[f"{load:.2f}"] = {
                policy: run_point(
                    problem, neighborhood, devices, capacity, jobs, policy
                )
                for policy in ("continuous", "drain")
            }
        results[str(devices)] = per_load
    wall_s = time.perf_counter() - start

    headline_point = results[str(HEADLINE_DEVICES)][f"{HEADLINE_LOAD:.2f}"]
    continuous = headline_point["continuous"]
    drain = headline_point["drain"]
    goodput_ratio = continuous["goodput"] / drain["goodput"]
    # The tentpole's acceptance criteria, checked on every run (smoke
    # included): continuous batching must beat drain-and-refill >= 1.5x on
    # goodput at equal-or-lower p99 latency, with mean occupancy >= 80%.
    assert goodput_ratio >= 1.5, f"goodput ratio {goodput_ratio:.2f} < 1.5"
    assert continuous["p99"] <= drain["p99"], (
        f"continuous p99 {continuous['p99']:.4f} > drain p99 {drain['p99']:.4f}"
    )
    assert continuous["occupancy"] >= 0.80, (
        f"mean occupancy {continuous['occupancy']:.2f} < 0.80"
    )

    return {
        "benchmark": "solve_service",
        "instance": {"m": SPEC[0], "n": SPEC[1], "order": ORDER},
        "transfer_mode": TRANSFER_MODE,
        "capacity_per_device": CAPACITY_PER_DEVICE,
        "replicas": list(REPLICAS),
        "budget": list(BUDGET),
        "num_jobs": num_jobs,
        "loads": list(loads),
        "devices": list(sweep),
        "smoke": smoke,
        "step_time_s": step_times,
        "results": results,
        "headline": {
            "devices": HEADLINE_DEVICES,
            "load": HEADLINE_LOAD,
            "goodput_ratio": goodput_ratio,
            "continuous_p99_s": continuous["p99"],
            "drain_p99_s": drain["p99"],
            "continuous_occupancy": continuous["occupancy"],
        },
        "guard_factor": GUARD_FACTOR,
        "reference_smoke_wall_s": REFERENCE_SMOKE_WALL_S,
        "wall_s": wall_s,
    }


def check_guard(payload: dict) -> list[str]:
    """Smoke regression guard: wall clock within GUARD_FACTOR of baseline."""
    if not payload["smoke"]:
        return []
    budget = REFERENCE_SMOKE_WALL_S * GUARD_FACTOR
    if payload["wall_s"] > budget:
        return [
            f"smoke wall {payload['wall_s']:.2f}s exceeds the "
            f"{budget:.2f}s regression budget"
        ]
    return []


def write_json(payload: dict, path: Path = JSON_PATH) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.mark.benchmark(group="service")
def test_solve_service(benchmark):
    """The smoke sweep meets the headline criteria within the wall budget."""
    payload = benchmark.pedantic(
        lambda: measure(smoke=True), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info.update(payload["headline"])
    assert payload["headline"]["goodput_ratio"] >= 1.5
    assert not check_guard(payload)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="headline point only, for CI (also enables the "
                             "wall-clock regression guard)")
    parser.add_argument("--json", type=Path, default=JSON_PATH,
                        help="where to write the machine-readable results")
    args = parser.parse_args()
    payload = measure(smoke=args.smoke)
    spec = payload["instance"]
    print(f"instance {spec['m']} x {spec['n']}, {spec['order']}-Hamming, "
          f"{payload['num_jobs']} Poisson jobs per point, "
          f"{payload['transfer_mode']} transfers, "
          f"{payload['capacity_per_device']} replica slots per device")
    for devices in payload["devices"]:
        rows = []
        for load in payload["loads"]:
            for policy in ("continuous", "drain"):
                row = dict(payload["results"][str(devices)][f"{load:.2f}"][policy])
                row["load"] = load
                rows.append(row)
        print()
        print(format_service_table(
            rows, title=f"{devices} simulated GPU(s), "
                        f"capacity {payload['capacity_per_device'] * devices}"
        ))
    head = payload["headline"]
    print()
    print(f"headline ({head['devices']} GPUs @ {head['load']:.1f}x load): "
          f"continuous goodput x{head['goodput_ratio']:.2f} over drain, "
          f"p99 {head['continuous_p99_s'] * 1e3:.1f}ms vs "
          f"{head['drain_p99_s'] * 1e3:.1f}ms, "
          f"occupancy {head['continuous_occupancy']:.0%}")
    write_json(payload, args.json)
    print(f"wrote {args.json}")
    failures = check_guard(payload)
    if failures:
        for failure in failures:
            print(f"GUARD FAILED: {failure}")
        return 1
    if payload["smoke"]:
        print("smoke guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
