"""Shared fixtures for the benchmark suite.

Every benchmark runs at the *smoke* scale by default so that
``pytest benchmarks/ --benchmark-only`` completes in a couple of minutes on
a laptop.  Set ``REPRO_BENCH_SCALE=reduced`` (or ``paper``) to rerun the
same benchmarks at larger scales.
"""

import os

import pytest

from repro.harness import get_scale


@pytest.fixture(scope="session")
def bench_scale():
    """Experiment scale used by the table/figure benchmarks."""
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "smoke"))
