"""Benchmarks and ablations of the neighborhood evaluators.

Wall-clock numbers here measure *this Python implementation* (how fast the
reproduction itself runs); the paper-comparable CPU/GPU seconds are the
modeled times attached as ``extra_info``.
"""

import numpy as np
import pytest

from repro.core import (
    CPUEvaluator,
    GPUEvaluator,
    MultiGPUEvaluator,
    SequentialEvaluator,
    iteration_times,
)
from repro.gpu import ExecutionMode
from repro.localsearch import TabuSearch
from repro.neighborhoods import KHammingNeighborhood, TwoHammingNeighborhood
from repro.problems import PermutedPerceptronProblem


@pytest.fixture(scope="module")
def ppp_73():
    """The smallest literature instance (73 x 73)."""
    return PermutedPerceptronProblem.generate(73, 73, rng=0)


@pytest.mark.benchmark(group="evaluators")
def test_cpu_evaluator_2hamming_73(benchmark, ppp_73):
    """Vectorized CPU evaluation of the full 2-Hamming neighborhood (2628 moves)."""
    neighborhood = TwoHammingNeighborhood(73)
    evaluator = CPUEvaluator(ppp_73, neighborhood)
    solution = ppp_73.random_solution(1)
    fitnesses = benchmark(evaluator.evaluate, solution)
    assert fitnesses.shape == (2628,)
    benchmark.extra_info["modeled_cpu_s_per_iteration"] = iteration_times(
        ppp_73, neighborhood
    ).cpu_time


@pytest.mark.benchmark(group="evaluators")
def test_gpu_evaluator_2hamming_73(benchmark, ppp_73):
    """Simulated-GPU evaluation of the full 2-Hamming neighborhood."""
    neighborhood = TwoHammingNeighborhood(73)
    evaluator = GPUEvaluator(ppp_73, neighborhood)
    solution = ppp_73.random_solution(1)
    fitnesses = benchmark(evaluator.evaluate, solution)
    assert fitnesses.shape == (2628,)
    times = iteration_times(ppp_73, neighborhood)
    benchmark.extra_info["modeled_gpu_s_per_iteration"] = times.gpu_time
    benchmark.extra_info["modeled_acceleration"] = times.speedup


@pytest.mark.benchmark(group="evaluators")
def test_gpu_evaluator_3hamming_73(benchmark, ppp_73):
    """Simulated-GPU evaluation of the full 3-Hamming neighborhood (62 196 moves)."""
    neighborhood = KHammingNeighborhood(73, 3)
    evaluator = GPUEvaluator(ppp_73, neighborhood)
    solution = ppp_73.random_solution(1)
    fitnesses = benchmark.pedantic(evaluator.evaluate, args=(solution,), rounds=3, iterations=1)
    assert fitnesses.shape == (62196,)
    benchmark.extra_info["modeled_acceleration"] = iteration_times(ppp_73, neighborhood).speedup


@pytest.mark.benchmark(group="evaluators-ablation")
def test_ablation_sequential_vs_vectorized(benchmark):
    """Ablation: literal per-neighbor Python loop vs the vectorized batch path."""
    problem = PermutedPerceptronProblem.generate(31, 31, rng=0)
    neighborhood = TwoHammingNeighborhood(31)
    evaluator = SequentialEvaluator(problem, neighborhood)
    solution = problem.random_solution(0)
    reference = CPUEvaluator(problem, neighborhood).evaluate(solution)
    fitnesses = benchmark.pedantic(evaluator.evaluate, args=(solution,), rounds=3, iterations=1)
    assert np.array_equal(fitnesses, reference)


@pytest.mark.benchmark(group="evaluators-ablation")
def test_ablation_per_thread_kernel_interpreter(benchmark):
    """Ablation: the faithful per-thread kernel interpreter (tiny instance)."""
    problem = PermutedPerceptronProblem.generate(15, 15, rng=0)
    neighborhood = TwoHammingNeighborhood(15)
    evaluator = GPUEvaluator(problem, neighborhood, mode=ExecutionMode.PER_THREAD)
    solution = problem.random_solution(0)
    fitnesses = benchmark.pedantic(evaluator.evaluate, args=(solution,), rounds=3, iterations=1)
    assert fitnesses.shape == (neighborhood.size,)


@pytest.mark.benchmark(group="evaluators-ablation")
def test_ablation_multi_gpu_partitioning(benchmark, ppp_73):
    """Ablation: the paper's multi-GPU perspective (4 simulated devices)."""
    neighborhood = KHammingNeighborhood(73, 3)
    single = GPUEvaluator(ppp_73, neighborhood)
    quad = MultiGPUEvaluator(ppp_73, neighborhood, devices=4)
    solution = ppp_73.random_solution(2)

    fitnesses = benchmark.pedantic(quad.evaluate, args=(solution,), rounds=3, iterations=1)
    assert fitnesses.shape == (neighborhood.size,)

    single.evaluate(solution)
    benchmark.extra_info["simulated_time_1_gpu"] = single.stats.simulated_time
    benchmark.extra_info["simulated_time_4_gpu_step"] = quad.stats.simulated_time / quad.stats.calls
    benchmark.extra_info["simulated_multi_gpu_speedup"] = (
        single.stats.simulated_time / (quad.stats.simulated_time / quad.stats.calls)
    )


@pytest.mark.benchmark(group="evaluators-ablation")
def test_ablation_block_size(benchmark, ppp_73):
    """Ablation: thread-block size of the neighborhood kernel (occupancy study)."""
    neighborhood = TwoHammingNeighborhood(73)
    solution = ppp_73.random_solution(3)

    def run_all_block_sizes():
        times = {}
        for block in (32, 64, 128, 256, 512):
            evaluator = GPUEvaluator(ppp_73, neighborhood, block_size=block)
            evaluator.evaluate(solution)
            times[block] = evaluator.stats.simulated_time
        return times

    times = benchmark.pedantic(run_all_block_sizes, rounds=1, iterations=1)
    benchmark.extra_info["simulated_time_by_block_size"] = times


@pytest.mark.benchmark(group="tabu-search")
def test_tabu_search_iteration_cost(benchmark, ppp_73):
    """End-to-end cost of a short tabu-search run (20 iterations, 2-Hamming)."""
    neighborhood = TwoHammingNeighborhood(73)

    def run():
        search = TabuSearch(
            CPUEvaluator(ppp_73, neighborhood), max_iterations=20, target_fitness=-1.0
        )
        return search.run(rng=0)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.iterations == 20
    benchmark.extra_info["best_fitness"] = result.best_fitness
