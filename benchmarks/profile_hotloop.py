"""Profiling harness for the simulator's host-side hot loop.

Runs the paper-protocol batched tabu pipeline (the same workload as
``bench_simspeed``) under ``cProfile`` and prints

* the top functions by cumulative and internal time,
* the wall-clock split measured by the runtime (kernel-body evaluation math
  vs simulator bookkeeping),
* the run's accounting counters (launches, recorded timeline intervals,
  transferred bytes) — the object-churn side of the cost, and
* the fast-path cache counters (move-table / workspace / coupling-index
  hits, misses and evictions) aggregated over every live bounded cache.

This is the tool that identified the PPP scoring math as ~90% of the
pipeline's host wall clock (motivating the precompiled bilinear evaluator)
and the per-transfer interval objects as the dominant bookkeeping cost
(motivating the array-backed timeline accounting).

Usage::

    python benchmarks/profile_hotloop.py [--mode delta] [--trials 50]
        [--iterations 40] [--top 15] [--slow]

``--slow`` disables the precompiled PPP fast path (sets ``REPRO_PPP_FAST=0``
for the run) to profile the reference evaluation instead; ``--recompute``
disables the incremental gain-cache engine (``REPRO_INCREMENTAL=0``) to
profile the full per-iteration recompute.
"""

import argparse
import cProfile
import io
import os
import pstats
import time

from repro.localsearch import TRANSFER_MODES


def profile_run(mode: str, trials: int, iterations: int, top: int) -> None:
    from repro.harness import run_ppp_experiment

    # Warm-up pass: builds the per-problem scorer, kernel move tables and
    # NumPy internals so the profile shows the steady-state loop.
    run_ppp_experiment(
        (73, 73), 2, trials=min(trials, 5), max_iterations=2,
        evaluator_factory="gpu", trial_mode="batched", transfer_mode=mode,
    )

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    row = run_ppp_experiment(
        (73, 73), 2, trials=trials, max_iterations=iterations,
        evaluator_factory="gpu", trial_mode="batched", transfer_mode=mode,
    )
    profiler.disable()
    wall_s = time.perf_counter() - start

    print(f"mode {mode}: {trials} trials, cap {iterations} iterations, "
          f"wall {wall_s:.3f}s")
    overhead = max(0.0, wall_s - row.eval_wall_s)
    print(f"  kernel-body evaluation : {row.eval_wall_s:>8.3f}s "
          f"({row.eval_wall_s / wall_s:.0%})")
    print(f"  simulator bookkeeping  : {overhead:>8.3f}s ({overhead / wall_s:.0%})")
    print(f"  kernel launches {row.kernel_launches}, "
          f"h2d {row.h2d_bytes} B, d2h {row.d2h_bytes} B, "
          f"sim elapsed {row.sim_elapsed_s * 1e3:.2f}ms")

    from repro.problems import cache_stats

    caches = cache_stats()
    total = caches["hits"] + caches["misses"]
    hit_rate = caches["hits"] / total if total else 0.0
    print(f"  fast-path caches: {caches['caches']} live, "
          f"{caches['entries']} entries, {caches['hits']} hits / "
          f"{caches['misses']} misses ({hit_rate:.0%} hit rate), "
          f"{caches['evictions']} evictions")

    for sort in ("cumulative", "tottime"):
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats(sort).print_stats(top)
        print(f"\n--- top {top} by {sort} ---")
        # Drop the pstats preamble; keep the table.
        lines = stream.getvalue().splitlines()
        table_start = next(
            (i for i, line in enumerate(lines) if line.lstrip().startswith("ncalls")), 0
        )
        print("\n".join(lines[table_start:]))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=list(TRANSFER_MODES), default="delta")
    parser.add_argument("--trials", type=int, default=50)
    parser.add_argument("--iterations", type=int, default=40)
    parser.add_argument("--top", type=int, default=15,
                        help="functions to show per table")
    parser.add_argument("--slow", action="store_true",
                        help="profile the reference PPP evaluation "
                             "(REPRO_PPP_FAST=0) instead of the fast path")
    parser.add_argument("--recompute", action="store_true",
                        help="profile the full per-iteration recompute "
                             "(REPRO_INCREMENTAL=0) instead of the "
                             "incremental gain-cache engine")
    args = parser.parse_args()
    if args.slow:
        os.environ["REPRO_PPP_FAST"] = "0"
    if args.recompute:
        os.environ["REPRO_INCREMENTAL"] = "0"
    profile_run(args.mode, args.trials, args.iterations, args.top)


if __name__ == "__main__":
    main()
