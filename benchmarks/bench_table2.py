"""Benchmark: regeneration of Table II (2-Hamming tabu search on the PPP)."""

import pytest

from repro.harness import format_experiment_table, run_ppp_experiment, table_two


@pytest.mark.benchmark(group="table2")
def test_table2_single_row(benchmark, bench_scale):
    """One row of Table II: one instance, `trials` tabu-search runs."""
    spec = bench_scale.table_instances[0]

    def run_row():
        return run_ppp_experiment(
            spec,
            2,
            trials=bench_scale.trials,
            max_iterations=bench_scale.iteration_cap(spec, 2),
        )

    row = benchmark.pedantic(run_row, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(row.as_dict())
    assert row.num_trials == bench_scale.trials


@pytest.mark.benchmark(group="table2")
def test_table2_full(benchmark, bench_scale):
    """The complete Table II regeneration at the selected scale."""
    rows = benchmark.pedantic(lambda: table_two(bench_scale), rounds=1, iterations=1,
                              warmup_rounds=0)
    benchmark.extra_info["table"] = format_experiment_table(
        rows, title=f"Table II ({bench_scale.name} scale)"
    )
    assert len(rows) == len(bench_scale.table_instances)
    # Paper shape: the 2-Hamming acceleration grows with the instance size
    # (x9.9 -> x18.5 on the literature instances; the scaled-down smoke
    # instances sit much lower but must show the same trend and end above
    # parity).
    accelerations = [r.acceleration for r in rows]
    assert accelerations[-1] > accelerations[0]
    assert accelerations[-1] > 1.0
