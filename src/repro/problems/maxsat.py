"""Random Max-k-SAT as an additional binary workload.

The paper's methodology is independent of the objective function: any binary
problem can plug its ``compute_fitness`` into the neighborhood kernels.
Max-SAT is the canonical such problem and is used by the examples to show
the library on a non-cryptographic workload.
"""

from __future__ import annotations

import numpy as np

from .base import BinaryProblem, as_solution

__all__ = ["MaxSat", "generate_random_ksat"]


def generate_random_ksat(
    num_vars: int,
    num_clauses: int,
    k: int = 3,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a uniform random k-SAT formula.

    Returns ``(variables, signs)``: two ``(num_clauses, k)`` arrays where
    ``variables[c, l]`` is the variable index of literal ``l`` of clause
    ``c`` and ``signs[c, l]`` is +1 for a positive literal, -1 for a negated
    one.  Variables within a clause are distinct.
    """
    if num_vars < k:
        raise ValueError(f"need at least k={k} variables, got {num_vars}")
    if num_clauses <= 0:
        raise ValueError(f"num_clauses must be positive, got {num_clauses}")
    rng = np.random.default_rng(rng)
    variables = np.empty((num_clauses, k), dtype=np.int64)
    for c in range(num_clauses):
        variables[c] = rng.choice(num_vars, size=k, replace=False)
    signs = rng.choice(np.array([-1, 1], dtype=np.int8), size=(num_clauses, k))
    return variables, signs


class MaxSat(BinaryProblem):
    """Minimize the number of unsatisfied clauses of a CNF formula."""

    name = "maxsat"

    def __init__(self, num_vars: int, variables: np.ndarray, signs: np.ndarray) -> None:
        variables = np.asarray(variables, dtype=np.int64)
        signs = np.asarray(signs, dtype=np.int8)
        if variables.shape != signs.shape or variables.ndim != 2:
            raise ValueError("variables and signs must be (num_clauses, k) arrays of equal shape")
        if variables.size and (variables.min() < 0 or variables.max() >= num_vars):
            raise ValueError("clause variable index out of range")
        if signs.size and not np.all(np.isin(signs, (-1, 1))):
            raise ValueError("signs must be +/-1")
        self.n = int(num_vars)
        self.variables = variables
        self.signs = signs
        self.num_clauses, self.k_literals = map(int, variables.shape)

    @classmethod
    def random(
        cls,
        num_vars: int,
        num_clauses: int,
        k: int = 3,
        rng: np.random.Generator | int | None = None,
    ) -> "MaxSat":
        variables, signs = generate_random_ksat(num_vars, num_clauses, k, rng)
        return cls(num_vars, variables, signs)

    # ------------------------------------------------------------------
    def _unsatisfied(self, solutions: np.ndarray) -> np.ndarray:
        """Count unsatisfied clauses for a ``(batch, n)`` array of assignments."""
        # literal value: x if sign=+1 else (1-x)
        lit_vars = solutions[:, self.variables]  # (batch, clauses, k)
        lit_true = np.where(self.signs[None, :, :] == 1, lit_vars, 1 - lit_vars)
        clause_sat = lit_true.any(axis=2)
        return (~clause_sat).sum(axis=1)

    def evaluate(self, solution: np.ndarray) -> float:
        solution = as_solution(solution, self.n)
        return float(self._unsatisfied(solution[None, :])[0])

    def evaluate_batch(self, solutions: np.ndarray) -> np.ndarray:
        solutions = np.asarray(solutions, dtype=np.int8)
        if solutions.ndim != 2 or solutions.shape[1] != self.n:
            raise ValueError(f"expected a (batch, {self.n}) array, got {solutions.shape}")
        return self._unsatisfied(solutions).astype(np.float64)

    def evaluate_neighborhood_batch(self, solutions, moves) -> np.ndarray:
        # Vectorized over the solution axis: flipped assignment blocks for all
        # replicas are scored through the clause tables at once.  The row
        # budget bounds the (rows, clauses, k) literal tensor.
        budget = max(64, 2_097_152 // max(1, self.num_clauses * self.k_literals))
        return self._evaluate_neighborhood_batch_by_flips(solutions, moves, row_budget=budget)

    def cost_profile(self, k: int = 1) -> dict[str, float]:
        # Full re-evaluation over all clauses per neighbor (no incremental
        # structure maintained here).
        flops = 3.0 * self.num_clauses * self.k_literals
        mem_bytes = 8.0 * self.num_clauses * self.k_literals
        return {"flops": flops, "bytes": mem_bytes}
