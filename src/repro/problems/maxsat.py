"""Random Max-k-SAT as an additional binary workload.

The paper's methodology is independent of the objective function: any binary
problem can plug its ``compute_fitness`` into the neighborhood kernels.
Max-SAT is the canonical such problem and is used by the examples to show
the library on a non-cryptographic workload.  For k<=2 move tables a
clause-incidence delta scorer (:class:`_MaxSatFastScorer`) replaces the
flip-and-recount reference path with per-variable break/make counts plus a
shared-clause pair correction.
"""

from __future__ import annotations

import numpy as np

from .base import BinaryProblem, as_solution
from .fastpath import MoveTableCache, fast_path_enabled, validated_pair_columns

__all__ = ["MaxSat", "generate_random_ksat"]

#: Environment kill switch for the clause-incidence delta evaluator: set
#: ``REPRO_MAXSAT_FAST=0`` to force the flip-and-recount reference path.
_FAST_ENV = "REPRO_MAXSAT_FAST"


def generate_random_ksat(
    num_vars: int,
    num_clauses: int,
    k: int = 3,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a uniform random k-SAT formula.

    Returns ``(variables, signs)``: two ``(num_clauses, k)`` arrays where
    ``variables[c, l]`` is the variable index of literal ``l`` of clause
    ``c`` and ``signs[c, l]`` is +1 for a positive literal, -1 for a negated
    one.  Variables within a clause are distinct.
    """
    if num_vars < k:
        raise ValueError(f"need at least k={k} variables, got {num_vars}")
    if num_clauses <= 0:
        raise ValueError(f"num_clauses must be positive, got {num_clauses}")
    rng = np.random.default_rng(rng)
    variables = np.empty((num_clauses, k), dtype=np.int64)
    for c in range(num_clauses):
        variables[c] = rng.choice(num_vars, size=k, replace=False)
    signs = rng.choice(np.array([-1, 1], dtype=np.int8), size=(num_clauses, k))
    return variables, signs


class _MaxSatFastMoveTable:
    """Preprocessed view of one validated ``(M, k<=2)`` move array.

    For 2-bit moves the table also carries the flattened *shared-clause*
    entries: every (move, clause) pair where the clause contains both flipped
    variables, in move order, with ``np.add.reduceat`` segment offsets.
    """

    __slots__ = (
        "moves",
        "num_moves",
        "cols_i",
        "cols_j",
        "ent_clause",
        "ent_var_u",
        "ent_var_v",
        "ent_pos_u",
        "ent_pos_v",
        "red_idx",
        "nz_moves",
        "num_entries",
    )

    def __init__(self, moves: np.ndarray, cols_i: np.ndarray, cols_j: np.ndarray | None) -> None:
        self.moves = moves
        self.num_moves = int(moves.shape[0])
        self.cols_i = cols_i
        self.cols_j = cols_j
        self.num_entries = 0
        self.ent_clause = None
        self.ent_var_u = None
        self.ent_var_v = None
        self.ent_pos_u = None
        self.ent_pos_v = None
        self.red_idx = None
        self.nz_moves = None


class _MaxSatFastScorer:
    """Clause-incidence delta evaluator for k<=2 flips.

    Per replica, one pass over the formula yields the true-literal count
    ``t_c`` of every clause and the base fitness ``sum(t_c == 0)``.  Flipping
    variable ``v`` then breaks exactly the clauses where ``v``'s literal is
    currently the only true one (``t_c == 1``) and repairs exactly the
    currently-unsatisfied clauses where it appears (``t_c == 0``)::

        delta1[v] = #(lit true & t == 1) - #(lit false & t == 0)

    computed for all variables at once through a padded per-variable clause
    incidence table.  A 2-bit flip adds ``delta1[u] + delta1[v]`` plus an
    inclusion-exclusion correction over the clauses containing *both*
    variables (precomputed per move table from a globally sorted var-pair
    index).  Every quantity is a small integer, so the result is bit-for-bit
    the flip-and-recount reference evaluation.

    Exactness requires distinct variables within each clause (a repeated
    variable breaks the +-1 literal-count model); instances violating that
    disable the fast path entirely.  Moves repeating an index are rejected
    per table (the reference buffers the flip, a double flip is a no-op).
    """

    #: Fall back to the reference path when one call's scratch tensors (the
    #: literal table, the incidence gathers and the pair-correction entries)
    #: would exceed this.
    WORKSPACE_LIMIT = 256 * 1024 * 1024

    def __init__(self, problem: "MaxSat") -> None:
        self.n = problem.n
        self.num_clauses = problem.num_clauses
        self.k_literals = problem.k_literals
        self.variables = problem.variables
        self.pos = (problem.signs == 1).astype(np.int8)  # 1 = positive literal
        kl = self.k_literals
        if kl >= 2 and self.num_clauses:
            srt = np.sort(self.variables, axis=1)
            self.exact = not bool((srt[:, 1:] == srt[:, :-1]).any())
        else:
            self.exact = True
        if self.exact:
            self._build_incidence()
            self._build_pair_index()
        self._tables = MoveTableCache(self._build_table, maxsize=8)

    # -- static preprocessing -------------------------------------------
    def _build_incidence(self) -> None:
        """Padded per-variable (clause, polarity) incidence ``(n, L)`` table.

        Pad entries point at a sentinel clause (index ``num_clauses``, whose
        true-literal count is forced to -1) with polarity 2 (never equal to a
        0/1 assignment), so they contribute to neither the break nor the make
        count.
        """
        flat_vars = self.variables.ravel()
        flat_pos = self.pos.ravel()
        flat_clause = np.repeat(np.arange(self.num_clauses, dtype=np.int64), self.k_literals)
        counts = np.bincount(flat_vars, minlength=self.n) if flat_vars.size else np.zeros(
            self.n, dtype=np.int64
        )
        self.max_occ = int(counts.max()) if counts.size else 0
        occ_clause = np.full((self.n, self.max_occ), self.num_clauses, dtype=np.int64)
        occ_pos = np.full((self.n, self.max_occ), 2, dtype=np.int8)
        if flat_vars.size:
            order = np.argsort(flat_vars, kind="stable")
            sv = flat_vars[order]
            starts = np.zeros(self.n, dtype=np.int64)
            np.cumsum(counts[:-1], out=starts[1:])
            slot = np.arange(sv.size, dtype=np.int64) - starts[sv]
            occ_clause[sv, slot] = flat_clause[order]
            occ_pos[sv, slot] = flat_pos[order]
        self.occ_clause = occ_clause
        self.occ_pos = occ_pos

    def _build_pair_index(self) -> None:
        """Sorted global index of (variable pair) -> shared clause entries."""
        kl = self.k_literals
        iu, il = np.triu_indices(kl, 1)
        if iu.size == 0 or self.num_clauses == 0:
            self._pair_keys = np.empty(0, dtype=np.int64)
            self._pair_clause = np.empty(0, dtype=np.int64)
            self._pair_var_u = np.empty(0, dtype=np.int64)
            self._pair_var_v = np.empty(0, dtype=np.int64)
            self._pair_pos_u = np.empty(0, dtype=np.int8)
            self._pair_pos_v = np.empty(0, dtype=np.int8)
            return
        U = self.variables[:, iu].ravel()
        V = self.variables[:, il].ravel()
        PU = self.pos[:, iu].ravel()
        PV = self.pos[:, il].ravel()
        CL = np.repeat(np.arange(self.num_clauses, dtype=np.int64), iu.size)
        swap = U > V
        u = np.where(swap, V, U)
        v = np.where(swap, U, V)
        pu = np.where(swap, PV, PU)
        pv = np.where(swap, PU, PV)
        key = u * self.n + v
        order = np.argsort(key, kind="stable")
        self._pair_keys = key[order]
        self._pair_clause = CL[order]
        self._pair_var_u = u[order]
        self._pair_var_v = v[order]
        self._pair_pos_u = pu[order].astype(np.int8)
        self._pair_pos_v = pv[order].astype(np.int8)

    # -- per-move-table preprocessing -----------------------------------
    def _build_table(self, moves: np.ndarray) -> _MaxSatFastMoveTable | None:
        cols = validated_pair_columns(moves, self.n, allow_duplicates=False)
        if cols is None:
            return None
        cols_i, cols_j = cols
        table = _MaxSatFastMoveTable(moves, cols_i, cols_j)
        if cols_j is None or self._pair_keys.size == 0:
            return table
        mu = np.minimum(cols_i, cols_j)
        mv = np.maximum(cols_i, cols_j)
        mkey = mu * self.n + mv
        lo = np.searchsorted(self._pair_keys, mkey, side="left")
        hi = np.searchsorted(self._pair_keys, mkey, side="right")
        counts = hi - lo
        total = int(counts.sum())
        table.num_entries = total
        if total == 0:
            return table
        offsets = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        ids = np.arange(total, dtype=np.int64) + np.repeat(lo - offsets[:-1], counts)
        table.ent_clause = self._pair_clause[ids]
        table.ent_var_u = self._pair_var_u[ids]
        table.ent_var_v = self._pair_var_v[ids]
        table.ent_pos_u = self._pair_pos_u[ids]
        table.ent_pos_v = self._pair_pos_v[ids]
        nz = counts > 0
        table.red_idx = offsets[:-1][nz]
        table.nz_moves = np.flatnonzero(nz)
        return table

    def move_table(self, moves: np.ndarray) -> _MaxSatFastMoveTable | None:
        """Validated, preprocessed view of ``moves`` (``None`` if the fast
        path cannot score them — k > 2, duplicate or out-of-range bits)."""
        return self._tables.lookup(moves)

    def workspace_bytes(self, num_solutions: int, num_moves: int) -> int:
        """Scratch footprint of one call (literal, incidence, entry tensors)."""
        per_row = (
            5 * self.num_clauses * self.k_literals  # literal table + counts
            + 6 * self.n * max(1, self.max_occ)  # incidence gathers
            + 8 * num_moves  # output block
        )
        return num_solutions * per_row

    def evaluate(
        self,
        solutions: np.ndarray,
        table: _MaxSatFastMoveTable,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Score every (replica, move) pair: the ``(S, M)`` fitness matrix."""
        num_solutions = solutions.shape[0]
        # True-literal count of every clause, with a sentinel column (-1)
        # that the padded incidence entries point at.
        lit_true = solutions[:, self.variables] == self.pos[None, :, :]
        t_pad = np.full((num_solutions, self.num_clauses + 1), -1, dtype=np.int32)
        t = t_pad[:, : self.num_clauses]
        lit_true.sum(axis=2, dtype=np.int32, out=t)
        base = (t == 0).sum(axis=1, dtype=np.int64)  # (S,) unsatisfied clauses
        # Per-variable flip deltas: break (only true literal) minus make
        # (currently unsatisfied clause).
        tc = t_pad[:, self.occ_clause]  # (S, n, L)
        lit_occ = solutions[:, :, None] == self.occ_pos[None, :, :]
        delta1 = (lit_occ & (tc == 1)).sum(axis=2, dtype=np.int64)
        delta1 -= (~lit_occ & (tc == 0)).sum(axis=2, dtype=np.int64)
        res = base[:, None] + delta1[:, table.cols_i]
        if table.cols_j is not None:
            res += delta1[:, table.cols_j]
            if table.num_entries:
                # Inclusion-exclusion over clauses containing both variables.
                t_e = t[:, table.ent_clause].astype(np.int64)  # (S, E)
                du = np.where(solutions[:, table.ent_var_u] == table.ent_pos_u, -1, 1)
                dv = np.where(solutions[:, table.ent_var_v] == table.ent_pos_v, -1, 1)
                corr = (t_e + du + dv == 0).astype(np.int64)
                corr -= t_e + du == 0
                corr -= t_e + dv == 0
                corr += t_e == 0
                seg = np.add.reduceat(corr, table.red_idx, axis=1)
                res[:, table.nz_moves] += seg
        if out is None:
            return res.astype(np.float64)
        np.copyto(out, res, casting="unsafe")
        return out


class MaxSat(BinaryProblem):
    """Minimize the number of unsatisfied clauses of a CNF formula."""

    name = "maxsat"

    def __init__(self, num_vars: int, variables: np.ndarray, signs: np.ndarray) -> None:
        variables = np.asarray(variables, dtype=np.int64)
        signs = np.asarray(signs, dtype=np.int8)
        if variables.shape != signs.shape or variables.ndim != 2:
            raise ValueError("variables and signs must be (num_clauses, k) arrays of equal shape")
        if variables.size and (variables.min() < 0 or variables.max() >= num_vars):
            raise ValueError("clause variable index out of range")
        if signs.size and not np.all(np.isin(signs, (-1, 1))):
            raise ValueError("signs must be +/-1")
        self.n = int(num_vars)
        self.variables = variables
        self.signs = signs
        self.num_clauses, self.k_literals = map(int, variables.shape)
        # Clause-incidence delta evaluator: built lazily on first use,
        # disabled via REPRO_MAXSAT_FAST or when a clause repeats a variable
        # (which breaks the +-1 literal-count model the scorer relies on).
        self._fast_scorer: _MaxSatFastScorer | None = None
        self._fast_enabled = fast_path_enabled(_FAST_ENV)

    def _fast(self) -> _MaxSatFastScorer | None:
        if not self._fast_enabled:
            return None
        if self._fast_scorer is None:
            scorer = _MaxSatFastScorer(self)
            if not scorer.exact:
                self._fast_enabled = False
                return None
            self._fast_scorer = scorer
        return self._fast_scorer

    @classmethod
    def random(
        cls,
        num_vars: int,
        num_clauses: int,
        k: int = 3,
        rng: np.random.Generator | int | None = None,
    ) -> "MaxSat":
        variables, signs = generate_random_ksat(num_vars, num_clauses, k, rng)
        return cls(num_vars, variables, signs)

    # ------------------------------------------------------------------
    def _unsatisfied(self, solutions: np.ndarray) -> np.ndarray:
        """Count unsatisfied clauses for a ``(batch, n)`` array of assignments."""
        # literal value: x if sign=+1 else (1-x)
        lit_vars = solutions[:, self.variables]  # (batch, clauses, k)
        lit_true = np.where(self.signs[None, :, :] == 1, lit_vars, 1 - lit_vars)
        clause_sat = lit_true.any(axis=2)
        return (~clause_sat).sum(axis=1)

    def evaluate(self, solution: np.ndarray) -> float:
        solution = as_solution(solution, self.n)
        return float(self._unsatisfied(solution[None, :])[0])

    def evaluate_batch(self, solutions: np.ndarray) -> np.ndarray:
        solutions = np.asarray(solutions, dtype=np.int8)
        if solutions.ndim != 2 or solutions.shape[1] != self.n:
            raise ValueError(f"expected a (batch, {self.n}) array, got {solutions.shape}")
        return self._unsatisfied(solutions).astype(np.float64)

    def evaluate_neighborhood_batch(self, solutions, moves, *, out=None) -> np.ndarray:
        """Vectorized (replica, move) scoring with delta fast path.

        Dispatches to the clause-incidence scorer (:class:`_MaxSatFastScorer`)
        for qualifying k<=2 move tables — bit-identical to, and much cheaper
        than, the flip-and-recount reference path used for everything else.
        ``REPRO_MAXSAT_FAST=0`` forces the reference path.  ``out``, when
        given, must be a ``(S, M)`` float64 array and is written in place.
        """
        solutions, moves = self._check_batch_args(solutions, moves)
        sharded = self._dispatch_host_pool(solutions, moves, out)
        if sharded is not None:
            return sharded
        incremental = self._dispatch_gain_engine(solutions, moves, out)
        if incremental is not None:
            return incremental
        num_solutions = solutions.shape[0]
        num_moves = moves.shape[0]
        scorer = self._fast()
        if scorer is not None and num_solutions and num_moves:
            if scorer.workspace_bytes(num_solutions, num_moves) <= scorer.WORKSPACE_LIMIT:
                table = scorer.move_table(moves)
                if table is not None:
                    return scorer.evaluate(solutions, table, out=out)
        return self._evaluate_neighborhood_batch_reference(solutions, moves, out=out)

    def _evaluate_neighborhood_batch_reference(self, solutions, moves, *, out=None) -> np.ndarray:
        """Flip-and-recount ground truth for every move table.

        Vectorized over the solution axis: flipped assignment blocks for all
        replicas are scored through the clause tables at once.  The row
        budget bounds the (rows, clauses, k) literal tensor.
        """
        budget = max(64, 2_097_152 // max(1, self.num_clauses * self.k_literals))
        return self._evaluate_neighborhood_batch_by_flips(
            solutions, moves, row_budget=budget, out=out
        )

    def cost_profile(self, k: int = 1) -> dict[str, float]:
        # Full re-evaluation over all clauses per neighbor (no incremental
        # structure maintained here).
        flops = 3.0 * self.num_clauses * self.k_literals
        mem_bytes = 8.0 * self.num_clauses * self.k_literals
        return {"flops": flops, "bytes": mem_bytes}
