"""Binary optimization problem interface.

The paper restricts itself to *binary problems*: a candidate solution is a
vector of ``n`` binary values and neighborhoods are defined through the
Hamming distance.  :class:`BinaryProblem` is the contract every workload in
this repository implements; it deliberately exposes a *batch* evaluation
entry point (``evaluate_neighborhood``) because that is the unit of work the
GPU kernels — and their vectorized CPU equivalents — operate on.

Solutions are represented as NumPy ``int8`` arrays of zeros and ones.  A
*move* is a tuple/array of bit positions to flip, and a batch of moves is an
``(num_moves, k)`` integer array (the output of
:meth:`repro.mappings.MoveMapping.from_flat_batch`).
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

import numpy as np

__all__ = ["BinaryProblem", "as_solution", "flip_bits"]

#: Default chunk size (number of neighbors materialised at once) used by the
#: generic neighborhood evaluator to bound peak memory.
DEFAULT_CHUNK = 16_384


def as_solution(bits: Iterable[int] | np.ndarray, n: int | None = None) -> np.ndarray:
    """Coerce ``bits`` to a canonical solution vector (1-D ``int8`` of 0/1)."""
    arr = np.asarray(bits, dtype=np.int8).ravel()
    if n is not None and arr.size != n:
        raise ValueError(f"expected a solution of length {n}, got {arr.size}")
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("solution vector must contain only 0/1 values")
    return arr


def flip_bits(solution: np.ndarray, move: Sequence[int]) -> np.ndarray:
    """Return a copy of ``solution`` with the bits listed in ``move`` flipped."""
    out = solution.copy()
    idx = np.asarray(move, dtype=np.int64)
    out[idx] ^= 1
    return out


class BinaryProblem(abc.ABC):
    """A minimization problem over fixed-length binary strings.

    Attributes
    ----------
    n:
        Length of the solution vector.
    name:
        Human-readable problem name used by the experiment harness.
    """

    #: Set by concrete subclasses.
    n: int
    name: str = "binary-problem"

    #: Host-parallel worker pool the batch evaluation dispatches to, attached
    #: by :func:`repro.parallel.host_parallel` for the duration of a lockstep
    #: run (``None`` everywhere else, including inside the workers).
    _host_pool = None

    #: Incremental gain-cache engine (:mod:`repro.problems.incremental`),
    #: attached by the search loops for the duration of one run.
    _gain_engine = None

    # ------------------------------------------------------------------
    # Required interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def evaluate(self, solution: np.ndarray) -> float:
        """Full (from scratch) evaluation of one solution; lower is better."""

    # ------------------------------------------------------------------
    # Batch interface with generic fallbacks
    # ------------------------------------------------------------------
    def evaluate_batch(self, solutions: np.ndarray) -> np.ndarray:
        """Evaluate a ``(batch, n)`` array of solutions.

        The generic fallback loops over :meth:`evaluate`; workloads with a
        natural vectorized form override it.
        """
        solutions = np.asarray(solutions, dtype=np.int8)
        if solutions.ndim != 2 or solutions.shape[1] != self.n:
            raise ValueError(f"expected a (batch, {self.n}) array, got {solutions.shape}")
        return np.array([self.evaluate(row) for row in solutions], dtype=np.float64)

    def evaluate_neighborhood(
        self,
        solution: np.ndarray,
        moves: np.ndarray,
        *,
        chunk: int = DEFAULT_CHUNK,
    ) -> np.ndarray:
        """Fitness of every neighbor reached from ``solution`` by ``moves``.

        ``moves`` is an ``(num_moves, k)`` integer array of bit positions to
        flip.  The generic implementation materialises flipped copies in
        chunks and calls :meth:`evaluate_batch`; problems providing
        incremental (delta) evaluation override this with a much cheaper
        computation — this is the code path that corresponds to the paper's
        per-thread ``compute_fitness`` kernels.
        """
        solution = as_solution(solution, self.n)
        moves = np.asarray(moves, dtype=np.int64)
        if moves.ndim != 2:
            raise ValueError(f"expected an (num_moves, k) move array, got {moves.shape}")
        incremental = self._dispatch_gain_engine_scalar(solution, moves)
        if incremental is not None:
            return incremental
        num_moves = moves.shape[0]
        out = np.empty(num_moves, dtype=np.float64)
        for start in range(0, num_moves, chunk):
            stop = min(start + chunk, num_moves)
            block = moves[start:stop]
            flipped = np.repeat(solution[None, :], block.shape[0], axis=0)
            rows = np.arange(block.shape[0])[:, None]
            flipped[rows, block] ^= 1
            out[start:stop] = self.evaluate_batch(flipped)
        return out

    def delta_evaluate(self, solution: np.ndarray, move: Sequence[int]) -> float:
        """Fitness of the single neighbor reached by ``move`` (scalar path)."""
        return float(
            self.evaluate_neighborhood(solution, np.asarray(move, dtype=np.int64)[None, :])[0]
        )

    # ------------------------------------------------------------------
    # Solution-parallel batch interface
    # ------------------------------------------------------------------
    def _check_batch_args(
        self, solutions: np.ndarray, moves: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Validate and coerce an ``(S, n)`` solution block and ``(M, k)`` moves."""
        solutions = np.asarray(solutions, dtype=np.int8)
        if solutions.ndim != 2 or solutions.shape[1] != self.n:
            raise ValueError(f"expected an (S, {self.n}) solution block, got {solutions.shape}")
        moves = np.asarray(moves, dtype=np.int64)
        if moves.ndim != 2:
            raise ValueError(f"expected an (num_moves, k) move array, got {moves.shape}")
        return solutions, moves

    def evaluate_neighborhood_batch(
        self,
        solutions: np.ndarray,
        moves: np.ndarray,
        *,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fitness of every neighbor of every solution: an ``(S, M)`` matrix.

        ``solutions`` is an ``(S, n)`` block of candidate solutions (one
        independent search replica per row) and ``moves`` an ``(M, k)`` array
        of bit positions to flip; entry ``[s, j]`` of the result is the
        fitness of ``solutions[s]`` with ``moves[j]`` applied.  This is the
        unit of work of the solution-parallel execution engine: one batched
        GPU launch evaluates all ``S x M`` (replica, neighbor) pairs.
        ``out``, when given, must be an ``(S, M)`` float64 array and is
        written in place.

        The generic fallback applies the (already chunked)
        :meth:`evaluate_neighborhood` row by row; workloads with a
        broadcastable delta evaluation override it with a computation that is
        vectorized over the solution axis as well.
        """
        solutions, moves = self._check_batch_args(solutions, moves)
        sharded = self._dispatch_host_pool(solutions, moves, out)
        if sharded is not None:
            return sharded
        incremental = self._dispatch_gain_engine(solutions, moves, out)
        if incremental is not None:
            return incremental
        if out is None:
            out = np.empty((solutions.shape[0], moves.shape[0]), dtype=np.float64)
        for s in range(solutions.shape[0]):
            out[s] = self.evaluate_neighborhood(solutions[s], moves)
        return out

    def _dispatch_host_pool(
        self,
        solutions: np.ndarray,
        moves: np.ndarray,
        out: np.ndarray | None,
    ) -> np.ndarray | None:
        """Shard this batch across the attached host worker pool, if any.

        Returns ``None`` when no pool is attached or the pool declines the
        call (shards too small to pay off, writable move table, capacity
        exceeded) — the caller then evaluates locally.  Every concrete
        ``evaluate_neighborhood_batch`` consults this hook right after
        argument validation, so the sharded and local paths share one entry
        point on every problem.
        """
        pool = self._host_pool
        if pool is None:
            return None
        return pool.try_evaluate(self, solutions, moves, out=out)

    def _dispatch_gain_engine(
        self,
        solutions: np.ndarray,
        moves: np.ndarray,
        out: np.ndarray | None,
    ) -> np.ndarray | None:
        """Serve this batch from the attached incremental gain cache, if any.

        Returns ``None`` when no engine is attached or the engine declines
        (no expected-row declaration, unbound/foreign move table, oversized
        scratch) — the caller then recomputes, which is bit-identical.
        Concrete ``evaluate_neighborhood_batch`` implementations consult this
        hook right after the host-pool dispatch.
        """
        engine = self._gain_engine
        if engine is None:
            return None
        return engine.try_evaluate(solutions, moves, out)

    def _dispatch_gain_engine_scalar(
        self, solution: np.ndarray, moves: np.ndarray
    ) -> np.ndarray | None:
        """Single-replica (S=1) variant of :meth:`_dispatch_gain_engine`.

        The scalar search loop maintains the same engine through a one-row
        mirror; scalar ``evaluate_neighborhood`` overrides consult this hook
        right after argument validation, ahead of their own delta evaluation.
        """
        engine = self._gain_engine
        if engine is None:
            return None
        served = engine.try_evaluate(solution[None, :], moves, None)
        if served is None:
            return None
        return served[0]

    def __getstate__(self) -> dict:
        """Pickle without process-local state (worker pools, lazy scorers).

        The host-parallel layer ships problems to worker processes; the
        attached pool must not travel with them (workers evaluate locally),
        and lazily built fast scorers hold identity-keyed caches whose keys
        are meaningless in another process — they are rebuilt on first use.
        """
        state = dict(self.__dict__)
        state.pop("_host_pool", None)
        state.pop("_gain_engine", None)
        if state.get("_fast_scorer") is not None:
            state["_fast_scorer"] = None
        return state

    def _evaluate_neighborhood_batch_by_flips(
        self,
        solutions: np.ndarray,
        moves: np.ndarray,
        *,
        row_budget: int = DEFAULT_CHUNK,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized batch fallback for problems without incremental evaluation.

        Materialises the flipped ``(S * chunk, n)`` neighbor blocks (chunking
        the move axis so at most ``row_budget`` rows exist at once) and scores
        them with :meth:`evaluate_batch` — no Python loop over the replicas.
        """
        solutions, moves = self._check_batch_args(solutions, moves)
        num_solutions, _ = solutions.shape
        num_moves = moves.shape[0]
        if out is None:
            out = np.empty((num_solutions, num_moves), dtype=np.float64)
        if num_solutions == 0 or num_moves == 0:
            return out
        chunk = max(1, row_budget // num_solutions)
        for start in range(0, num_moves, chunk):
            block = moves[start : start + chunk]
            c = block.shape[0]
            flipped = np.repeat(solutions[:, None, :], c, axis=1)  # (S, c, n)
            flipped[:, np.arange(c)[:, None], block] ^= 1
            scores = self.evaluate_batch(flipped.reshape(num_solutions * c, self.n))
            out[:, start : start + c] = scores.reshape(num_solutions, c)
        return out

    # ------------------------------------------------------------------
    # Helpers shared by all workloads
    # ------------------------------------------------------------------
    def random_solution(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Draw a uniform random solution vector."""
        rng = np.random.default_rng(rng)
        return rng.integers(0, 2, size=self.n, dtype=np.int8)

    def is_solution(self, fitness: float) -> bool:
        """Whether a fitness value certifies a *successful* solution.

        The PPP (and the other satisfiability-flavoured workloads) use
        ``fitness == 0``; purely continuous landscapes return ``False`` so
        that the harness counts no "successful tries" for them.
        """
        return fitness == 0

    def cost_profile(self, k: int = 1) -> dict[str, float]:
        """Approximate per-neighbor evaluation cost, used by the GPU/CPU timing model.

        Parameters
        ----------
        k:
            Hamming distance of the moves being evaluated (incremental
            evaluation cost usually grows with the number of flipped bits).

        Returns a dictionary with ``flops`` (arithmetic operations) and
        ``bytes`` (global-memory traffic) per evaluated neighbor.  The
        default assumes a full re-evaluation touching the whole solution
        vector once.
        """
        del k  # the generic full re-evaluation does not depend on it
        return {"flops": float(4 * self.n), "bytes": float(8 * self.n)}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(n={self.n})"
