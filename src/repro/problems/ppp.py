"""The Permuted Perceptron Problem (PPP).

The PPP is the cryptographic identification scheme of Pointcheval (EUROCRYPT
1995) that the paper uses to validate its GPU neighborhood exploration.  An
*epsilon-matrix* ``A`` (entries in {-1, +1}) of size ``m x n`` and a multiset
``S`` of non-negative integers of size ``m`` are public; the secret is an
epsilon-vector ``V`` of size ``n`` such that the multiset of the entries of
``A V`` equals ``S``.

Following Knudsen & Meier (EUROCRYPT 1999) — the reference the paper quotes —
candidate solutions ``V'`` are scored with::

    f(V') = 30 * sum_i (|(A V')_i| - (A V')_i)  +  sum_i |H_i - H'_i|

where ``H`` is the value histogram of the secret product ``A V`` (derived
from ``S``) and ``H'`` the histogram of ``A V'``.  ``f(V') == 0`` certifies a
successful attack.  This is a pure minimization problem over binary strings,
with the {0,1} encoding mapped to the {-1,+1} epsilon encoding by
``V = 2 b - 1``.
"""

from __future__ import annotations

import numpy as np

from .base import BinaryProblem, as_solution

__all__ = ["PermutedPerceptronProblem", "generate_ppp_instance"]

#: Weight of the sign-violation term in the Knudsen–Meier objective.
SIGN_PENALTY_WEIGHT = 30


def generate_ppp_instance(
    m: int,
    n: int,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate a random PPP instance with a planted secret.

    Follows the construction used in the cryptographic literature: draw a
    uniform random epsilon-matrix ``A`` and epsilon-vector ``V``; whenever a
    row of ``A V`` is negative, negate that row of ``A`` so that the secret
    satisfies the perceptron constraints ``(A V)_j >= 0``.  The public
    multiset ``S`` is then the resulting vector ``A V``.

    Returns
    -------
    (A, S, secret_bits):
        ``A`` is an ``(m, n)`` int8 matrix of +/-1, ``S`` the length-``m``
        vector of products and ``secret_bits`` the planted secret in the
        {0,1} encoding (``fitness == 0`` by construction).
    """
    if m <= 0 or n <= 0:
        raise ValueError(f"instance dimensions must be positive, got m={m}, n={n}")
    rng = np.random.default_rng(rng)
    A = rng.choice(np.array([-1, 1], dtype=np.int8), size=(m, n))
    V = rng.choice(np.array([-1, 1], dtype=np.int32), size=n)
    Y = A.astype(np.int32) @ V
    negative = Y < 0
    A[negative] = -A[negative]
    Y = np.abs(Y)
    secret_bits = ((V + 1) // 2).astype(np.int8)
    return A, Y.astype(np.int32), secret_bits


class PermutedPerceptronProblem(BinaryProblem):
    """Knudsen–Meier objective for the Permuted Perceptron Problem.

    Parameters
    ----------
    A:
        Public epsilon-matrix of shape ``(m, n)`` with entries in {-1, +1}.
    S:
        Public multiset of the ``m`` products ``(A V)_j`` of the secret, as a
        1-D array (order is irrelevant; only the value histogram is used).
    secret:
        Optional planted secret in the {0,1} encoding, kept only for testing
        and verification purposes (never used by the objective).
    """

    name = "ppp"

    def __init__(
        self,
        A: np.ndarray,
        S: np.ndarray,
        secret: np.ndarray | None = None,
    ) -> None:
        A = np.asarray(A)
        if A.ndim != 2:
            raise ValueError(f"A must be a 2-D matrix, got shape {A.shape}")
        if not np.all(np.isin(A, (-1, 1))):
            raise ValueError("A must be an epsilon-matrix with entries in {-1, +1}")
        S = np.asarray(S, dtype=np.int64).ravel()
        if S.size != A.shape[0]:
            raise ValueError(
                f"S must have one entry per row of A: len(S)={S.size}, rows={A.shape[0]}"
            )
        if S.size and S.min() < 0:
            raise ValueError("S must be a multiset of non-negative integers")
        self.m, self.n = map(int, A.shape)
        self.A = A.astype(np.int8)
        # Row-major access to columns of A is the hot path of the delta
        # evaluation; keep a contiguous transposed copy (cache friendliness,
        # cf. the HPC guide on stride effects).
        self._A32 = np.ascontiguousarray(A, dtype=np.int32)
        self._At32 = np.ascontiguousarray(A.T, dtype=np.int32)
        self.S = S
        # Target histogram over the values 1..n (index v-1 counts rows with
        # (A V)_j == v).  Values outside that range cannot occur for the
        # planted secret.
        if S.size and S.max() > self.n:
            raise ValueError("S contains a value larger than n, inconsistent instance")
        self.target_histogram = np.bincount(S, minlength=self.n + 1)[1:].astype(np.int64)
        self.secret = None if secret is None else as_solution(secret, self.n)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        m: int,
        n: int,
        rng: np.random.Generator | int | None = None,
    ) -> "PermutedPerceptronProblem":
        """Generate a random instance of size ``m x n`` with a planted secret."""
        A, S, secret = generate_ppp_instance(m, n, rng)
        return cls(A, S, secret=secret)

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    def _products(self, solution: np.ndarray) -> np.ndarray:
        V = (2 * solution.astype(np.int32) - 1)
        return self._A32 @ V

    def _fitness_from_products(self, Y: np.ndarray) -> float:
        # |y| - y is 0 for y >= 0 and -2y for y < 0.
        sign_term = SIGN_PENALTY_WEIGHT * 2 * int(np.minimum(Y, 0).sum() * -1)
        hist = np.bincount(np.clip(Y, 0, self.n), minlength=self.n + 1)[1:]
        hist_term = int(np.abs(hist - self.target_histogram).sum())
        return float(sign_term + hist_term)

    def evaluate(self, solution: np.ndarray) -> float:
        solution = as_solution(solution, self.n)
        return self._fitness_from_products(self._products(solution))

    def evaluate_batch(self, solutions: np.ndarray) -> np.ndarray:
        solutions = np.asarray(solutions, dtype=np.int8)
        if solutions.ndim != 2 or solutions.shape[1] != self.n:
            raise ValueError(f"expected a (batch, {self.n}) array, got {solutions.shape}")
        V = 2 * solutions.astype(np.int32) - 1
        Y = V @ self._A32.T  # (batch, m)
        return self._fitness_from_products_batch(Y)

    def _fitness_from_products_batch(self, Y: np.ndarray) -> np.ndarray:
        batch = Y.shape[0]
        sign_term = SIGN_PENALTY_WEIGHT * 2 * (-np.minimum(Y, 0)).sum(axis=1)
        clipped = np.clip(Y, 0, self.n)
        offsets = clipped + (np.arange(batch, dtype=np.int64)[:, None] * (self.n + 1))
        counts = np.bincount(offsets.ravel(), minlength=batch * (self.n + 1))
        counts = counts.reshape(batch, self.n + 1)[:, 1:]
        hist_term = np.abs(counts - self.target_histogram[None, :]).sum(axis=1)
        return (sign_term + hist_term).astype(np.float64)

    # ------------------------------------------------------------------
    # Incremental neighborhood evaluation (the GPU kernel's compute_fitness)
    # ------------------------------------------------------------------
    def evaluate_neighborhood(
        self,
        solution: np.ndarray,
        moves: np.ndarray,
        *,
        chunk: int = 8_192,
    ) -> np.ndarray:
        """Delta evaluation of every neighbor reached by ``moves``.

        Flipping bit ``p`` changes the epsilon value ``V_p`` by ``-2 V_p``,
        hence the product vector by ``-2 A[:, p] V_p``; a k-bit move simply
        accumulates k such column updates.  Each chunk of neighbors is then
        scored with the same vectorized histogram arithmetic as
        :meth:`evaluate_batch`.
        """
        solution = as_solution(solution, self.n)
        moves = np.asarray(moves, dtype=np.int64)
        if moves.ndim != 2:
            raise ValueError(f"expected an (num_moves, k) move array, got {moves.shape}")
        num_moves, k = moves.shape
        V = 2 * solution.astype(np.int32) - 1
        Y = self._A32 @ V  # (m,)
        out = np.empty(num_moves, dtype=np.float64)
        for start in range(0, num_moves, chunk):
            stop = min(start + chunk, num_moves)
            block = moves[start:stop]
            delta = np.zeros((block.shape[0], self.m), dtype=np.int32)
            for t in range(k):
                cols = block[:, t]
                # rows of A^T indexed by the flipped bit, scaled by its sign
                delta += self._At32[cols] * V[cols][:, None]
            Yn = Y[None, :] - 2 * delta
            out[start:stop] = self._fitness_from_products_batch(Yn)
        return out

    def evaluate_neighborhood_batch(
        self,
        solutions: np.ndarray,
        moves: np.ndarray,
        *,
        element_budget: int = 4_194_304,
    ) -> np.ndarray:
        """Delta evaluation of ``moves`` applied to every row of ``solutions``.

        The column-update identity of :meth:`evaluate_neighborhood` broadcasts
        over the solution axis: for replica ``s`` and move ``j``, the product
        vector changes by ``-2 * sum_t A[:, moves[j, t]] * V_s[moves[j, t]]``.
        All ``S x M`` deltas are computed with one broadcasting expression per
        flipped-bit position — no Python loop over the replicas.  The move
        axis is chunked so the intermediate ``(S, chunk, m)`` product tensor
        stays under ``element_budget`` elements.
        """
        solutions, moves = self._check_batch_args(solutions, moves)
        num_solutions = solutions.shape[0]
        num_moves, k = moves.shape
        V = 2 * solutions.astype(np.int32) - 1  # (S, n)
        Y0 = V @ self._At32  # (S, m)
        out = np.empty((num_solutions, num_moves), dtype=np.float64)
        if num_solutions == 0 or num_moves == 0:
            return out
        chunk = max(1, element_budget // max(1, num_solutions * self.m))
        for start in range(0, num_moves, chunk):
            block = moves[start : start + chunk]  # (c, k)
            c = block.shape[0]
            delta = np.zeros((num_solutions, c, self.m), dtype=np.int32)
            for t in range(k):
                cols = block[:, t]
                delta += self._At32[cols][None, :, :] * V[:, cols][:, :, None]
            Yn = Y0[:, None, :] - 2 * delta
            scores = self._fitness_from_products_batch(Yn.reshape(num_solutions * c, self.m))
            out[:, start : start + c] = scores.reshape(num_solutions, c)
        return out

    # ------------------------------------------------------------------
    # Metadata for the harness / timing model
    # ------------------------------------------------------------------
    def is_solution(self, fitness: float) -> bool:
        return fitness == 0

    def cost_profile(self, k: int = 1) -> dict[str, float]:
        # Per neighbor: k column updates of length m (2 flops each), the sign
        # term (2 flops/row) and the histogram accumulation + distance
        # (~3 flops/row); memory traffic is dominated by reading k columns of
        # A plus the current product vector.  The columns of A are read-only
        # instance data and can be bound to the texture cache
        # ("texture_bytes"), which is the optimisation the paper's Figure 8
        # labels "GPUTexture".
        flops = (2.0 * k + 5.0) * self.m
        matrix_bytes = 4.0 * k * self.m
        product_bytes = 4.0 * self.m
        return {
            "flops": flops,
            "bytes": matrix_bytes + product_bytes,
            "texture_bytes": matrix_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"PermutedPerceptronProblem(m={self.m}, n={self.n})"
