"""The Permuted Perceptron Problem (PPP).

The PPP is the cryptographic identification scheme of Pointcheval (EUROCRYPT
1995) that the paper uses to validate its GPU neighborhood exploration.  An
*epsilon-matrix* ``A`` (entries in {-1, +1}) of size ``m x n`` and a multiset
``S`` of non-negative integers of size ``m`` are public; the secret is an
epsilon-vector ``V`` of size ``n`` such that the multiset of the entries of
``A V`` equals ``S``.

Following Knudsen & Meier (EUROCRYPT 1999) — the reference the paper quotes —
candidate solutions ``V'`` are scored with::

    f(V') = 30 * sum_i (|(A V')_i| - (A V')_i)  +  sum_i |H_i - H'_i|

where ``H`` is the value histogram of the secret product ``A V`` (derived
from ``S``) and ``H'`` the histogram of ``A V'``.  ``f(V') == 0`` certifies a
successful attack.  This is a pure minimization problem over binary strings,
with the {0,1} encoding mapped to the {-1,+1} epsilon encoding by
``V = 2 b - 1``.
"""

from __future__ import annotations

import numpy as np

from .base import BinaryProblem, as_solution
from .fastpath import BoundedCache, MoveTableCache, fast_path_enabled

__all__ = ["PermutedPerceptronProblem", "generate_ppp_instance"]

#: Weight of the sign-violation term in the Knudsen–Meier objective.
SIGN_PENALTY_WEIGHT = 30

#: Environment kill switch for the precompiled delta evaluator: set
#: ``REPRO_PPP_FAST=0`` to force the reference chunked evaluation everywhere
#: (the two paths are bit-identical; the switch exists for A/B timing and for
#: the trajectory-identity tests).
_FAST_ENV = "REPRO_PPP_FAST"


def _fast_path_enabled() -> bool:
    return fast_path_enabled(_FAST_ENV)


class _FastMoveTable:
    """Preprocessed view of one validated ``(M, k)`` move array.

    Built once per distinct move table (the kernels pass the same read-only
    array every launch) and reused across iterations; holds a strong
    reference to the array so its ``id`` stays valid as a cache key.
    """

    __slots__ = ("moves", "num_moves", "k", "cols_i", "cols_j", "pair_index", "occ_index")

    def __init__(self, moves: np.ndarray) -> None:
        self.moves = moves
        self.num_moves, self.k = map(int, moves.shape)
        self.cols_i = np.ascontiguousarray(moves[:, 0])
        self.cols_j = np.ascontiguousarray(moves[:, 1]) if self.k == 2 else None
        #: Flat gather indexes into the per-replica ``(n, n)`` bilinear cube
        #: and the ``(K, n, n)`` occupied-bin stack (filled in by the scorer,
        #: which knows ``n`` and ``K``).
        self.pair_index = None
        self.occ_index = None


class _PPPFastScorer:
    """Precompiled pairwise delta evaluator for the Knudsen–Meier objective.

    The reference evaluation materialises every neighbor's product vector
    and histograms it — ``O(S·M·m)`` memory traffic per lockstep iteration.
    This scorer exploits two structural facts instead:

    * **Parity compression** — a product ``y`` of ``n`` ±1 terms satisfies
      ``y ≡ n (mod 2)``, so ``z = (y + n) / 2 ∈ [0, n]`` indexes a dense
      value table without loss.
    * **Bilinearity in the sign matrix** — with ``C[s, p, r] = A[r, p]·V_p``,
      a k≤2 move changes row ``r``'s compressed product from ``z`` to
      ``z - (C_i + C_j)``.  Any per-row value table ``f(z)`` therefore sums
      over the neighborhood as a *bilinear form* in the columns of ``C``:
      ``Σ_r f(z_r') = base + (C^T diag(u) C)[i,j] + g_i + g_j`` — one tiny
      batched GEMM prices **all** ``M`` moves at once.

    The objective decomposes into exactly such tables: the sign penalty
    ``Σ_r wsign(z_r)``, the count of rows landing outside the target
    histogram's occupied bins, and one occupancy counter per occupied target
    bin ``b`` (their counts feed ``|cnt_b - T_b|``).  The target histogram of
    a planted instance occupies only ~10 distinct bins, so the whole score is
    a ``(K+2)``-row stacked GEMM plus gathers — ~15x less host wall-clock
    than the reference path, bit-identical by integer exactness (every
    intermediate is an integer below 2^24, exact in float32).

    Shifted tables are clipped at the ``z`` range ends; that filler is exact,
    not approximate: ``z-2`` underflows only when fewer than two positive
    columns exist (no ``(+,+)`` pair can select the filler), and symmetrically
    for overflow.
    """

    #: Workspace ceiling: fall back to the reference path when the stacked
    #: GEMM operands would exceed this many bytes.
    WORKSPACE_LIMIT = 256 * 1024 * 1024

    def __init__(self, problem: "PermutedPerceptronProblem") -> None:
        n, m = problem.n, problem.m
        self.n, self.m = n, m
        num_bins = n + 1
        zs = np.arange(num_bins, dtype=np.int64)
        wsign = 2 * SIGN_PENALTY_WEIGHT * np.maximum(n - 2 * zs, 0)
        #: Smallest compressed bin holding a histogram value ``v >= 1``.
        z_first = (n + 2) // 2
        target_z = np.zeros(num_bins, dtype=np.int64)
        for v in range(1, n + 1):
            if (v + n) % 2 == 0:
                target_z[(v + n) // 2] = problem.target_histogram[v - 1]
        #: Target mass on wrong-parity values: those bins are unreachable, so
        #: their |0 - T| contribution is a constant.
        self.const_term = int(problem.target_histogram.sum() - target_z.sum())
        occupied = np.nonzero(target_z[z_first:])[0] + z_first
        self.num_occupied = len(occupied)
        # Stacked per-row value tables: sign weight, outside-occupied
        # indicator, then one occupancy indicator per occupied target bin.
        tables = [wsign.astype(np.float64)]
        outside = ((zs >= z_first) & (target_z == 0)).astype(np.float64)
        tables.append(outside)
        for zb in occupied:
            tables.append((zs == zb).astype(np.float64))
        # All table entries are small integers, exact in float32; staying in
        # float32 keeps the per-call (S, R, n, m) expansion single-precision.
        self.value_tables = np.array(tables, dtype=np.float32)  # (R, num_bins)
        self.num_tables = self.value_tables.shape[0]
        down2 = self.value_tables[:, np.maximum(zs - 2, 0)]  # z' = z-2  (ci+cj = +2)
        up2 = self.value_tables[:, np.minimum(zs + 2, n)]    # z' = z+2  (ci+cj = -2)
        dp, dm = down2 - self.value_tables, up2 - self.value_tables
        self.pair_quad = dp + dm   # coefficient of ci*cj      (scaled x4)
        self.pair_lin = dp - dm    # coefficient of (ci + cj)  (scaled x4)
        down1 = self.value_tables[:, np.maximum(zs - 1, 0)]  # z' = z-1  (ci = +1)
        up1 = self.value_tables[:, np.minimum(zs + 1, n)]    # z' = z+1  (ci = -1)
        self.single_base = down1 + up1   # constant term            (scaled x2)
        self.single_lin = down1 - up1    # coefficient of ci        (scaled x2)
        self.target_occ = target_z[occupied].astype(np.float32)
        self.At8 = np.ascontiguousarray(problem.A.T)  # (n, m) int8
        self._tables = MoveTableCache(self._build_table, maxsize=8)
        self._workspaces = BoundedCache(12)
        # Exactness guard: every float32 intermediate must be an integer
        # below 2^24.  The largest is the folded sign row of the bilinear
        # cube, bounded by 4·(m·wsign_max + m·|dp+dm|_max).
        bound = 4 * (m * int(wsign.max(initial=0)) + m * 16 * SIGN_PENALTY_WEIGHT)
        self.exact = bound < 2**24

    # ------------------------------------------------------------------
    def move_table(self, moves: np.ndarray) -> _FastMoveTable | None:
        """Validated, preprocessed view of ``moves`` (or ``None`` if the
        fast path cannot score them).

        Read-only arrays — the kernels' cached move tables — are cached by
        identity (a bounded LRU map, see :class:`~.fastpath.MoveTableCache`);
        writable arrays are validated fresh each call, since the caller may
        mutate them between calls.
        """
        return self._tables.lookup(moves)

    def _build_table(self, moves: np.ndarray) -> _FastMoveTable | None:
        if moves.ndim != 2 or moves.shape[1] not in (1, 2) or moves.shape[0] == 0:
            return None
        if moves.min() < 0 or moves.max() >= self.n:
            return None
        if moves.shape[1] == 2 and (moves[:, 0] == moves[:, 1]).any():
            # A repeated index is a double flip: the compressed product can
            # leave [0, n], which the bilinear tables do not represent.
            return None
        table = _FastMoveTable(moves)
        if table.k == 2:
            table.pair_index = table.cols_i * self.n + table.cols_j
            table.occ_index = (
                np.arange(self.num_occupied, dtype=np.int64)[:, None] * (self.n * self.n)
                + table.pair_index[None, :]
            ).ravel()
        return table

    def workspace_bytes(self, num_solutions: int, num_moves: int) -> int:
        """Float32 footprint of one call's stacked operands."""
        n, m, r = self.n, self.m, self.num_tables
        per_replica = r * n * m + r * n * n + self.num_occupied * num_moves
        return 4 * num_solutions * per_replica

    def _workspace(self, *shape: int) -> np.ndarray:
        """Reused float32 scratch buffer for the given shape (hot-loop calls
        repeat the same shapes every lockstep iteration; the shape-keyed LRU
        cache bounds the retained scratch memory)."""
        buf = self._workspaces.get(shape)
        if buf is None:
            buf = np.empty(shape, dtype=np.float32)
            self._workspaces.put(shape, buf)
        return buf

    def evaluate(
        self,
        solutions: np.ndarray,
        table: _FastMoveTable,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Score every (replica, move) pair: the ``(S, M)`` fitness matrix."""
        n, m, r = self.n, self.m, self.num_tables
        num_solutions = solutions.shape[0]
        num_moves = table.num_moves
        signs = (2 * solutions - 1).astype(np.int8)          # (S, n) in ±1
        C = self.At8[None, :, :] * signs[:, :, None]         # (S, n, m) int8
        products = C.sum(axis=1, dtype=np.int32)             # (S, m) = A V
        z = (products + n) >> 1                              # compressed bins
        Cf = self._workspace(num_solutions, n, m)
        np.multiply(C, 1.0, out=Cf, casting="unsafe")
        Ct = np.swapaxes(Cf, 1, 2)                           # (S, m, n)
        occ0 = 2  # first occupied-bin row of the table stack
        if table.k == 1:
            base = self.single_base[:, z].transpose(1, 0, 2).sum(axis=2)  # (S, R)
            lin = self.single_lin[:, z].transpose(1, 0, 2)                # (S, R, m)
            base[:, occ0:] -= 2.0 * self.target_occ
            cube = np.matmul(np.ascontiguousarray(lin), Ct)               # (S, R, n)
            cube += base[:, :, None]
            vals = cube[:, :, table.cols_i]                               # (S, R, M)
            occ = vals[:, occ0:]
            np.abs(occ, out=occ)
            total = vals[:, 0] + vals[:, 1] + occ.sum(axis=1)
            scale = 0.5
        else:
            quad = self.pair_quad[:, z].transpose(1, 0, 2)               # (S, R, m)
            lin = self.pair_lin[:, z].transpose(1, 0, 2)
            f0 = self.value_tables[:, z].transpose(1, 0, 2)
            base = 4.0 * f0.sum(axis=2) + quad.sum(axis=2)               # (S, R)
            base[:, occ0:] -= 4.0 * self.target_occ
            stacked = self._workspace(num_solutions, r, n, m)
            np.multiply(quad[:, :, None, :], Cf[:, None, :, :], out=stacked)
            cube = self._workspace(num_solutions, r, n, n)
            np.matmul(
                stacked.reshape(num_solutions, r * n, m),
                Ct,
                out=cube.reshape(num_solutions, r * n, n),
            )
            g = np.matmul(np.ascontiguousarray(lin), Ct)                 # (S, R, n)
            cube += g[:, :, :, None]
            cube += g[:, :, None, :]
            cube += base[:, :, None, None]
            flat_occ = cube[:, occ0:].reshape(num_solutions, -1)
            gathered = self._workspace(num_solutions, self.num_occupied * num_moves)
            np.take(flat_occ, table.occ_index, axis=1, out=gathered)
            np.abs(gathered, out=gathered)
            hist = gathered.reshape(num_solutions, self.num_occupied, num_moves).sum(axis=1)
            flat_so = cube[:, :occ0].reshape(num_solutions, occ0 * n * n)
            sign4 = np.take(flat_so, table.pair_index, axis=1)
            out4 = np.take(flat_so, n * n + table.pair_index, axis=1)
            total = sign4 + out4 + hist
            scale = 0.25
        if out is None:
            out = np.empty((num_solutions, num_moves), dtype=np.float64)
        np.multiply(total, scale, out=out, casting="unsafe")
        out += self.const_term
        return out


def generate_ppp_instance(
    m: int,
    n: int,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate a random PPP instance with a planted secret.

    Follows the construction used in the cryptographic literature: draw a
    uniform random epsilon-matrix ``A`` and epsilon-vector ``V``; whenever a
    row of ``A V`` is negative, negate that row of ``A`` so that the secret
    satisfies the perceptron constraints ``(A V)_j >= 0``.  The public
    multiset ``S`` is then the resulting vector ``A V``.

    Returns
    -------
    (A, S, secret_bits):
        ``A`` is an ``(m, n)`` int8 matrix of +/-1, ``S`` the length-``m``
        vector of products and ``secret_bits`` the planted secret in the
        {0,1} encoding (``fitness == 0`` by construction).
    """
    if m <= 0 or n <= 0:
        raise ValueError(f"instance dimensions must be positive, got m={m}, n={n}")
    rng = np.random.default_rng(rng)
    A = rng.choice(np.array([-1, 1], dtype=np.int8), size=(m, n))
    V = rng.choice(np.array([-1, 1], dtype=np.int32), size=n)
    Y = A.astype(np.int32) @ V
    negative = Y < 0
    A[negative] = -A[negative]
    Y = np.abs(Y)
    secret_bits = ((V + 1) // 2).astype(np.int8)
    return A, Y.astype(np.int32), secret_bits


class PermutedPerceptronProblem(BinaryProblem):
    """Knudsen–Meier objective for the Permuted Perceptron Problem.

    Parameters
    ----------
    A:
        Public epsilon-matrix of shape ``(m, n)`` with entries in {-1, +1}.
    S:
        Public multiset of the ``m`` products ``(A V)_j`` of the secret, as a
        1-D array (order is irrelevant; only the value histogram is used).
    secret:
        Optional planted secret in the {0,1} encoding, kept only for testing
        and verification purposes (never used by the objective).
    """

    name = "ppp"

    def __init__(
        self,
        A: np.ndarray,
        S: np.ndarray,
        secret: np.ndarray | None = None,
    ) -> None:
        A = np.asarray(A)
        if A.ndim != 2:
            raise ValueError(f"A must be a 2-D matrix, got shape {A.shape}")
        if not np.all(np.isin(A, (-1, 1))):
            raise ValueError("A must be an epsilon-matrix with entries in {-1, +1}")
        S = np.asarray(S, dtype=np.int64).ravel()
        if S.size != A.shape[0]:
            raise ValueError(
                f"S must have one entry per row of A: len(S)={S.size}, rows={A.shape[0]}"
            )
        if S.size and S.min() < 0:
            raise ValueError("S must be a multiset of non-negative integers")
        self.m, self.n = map(int, A.shape)
        self.A = A.astype(np.int8)
        # Row-major access to columns of A is the hot path of the delta
        # evaluation; keep a contiguous transposed copy (cache friendliness,
        # cf. the HPC guide on stride effects).
        self._A32 = np.ascontiguousarray(A, dtype=np.int32)
        self._At32 = np.ascontiguousarray(A.T, dtype=np.int32)
        self.S = S
        # Target histogram over the values 1..n (index v-1 counts rows with
        # (A V)_j == v).  Values outside that range cannot occur for the
        # planted secret.
        if S.size and S.max() > self.n:
            raise ValueError("S contains a value larger than n, inconsistent instance")
        self.target_histogram = np.bincount(S, minlength=self.n + 1)[1:].astype(np.int64)
        self.secret = None if secret is None else as_solution(secret, self.n)
        # Precompiled pairwise delta evaluator: built lazily on first use,
        # disabled entirely via the REPRO_PPP_FAST environment switch or when
        # the instance is too large for the float32 exactness bound.
        self._fast_scorer: _PPPFastScorer | None = None
        self._fast_enabled = _fast_path_enabled()

    def _fast(self) -> _PPPFastScorer | None:
        if not self._fast_enabled:
            return None
        if self._fast_scorer is None:
            scorer = _PPPFastScorer(self)
            if not scorer.exact:
                self._fast_enabled = False
                return None
            self._fast_scorer = scorer
        return self._fast_scorer

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        m: int,
        n: int,
        rng: np.random.Generator | int | None = None,
    ) -> "PermutedPerceptronProblem":
        """Generate a random instance of size ``m x n`` with a planted secret."""
        A, S, secret = generate_ppp_instance(m, n, rng)
        return cls(A, S, secret=secret)

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    def _products(self, solution: np.ndarray) -> np.ndarray:
        V = (2 * solution.astype(np.int32) - 1)
        return self._A32 @ V

    def _fitness_from_products(self, Y: np.ndarray) -> float:
        # |y| - y is 0 for y >= 0 and -2y for y < 0.
        sign_term = SIGN_PENALTY_WEIGHT * 2 * int(np.minimum(Y, 0).sum() * -1)
        hist = np.bincount(np.clip(Y, 0, self.n), minlength=self.n + 1)[1:]
        hist_term = int(np.abs(hist - self.target_histogram).sum())
        return float(sign_term + hist_term)

    def evaluate(self, solution: np.ndarray) -> float:
        solution = as_solution(solution, self.n)
        return self._fitness_from_products(self._products(solution))

    def evaluate_batch(self, solutions: np.ndarray) -> np.ndarray:
        solutions = np.asarray(solutions, dtype=np.int8)
        if solutions.ndim != 2 or solutions.shape[1] != self.n:
            raise ValueError(f"expected a (batch, {self.n}) array, got {solutions.shape}")
        V = 2 * solutions.astype(np.int32) - 1
        Y = V @ self._A32.T  # (batch, m)
        return self._fitness_from_products_batch(Y)

    def _fitness_from_products_batch(self, Y: np.ndarray) -> np.ndarray:
        batch = Y.shape[0]
        sign_term = SIGN_PENALTY_WEIGHT * 2 * (-np.minimum(Y, 0)).sum(axis=1)
        clipped = np.clip(Y, 0, self.n)
        offsets = clipped + (np.arange(batch, dtype=np.int64)[:, None] * (self.n + 1))
        counts = np.bincount(offsets.ravel(), minlength=batch * (self.n + 1))
        counts = counts.reshape(batch, self.n + 1)[:, 1:]
        hist_term = np.abs(counts - self.target_histogram[None, :]).sum(axis=1)
        return (sign_term + hist_term).astype(np.float64)

    # ------------------------------------------------------------------
    # Incremental neighborhood evaluation (the GPU kernel's compute_fitness)
    # ------------------------------------------------------------------
    def evaluate_neighborhood(
        self,
        solution: np.ndarray,
        moves: np.ndarray,
        *,
        chunk: int = 8_192,
    ) -> np.ndarray:
        """Delta evaluation of every neighbor reached by ``moves``.

        Flipping bit ``p`` changes the epsilon value ``V_p`` by ``-2 V_p``,
        hence the product vector by ``-2 A[:, p] V_p``; a k-bit move simply
        accumulates k such column updates.  Each chunk of neighbors is then
        scored with the same vectorized histogram arithmetic as
        :meth:`evaluate_batch`.
        """
        solution = as_solution(solution, self.n)
        moves = np.asarray(moves, dtype=np.int64)
        if moves.ndim != 2:
            raise ValueError(f"expected an (num_moves, k) move array, got {moves.shape}")
        incremental = self._dispatch_gain_engine_scalar(solution, moves)
        if incremental is not None:
            return incremental
        num_moves, k = moves.shape
        scorer = self._fast()
        if scorer is not None and num_moves:
            table = scorer.move_table(moves)
            if (
                table is not None
                and scorer.workspace_bytes(1, num_moves) <= scorer.WORKSPACE_LIMIT
            ):
                return scorer.evaluate(solution[None, :], table)[0]
        V = 2 * solution.astype(np.int32) - 1
        Y = self._A32 @ V  # (m,)
        out = np.empty(num_moves, dtype=np.float64)
        for start in range(0, num_moves, chunk):
            stop = min(start + chunk, num_moves)
            block = moves[start:stop]
            delta = np.zeros((block.shape[0], self.m), dtype=np.int32)
            for t in range(k):
                cols = block[:, t]
                # rows of A^T indexed by the flipped bit, scaled by its sign
                delta += self._At32[cols] * V[cols][:, None]
            Yn = Y[None, :] - 2 * delta
            out[start:stop] = self._fitness_from_products_batch(Yn)
        return out

    def evaluate_neighborhood_batch(
        self,
        solutions: np.ndarray,
        moves: np.ndarray,
        *,
        element_budget: int = 4_194_304,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Delta evaluation of ``moves`` applied to every row of ``solutions``.

        Dispatches to the precompiled bilinear scorer (see
        :class:`_PPPFastScorer`) whenever the move table qualifies — k in
        {1, 2}, distinct in-range indices, workspace within budget — and to
        the chunked reference evaluation otherwise.  Both paths return
        bit-identical fitness matrices; ``REPRO_PPP_FAST=0`` forces the
        reference path.  ``out``, when given, must be a ``(S, M)`` float64
        array and is written in place.
        """
        solutions, moves = self._check_batch_args(solutions, moves)
        sharded = self._dispatch_host_pool(solutions, moves, out)
        if sharded is not None:
            return sharded
        incremental = self._dispatch_gain_engine(solutions, moves, out)
        if incremental is not None:
            return incremental
        num_solutions = solutions.shape[0]
        num_moves = moves.shape[0]
        scorer = self._fast()
        if scorer is not None and num_solutions and num_moves:
            if scorer.workspace_bytes(num_solutions, num_moves) <= scorer.WORKSPACE_LIMIT:
                table = scorer.move_table(moves)
                if table is not None:
                    return scorer.evaluate(solutions, table, out=out)
        return self._evaluate_neighborhood_batch_reference(
            solutions, moves, element_budget=element_budget, out=out
        )

    def _evaluate_neighborhood_batch_reference(
        self,
        solutions: np.ndarray,
        moves: np.ndarray,
        *,
        element_budget: int = 4_194_304,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Chunked broadcast evaluation — the ground truth for every move table.

        The column-update identity of :meth:`evaluate_neighborhood` broadcasts
        over the solution axis: for replica ``s`` and move ``j``, the product
        vector changes by ``-2 * sum_t A[:, moves[j, t]] * V_s[moves[j, t]]``.
        All ``S x M`` deltas are computed with one broadcasting expression per
        flipped-bit position — no Python loop over the replicas.  The move
        axis is chunked so the intermediate ``(S, chunk, m)`` product tensor
        stays under ``element_budget`` elements.
        """
        solutions, moves = self._check_batch_args(solutions, moves)
        num_solutions = solutions.shape[0]
        num_moves, k = moves.shape
        V = 2 * solutions.astype(np.int32) - 1  # (S, n)
        Y0 = V @ self._At32  # (S, m)
        if out is None:
            out = np.empty((num_solutions, num_moves), dtype=np.float64)
        if num_solutions == 0 or num_moves == 0:
            return out
        chunk = max(1, element_budget // max(1, num_solutions * self.m))
        for start in range(0, num_moves, chunk):
            block = moves[start : start + chunk]  # (c, k)
            c = block.shape[0]
            delta = np.zeros((num_solutions, c, self.m), dtype=np.int32)
            for t in range(k):
                cols = block[:, t]
                delta += self._At32[cols][None, :, :] * V[:, cols][:, :, None]
            Yn = Y0[:, None, :] - 2 * delta
            scores = self._fitness_from_products_batch(Yn.reshape(num_solutions * c, self.m))
            out[:, start : start + c] = scores.reshape(num_solutions, c)
        return out

    # ------------------------------------------------------------------
    # Metadata for the harness / timing model
    # ------------------------------------------------------------------
    def is_solution(self, fitness: float) -> bool:
        return fitness == 0

    def cost_profile(self, k: int = 1) -> dict[str, float]:
        # Per neighbor: k column updates of length m (2 flops each), the sign
        # term (2 flops/row) and the histogram accumulation + distance
        # (~3 flops/row); memory traffic is dominated by reading k columns of
        # A plus the current product vector.  The columns of A are read-only
        # instance data and can be bound to the texture cache
        # ("texture_bytes"), which is the optimisation the paper's Figure 8
        # labels "GPUTexture".
        flops = (2.0 * k + 5.0) * self.m
        matrix_bytes = 4.0 * k * self.m
        product_bytes = 4.0 * self.m
        return {
            "flops": flops,
            "bytes": matrix_bytes + product_bytes,
            "texture_bytes": matrix_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"PermutedPerceptronProblem(m={self.m}, n={self.n})"
