"""Registry of the PPP instance families used in the paper's evaluation.

Two families appear in the paper:

* **Tables I–III** use the four "popular instances of the literature"
  (Knudsen & Meier 1999): ``73x73``, ``81x81``, ``101x101`` and ``101x117``.
* **Figure 8** sweeps synthetic instances of growing size
  ``m x n = (100k+1) x (100k+17)`` for ``k = 1..15`` (i.e. ``101x117`` up to
  ``1501x1517``) to measure the GPU acceleration factor of the 1-Hamming
  kernel over 10 000 iterations.

The original cryptographic challenge matrices are not public; the paper
itself regenerates random instances of those dimensions (the identification
scheme draws them at random), so we do the same with a deterministic,
per-instance seed derived from the dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ppp import PermutedPerceptronProblem

__all__ = [
    "PPPInstanceSpec",
    "TABLE_INSTANCES",
    "FIGURE8_INSTANCES",
    "make_table_instance",
    "make_figure8_instance",
    "instance_seed",
]


@dataclass(frozen=True)
class PPPInstanceSpec:
    """Dimensions (and display label) of a PPP instance family member."""

    m: int
    n: int

    @property
    def label(self) -> str:
        return f"{self.m} x {self.n}"

    @property
    def neighborhood_sizes(self) -> dict[int, int]:
        n = self.n
        return {1: n, 2: n * (n - 1) // 2, 3: n * (n - 1) * (n - 2) // 6}


#: The four literature instances of Tables I, II and III.
TABLE_INSTANCES: tuple[PPPInstanceSpec, ...] = (
    PPPInstanceSpec(73, 73),
    PPPInstanceSpec(81, 81),
    PPPInstanceSpec(101, 101),
    PPPInstanceSpec(101, 117),
)

#: The fifteen growing instances of Figure 8 (x-axis labels "101-117" ... "1501-1517").
FIGURE8_INSTANCES: tuple[PPPInstanceSpec, ...] = tuple(
    PPPInstanceSpec(100 * k + 1, 100 * k + 17) for k in range(1, 16)
)


def instance_seed(m: int, n: int, trial: int = 0) -> int:
    """Deterministic seed for instance/trial reproducibility across the harness."""
    return int(np.uint64(1_000_003) * np.uint64(m) + np.uint64(977) * np.uint64(n) + np.uint64(trial))


def make_table_instance(
    spec: PPPInstanceSpec | tuple[int, int],
    trial: int = 0,
) -> PermutedPerceptronProblem:
    """Instantiate one of the Table I–III instances with a planted secret."""
    if not isinstance(spec, PPPInstanceSpec):
        spec = PPPInstanceSpec(*spec)
    return PermutedPerceptronProblem.generate(spec.m, spec.n, rng=instance_seed(spec.m, spec.n, trial))


def make_figure8_instance(
    index: int,
    trial: int = 0,
) -> PermutedPerceptronProblem:
    """Instantiate the ``index``-th (0-based) Figure 8 instance."""
    spec = FIGURE8_INSTANCES[index]
    return PermutedPerceptronProblem.generate(spec.m, spec.n, rng=instance_seed(spec.m, spec.n, trial))
