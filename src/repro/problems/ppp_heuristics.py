"""Problem-specific construction heuristics for the Permuted Perceptron Problem.

The paper closes by noting that the attack quality "would be drastically
enhanced by ... introducing appropriate cryptanalysis heuristics".  This
module provides the standard constructive heuristics from the PPP
cryptanalysis literature as *initial-solution generators* for the local
search — they are optional (the paper's protocol starts from random
solutions) but demonstrate how domain knowledge plugs into the framework.
"""

from __future__ import annotations

import numpy as np

from .ppp import PermutedPerceptronProblem

__all__ = ["majority_vote_solution", "randomized_majority_solution", "best_of_pool"]


def majority_vote_solution(problem: PermutedPerceptronProblem) -> np.ndarray:
    """Deterministic majority-vote start.

    The perceptron constraints ask for ``(A V)_j >= 0`` for every row ``j``.
    Summing all rows of ``A`` gives, for each column, the direction that
    pushes most constraints upward simultaneously; choosing each ``V_i`` as
    the sign of that column sum satisfies a large fraction of the
    constraints and is the classic warm start for perceptron-style attacks.
    """
    column_scores = problem.A.astype(np.int64).sum(axis=0)
    # sign(0) would be ambiguous; break ties towards +1.
    V = np.where(column_scores >= 0, 1, -1)
    return ((V + 1) // 2).astype(np.int8)


def randomized_majority_solution(
    problem: PermutedPerceptronProblem,
    rng: np.random.Generator | int | None = None,
    *,
    flip_probability: float = 0.1,
) -> np.ndarray:
    """Majority-vote start with random perturbation.

    Flipping each majority bit with a small probability de-correlates
    independent runs (the deterministic majority start would make all 50
    trials of the paper's protocol identical) while keeping most of the
    constructive advantage.
    """
    if not 0 <= flip_probability <= 1:
        raise ValueError(f"flip_probability must be in [0, 1], got {flip_probability}")
    rng = np.random.default_rng(rng)
    bits = majority_vote_solution(problem)
    flips = rng.random(problem.n) < flip_probability
    bits = bits.copy()
    bits[flips] ^= 1
    return bits


def best_of_pool(
    problem: PermutedPerceptronProblem,
    pool_size: int = 32,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Best of a pool of random candidates (a cheap sampling warm start).

    Evaluating the pool is a single batched call — i.e. exactly the kind of
    data-parallel work the GPU kernels accelerate.
    """
    if pool_size <= 0:
        raise ValueError(f"pool_size must be positive, got {pool_size}")
    rng = np.random.default_rng(rng)
    pool = rng.integers(0, 2, size=(pool_size, problem.n), dtype=np.int8)
    fitnesses = problem.evaluate_batch(pool)
    return pool[int(np.argmin(fitnesses))].copy()
