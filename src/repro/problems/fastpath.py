"""Shared infrastructure for the precompiled per-problem fast scorers.

Every problem with a precompiled delta evaluator (PPP's bilinear scorer,
UBQP's gain tables, MaxSAT's clause-incidence scorer, NK's subfunction-mask
scorer) follows the same discipline:

* **Exactness guard** — the fast path only engages when its reordered
  arithmetic is provably bit-identical to the chunked reference evaluation
  (integer-valued intermediates below the float mantissa, identical
  reduction layouts).
* **Reference fallback** — move tables outside the compiled model (k > 2,
  duplicate indices, out-of-range bits, oversized workspaces) silently fall
  back to the reference path; the two paths agree bit for bit.
* **Kill switch** — a per-problem ``REPRO_*_FAST`` environment variable
  forces the reference path for A/B timing and the identity test suites.

This module holds the pieces those scorers share: the environment-switch
helper, a bounded LRU cache (used for both the id-keyed move-table caches
and the shape-keyed workspace caches, which previously grew without limit
across many instances), a global registry behind :func:`clear_fast_caches`,
and the common k<=2 move-table validation.
"""

from __future__ import annotations

import os
import weakref
from typing import Callable

import numpy as np

__all__ = [
    "BoundedCache",
    "MoveTableCache",
    "cache_stats",
    "clear_fast_caches",
    "fast_path_enabled",
    "validated_pair_columns",
]

#: Every live :class:`BoundedCache` registers itself here (weakly, so caches
#: die with their scorers); :func:`clear_fast_caches` empties them all.
_CACHE_REGISTRY: "weakref.WeakSet[BoundedCache]" = weakref.WeakSet()


def fast_path_enabled(env_var: str) -> bool:
    """Whether the fast path behind ``env_var`` is enabled (default: yes)."""
    return os.environ.get(env_var, "1").lower() not in ("0", "false", "off")


def clear_fast_caches() -> None:
    """Empty every live fast-scorer cache (move tables and workspaces).

    The caches are bounded LRU maps, so calling this is never required for
    correctness — it exists to release the cached preprocessing and scratch
    buffers eagerly (e.g. between benchmark phases or memory-sensitive
    batch jobs).
    """
    for cache in list(_CACHE_REGISTRY):
        cache.clear()


def cache_stats() -> dict:
    """Aggregate hit/miss/eviction counters over every live cache.

    Surfaced by the hot-loop profiler so move-table and gain-state cache
    behavior is observable under long runs.
    """
    total = {"caches": 0, "entries": 0, "hits": 0, "misses": 0, "evictions": 0}
    for cache in list(_CACHE_REGISTRY):
        stats = cache.stats()
        total["caches"] += 1
        total["entries"] += stats["size"]
        total["hits"] += stats["hits"]
        total["misses"] += stats["misses"]
        total["evictions"] += stats["evictions"]
    return total


class BoundedCache:
    """A small insertion-ordered LRU mapping.

    Used for the per-scorer move-table caches (keyed by array identity) and
    workspace caches (keyed by shape).  Lookups refresh recency; inserts
    beyond ``maxsize`` evict the least recently used entry.
    """

    __slots__ = ("maxsize", "_data", "hits", "misses", "evictions", "__weakref__")

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = int(maxsize)
        self._data: dict = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        _CACHE_REGISTRY.add(self)

    def get(self, key, default=None):
        try:
            value = self._data.pop(key)
        except KeyError:
            self.misses += 1
            return default
        self.hits += 1
        self._data[key] = value  # re-insert as most recently used
        return value

    def put(self, key, value) -> None:
        self._data.pop(key, None)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.pop(next(iter(self._data)))
            self.evictions += 1

    def stats(self) -> dict:
        """Cumulative cache-behavior counters (survive :meth:`clear`)."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data


class MoveTableCache:
    """Identity-keyed cache of per-move-table preprocessing.

    The kernels pass the same frozen (read-only) move array every launch, so
    its ``id`` is a stable cache key as long as a strong reference to the
    array is held — the cache stores ``(moves, table)`` pairs and double
    checks identity on hit.  Writable arrays may be mutated by the caller
    between calls and are rebuilt fresh every time.
    """

    __slots__ = ("_build", "_cache", "writable_rebuilds")

    def __init__(self, build: Callable[[np.ndarray], object], maxsize: int = 8) -> None:
        self._build = build
        self._cache = BoundedCache(maxsize)
        self.writable_rebuilds = 0

    def lookup(self, moves: np.ndarray):
        """The preprocessed table for ``moves`` (``None`` if out of model)."""
        if moves.flags.writeable:
            self.writable_rebuilds += 1
            return self._build(moves)
        entry = self._cache.get(id(moves))
        if entry is not None and entry[0] is moves:
            return entry[1]
        table = self._build(moves)
        if table is not None:
            self._cache.put(id(moves), (moves, table))
        return table

    def stats(self) -> dict:
        """Cumulative counters of the underlying identity-keyed cache."""
        stats = self._cache.stats()
        stats["writable_rebuilds"] = self.writable_rebuilds
        return stats

    def __len__(self) -> int:
        return len(self._cache)


def validated_pair_columns(
    moves: np.ndarray,
    n: int,
    *,
    allow_duplicates: bool = False,
) -> tuple[np.ndarray, np.ndarray | None] | None:
    """Split a k<=2 move table into contiguous column arrays, or ``None``.

    Returns ``(cols_i, cols_j)`` with ``cols_j is None`` for 1-bit moves.
    Rejects (returns ``None``) empty tables, k outside {1, 2}, out-of-range
    bit indices and — unless the scorer's arithmetic represents double flips
    exactly (``allow_duplicates``) — repeated indices within a move.
    """
    if moves.ndim != 2 or moves.shape[1] not in (1, 2) or moves.shape[0] == 0:
        return None
    if moves.min() < 0 or moves.max() >= n:
        return None
    cols_i = np.ascontiguousarray(moves[:, 0])
    if moves.shape[1] == 1:
        return cols_i, None
    cols_j = np.ascontiguousarray(moves[:, 1])
    if not allow_duplicates and (cols_i == cols_j).any():
        return None
    return cols_i, cols_j
