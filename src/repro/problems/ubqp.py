"""Unconstrained Binary Quadratic Programming (UBQP / QUBO).

A classic binary optimization substrate: minimize ``x^T Q x`` for a symmetric
matrix ``Q``.  Many of the "binary problems" the paper's methodology targets
(graph partitioning, max-cut, set packing, ...) reduce to UBQP, which makes
it a natural second workload for the large-neighborhood examples.  The class
implements exact incremental evaluation for 1- and 2-Hamming moves and a
vectorized generic path for larger moves.
"""

from __future__ import annotations

import numpy as np

from .base import BinaryProblem, as_solution

__all__ = ["UBQP"]


class UBQP(BinaryProblem):
    """Minimize the quadratic form ``x^T Q x`` over binary vectors ``x``."""

    name = "ubqp"

    def __init__(self, Q: np.ndarray) -> None:
        Q = np.asarray(Q, dtype=np.float64)
        if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
            raise ValueError(f"Q must be a square matrix, got shape {Q.shape}")
        if not np.allclose(Q, Q.T):
            raise ValueError("Q must be symmetric")
        self.n = int(Q.shape[0])
        self.Q = Q

    @classmethod
    def random(
        cls,
        n: int,
        density: float = 0.5,
        rng: np.random.Generator | int | None = None,
    ) -> "UBQP":
        """Random symmetric instance with integer weights in [-100, 100]."""
        if not 0 < density <= 1:
            raise ValueError(f"density must be in (0, 1], got {density}")
        rng = np.random.default_rng(rng)
        upper = rng.integers(-100, 101, size=(n, n)).astype(np.float64)
        mask = rng.random((n, n)) < density
        upper = np.triu(upper * mask)
        Q = upper + np.triu(upper, 1).T
        return cls(Q)

    # ------------------------------------------------------------------
    def evaluate(self, solution: np.ndarray) -> float:
        x = as_solution(solution, self.n).astype(np.float64)
        return float(x @ self.Q @ x)

    def evaluate_batch(self, solutions: np.ndarray) -> np.ndarray:
        X = np.asarray(solutions, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n:
            raise ValueError(f"expected a (batch, {self.n}) array, got {X.shape}")
        return np.einsum("bi,ij,bj->b", X, self.Q, X)

    def evaluate_neighborhood(self, solution, moves) -> np.ndarray:
        """Incremental evaluation of k-bit flips.

        For a flip of bit ``p`` (``x_p -> 1 - x_p``, i.e. ``d_p = 1 - 2 x_p``)
        the change of ``x^T Q x`` is ``d_p * (Q_pp * d_p + 2 * (Q x)_p)``
        corrected, for multi-bit moves, by the cross terms
        ``2 * d_p d_q Q_pq`` for every flipped pair ``p < q``.

        Delegates to :meth:`evaluate_neighborhood_batch` with a single-row
        block: floating-point accumulation order then matches the batched
        kernels exactly, which is what keeps the ``full`` transfer mode
        bit-identical to the device-resident ones on real-valued ``Q``.
        """
        x = as_solution(solution, self.n)
        moves = np.asarray(moves, dtype=np.int64)
        if moves.ndim != 2:
            raise ValueError(f"expected an (num_moves, k) move array, got {moves.shape}")
        return self.evaluate_neighborhood_batch(x[None, :], moves)[0]

    def evaluate_neighborhood_batch(
        self, solutions, moves, *, element_budget: int = 4_194_304
    ) -> np.ndarray:
        """Incremental k-flip evaluation broadcast over the solution axis.

        The per-replica quantities of :meth:`evaluate_neighborhood` (``Q x``,
        the flip directions and the base fitness) are computed for the whole
        ``(S, n)`` block at once; the single-bit and pairwise cross terms then
        broadcast over a leading replica axis.
        """
        solutions, moves = self._check_batch_args(solutions, moves)
        X = solutions.astype(np.float64)  # (S, n)
        num_solutions = X.shape[0]
        num_moves, k = moves.shape
        out = np.empty((num_solutions, num_moves), dtype=np.float64)
        if num_solutions == 0 or num_moves == 0:
            return out
        base = np.einsum("si,ij,sj->s", X, self.Q, X)  # (S,)
        QX = X @ self.Q  # (S, n)
        D = 1.0 - 2.0 * X  # (S, n)
        diag = np.diag(self.Q)
        chunk = max(1, element_budget // max(1, num_solutions * max(1, k)))
        for start in range(0, num_moves, chunk):
            block = moves[start : start + chunk]  # (c, k)
            c = block.shape[0]
            dm = D[:, block]  # (S, c, k)
            delta = (dm * (diag[block][None, :, :] * dm + 2.0 * QX[:, block])).sum(axis=2)
            for a in range(k):
                for b in range(a + 1, k):
                    delta += (
                        2.0 * dm[:, :, a] * dm[:, :, b] * self.Q[block[:, a], block[:, b]][None, :]
                    )
            out[:, start : start + c] = base[:, None] + delta
        return out

    def is_solution(self, fitness: float) -> bool:
        return False  # no natural "success" certificate for UBQP

    def cost_profile(self, k: int = 1) -> dict[str, float]:
        flops = 4.0 * k + 2.0 * k * (k - 1)
        mem_bytes = 8.0 * (2 * k + k * (k - 1) / 2)
        return {"flops": flops, "bytes": mem_bytes}
