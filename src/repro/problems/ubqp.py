"""Unconstrained Binary Quadratic Programming (UBQP / QUBO).

A classic binary optimization substrate: minimize ``x^T Q x`` for a symmetric
matrix ``Q``.  Many of the "binary problems" the paper's methodology targets
(graph partitioning, max-cut, set packing, ...) reduce to UBQP, which makes
it a natural second workload for the large-neighborhood examples.  The class
implements exact incremental evaluation for 1- and 2-Hamming moves and a
vectorized generic path for larger moves; for k<=2 move tables a precomputed
row/column-gain scorer (:class:`_UBQPFastScorer`) replaces the chunked
incremental loop with one GEMM plus gathers.
"""

from __future__ import annotations

import numpy as np

from .base import BinaryProblem, as_solution
from .fastpath import (
    BoundedCache,
    MoveTableCache,
    fast_path_enabled,
    validated_pair_columns,
)

__all__ = ["UBQP"]

#: Environment kill switch for the precomputed-gain delta evaluator: set
#: ``REPRO_UBQP_FAST=0`` to force the chunked reference evaluation (the two
#: paths are bit-identical on integer-valued ``Q``; the switch exists for
#: A/B timing and the identity test suites).
_FAST_ENV = "REPRO_UBQP_FAST"


class _UBQPFastMoveTable:
    """Preprocessed view of one validated ``(M, k<=2)`` move array."""

    __slots__ = ("moves", "num_moves", "k", "cols_i", "cols_j", "pair_2q")

    def __init__(
        self,
        moves: np.ndarray,
        cols_i: np.ndarray,
        cols_j: np.ndarray | None,
        Q: np.ndarray,
    ) -> None:
        self.moves = moves
        self.num_moves, self.k = map(int, moves.shape)
        self.cols_i = cols_i
        self.cols_j = cols_j
        #: Cross-term coefficients ``2 * Q[i, j]``, gathered once per table.
        self.pair_2q = 2.0 * Q[cols_i, cols_j] if cols_j is not None else None


class _UBQPFastScorer:
    """Precomputed-gain delta evaluator for k<=2 flips.

    Flipping bit ``p`` (direction ``d_p = 1 - 2 x_p``) changes ``x^T Q x``
    by the *gain* ``g_p = Q_pp + 2 d_p (Q x)_p``; a 2-bit flip adds the cross
    term ``2 d_i d_j Q_ij``.  The whole ``(S, n)`` gain matrix therefore
    comes out of a single GEMM::

        QX = X @ Q;  G = diag(Q) + 2 * (1 - 2X) * QX;  base = (X * QX).sum(1)
        f(x ^ i)      = base + G_i
        f(x ^ {i, j}) = base + G_i + G_j + 2 d_i d_j Q_ij

    against which the reference path's chunked per-move recomputation is
    pure overhead.  Exactness guard: when ``Q`` is integer-valued and the
    largest possible intermediate (``n^2 * max|Q|`` plus the move deltas)
    stays below 2^53, every partial sum in both paths is an exact float64
    integer, so the algebraic reordering is bit-identical to the reference
    evaluation.  Repeated indices are representable (the reference treats a
    double flip with the same original-state formula), so they are allowed.
    """

    #: Fall back to the reference path when one call's float64 scratch
    #: (gain/direction matrices plus the gathered outputs) would exceed this.
    WORKSPACE_LIMIT = 256 * 1024 * 1024

    def __init__(self, problem: "UBQP") -> None:
        Q = problem.Q
        n = problem.n
        self.n = n
        self.Q = Q
        self.diag = np.ascontiguousarray(np.diag(Q))
        qmax = float(np.abs(Q).max()) if Q.size else 0.0
        integer_q = bool(np.all(Q == np.rint(Q)))
        # Largest exact-integer intermediate: |base| <= n^2 qmax, the gains
        # and cross terms add at most ~6 n qmax on top.
        self.exact = integer_q and (n * n + 8 * n + 8) * max(qmax, 1.0) < 2.0**53
        self._tables = MoveTableCache(self._build_table, maxsize=8)
        self._workspaces = BoundedCache(12)

    def _build_table(self, moves: np.ndarray) -> _UBQPFastMoveTable | None:
        cols = validated_pair_columns(moves, self.n, allow_duplicates=True)
        if cols is None:
            return None
        return _UBQPFastMoveTable(moves, cols[0], cols[1], self.Q)

    def move_table(self, moves: np.ndarray) -> _UBQPFastMoveTable | None:
        """Validated, preprocessed view of ``moves`` (``None`` if the fast
        path cannot score them — k > 2, out-of-range bits, empty tables)."""
        return self._tables.lookup(moves)

    def workspace_bytes(self, num_solutions: int, num_moves: int) -> int:
        """Float64 footprint of one call's scratch matrices and gathers."""
        return 8 * num_solutions * (4 * self.n + 3 * num_moves)

    def _workspace(self, tag: str, *shape: int) -> np.ndarray:
        key = (tag, shape)
        buf = self._workspaces.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=np.float64)
            self._workspaces.put(key, buf)
        return buf

    def evaluate(
        self,
        solutions: np.ndarray,
        table: _UBQPFastMoveTable,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Score every (replica, move) pair: the ``(S, M)`` fitness matrix."""
        num_solutions = solutions.shape[0]
        num_moves = table.num_moves
        n = self.n
        X = self._workspace("x", num_solutions, n)
        np.copyto(X, solutions, casting="unsafe")
        QX = self._workspace("qx", num_solutions, n)
        np.matmul(X, self.Q, out=QX)
        base = (X * QX).sum(axis=1)  # (S,) == x^T Q x
        D = self._workspace("d", num_solutions, n)
        np.multiply(X, -2.0, out=D)
        D += 1.0  # flip directions 1 - 2x
        G = self._workspace("g", num_solutions, n)
        np.multiply(D, QX, out=G)
        G *= 2.0
        G += self.diag[None, :]  # per-bit gains
        if out is None:
            out = np.empty((num_solutions, num_moves), dtype=np.float64)
        np.take(G, table.cols_i, axis=1, out=out)
        if table.cols_j is not None:
            gj = self._workspace("gj", num_solutions, num_moves)
            np.take(G, table.cols_j, axis=1, out=gj)
            out += gj
            cross = self._workspace("cross", num_solutions, num_moves)
            np.take(D, table.cols_i, axis=1, out=cross)
            cross *= np.take(D, table.cols_j, axis=1, out=gj)
            cross *= table.pair_2q[None, :]
            out += cross
        out += base[:, None]
        return out


class UBQP(BinaryProblem):
    """Minimize the quadratic form ``x^T Q x`` over binary vectors ``x``."""

    name = "ubqp"

    def __init__(self, Q: np.ndarray) -> None:
        Q = np.asarray(Q, dtype=np.float64)
        if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
            raise ValueError(f"Q must be a square matrix, got shape {Q.shape}")
        if not np.allclose(Q, Q.T):
            raise ValueError("Q must be symmetric")
        self.n = int(Q.shape[0])
        self.Q = Q
        # Precomputed-gain delta evaluator: built lazily on first use,
        # disabled via REPRO_UBQP_FAST or when Q fails the integer-exactness
        # guard (the fast path reorders float arithmetic, which is only
        # bit-identical when every intermediate is an exact integer).
        self._fast_scorer: _UBQPFastScorer | None = None
        self._fast_enabled = fast_path_enabled(_FAST_ENV)

    def _fast(self) -> _UBQPFastScorer | None:
        if not self._fast_enabled:
            return None
        if self._fast_scorer is None:
            scorer = _UBQPFastScorer(self)
            if not scorer.exact:
                self._fast_enabled = False
                return None
            self._fast_scorer = scorer
        return self._fast_scorer

    @classmethod
    def random(
        cls,
        n: int,
        density: float = 0.5,
        rng: np.random.Generator | int | None = None,
    ) -> "UBQP":
        """Random symmetric instance with integer weights in [-100, 100]."""
        if not 0 < density <= 1:
            raise ValueError(f"density must be in (0, 1], got {density}")
        rng = np.random.default_rng(rng)
        upper = rng.integers(-100, 101, size=(n, n)).astype(np.float64)
        mask = rng.random((n, n)) < density
        upper = np.triu(upper * mask)
        Q = upper + np.triu(upper, 1).T
        return cls(Q)

    # ------------------------------------------------------------------
    def evaluate(self, solution: np.ndarray) -> float:
        x = as_solution(solution, self.n).astype(np.float64)
        return float(x @ self.Q @ x)

    def evaluate_batch(self, solutions: np.ndarray) -> np.ndarray:
        X = np.asarray(solutions, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n:
            raise ValueError(f"expected a (batch, {self.n}) array, got {X.shape}")
        return np.einsum("bi,ij,bj->b", X, self.Q, X)

    def evaluate_neighborhood(self, solution, moves) -> np.ndarray:
        """Incremental evaluation of k-bit flips.

        For a flip of bit ``p`` (``x_p -> 1 - x_p``, i.e. ``d_p = 1 - 2 x_p``)
        the change of ``x^T Q x`` is ``d_p * (Q_pp * d_p + 2 * (Q x)_p)``
        corrected, for multi-bit moves, by the cross terms
        ``2 * d_p d_q Q_pq`` for every flipped pair ``p < q``.

        Delegates to :meth:`evaluate_neighborhood_batch` with a single-row
        block: floating-point accumulation order then matches the batched
        kernels exactly, which is what keeps the ``full`` transfer mode
        bit-identical to the device-resident ones on real-valued ``Q``.
        """
        x = as_solution(solution, self.n)
        moves = np.asarray(moves, dtype=np.int64)
        if moves.ndim != 2:
            raise ValueError(f"expected an (num_moves, k) move array, got {moves.shape}")
        return self.evaluate_neighborhood_batch(x[None, :], moves)[0]

    def evaluate_neighborhood_batch(
        self,
        solutions,
        moves,
        *,
        element_budget: int = 4_194_304,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Incremental k-flip evaluation broadcast over the solution axis.

        Dispatches to the precomputed-gain scorer (see
        :class:`_UBQPFastScorer`) whenever the move table qualifies — k in
        {1, 2}, in-range indices, workspace within budget — and to the
        chunked reference evaluation otherwise.  On integer-valued ``Q`` the
        two paths are bit-identical; ``REPRO_UBQP_FAST=0`` forces the
        reference path.  ``out``, when given, must be a ``(S, M)`` float64
        array and is written in place.
        """
        solutions, moves = self._check_batch_args(solutions, moves)
        sharded = self._dispatch_host_pool(solutions, moves, out)
        if sharded is not None:
            return sharded
        incremental = self._dispatch_gain_engine(solutions, moves, out)
        if incremental is not None:
            return incremental
        num_solutions = solutions.shape[0]
        num_moves = moves.shape[0]
        scorer = self._fast()
        if scorer is not None and num_solutions and num_moves:
            if scorer.workspace_bytes(num_solutions, num_moves) <= scorer.WORKSPACE_LIMIT:
                table = scorer.move_table(moves)
                if table is not None:
                    return scorer.evaluate(solutions, table, out=out)
        return self._evaluate_neighborhood_batch_reference(
            solutions, moves, element_budget=element_budget, out=out
        )

    def _evaluate_neighborhood_batch_reference(
        self,
        solutions,
        moves,
        *,
        element_budget: int = 4_194_304,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Chunked broadcast evaluation — the ground truth for every move table.

        The per-replica quantities of :meth:`evaluate_neighborhood` (``Q x``,
        the flip directions and the base fitness) are computed for the whole
        ``(S, n)`` block at once; the single-bit and pairwise cross terms then
        broadcast over a leading replica axis.
        """
        solutions, moves = self._check_batch_args(solutions, moves)
        X = solutions.astype(np.float64)  # (S, n)
        num_solutions = X.shape[0]
        num_moves, k = moves.shape
        if out is None:
            out = np.empty((num_solutions, num_moves), dtype=np.float64)
        if num_solutions == 0 or num_moves == 0:
            return out
        base = np.einsum("si,ij,sj->s", X, self.Q, X)  # (S,)
        QX = X @ self.Q  # (S, n)
        D = 1.0 - 2.0 * X  # (S, n)
        diag = np.diag(self.Q)
        chunk = max(1, element_budget // max(1, num_solutions * max(1, k)))
        for start in range(0, num_moves, chunk):
            block = moves[start : start + chunk]  # (c, k)
            c = block.shape[0]
            dm = D[:, block]  # (S, c, k)
            delta = (dm * (diag[block][None, :, :] * dm + 2.0 * QX[:, block])).sum(axis=2)
            for a in range(k):
                for b in range(a + 1, k):
                    delta += (
                        2.0 * dm[:, :, a] * dm[:, :, b] * self.Q[block[:, a], block[:, b]][None, :]
                    )
            out[:, start : start + c] = base[:, None] + delta
        return out

    def is_solution(self, fitness: float) -> bool:
        return False  # no natural "success" certificate for UBQP

    def cost_profile(self, k: int = 1) -> dict[str, float]:
        flops = 4.0 * k + 2.0 * k * (k - 1)
        mem_bytes = 8.0 * (2 * k + k * (k - 1) / 2)
        return {"flops": flops, "bytes": mem_bytes}
