"""Incremental gain-cache engine: O(affected) neighborhood maintenance.

The lockstep hot loop re-evaluates the entire ``(S, M)`` move neighborhood
every iteration, even though each replica commits exactly one k<=2-bit move
per step.  This module maintains *persistent per-replica gain state* —
the quantities the fast scorers derive from scratch every call (PPP's
compressed products and sign pairs, UBQP's ``Q x`` vector, MaxSAT's clause
true-literal counts, NK's subfunction state indices) — and updates only the
entries *coupled* to the flipped bits after each accepted move, the standard
incremental-evaluation discipline from the tabu-search/UBQP literature.

Exactness is non-negotiable and follows the same argument as the fast
scorers in :mod:`repro.problems.fastpath`: every maintained quantity is an
exact integer (or an exact re-gather of table values), so the incremental
update and the from-scratch recompute produce the *same float bits*, and the
materialized fitness matrix is bit-identical to the recompute path.  The
engine is self-healing: it keeps a mirror of the solutions it believes each
replica holds, verifies the mirror against the actual inputs on every call,
and silently re-derives any row that diverged (restarts, perturbations,
ILS/VNS kicks, checkpoint restores, replica migration).  Anything outside
the compiled model — unknown move tables, k > 2, writable move arrays,
disabled fast paths — declines to the existing scorer/reference chain.

``REPRO_INCREMENTAL=0`` kills the engine globally;
``REPRO_INCREMENTAL_CHECK=N`` re-verifies every N-th materialization against
the recompute path (debug re-sync assert).
"""

from __future__ import annotations

import os

import numpy as np

from .fastpath import BoundedCache, fast_path_enabled

try:  # pragma: no cover - exercised implicitly on scipy-equipped hosts
    from scipy.linalg.blas import sgemm as _sgemm
except Exception:  # pragma: no cover - scipy-less fallback
    _sgemm = None

__all__ = [
    "GainEngine",
    "attach_gain_engine",
    "create_gain_engine",
    "detach_gain_engine",
    "incremental_enabled",
]

_ENV = "REPRO_INCREMENTAL"
_CHECK_ENV = "REPRO_INCREMENTAL_CHECK"

#: Commit/expect ops buffered for the host-worker pool collapse to a single
#: full reset beyond this many entries (nothing is lost — worker rows
#: re-derive from the shared-memory solutions at the next dispatched eval).
OPS_BUFFER_CAP = 256

#: Like the fast scorers: fall back to the recompute path when one call's
#: float32 scratch would exceed this.
WORKSPACE_LIMIT = 256 * 1024 * 1024


def incremental_enabled() -> bool:
    """Whether the incremental gain-cache engine is enabled (default: yes)."""
    return fast_path_enabled(_ENV)


def check_period() -> int:
    """Debug re-sync period: every N-th engine eval is verified against the
    recompute path (0 = off, the default)."""
    try:
        return max(0, int(os.environ.get(_CHECK_ENV, "0")))
    except ValueError:
        return 0


# ---------------------------------------------------------------------------
# Per-problem gain states
# ---------------------------------------------------------------------------
class _GainStateBase:
    """Common row-array management for the per-problem gain states.

    Subclasses list their per-replica arrays in ``_row_arrays``; rows are
    (re)derived via :meth:`init_rows` and advanced via :meth:`commit`.  All
    arrays are indexed by *global replica id* so shard-local views (the host
    worker pool) and the parent engine share one layout.
    """

    _row_arrays: tuple[str, ...] = ()

    def grow(self, rows: int) -> None:
        for name in self._row_arrays:
            old = getattr(self, name)
            new = np.zeros((rows,) + old.shape[1:], dtype=old.dtype)
            new[: old.shape[0]] = old
            setattr(self, name, new)

    @property
    def rows(self) -> int:
        return getattr(self, self._row_arrays[0]).shape[0]

    def can_materialize(self, count: int) -> bool:
        return True


def _merged_ppp_tables(scorer):
    """Scorer-level merged k=2 tables (move-table independent).

    Rows 0 (sign weight) and 1 (outside-occupied) of the scorer's table
    stack enter the fitness without an absolute value, so they fold into a
    single row — one less row in every GEMM and elementwise pass.  Cached by
    scorer identity in the fastpath cache registry.
    """
    entry = _PPP_SCORER_CACHE.get(id(scorer))
    if entry is not None and entry[0] is scorer:
        return entry[1]
    occ0 = 2
    pq = np.ascontiguousarray(
        np.vstack([scorer.pair_quad[0] + scorer.pair_quad[1], scorer.pair_quad[occ0:]])
    )
    pl = np.ascontiguousarray(
        np.vstack([scorer.pair_lin[0] + scorer.pair_lin[1], scorer.pair_lin[occ0:]])
    )
    vt = np.vstack(
        [scorer.value_tables[0] + scorer.value_tables[1], scorer.value_tables[occ0:]]
    )
    bsum_t = np.ascontiguousarray((4.0 * vt + pq).T)  # (Z, R') base = cnt @ bsum_t
    base_off = np.zeros(pq.shape[0], dtype=np.float32)
    base_off[1:] = -4.0 * scorer.target_occ
    a_f32 = np.ascontiguousarray(scorer.At8.T, dtype=np.float32)  # (m, n)
    tables = (pq, pl, bsum_t, base_off, a_f32)
    _PPP_SCORER_CACHE.put(id(scorer), (scorer, tables))
    return tables


def _ppp_coupling(scorer, table):
    """Move-table coupling indices for the factored PPP materialization.

    ``AA[t, mv] = A[t, i] * A[t, j]`` is the bilinear pair-product table the
    quadratic GEMM contracts against; ``P`` scatters the per-bit linear
    gains (plus the base row) onto the move axis with a second GEMM; and
    ``touch[p]`` lists the moves whose sign pair flips when bit ``p`` flips
    (padded with the sentinel column ``M``).  Cached by (scorer, move-table)
    identity in the fastpath cache registry.
    """
    key = (id(scorer), id(table.moves))
    entry = _PPP_COUPLING_CACHE.get(key)
    if entry is not None and entry[0] is scorer and entry[1] is table.moves:
        return entry[2]
    cols_i, cols_j = table.cols_i, table.cols_j
    num_moves = cols_i.shape[0]
    n = scorer.n
    at8 = scorer.At8
    aa = np.ascontiguousarray((at8[cols_i] * at8[cols_j]).T, dtype=np.float32)  # (m, M)
    p_mat = np.zeros((n + 1, num_moves), dtype=np.float32)
    mv = np.arange(num_moves)
    p_mat[cols_i, mv] += 1.0
    p_mat[cols_j, mv] += 1.0
    p_mat[n] = 1.0
    p_t = np.ascontiguousarray(p_mat.T)  # (M, n+1); p_t.T is the F-order operand
    # Padded per-bit move incidence (rows of unequal degree pad to M, the
    # sentinel column of the maintained sign-pair matrix).
    counts = np.bincount(cols_i, minlength=n) + np.bincount(cols_j, minlength=n)
    maxdeg = int(counts.max()) if counts.size else 0
    touch = np.full((n, maxdeg), num_moves, dtype=np.int64)
    order = np.argsort(np.concatenate([cols_i, cols_j]), kind="stable")
    flat_bits = np.concatenate([cols_i, cols_j])[order]
    flat_moves = np.concatenate([mv, mv])[order]
    starts = np.zeros(n, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    slot = np.arange(flat_bits.size, dtype=np.int64) - starts[flat_bits]
    touch[flat_bits, slot] = flat_moves
    coupling = (aa, p_mat, p_t, touch)
    _PPP_COUPLING_CACHE.put(key, (scorer, table.moves, coupling))
    return coupling


class _PPPGainState(_GainStateBase):
    """Factored move-pair evaluation from maintained PPP sign state.

    Maintains, per replica: the ±1 solution signs ``V``, the compressed
    products ``z = (A V + n) / 2``, the move sign pairs ``VV = V_i V_j`` (as
    float32 ±1, sentinel-padded) and the ``z``-value histogram ``cnt``.  A
    commit of move ``(a, b)`` updates ``z`` along rows of ``A^T`` and negates
    the touched sign pairs — O(m + deg) per replica.  Materialization is two
    skinny GEMMs plus one elementwise pass::

        G = (quad[z] @ AA) * VV + [lin[z] @ A | base] @ [P; 1]

    with the absolute value applied to the occupied-bin rows, exactly the
    scorer's bilinear algebra re-associated — every intermediate is an exact
    integer below 2^24 in float32, so the result is bit-identical.
    """

    _row_arrays = ("V", "z", "VVf", "cnt")

    def __init__(self, problem, scorer, table, rows: int) -> None:
        self.problem = problem
        self.scorer = scorer
        self.table = table
        n, m = scorer.n, scorer.m
        self.n, self.m = n, m
        self.num_moves = table.num_moves
        self.pq, self.pl, self.bsum_t, self.base_off, self.a_f32 = _merged_ppp_tables(scorer)
        self.aa, self.p_mat, self.p_t, self.touch = _ppp_coupling(scorer, table)
        self.rp = self.pq.shape[0]
        self.zdim = self.bsum_t.shape[0]
        rows = max(rows, 1)
        self.V = np.zeros((rows, n), dtype=np.int8)
        self.z = np.zeros((rows, m), dtype=np.int32)
        self.VVf = np.zeros((rows, self.num_moves + 1), dtype=np.float32)
        self.cnt = np.zeros((rows, self.zdim), dtype=np.float32)
        self._workspaces = BoundedCache(4)

    @staticmethod
    def build(problem, moves: np.ndarray, rows: int):
        scorer = problem._fast()
        if scorer is None:
            return None
        table = scorer.move_table(moves)
        if table is None or table.k != 2:
            return None
        return _PPPGainState(problem, scorer, table, rows)

    def can_materialize(self, count: int) -> bool:
        return 4 * (self.rp + 1) * count * (self.num_moves + self.n + 2) <= WORKSPACE_LIMIT

    def init_rows(self, rows: np.ndarray, solutions: np.ndarray) -> None:
        V = (2 * solutions.astype(np.int8) - 1).astype(np.int8)
        prod = V.astype(np.int32) @ self.scorer.At8.astype(np.int32)  # (c, m)
        z = ((prod + self.n) >> 1).astype(np.int32)
        cols_i, cols_j = self.table.cols_i, self.table.cols_j
        self.V[rows] = V
        self.z[rows] = z
        self.VVf[rows, : self.num_moves] = (V[:, cols_i] * V[:, cols_j]).astype(np.float32)
        self.VVf[rows, self.num_moves] = 1.0
        c = rows.shape[0]
        flat = (np.arange(c)[:, None] * self.zdim + z).ravel()
        self.cnt[rows] = (
            np.bincount(flat, minlength=c * self.zdim).reshape(c, self.zdim).astype(np.float32)
        )

    def commit(self, rows: np.ndarray, bits: np.ndarray) -> bool:
        if bits.shape[1] != 2:
            return False
        a, b = bits[:, 0], bits[:, 1]
        at8 = self.scorer.At8
        va = self.V[rows, a].astype(np.int32)
        vb = self.V[rows, b].astype(np.int32)
        dz = at8[a] * va[:, None] + at8[b] * vb[:, None]  # (c, m) in {-2, 0, 2}
        z = self.z
        changed = np.nonzero(dz)
        z_old = z[rows[changed[0]], changed[1]]
        z[rows] -= dz
        z_new = z[rows[changed[0]], changed[1]]
        # histogram maintenance via one flat bincount over (local row, z) keys
        c = rows.shape[0]
        row_keys = changed[0] * self.zdim
        flat = np.concatenate([row_keys + z_old, row_keys + z_new])
        w = np.empty(flat.shape[0], dtype=np.float64)
        half = z_old.shape[0]
        w[:half] = -1.0
        w[half:] = 1.0
        upd = np.bincount(flat, weights=w, minlength=c * self.zdim)
        self.cnt[rows] += upd.reshape(c, self.zdim).astype(np.float32)
        self.V[rows, a] *= -1
        self.V[rows, b] *= -1
        rows_col = rows[:, None]
        ta = self.touch[a]
        self.VVf[rows_col, ta] = -self.VVf[rows_col, ta]
        tb = self.touch[b]
        self.VVf[rows_col, tb] = -self.VVf[rows_col, tb]
        return True

    def _workspace(self, count: int):
        buf = self._workspaces.get(count)
        if buf is None:
            rp, num_moves, n = self.rp, self.num_moves, self.n
            buf = (
                np.empty((rp * count, num_moves), dtype=np.float32),
                np.empty((rp * count, n + 1), dtype=np.float32),
                np.empty((count, num_moves), dtype=np.float32),
            )
            self._workspaces.put(count, buf)
        return buf

    def materialize(self, rows: np.ndarray, out: np.ndarray) -> np.ndarray:
        scorer = self.scorer
        rp, m, n, num_moves = self.rp, self.m, self.n, self.num_moves
        count = rows.shape[0]
        z = self.z[rows]
        q = self.pq[:, z]  # (R', c, m) contiguous gather
        lin = self.pl[:, z]
        base = np.matmul(self.cnt[rows], self.bsum_t)  # (c, R')
        base += self.base_off
        G, hb, total = self._workspace(count)
        np.matmul(q.reshape(rp * count, m), self.aa, out=G)
        G3 = G.reshape(rp, count, num_moves)
        G3 *= self.VVf[rows, : num_moves]
        np.matmul(lin.reshape(rp * count, m), self.a_f32, out=hb[:, :n])
        hb3 = hb.reshape(rp, count, n + 1)
        hb3[:, :, :n] *= self.V[rows]
        hb3[:, :, n] = base.T
        if _sgemm is not None:
            # G += hb @ P fused into the GEMM: C-order G viewed as F-order
            # G.T, accumulated in place with beta=1.
            _sgemm(1.0, self.p_t.T, hb.T, beta=1.0, c=G.T, overwrite_c=1, trans_a=1)
        else:
            G += np.matmul(hb, self.p_mat)
        occ = G3[1:]
        np.abs(occ, out=occ)
        np.add.reduce(G3, axis=0, out=total)
        np.multiply(total, 0.25, out=out, casting="unsafe")
        out += scorer.const_term
        return out


class _UBQPGainState(_GainStateBase):
    """Maintained ``Q x`` gain vectors for UBQP.

    A flip of bit ``p`` adds ``±Q[p]`` to ``Q x`` — O(n) per flipped bit
    instead of the per-evaluation ``X @ Q`` GEMM.  Materialization replays
    the fast scorer's gain assembly verbatim on the maintained vector; the
    scorer's integer-exactness guard makes the reordering bit-identical.
    """

    _row_arrays = ("X8", "QX")

    def __init__(self, problem, scorer, table, rows: int) -> None:
        self.problem = problem
        self.scorer = scorer
        self.table = table
        self.n = scorer.n
        self.num_moves = table.num_moves
        rows = max(rows, 1)
        self.X8 = np.zeros((rows, self.n), dtype=np.int8)
        self.QX = np.zeros((rows, self.n), dtype=np.float64)
        self._workspaces = BoundedCache(4)

    @staticmethod
    def build(problem, moves: np.ndarray, rows: int):
        scorer = problem._fast()
        if scorer is None:
            return None
        table = scorer.move_table(moves)
        if table is None:
            return None
        return _UBQPGainState(problem, scorer, table, rows)

    def can_materialize(self, count: int) -> bool:
        return 8 * count * (4 * self.n + 3 * self.num_moves) <= WORKSPACE_LIMIT

    def init_rows(self, rows: np.ndarray, solutions: np.ndarray) -> None:
        self.X8[rows] = solutions
        X = solutions.astype(np.float64)
        self.QX[rows] = X @ self.scorer.Q

    def commit(self, rows: np.ndarray, bits: np.ndarray) -> bool:
        Q = self.scorer.Q
        X8, QX = self.X8, self.QX
        for t in range(bits.shape[1]):
            p = bits[:, t]
            d = (1 - 2 * X8[rows, p]).astype(np.float64)  # old flip direction
            QX[rows] += d[:, None] * Q[p]
        X8[rows[:, None], bits] ^= 1
        return True

    def _workspace(self, tag: str, *shape: int) -> np.ndarray:
        key = (tag, shape)
        buf = self._workspaces.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=np.float64)
            self._workspaces.put(key, buf)
        return buf

    def materialize(self, rows: np.ndarray, out: np.ndarray) -> np.ndarray:
        # The fast scorer's gain assembly, with the maintained Q x in place
        # of its per-call GEMM (same exact-integer values, same operations).
        scorer, table = self.scorer, self.table
        count = rows.shape[0]
        n, num_moves = self.n, self.num_moves
        X = self._workspace("x", count, n)
        np.copyto(X, self.X8[rows], casting="unsafe")
        QX = self.QX[rows]
        base = (X * QX).sum(axis=1)
        D = self._workspace("d", count, n)
        np.multiply(X, -2.0, out=D)
        D += 1.0
        G = self._workspace("g", count, n)
        np.multiply(D, QX, out=G)
        G *= 2.0
        G += scorer.diag[None, :]
        np.take(G, table.cols_i, axis=1, out=out)
        if table.cols_j is not None:
            gj = self._workspace("gj", count, num_moves)
            np.take(G, table.cols_j, axis=1, out=gj)
            out += gj
            cross = self._workspace("cross", count, num_moves)
            np.take(D, table.cols_i, axis=1, out=cross)
            cross *= np.take(D, table.cols_j, axis=1, out=gj)
            cross *= table.pair_2q[None, :]
            out += cross
        out += base[:, None]
        return out


class _MaxSatGainState(_GainStateBase):
    """Maintained clause true-literal counts for MaxSAT.

    A flip of variable ``v`` adjusts ``t`` only on the clauses of ``v``'s
    incidence list — O(occurrences) per flipped bit instead of the full
    ``(S, clauses, k)`` literal-table rebuild.  Materialization replays the
    scorer's break/make assembly verbatim; all quantities are small
    integers, so the result is bit-identical.
    """

    _row_arrays = ("X8", "t_pad")

    def __init__(self, problem, scorer, table, rows: int) -> None:
        self.problem = problem
        self.scorer = scorer
        self.table = table
        self.n = scorer.n
        self.num_moves = table.num_moves
        rows = max(rows, 1)
        self.X8 = np.zeros((rows, self.n), dtype=np.int8)
        self.t_pad = np.zeros((rows, scorer.num_clauses + 1), dtype=np.int32)

    @staticmethod
    def build(problem, moves: np.ndarray, rows: int):
        scorer = problem._fast()
        if scorer is None:
            return None
        table = scorer.move_table(moves)
        if table is None:
            return None
        return _MaxSatGainState(problem, scorer, table, rows)

    def can_materialize(self, count: int) -> bool:
        return self.scorer.workspace_bytes(count, self.num_moves) <= WORKSPACE_LIMIT

    def init_rows(self, rows: np.ndarray, solutions: np.ndarray) -> None:
        scorer = self.scorer
        self.X8[rows] = solutions
        lit_true = solutions[:, scorer.variables] == scorer.pos[None, :, :]
        t_rows = np.full(
            (rows.shape[0], scorer.num_clauses + 1), -1, dtype=np.int32
        )
        lit_true.sum(axis=2, dtype=np.int32, out=t_rows[:, : scorer.num_clauses])
        self.t_pad[rows] = t_rows

    def commit(self, rows: np.ndarray, bits: np.ndarray) -> bool:
        scorer = self.scorer
        X8, t_pad = self.X8, self.t_pad
        nc = scorer.num_clauses
        rows_col = rows[:, None]
        for t in range(bits.shape[1]):
            v = bits[:, t]
            # Clauses containing v: the literal toggles truth, so t moves by
            # +1 where it was false and -1 where it was true.
            lit_old = X8[rows_col, v[:, None]] == scorer.occ_pos[v]  # (c, L)
            delta = np.where(lit_old, -1, 1).astype(np.int32)
            t_pad[rows_col, scorer.occ_clause[v]] += delta
            X8[rows, v] ^= 1
        t_pad[rows, nc] = -1  # pad entries scatter here; re-pin the sentinel
        return True

    def materialize(self, rows: np.ndarray, out: np.ndarray) -> np.ndarray:
        scorer, table = self.scorer, self.table
        solutions = self.X8[rows]
        t_pad = self.t_pad[rows]
        t = t_pad[:, : scorer.num_clauses]
        base = (t == 0).sum(axis=1, dtype=np.int64)
        tc = t_pad[:, scorer.occ_clause]  # (c, n, L)
        lit_occ = solutions[:, :, None] == scorer.occ_pos[None, :, :]
        delta1 = (lit_occ & (tc == 1)).sum(axis=2, dtype=np.int64)
        delta1 -= (~lit_occ & (tc == 0)).sum(axis=2, dtype=np.int64)
        res = base[:, None] + delta1[:, table.cols_i]
        if table.cols_j is not None:
            res += delta1[:, table.cols_j]
            if table.num_entries:
                t_e = t[:, table.ent_clause].astype(np.int64)
                du = np.where(solutions[:, table.ent_var_u] == table.ent_pos_u, -1, 1)
                dv = np.where(solutions[:, table.ent_var_v] == table.ent_pos_v, -1, 1)
                corr = (t_e + du + dv == 0).astype(np.int64)
                corr -= t_e + du == 0
                corr -= t_e + dv == 0
                corr += t_e == 0
                seg = np.add.reduceat(corr, table.red_idx, axis=1)
                res[:, table.nz_moves] += seg
        np.copyto(out, res, casting="unsafe")
        return out


class _NKGainState(_GainStateBase):
    """Maintained subfunction state indices for NK landscapes.

    A flip of bit ``v`` shifts the table index of only the loci whose
    epistatic mask contains ``v`` (the scorer's per-variable incidence);
    the base contributions re-gather for the committed rows only.
    Materialization replays the scorer's chunked contribution-cube layout
    verbatim, so the reductions are bit-identical.
    """

    _row_arrays = ("X8", "idx0", "contrib0")

    def __init__(self, problem, scorer, table, rows: int) -> None:
        self.problem = problem
        self.scorer = scorer
        self.table = table
        self.n = scorer.n
        self.num_moves = table.num_moves
        rows = max(rows, 1)
        self.X8 = np.zeros((rows, self.n), dtype=np.int8)
        self.idx0 = np.zeros((rows, self.n), dtype=np.int64)
        self.contrib0 = np.zeros((rows, self.n), dtype=np.float64)

    @staticmethod
    def build(problem, moves: np.ndarray, rows: int):
        scorer = problem._fast()
        if scorer is None:
            return None
        table = scorer.move_table(moves)
        if table is None:
            return None
        return _NKGainState(problem, scorer, table, rows)

    def can_materialize(self, count: int) -> bool:
        return self.scorer.workspace_bytes(count, self.table) <= WORKSPACE_LIMIT

    def init_rows(self, rows: np.ndarray, solutions: np.ndarray) -> None:
        scorer = self.scorer
        self.X8[rows] = solutions
        states = solutions[:, scorer._loci]
        idx0 = states.astype(np.int64) @ scorer._weights
        self.idx0[rows] = idx0
        self.contrib0[rows] = scorer.tables[np.arange(self.n)[None, :], idx0]

    def commit(self, rows: np.ndarray, bits: np.ndarray) -> bool:
        scorer = self.scorer
        X8, idx0 = self.X8, self.idx0
        rows_col = rows[:, None]
        for t in range(bits.shape[1]):
            p = bits[:, t]
            d = (1 - 2 * X8[rows, p]).astype(np.int64)  # old flip direction
            # np.add.at: the padded incidence rows repeat (locus 0, weight 0),
            # which must accumulate rather than last-write-win.
            np.add.at(idx0, (rows_col, scorer.aff_locus[p]), d[:, None] * scorer.aff_weight[p])
            X8[rows, p] ^= 1
        self.contrib0[rows] = scorer.tables[np.arange(self.n)[None, :], idx0[rows]]
        return True

    def materialize(self, rows: np.ndarray, out: np.ndarray) -> np.ndarray:
        scorer, table = self.scorer, self.table
        count = rows.shape[0]
        n = self.n
        num_moves = table.num_moves
        idx0 = self.idx0[rows]
        contrib0 = self.contrib0[rows]
        d = (1 - 2 * self.X8[rows]).astype(np.int64)
        idx_new = idx0[:, table.ent_locus]
        idx_new += d[:, table.cols_i[table.ent_move]] * table.w_i
        if table.cols_j is not None:
            idx_new += d[:, table.cols_j[table.ent_move]] * table.w_j
        vals = scorer.tables[table.ent_locus, idx_new]
        chunk = max(1, scorer.CUBE_ELEMENTS // max(1, count * n))
        cube = np.empty((count, min(chunk, num_moves), n), dtype=np.float64)
        for start in range(0, num_moves, chunk):
            stop = min(start + chunk, num_moves)
            c = stop - start
            block = cube[:, :c]
            block[:] = contrib0[:, None, :]
            el = np.searchsorted(table.ent_move, start, side="left")
            eh = np.searchsorted(table.ent_move, stop, side="left")
            block[:, table.ent_move[el:eh] - start, table.ent_locus[el:eh]] = vals[:, el:eh]
            out[:, start:stop] = 1.0 - block.mean(axis=2)
        return out


class _OneMaxGainState(_GainStateBase):
    """Maintained bit-count base for OneMax (the trivial case)."""

    _row_arrays = ("X8", "base")

    def __init__(self, problem, moves: np.ndarray, rows: int) -> None:
        self.problem = problem
        self.n = problem.n
        self.moves = moves
        self.num_moves = moves.shape[0]
        rows = max(rows, 1)
        self.X8 = np.zeros((rows, self.n), dtype=np.int8)
        self.base = np.zeros(rows, dtype=np.int64)

    @staticmethod
    def build(problem, moves: np.ndarray, rows: int):
        if moves.size == 0 or moves.min() < 0 or moves.max() >= problem.n:
            return None
        return _OneMaxGainState(problem, moves, rows)

    def init_rows(self, rows: np.ndarray, solutions: np.ndarray) -> None:
        self.X8[rows] = solutions
        self.base[rows] = self.n - solutions.sum(axis=1, dtype=np.int64)

    def commit(self, rows: np.ndarray, bits: np.ndarray) -> bool:
        d = (1 - 2 * self.X8[rows[:, None], bits].astype(np.int64)).sum(axis=1)
        self.base[rows] -= d
        self.X8[rows[:, None], bits] ^= 1
        return True

    def materialize(self, rows: np.ndarray, out: np.ndarray) -> np.ndarray:
        d = 1 - 2 * self.X8[rows].astype(np.int64)
        delta = d[:, self.moves].sum(axis=2)
        res = self.base[rows][:, None] - delta
        np.copyto(out, res, casting="unsafe")
        return out


#: Coupling/table caches, registered with the fastpath cache registry so
#: ``clear_fast_caches`` empties them alongside the scorer caches.
_PPP_SCORER_CACHE = BoundedCache(8)
_PPP_COUPLING_CACHE = BoundedCache(8)

_STATE_BUILDERS = {
    "ppp": _PPPGainState.build,
    "ubqp": _UBQPGainState.build,
    "maxsat": _MaxSatGainState.build,
    "nk": _NKGainState.build,
    "onemax": _OneMaxGainState.build,
}


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------
class GainEngine:
    """Self-healing incremental neighborhood evaluator for one search run.

    The engine binds the first frozen (read-only) move table it sees, keeps
    a mirror of the solution block it believes each replica holds, and
    maintains the per-problem gain state through :meth:`commit` calls from
    the search loop.  :meth:`try_evaluate` — consulted by every problem's
    ``evaluate_neighborhood_batch`` — verifies the mirror against the actual
    inputs and silently re-derives any diverged row, which makes every
    invalidation path (restarts, perturbations, kicks, migration, restore)
    correct by construction; :meth:`invalidate_all` exists as an explicit
    belt-and-braces hook for fault events.  Anything outside the compiled
    model declines to the scorer/reference chain, which is bit-identical.

    Gain state is *derived* data: a fresh engine re-initializes from the
    solutions at the first evaluation, so checkpoints never persist it and
    restores need no version bump.
    """

    def __init__(self, problem, rows_hint: int = 0) -> None:
        self.problem = problem
        self._builder = _STATE_BUILDERS.get(getattr(problem, "name", None))
        self._state = None
        self._moves = None
        self._dead = self._builder is None or not incremental_enabled()
        self._rows_hint = max(int(rows_hint), 1)
        self.mirror = np.zeros((self._rows_hint, getattr(problem, "n", 1)), dtype=np.int8)
        self.valid = np.zeros(self._rows_hint, dtype=bool)
        self._expected: np.ndarray | None = None
        self._ops: list = []
        self._check_every = check_period()
        self.stats = {
            "evals": 0,
            "declined": 0,
            "reinit_rows": 0,
            "commits": 0,
            "checks": 0,
        }

    # -- row bookkeeping -------------------------------------------------
    def _ensure_rows(self, rows: int) -> None:
        if rows <= self.mirror.shape[0]:
            return
        new_mirror = np.zeros((rows, self.mirror.shape[1]), dtype=np.int8)
        new_mirror[: self.mirror.shape[0]] = self.mirror
        self.mirror = new_mirror
        new_valid = np.zeros(rows, dtype=bool)
        new_valid[: self.valid.shape[0]] = self.valid
        self.valid = new_valid
        if self._state is not None:
            self._state.grow(rows)

    # -- search-loop interface -------------------------------------------
    def expect(self, rows: np.ndarray) -> None:
        """Declare the global replica ids of the next evaluation's rows."""
        rows = np.asarray(rows, dtype=np.int64)
        self._expected = rows
        self._buffer_op(("expect", rows.copy()))

    def commit(self, rows: np.ndarray, bits: np.ndarray) -> None:
        """Advance the gain state: ``bits[c]`` were flipped on ``rows[c]``."""
        rows = np.asarray(rows, dtype=np.int64)
        bits = np.asarray(bits, dtype=np.int64)
        if rows.size == 0:
            return
        self._buffer_op(("commit", rows.copy(), bits.copy()))
        self._commit_local(rows, bits)

    def _commit_local(self, rows: np.ndarray, bits: np.ndarray) -> None:
        self.stats["commits"] += 1
        if self._state is None:
            return
        self._ensure_rows(int(rows.max()) + 1)
        mask = self.valid[rows]
        if not mask.any():
            return
        sub_rows = rows[mask] if not mask.all() else rows
        sub_bits = bits[mask] if not mask.all() else bits
        if bits.shape[1] >= 2:
            srt = np.sort(sub_bits, axis=1)
            dup = (srt[:, 1:] == srt[:, :-1]).any(axis=1)
            if dup.any():
                # Repeated bits are outside the state model; re-derive later.
                self.valid[sub_rows[dup]] = False
                keep = ~dup
                if not keep.any():
                    return
                sub_rows = sub_rows[keep]
                sub_bits = sub_bits[keep]
        if self._state.commit(sub_rows, sub_bits):
            self.mirror[sub_rows[:, None], sub_bits] ^= 1
        else:
            self.valid[sub_rows] = False

    def invalidate_all(self) -> None:
        """Drop all derived state (fault events, pool resets)."""
        self.valid[:] = False
        self._ops = [("reset",)]

    # -- pool op buffer ---------------------------------------------------
    def _buffer_op(self, op) -> None:
        self._ops.append(op)
        if len(self._ops) > OPS_BUFFER_CAP:
            self._ops = [("reset",)]

    def drain_ops(self) -> list:
        """Buffered ops for shard-local worker engines (clears the buffer)."""
        ops, self._ops = self._ops, []
        return ops

    def apply_ops(self, ops) -> np.ndarray | None:
        """Apply a drained op sequence (worker side); returns the last
        expected-row declaration, if any."""
        expected = None
        for op in ops:
            kind = op[0]
            if kind == "reset":
                self.valid[:] = False
            elif kind == "commit":
                self._commit_local(op[1], op[2])
            elif kind == "expect":
                expected = op[1]
        return expected

    def set_expected(self, rows: np.ndarray | None) -> None:
        """Directly set the expected rows (worker shard slices)."""
        self._expected = rows

    # -- evaluation --------------------------------------------------------
    def try_evaluate(
        self,
        solutions: np.ndarray,
        moves: np.ndarray,
        out: np.ndarray | None,
    ) -> np.ndarray | None:
        """Serve one batched neighborhood evaluation, or decline (``None``)."""
        rows = self._expected
        self._expected = None
        if self._dead:
            return None
        if rows is None or rows.shape[0] != solutions.shape[0]:
            self.stats["declined"] += 1
            return None
        if self._state is None:
            if moves.flags.writeable:
                self.stats["declined"] += 1
                return None
            state = self._builder(self.problem, moves, max(self._rows_hint, int(rows.max()) + 1))
            if state is None:
                self._dead = True
                return None
            self._state = state
            self._moves = moves
            if state.rows < self.mirror.shape[0]:
                state.grow(self.mirror.shape[0])
        if moves is not self._moves:
            self.stats["declined"] += 1
            return None
        if not self._state.can_materialize(rows.shape[0]):
            self.stats["declined"] += 1
            return None
        self._ensure_rows(int(rows.max()) + 1)
        stale = ~self.valid[rows]
        stale |= (self.mirror[rows] != solutions).any(axis=1)
        if stale.any():
            stale_rows = rows[stale]
            stale_sols = np.ascontiguousarray(solutions[stale])
            self.mirror[stale_rows] = stale_sols
            self._state.init_rows(stale_rows, stale_sols)
            self.valid[stale_rows] = True
            self.stats["reinit_rows"] += int(stale.sum())
        if out is None:
            out = np.empty((solutions.shape[0], moves.shape[0]), dtype=np.float64)
        self._state.materialize(rows, out)
        self.stats["evals"] += 1
        if self._check_every and self.stats["evals"] % self._check_every == 0:
            self._debug_check(solutions, moves, out)
        return out

    def _debug_check(self, solutions, moves, got) -> None:
        """Periodic re-sync assert: recompute without the engine, compare."""
        prob = self.problem
        engine = getattr(prob, "_gain_engine", None)
        pool = getattr(prob, "_host_pool", None)
        prob._gain_engine = None
        prob._host_pool = None
        try:
            want = prob.evaluate_neighborhood_batch(solutions, moves)
        finally:
            prob._gain_engine = engine
            prob._host_pool = pool
        self.stats["checks"] += 1
        if not np.array_equal(want, got):
            raise AssertionError(
                "incremental gain-cache diverged from the recompute path "
                f"(problem={prob.name}, rows={solutions.shape[0]})"
            )


# ---------------------------------------------------------------------------
# Attachment helpers
# ---------------------------------------------------------------------------
def create_gain_engine(problem, rows_hint: int = 0) -> GainEngine | None:
    """A fresh engine for ``problem``, or ``None`` when unsupported/disabled."""
    if not incremental_enabled():
        return None
    if _STATE_BUILDERS.get(getattr(problem, "name", None)) is None:
        return None
    return GainEngine(problem, rows_hint)


def attach_gain_engine(problem, engine: GainEngine | None):
    """Attach ``engine`` to ``problem``; returns the previous attachment.

    Attachments nest (ILS/VNS descents inside an outer search): the caller
    restores the previous engine via :func:`detach_gain_engine`.
    """
    prev = getattr(problem, "_gain_engine", None)
    problem._gain_engine = engine
    return prev


def detach_gain_engine(problem, prev=None) -> None:
    """Restore the previous engine attachment (or clear it)."""
    problem._gain_engine = prev
