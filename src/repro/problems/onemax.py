"""OneMax / LeadingOnes — trivial binary workloads used for tests and examples.

These are not part of the paper's evaluation but give tiny, fully
understood landscapes on which every component of the library (mappings,
evaluators, local search algorithms, GPU simulator) can be exercised and
checked for exact expected behaviour.
"""

from __future__ import annotations

import numpy as np

from .base import BinaryProblem, as_solution

__all__ = ["OneMax", "LeadingOnes"]


class OneMax(BinaryProblem):
    """Minimize the number of zero bits (the classic OneMax, as a minimization)."""

    name = "onemax"

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = int(n)

    def evaluate(self, solution: np.ndarray) -> float:
        solution = as_solution(solution, self.n)
        return float(self.n - int(solution.sum()))

    def evaluate_batch(self, solutions: np.ndarray) -> np.ndarray:
        solutions = np.asarray(solutions, dtype=np.int8)
        if solutions.ndim != 2 or solutions.shape[1] != self.n:
            raise ValueError(f"expected a (batch, {self.n}) array, got {solutions.shape}")
        return (self.n - solutions.sum(axis=1)).astype(np.float64)

    def evaluate_neighborhood(self, solution, moves, *, chunk: int = 1 << 20) -> np.ndarray:
        solution = as_solution(solution, self.n)
        moves = np.asarray(moves, dtype=np.int64)
        if moves.ndim != 2:
            raise ValueError(f"expected an (num_moves, k) move array, got {moves.shape}")
        incremental = self._dispatch_gain_engine_scalar(solution, moves)
        if incremental is not None:
            return incremental
        base = self.n - int(solution.sum())
        # Each flipped 0 decreases the cost by one; each flipped 1 increases it.
        delta = (1 - 2 * solution.astype(np.int64))[moves].sum(axis=1)
        return (base - delta).astype(np.float64)

    def evaluate_neighborhood_batch(self, solutions, moves, *, out=None) -> np.ndarray:
        solutions, moves = self._check_batch_args(solutions, moves)
        sharded = self._dispatch_host_pool(solutions, moves, out)
        if sharded is not None:
            return sharded
        incremental = self._dispatch_gain_engine(solutions, moves, out)
        if incremental is not None:
            return incremental
        base = self.n - solutions.sum(axis=1, dtype=np.int64)  # (S,)
        d = 1 - 2 * solutions.astype(np.int64)  # (S, n)
        delta = d[:, moves].sum(axis=2)  # (S, M)
        res = base[:, None] - delta
        if out is None:
            return res.astype(np.float64)
        np.copyto(out, res, casting="unsafe")
        return out

    def cost_profile(self, k: int = 1) -> dict[str, float]:
        return {"flops": 2.0 * k, "bytes": 8.0 * k}


class LeadingOnes(BinaryProblem):
    """Minimize ``n`` minus the length of the leading run of ones."""

    name = "leadingones"

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = int(n)

    def evaluate(self, solution: np.ndarray) -> float:
        solution = as_solution(solution, self.n)
        zeros = np.nonzero(solution == 0)[0]
        leading = int(zeros[0]) if zeros.size else self.n
        return float(self.n - leading)

    def evaluate_batch(self, solutions: np.ndarray) -> np.ndarray:
        solutions = np.asarray(solutions, dtype=np.int8)
        if solutions.ndim != 2 or solutions.shape[1] != self.n:
            raise ValueError(f"expected a (batch, {self.n}) array, got {solutions.shape}")
        has_zero = (solutions == 0).any(axis=1)
        first_zero = np.argmax(solutions == 0, axis=1)
        leading = np.where(has_zero, first_zero, self.n)
        return (self.n - leading).astype(np.float64)
