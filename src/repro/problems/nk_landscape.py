"""Kauffman NK landscapes — tunably rugged binary fitness landscapes.

NK landscapes let the examples and ablation benchmarks control epistasis
(ruggedness) explicitly, which is useful to illustrate the paper's claim
that larger neighborhoods help most on difficult landscapes.  For k<=2 move
tables a subfunction-mask delta scorer (:class:`_NKFastScorer`) re-gathers
only the contribution tables a flip actually touches instead of re-indexing
every locus of every flipped copy.
"""

from __future__ import annotations

import numpy as np

from .base import BinaryProblem, as_solution
from .fastpath import MoveTableCache, fast_path_enabled, validated_pair_columns

__all__ = ["NKLandscape"]

#: Environment kill switch for the subfunction-mask delta evaluator: set
#: ``REPRO_NK_FAST=0`` to force the flip-and-regather reference path.
_FAST_ENV = "REPRO_NK_FAST"


class _NKFastMoveTable:
    """Preprocessed view of one validated ``(M, k<=2)`` move array.

    Carries the flattened (move, affected locus) entries with their summed
    index-delta weights, sorted by move so chunks of the move axis map to
    contiguous entry ranges.
    """

    __slots__ = ("moves", "num_moves", "cols_i", "cols_j", "ent_move", "ent_locus", "w_i", "w_j")

    def __init__(
        self,
        moves: np.ndarray,
        cols_i: np.ndarray,
        cols_j: np.ndarray | None,
        ent_move: np.ndarray,
        ent_locus: np.ndarray,
        w_i: np.ndarray,
        w_j: np.ndarray | None,
    ) -> None:
        self.moves = moves
        self.num_moves = int(moves.shape[0])
        self.cols_i = cols_i
        self.cols_j = cols_j
        self.ent_move = ent_move
        self.ent_locus = ent_locus
        self.w_i = w_i
        self.w_j = w_j


class _NKFastScorer:
    """Subfunction-mask delta evaluator for k<=2 flips.

    Flipping bit ``v`` only perturbs the loci whose epistatic mask contains
    ``v``; within each such locus the table index moves by exactly
    ``d_v * 2^pos`` where ``pos`` is ``v``'s bit position in the mask and
    ``d_v = 1 - 2 x_v`` the flip direction.  The scorer precomputes, per
    variable, the (locus, weight) incidence and, per move table, the merged
    (move, locus) -> (weight_i, weight_j) entry list.  One call then gathers
    the base contributions once, re-gathers only the perturbed entries, and
    scatters them into a ``(S, chunk, n)`` contribution cube whose
    ``mean(axis=2)`` has the same contiguous pairwise-summation layout as the
    reference path — making the result bit-identical, not just close: both
    paths reduce the exact same float64 contribution values in the exact
    same order.  Moves repeating an index are rejected per table (the
    reference buffers the flip, a double flip is a no-op).
    """

    #: Fall back to the reference path when one call's per-entry gathers
    #: would exceed this many bytes (the contribution cube is separately
    #: bounded by the chunked move axis).
    WORKSPACE_LIMIT = 256 * 1024 * 1024

    #: Element budget of the ``(S, chunk, n)`` float64 contribution cube.
    CUBE_ELEMENTS = 4_194_304

    def __init__(self, problem: "NKLandscape") -> None:
        self.n = problem.n
        self.tables = problem.tables
        self._loci = problem._loci
        self._weights = problem._weights
        # Per-variable incidence: which loci each variable enters, and with
        # which index weight.  Rows are padded with (locus 0, weight 0) —
        # weight-0 entries re-gather the base contribution, a no-op.
        flat_var = self._loci.ravel()
        flat_locus = np.repeat(np.arange(self.n, dtype=np.int64), self._loci.shape[1])
        flat_weight = np.tile(self._weights, self.n)
        counts = np.bincount(flat_var, minlength=self.n)
        self.max_aff = int(counts.max()) if counts.size else 0
        aff_locus = np.zeros((self.n, self.max_aff), dtype=np.int64)
        aff_weight = np.zeros((self.n, self.max_aff), dtype=np.int64)
        order = np.argsort(flat_var, kind="stable")
        sv = flat_var[order]
        starts = np.zeros(self.n, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        slot = np.arange(sv.size, dtype=np.int64) - starts[sv]
        aff_locus[sv, slot] = flat_locus[order]
        aff_weight[sv, slot] = flat_weight[order]
        self.aff_locus = aff_locus
        self.aff_weight = aff_weight
        self._tables_cache = MoveTableCache(self._build_table, maxsize=8)

    def _build_table(self, moves: np.ndarray) -> _NKFastMoveTable | None:
        cols = validated_pair_columns(moves, self.n, allow_duplicates=False)
        if cols is None:
            return None
        cols_i, cols_j = cols
        num_moves = moves.shape[0]
        move_ids = np.repeat(
            np.arange(num_moves, dtype=np.int64) * self.n, self.max_aff
        ).reshape(num_moves, self.max_aff)
        keys_i = (move_ids + self.aff_locus[cols_i]).ravel()
        wi = self.aff_weight[cols_i].ravel()
        if cols_j is None:
            uniq, inv = np.unique(keys_i, return_inverse=True)
            w_i = np.zeros(uniq.size, dtype=np.int64)
            np.add.at(w_i, inv, wi)
            w_j = None
        else:
            keys_j = (move_ids + self.aff_locus[cols_j]).ravel()
            wj = self.aff_weight[cols_j].ravel()
            uniq, inv = np.unique(np.concatenate([keys_i, keys_j]), return_inverse=True)
            w_i = np.zeros(uniq.size, dtype=np.int64)
            w_j = np.zeros(uniq.size, dtype=np.int64)
            np.add.at(w_i, inv[: keys_i.size], wi)
            np.add.at(w_j, inv[keys_i.size :], wj)
        ent_move = uniq // self.n
        ent_locus = uniq % self.n
        return _NKFastMoveTable(moves, cols_i, cols_j, ent_move, ent_locus, w_i, w_j)

    def move_table(self, moves: np.ndarray) -> _NKFastMoveTable | None:
        """Validated, preprocessed view of ``moves`` (``None`` if the fast
        path cannot score them — k > 2, duplicate or out-of-range bits)."""
        return self._tables_cache.lookup(moves)

    def workspace_bytes(self, num_solutions: int, table: _NKFastMoveTable) -> int:
        """Footprint of the per-entry index/value gathers for one call."""
        return 16 * num_solutions * (table.ent_move.size + 2 * self.n)

    def evaluate(
        self,
        solutions: np.ndarray,
        table: _NKFastMoveTable,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Score every (replica, move) pair: the ``(S, M)`` fitness matrix."""
        num_solutions = solutions.shape[0]
        num_moves = table.num_moves
        n = self.n
        states = solutions[:, self._loci]  # (S, n, K+1)
        idx0 = states.astype(np.int64) @ self._weights  # (S, n)
        contrib0 = self.tables[np.arange(n)[None, :], idx0]  # (S, n)
        d = (1 - 2 * solutions).astype(np.int64)  # flip directions
        idx_new = idx0[:, table.ent_locus]
        idx_new += d[:, table.cols_i[table.ent_move]] * table.w_i
        if table.cols_j is not None:
            idx_new += d[:, table.cols_j[table.ent_move]] * table.w_j
        vals = self.tables[table.ent_locus, idx_new]  # (S, E)
        if out is None:
            out = np.empty((num_solutions, num_moves), dtype=np.float64)
        chunk = max(1, self.CUBE_ELEMENTS // max(1, num_solutions * n))
        cube = np.empty((num_solutions, min(chunk, num_moves), n), dtype=np.float64)
        for start in range(0, num_moves, chunk):
            stop = min(start + chunk, num_moves)
            c = stop - start
            block = cube[:, :c]
            block[:] = contrib0[:, None, :]
            el = np.searchsorted(table.ent_move, start, side="left")
            eh = np.searchsorted(table.ent_move, stop, side="left")
            block[:, table.ent_move[el:eh] - start, table.ent_locus[el:eh]] = vals[:, el:eh]
            out[:, start:stop] = 1.0 - block.mean(axis=2)
        return out


class NKLandscape(BinaryProblem):
    """Minimization form of the NK landscape (cost = 1 - average contribution).

    Each bit ``i`` interacts with ``K`` other bits; its contribution is a
    random table lookup over the ``2^(K+1)`` joint states.  The global
    fitness is the mean contribution, here reported as ``1 - mean`` so that
    lower is better and 0 is the (usually unreachable) ideal.
    """

    name = "nk"

    def __init__(
        self,
        n: int,
        k: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if not 0 <= k < n:
            raise ValueError(f"K must satisfy 0 <= K < n, got {k}")
        self.n = int(n)
        self.k_interactions = int(k)
        rng = np.random.default_rng(rng)
        # neighbors[i] = the K other loci entering bit i's contribution
        self.neighbors = np.empty((n, k), dtype=np.int64)
        choices = np.arange(n)
        for i in range(n):
            others = np.delete(choices, i)
            self.neighbors[i] = rng.choice(others, size=k, replace=False)
        # contribution tables, one row per locus, 2^(K+1) entries each
        self.tables = rng.random((n, 2 ** (k + 1)))
        # Precompute the full epistatic index matrix: locus i depends on
        # [i, neighbors[i]...] with bit i the most significant position.
        self._loci = np.concatenate([np.arange(n)[:, None], self.neighbors], axis=1)
        self._weights = (2 ** np.arange(k, -1, -1)).astype(np.int64)
        # Subfunction-mask delta evaluator: built lazily on first use,
        # disabled via REPRO_NK_FAST.  Always exact — it gathers the same
        # table entries and reduces them in the same layout as the reference.
        self._fast_scorer: _NKFastScorer | None = None
        self._fast_enabled = fast_path_enabled(_FAST_ENV)

    def _fast(self) -> _NKFastScorer | None:
        if not self._fast_enabled:
            return None
        if self._fast_scorer is None:
            self._fast_scorer = _NKFastScorer(self)
        return self._fast_scorer

    # ------------------------------------------------------------------
    def _contributions(self, solutions: np.ndarray) -> np.ndarray:
        """Per-locus contributions for a ``(batch, n)`` array of solutions."""
        states = solutions[:, self._loci]  # (batch, n, k+1)
        idx = states.astype(np.int64) @ self._weights  # (batch, n)
        return self.tables[np.arange(self.n)[None, :], idx]

    def evaluate(self, solution: np.ndarray) -> float:
        solution = as_solution(solution, self.n)
        contrib = self._contributions(solution[None, :])[0]
        return float(1.0 - contrib.mean())

    def evaluate_batch(self, solutions: np.ndarray) -> np.ndarray:
        solutions = np.asarray(solutions, dtype=np.int8)
        if solutions.ndim != 2 or solutions.shape[1] != self.n:
            raise ValueError(f"expected a (batch, {self.n}) array, got {solutions.shape}")
        contrib = self._contributions(solutions)
        return 1.0 - contrib.mean(axis=1)

    def evaluate_neighborhood_batch(self, solutions, moves, *, out=None) -> np.ndarray:
        """Vectorized (replica, move) scoring with delta fast path.

        Dispatches to the subfunction-mask scorer (:class:`_NKFastScorer`)
        for qualifying k<=2 move tables — bit-identical to, and cheaper
        than, the flip-and-regather reference path used for everything else.
        ``REPRO_NK_FAST=0`` forces the reference path.  ``out``, when given,
        must be a ``(S, M)`` float64 array and is written in place.
        """
        solutions, moves = self._check_batch_args(solutions, moves)
        sharded = self._dispatch_host_pool(solutions, moves, out)
        if sharded is not None:
            return sharded
        incremental = self._dispatch_gain_engine(solutions, moves, out)
        if incremental is not None:
            return incremental
        num_solutions = solutions.shape[0]
        scorer = self._fast()
        if scorer is not None and num_solutions and moves.shape[0]:
            table = scorer.move_table(moves)
            if table is not None:
                if scorer.workspace_bytes(num_solutions, table) <= scorer.WORKSPACE_LIMIT:
                    return scorer.evaluate(solutions, table, out=out)
        return self._evaluate_neighborhood_batch_reference(solutions, moves, out=out)

    def _evaluate_neighborhood_batch_reference(self, solutions, moves, *, out=None) -> np.ndarray:
        """Flip-and-regather ground truth for every move table.

        Vectorized over the solution axis: every replica's flipped copies go
        through one `_contributions` table sweep.  The row budget bounds the
        (rows, n, K+1) epistatic state tensor.
        """
        budget = max(64, 2_097_152 // max(1, self.n * (self.k_interactions + 1)))
        return self._evaluate_neighborhood_batch_by_flips(
            solutions, moves, row_budget=budget, out=out
        )

    def is_solution(self, fitness: float) -> bool:
        return False

    def cost_profile(self, k: int = 1) -> dict[str, float]:
        # Full re-evaluation touches every locus table once.
        flops = 3.0 * self.n * (self.k_interactions + 1)
        mem_bytes = 8.0 * self.n * (self.k_interactions + 1)
        return {"flops": flops, "bytes": mem_bytes}
