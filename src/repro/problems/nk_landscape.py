"""Kauffman NK landscapes — tunably rugged binary fitness landscapes.

NK landscapes let the examples and ablation benchmarks control epistasis
(ruggedness) explicitly, which is useful to illustrate the paper's claim
that larger neighborhoods help most on difficult landscapes.
"""

from __future__ import annotations

import numpy as np

from .base import BinaryProblem, as_solution

__all__ = ["NKLandscape"]


class NKLandscape(BinaryProblem):
    """Minimization form of the NK landscape (cost = 1 - average contribution).

    Each bit ``i`` interacts with ``K`` other bits; its contribution is a
    random table lookup over the ``2^(K+1)`` joint states.  The global
    fitness is the mean contribution, here reported as ``1 - mean`` so that
    lower is better and 0 is the (usually unreachable) ideal.
    """

    name = "nk"

    def __init__(
        self,
        n: int,
        k: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if not 0 <= k < n:
            raise ValueError(f"K must satisfy 0 <= K < n, got {k}")
        self.n = int(n)
        self.k_interactions = int(k)
        rng = np.random.default_rng(rng)
        # neighbors[i] = the K other loci entering bit i's contribution
        self.neighbors = np.empty((n, k), dtype=np.int64)
        choices = np.arange(n)
        for i in range(n):
            others = np.delete(choices, i)
            self.neighbors[i] = rng.choice(others, size=k, replace=False)
        # contribution tables, one row per locus, 2^(K+1) entries each
        self.tables = rng.random((n, 2 ** (k + 1)))
        # Precompute the full epistatic index matrix: locus i depends on
        # [i, neighbors[i]...] with bit i the most significant position.
        self._loci = np.concatenate([np.arange(n)[:, None], self.neighbors], axis=1)
        self._weights = (2 ** np.arange(k, -1, -1)).astype(np.int64)

    # ------------------------------------------------------------------
    def _contributions(self, solutions: np.ndarray) -> np.ndarray:
        """Per-locus contributions for a ``(batch, n)`` array of solutions."""
        states = solutions[:, self._loci]  # (batch, n, k+1)
        idx = states.astype(np.int64) @ self._weights  # (batch, n)
        return self.tables[np.arange(self.n)[None, :], idx]

    def evaluate(self, solution: np.ndarray) -> float:
        solution = as_solution(solution, self.n)
        contrib = self._contributions(solution[None, :])[0]
        return float(1.0 - contrib.mean())

    def evaluate_batch(self, solutions: np.ndarray) -> np.ndarray:
        solutions = np.asarray(solutions, dtype=np.int8)
        if solutions.ndim != 2 or solutions.shape[1] != self.n:
            raise ValueError(f"expected a (batch, {self.n}) array, got {solutions.shape}")
        contrib = self._contributions(solutions)
        return 1.0 - contrib.mean(axis=1)

    def evaluate_neighborhood_batch(self, solutions, moves) -> np.ndarray:
        # Vectorized over the solution axis: every replica's flipped copies go
        # through one `_contributions` table sweep.  The row budget bounds the
        # (rows, n, K+1) epistatic state tensor.
        budget = max(64, 2_097_152 // max(1, self.n * (self.k_interactions + 1)))
        return self._evaluate_neighborhood_batch_by_flips(solutions, moves, row_budget=budget)

    def is_solution(self, fitness: float) -> bool:
        return False

    def cost_profile(self, k: int = 1) -> dict[str, float]:
        # Full re-evaluation touches every locus table once.
        flops = 3.0 * self.n * (self.k_interactions + 1)
        mem_bytes = 8.0 * self.n * (self.k_interactions + 1)
        return {"flops": flops, "bytes": mem_bytes}
