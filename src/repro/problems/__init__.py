"""Binary optimization problems used as workloads for the neighborhood kernels."""

from .base import BinaryProblem, as_solution, flip_bits
from .fastpath import cache_stats, clear_fast_caches
from .incremental import (
    GainEngine,
    attach_gain_engine,
    create_gain_engine,
    detach_gain_engine,
    incremental_enabled,
)
from .instances import (
    FIGURE8_INSTANCES,
    TABLE_INSTANCES,
    PPPInstanceSpec,
    instance_seed,
    make_figure8_instance,
    make_table_instance,
)
from .maxsat import MaxSat, generate_random_ksat
from .nk_landscape import NKLandscape
from .onemax import LeadingOnes, OneMax
from .ppp import PermutedPerceptronProblem, generate_ppp_instance
from .ppp_heuristics import best_of_pool, majority_vote_solution, randomized_majority_solution
from .ubqp import UBQP

__all__ = [
    "BinaryProblem",
    "GainEngine",
    "as_solution",
    "attach_gain_engine",
    "cache_stats",
    "clear_fast_caches",
    "create_gain_engine",
    "detach_gain_engine",
    "flip_bits",
    "incremental_enabled",
    "PermutedPerceptronProblem",
    "generate_ppp_instance",
    "majority_vote_solution",
    "randomized_majority_solution",
    "best_of_pool",
    "OneMax",
    "LeadingOnes",
    "MaxSat",
    "generate_random_ksat",
    "NKLandscape",
    "UBQP",
    "PPPInstanceSpec",
    "TABLE_INSTANCES",
    "FIGURE8_INSTANCES",
    "make_table_instance",
    "make_figure8_instance",
    "instance_seed",
]
