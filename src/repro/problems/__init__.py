"""Binary optimization problems used as workloads for the neighborhood kernels."""

from .base import BinaryProblem, as_solution, flip_bits
from .fastpath import clear_fast_caches
from .instances import (
    FIGURE8_INSTANCES,
    TABLE_INSTANCES,
    PPPInstanceSpec,
    instance_seed,
    make_figure8_instance,
    make_table_instance,
)
from .maxsat import MaxSat, generate_random_ksat
from .nk_landscape import NKLandscape
from .onemax import LeadingOnes, OneMax
from .ppp import PermutedPerceptronProblem, generate_ppp_instance
from .ppp_heuristics import best_of_pool, majority_vote_solution, randomized_majority_solution
from .ubqp import UBQP

__all__ = [
    "BinaryProblem",
    "as_solution",
    "clear_fast_caches",
    "flip_bits",
    "PermutedPerceptronProblem",
    "generate_ppp_instance",
    "majority_vote_solution",
    "randomized_majority_solution",
    "best_of_pool",
    "OneMax",
    "LeadingOnes",
    "MaxSat",
    "generate_random_ksat",
    "NKLandscape",
    "UBQP",
    "PPPInstanceSpec",
    "TABLE_INSTANCES",
    "FIGURE8_INSTANCES",
    "make_table_instance",
    "make_figure8_instance",
    "instance_seed",
]
