"""Unified interconnect engine: topology-aware transfer routing with
shared-link contention.

The seed transfer model priced every host<->device copy against a private
point-to-point PCIe link: ``N`` concurrent uploads to ``N`` devices ran
fully parallel, each at full rate.  Real multi-GPU hosts hang every card off
one shared root complex, so concurrent transfers *contend* for the host
uplink — which is precisely why the paper's accounting of transfer cost
versus kernel time matters, and why delta packets, fused reductions and
peer-to-peer routing pay off twice on a busy host (fewer bytes *and* fewer
bytes over the shared link).

This module makes the interconnect a first-class, contended resource:

* a :class:`Link` is one physical segment (host uplink, per-device PCIe
  lane, P2P mesh edge, switch fabric) with a capacity shared by every
  transfer in flight on it;
* an :class:`InterconnectTopology` names the links and resolves, per
  (device, host-memory-kind) and per device pair, the :class:`Route` a copy
  takes — a path of links plus the per-transfer latency and rate ceiling
  (pinned/pageable and P2P pricing are link properties here, not
  :class:`~repro.gpu.device.DeviceSpec` scalars; the presets *derive* their
  links from the specs so single-transfer pricing stays bit-identical to
  the legacy :meth:`~repro.gpu.timing.GPUTimingModel.transfer_time` model);
* a :class:`TransferEngine` prices every copy by routing it over its links
  and time-sharing each link's bandwidth among overlapping transfers.

Arbitration is **progressive fair-share**: transfers submitted together in
one :meth:`TransferEngine.transfer_batch` split every shared link's
capacity equally for as long as they overlap (N concurrent uploads each see
~1/N of the uplink), while transfers committed earlier keep their grants —
a later arrival is slowed by them but cannot retroactively stretch them,
mirroring how a DMA engine honours grants it has already issued.  A
transfer's instantaneous rate is the minimum over its path of its fair
share on each link, capped by its own rate ceiling; integrating that rate
over the piecewise-constant load profile yields the duration.

An uncontended transfer therefore prices *exactly* as the legacy model
(latency + bytes/bandwidth), and every contended transfer is at least that
slow; the difference is recorded as the transfer's **contention stall**.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Sequence

from .device import DeviceSpec
from .memory import HostMemoryKind
from .streams import Timeline

__all__ = [
    "Link",
    "Route",
    "InterconnectTopology",
    "TransferRequest",
    "TransferGrant",
    "TransferEngine",
    "TOPOLOGY_PRESETS",
    "resolve_topology",
    "format_interconnect",
]

#: Directions a transfer can take over the fabric.
H2D, D2H, P2P = "h2d", "d2h", "p2p"


@dataclass(frozen=True)
class Link:
    """One physical segment of the interconnect fabric.

    ``bandwidth`` is the segment's *capacity*, shared by every transfer in
    flight on it; the per-kind fields describe how a single transfer
    experiences the segment (a pageable copy is throttled below the DMA
    capacity by the driver's bounce-buffer staging, and pays a higher
    per-operation latency than a pinned one).
    """

    name: str
    #: Capacity in bytes/s, time-shared by all concurrent transfers.
    bandwidth: float
    #: Per-transfer latency of crossing this segment, seconds.
    latency: float = 0.0
    #: Full duplex: the two directions own independent capacity.
    duplex: bool = True
    #: Shared fabric (host uplink, switch): reported in the interconnect
    #: summary and rendered as its own lane in timeline reports.
    shared: bool = False
    #: Rate ceiling for a single pageable-host crossing (bounce-buffer
    #: staging); ``None`` means the full link bandwidth.
    pageable_bandwidth: float | None = None
    #: Latency overrides per host-memory kind (``None`` -> :attr:`latency`).
    pageable_latency: float | None = None
    pinned_latency: float | None = None

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"link {self.name!r} needs positive bandwidth")
        if self.latency < 0:
            raise ValueError(f"link {self.name!r} needs non-negative latency")

    def rate_cap(self, kind: HostMemoryKind | None) -> float:
        """Per-transfer rate ceiling of one copy crossing this link."""
        if kind is HostMemoryKind.PAGEABLE and self.pageable_bandwidth is not None:
            return self.pageable_bandwidth
        return self.bandwidth

    def kind_latency(self, kind: HostMemoryKind | None) -> float:
        """Per-transfer latency contribution for a copy of this kind."""
        if kind is HostMemoryKind.PAGEABLE and self.pageable_latency is not None:
            return self.pageable_latency
        if kind is HostMemoryKind.PINNED and self.pinned_latency is not None:
            return self.pinned_latency
        return self.latency

    def channel(self, direction: str) -> str:
        """Capacity channel a transfer occupies (directions share on half duplex)."""
        return direction if self.duplex else "half"


@dataclass(frozen=True)
class Route:
    """The path one transfer takes: links crossed, latency and rate ceiling."""

    links: tuple[Link, ...]
    latency: float
    rate_cap: float

    @classmethod
    def over(cls, links: Sequence[Link], kind: HostMemoryKind | None) -> "Route":
        return cls(
            links=tuple(links),
            latency=sum(link.kind_latency(kind) for link in links),
            rate_cap=min(link.rate_cap(kind) for link in links),
        )


def _device_link(key: str, spec: DeviceSpec) -> Link:
    """The per-device PCIe lane, derived from the spec's legacy scalars.

    Capacity is the pinned (straight-DMA) rate; pageable copies are
    rate-capped at the spec's bounce-buffered figure, so a *single* transfer
    of either kind prices bit-identically to the legacy model.
    """
    return Link(
        name=f"pcie:{key}",
        bandwidth=spec.pcie_pinned_bandwidth,
        latency=spec.pcie_latency,
        pageable_bandwidth=spec.pcie_bandwidth,
        pageable_latency=spec.pcie_latency,
        pinned_latency=spec.pcie_pinned_latency,
    )


def _peer_link(src_key: str, src: DeviceSpec, dst_key: str, dst: DeviceSpec) -> Link:
    """A direct peer edge priced like the legacy ``peer_transfer_time``."""
    return Link(
        name=f"p2p:{src_key}-{dst_key}",
        bandwidth=min(src.p2p_bandwidth, dst.p2p_bandwidth),
        latency=max(src.p2p_latency, dst.p2p_latency),
    )


class InterconnectTopology:
    """Named links plus the routing tables of one host's interconnect.

    Construct directly for custom fabrics, or through the preset builders
    (:meth:`dedicated`, :meth:`shared_uplink`, :meth:`switched`,
    :meth:`nvlink`), which derive every link from the device specs so that
    uncontended pricing matches the legacy per-spec scalars exactly.
    """

    def __init__(
        self,
        name: str,
        *,
        device_keys: Sequence[str],
        host_paths: dict[str, tuple[Link, ...]],
        peer_paths: dict[tuple[str, str], tuple[Link, ...]],
        uplink: Link | None = None,
    ) -> None:
        self.name = name
        self.device_keys = list(device_keys)
        if not self.device_keys:
            raise ValueError("topology needs at least one device")
        missing = [key for key in self.device_keys if key not in host_paths]
        if missing:
            raise ValueError(f"no host path for devices {missing}")
        self._host_paths = dict(host_paths)
        self._peer_paths = dict(peer_paths)
        self.uplink = uplink
        self.links: dict[str, Link] = {}
        for path in (*host_paths.values(), *peer_paths.values()):
            for link in path:
                self.links.setdefault(link.name, link)
        if uplink is not None:
            self.links.setdefault(uplink.name, uplink)

    # ------------------------------------------------------------------
    @property
    def num_devices(self) -> int:
        return len(self.device_keys)

    def host_route(self, device: str, kind: HostMemoryKind) -> Route:
        """The path of one host<->device copy for the given host-memory kind."""
        try:
            path = self._host_paths[device]
        except KeyError:
            raise KeyError(f"unknown device {device!r}; topology has {self.device_keys}")
        return Route.over(path, kind)

    def peer_route(self, src: str, dst: str) -> Route | None:
        """The device->device path, or ``None`` when no peer access exists."""
        path = self._peer_paths.get((src, dst))
        if path is None:
            path = self._peer_paths.get((dst, src))
        if path is None:
            return None
        return Route.over(path, None)

    def has_peer_route(self, src: str, dst: str) -> bool:
        return self.peer_route(src, dst) is not None

    def shared_links(self) -> list[Link]:
        return [link for link in self.links.values() if link.shared]

    # ------------------------------------------------------------------
    # Preset builders (derive every link from the device specs)
    # ------------------------------------------------------------------
    @staticmethod
    def _keys(specs: Sequence[DeviceSpec]) -> list[str]:
        return [f"gpu{i}" for i in range(len(specs))]

    @classmethod
    def _pairwise_peers(
        cls, keys: Sequence[str], specs: Sequence[DeviceSpec]
    ) -> dict[tuple[str, str], tuple[Link, ...]]:
        peers: dict[tuple[str, str], tuple[Link, ...]] = {}
        for i, (ka, sa) in enumerate(zip(keys, specs)):
            for kb, sb in zip(keys[i + 1 :], specs[i + 1 :]):
                if sa.p2p_capable and sb.p2p_capable:
                    peers[(ka, kb)] = (_peer_link(ka, sa, kb, sb),)
        return peers

    @classmethod
    def dedicated(cls, specs: Sequence[DeviceSpec]) -> "InterconnectTopology":
        """Legacy model: every device owns a private host link (no uplink).

        Concurrent transfers to *different* devices never contend; transfers
        to the same device share that device's lane.  This is the default,
        keeping existing workloads' timing unchanged.
        """
        keys = cls._keys(specs)
        host_paths = {
            key: (_device_link(key, spec),) for key, spec in zip(keys, specs)
        }
        return cls(
            "dedicated",
            device_keys=keys,
            host_paths=host_paths,
            peer_paths=cls._pairwise_peers(keys, specs),
        )

    @classmethod
    def shared_uplink(
        cls,
        specs: Sequence[DeviceSpec],
        *,
        uplink_bandwidth: float | None = None,
        uplink_latency: float = 0.0,
        name: str = "shared",
    ) -> "InterconnectTopology":
        """One host root complex shared by every host<->device transfer.

        The uplink's capacity defaults to the fastest device lane, so a
        single transfer still prices exactly as on a dedicated link while
        ``N`` concurrent ones each see ``~1/N`` of the root complex.  Peer
        copies take direct P2P edges and stay off the uplink entirely —
        which is the second, larger win of peer delta routing on a
        contended host.
        """
        keys = cls._keys(specs)
        if uplink_bandwidth is None:
            uplink_bandwidth = max(spec.pcie_pinned_bandwidth for spec in specs)
        uplink = Link(
            name="uplink",
            bandwidth=uplink_bandwidth,
            latency=uplink_latency,
            shared=True,
        )
        host_paths = {
            key: (uplink, _device_link(key, spec)) for key, spec in zip(keys, specs)
        }
        return cls(
            name,
            device_keys=keys,
            host_paths=host_paths,
            peer_paths=cls._pairwise_peers(keys, specs),
            uplink=uplink,
        )

    @classmethod
    def switched(cls, specs: Sequence[DeviceSpec]) -> "InterconnectTopology":
        """Devices behind a PCIe switch whose one uplink feeds the host.

        Host transfers contend on the switch uplink (as in
        :meth:`shared_uplink`); peer copies cross the shared *switch fabric*
        instead of direct edges, so concurrent P2P transfers contend with
        each other — but still never with host traffic.
        """
        keys = cls._keys(specs)
        uplink = Link(
            name="uplink",
            bandwidth=max(spec.pcie_pinned_bandwidth for spec in specs),
            latency=0.0,
            shared=True,
        )
        capable = [spec for spec in specs if spec.p2p_capable]
        fabric = None
        if len(capable) >= 2:
            fabric = Link(
                name="switch",
                bandwidth=max(spec.p2p_bandwidth for spec in capable),
                latency=max(spec.p2p_latency for spec in capable),
                shared=True,
            )
        host_paths = {
            key: (uplink, _device_link(key, spec)) for key, spec in zip(keys, specs)
        }
        peer_paths: dict[tuple[str, str], tuple[Link, ...]] = {}
        if fabric is not None:
            for i, (ka, sa) in enumerate(zip(keys, specs)):
                for kb, sb in zip(keys[i + 1 :], specs[i + 1 :]):
                    if sa.p2p_capable and sb.p2p_capable:
                        peer_paths[(ka, kb)] = (fabric,)
        return cls(
            "switched",
            device_keys=keys,
            host_paths=host_paths,
            peer_paths=peer_paths,
            uplink=uplink,
        )

    @classmethod
    def nvlink(
        cls,
        specs: Sequence[DeviceSpec],
        *,
        peer_bandwidth: float = 25.0e9,
        peer_latency: float = 2.0e-6,
    ) -> "InterconnectTopology":
        """Shared host uplink plus an NVLink-style all-to-all peer mesh.

        Every device pair owns a dedicated fat, low-latency peer edge (the
        mesh is not a shared fabric), while host traffic still funnels
        through the one root complex — the configuration where peer delta
        routing wins the most.
        """
        keys = cls._keys(specs)
        uplink = Link(
            name="uplink",
            bandwidth=max(spec.pcie_pinned_bandwidth for spec in specs),
            latency=0.0,
            shared=True,
        )
        host_paths = {
            key: (uplink, _device_link(key, spec)) for key, spec in zip(keys, specs)
        }
        peer_paths = {
            (ka, kb): (
                Link(name=f"nvlink:{ka}-{kb}", bandwidth=peer_bandwidth, latency=peer_latency),
            )
            for i, ka in enumerate(keys)
            for kb in keys[i + 1 :]
        }
        return cls(
            "nvlink",
            device_keys=keys,
            host_paths=host_paths,
            peer_paths=peer_paths,
            uplink=uplink,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InterconnectTopology({self.name!r}, devices={self.device_keys}, "
            f"links={sorted(self.links)})"
        )


#: Named topology presets selectable from the harness and the CLI.
TOPOLOGY_PRESETS = {
    "dedicated": InterconnectTopology.dedicated,
    "shared": InterconnectTopology.shared_uplink,
    "shared-uplink": InterconnectTopology.shared_uplink,
    "switched": InterconnectTopology.switched,
    "nvlink": InterconnectTopology.nvlink,
}


def resolve_topology(
    topology: "InterconnectTopology | str | None", specs: Sequence[DeviceSpec]
) -> InterconnectTopology:
    """Resolve a topology argument (preset name, instance or ``None``).

    ``None`` selects the back-compat :meth:`InterconnectTopology.dedicated`
    model; a string picks a preset from :data:`TOPOLOGY_PRESETS`; an
    instance is validated against the pool size and returned unchanged.
    """
    if topology is None:
        return InterconnectTopology.dedicated(specs)
    if isinstance(topology, InterconnectTopology):
        if topology.num_devices != len(specs):
            raise ValueError(
                f"topology {topology.name!r} describes {topology.num_devices} devices "
                f"but the pool has {len(specs)}"
            )
        return topology
    if isinstance(topology, str):
        key = topology.lower()
        if key not in TOPOLOGY_PRESETS:
            raise ValueError(
                f"unknown topology preset {topology!r}; "
                f"available: {sorted(set(TOPOLOGY_PRESETS))}"
            )
        return TOPOLOGY_PRESETS[key](specs)
    raise TypeError(
        f"topology must be a preset name, an InterconnectTopology or None, "
        f"got {type(topology)}"
    )


@dataclass(frozen=True)
class TransferRequest:
    """One copy to be routed over the fabric."""

    device: str
    direction: str  # "h2d" | "d2h" | "p2p"
    nbytes: float
    kind: HostMemoryKind | None = HostMemoryKind.PAGEABLE
    #: Earliest simulated instant the copy can start (its stream-ordered
    #: issue time, as resolved by the caller).
    start: float = 0.0
    #: Destination device for ``direction="p2p"``.
    peer: str | None = None
    label: str = ""


@dataclass(frozen=True)
class TransferGrant:
    """The engine's answer: when the copy runs and how long it takes."""

    request: TransferRequest
    start: float
    #: Wall duration of the grant, including the route latency.
    duration: float
    #: What the same copy would cost alone on its route (the legacy price).
    dedicated: float
    #: Links crossed, in order.
    links: tuple[str, ...]

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def stall(self) -> float:
        """Extra time spent waiting on shared-link arbitration."""
        return max(0.0, self.duration - self.dedicated)


@dataclass
class _ChannelLoad:
    """Committed transfer intervals on one (link, channel), kept sorted."""

    starts: list[float] = field(default_factory=list)
    ends: list[float] = field(default_factory=list)
    nbytes: float = 0.0
    transfers: int = 0

    def active_at(self, t: float) -> int:
        return bisect_right(self.starts, t) - bisect_right(self.ends, t)

    def next_boundary(self, t: float) -> float | None:
        candidates = []
        idx = bisect_right(self.starts, t)
        if idx < len(self.starts):
            candidates.append(self.starts[idx])
        idx = bisect_right(self.ends, t)
        if idx < len(self.ends):
            candidates.append(self.ends[idx])
        return min(candidates) if candidates else None

    def commit(self, start: float, end: float, nbytes: float) -> None:
        insort(self.starts, start)
        insort(self.ends, end)
        self.nbytes += nbytes
        self.transfers += 1

    def busy_time(self) -> float:
        """Union length of the committed intervals (the channel's busy time).

        ``starts`` and ``ends`` are kept sorted independently; pairing them
        positionally yields intervals with the same counting function (and
        therefore the same union measure) as the original set.
        """
        busy = 0.0
        cursor = float("-inf")
        for start, end in zip(self.starts, self.ends):
            if start > cursor:
                busy += end - start
                cursor = end
            elif end > cursor:
                busy += end - cursor
                cursor = end
        return busy


class _PricingItem:
    """Working state of one request inside the fluid arbitration."""

    __slots__ = ("request", "route", "channels", "remaining", "duration", "finished")

    def __init__(self, request: TransferRequest, route: Route) -> None:
        self.request = request
        self.route = route
        self.channels = tuple(
            (link, link.channel(request.direction)) for link in route.links
        )
        self.remaining = float(request.nbytes)
        self.duration = 0.0
        self.finished = self.remaining <= 0.0


class TransferEngine:
    """Routes copies over an :class:`InterconnectTopology` and arbitrates
    each link's bandwidth among overlapping transfers.

    The engine is shared by every :class:`~repro.gpu.runtime.GPUContext` of
    one pool; contexts ask it to *price* a copy (given the copy's
    stream-resolved start time) and then place the returned grant on their
    own stream timelines, so the contention model composes with the
    existing event/stream machinery instead of replacing it.
    """

    def __init__(self, topology: InterconnectTopology) -> None:
        self.topology = topology
        self._loads: dict[tuple[str, str], _ChannelLoad] = {}
        #: Interconnect lanes: one stream per *shared* link, fed with the
        #: grant windows of every transfer crossing it (for timeline reports).
        self.timeline = Timeline()
        self.total_stall = 0.0
        self.stall_by_device: dict[str, float] = {}
        self.transfers = 0
        #: Transient-failure injection (see :meth:`inject_transfer_faults`):
        #: each armed fault is a ``(retries, backoff)`` pair consumed by one
        #: future host transfer.
        self._pending_faults: list[tuple[int, float]] = []
        self.retried_transfers = 0
        self.retry_time = 0.0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, request: TransferRequest) -> Route:
        if request.direction == P2P:
            if request.peer is None:
                raise ValueError("p2p transfer needs a destination device")
            route = self.topology.peer_route(request.device, request.peer)
            if route is None:
                raise ValueError(
                    f"no peer route between {request.device!r} and {request.peer!r} "
                    f"in topology {self.topology.name!r}"
                )
            return route
        if request.direction not in (H2D, D2H):
            raise ValueError(f"unknown transfer direction {request.direction!r}")
        kind = request.kind if request.kind is not None else HostMemoryKind.PAGEABLE
        return self.topology.host_route(request.device, kind)

    def has_peer_route(self, src: str, dst: str) -> bool:
        return self.topology.has_peer_route(src, dst)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def inject_transfer_faults(
        self, count: int = 1, *, retries: int = 1, backoff: float = 1.0e-3
    ) -> None:
        """Arm ``count`` transient host-transfer failures.

        Each of the next ``count`` non-empty host<->device copies priced by
        the engine fails ``retries`` times before succeeding; every failed
        attempt costs the route latency plus an exponentially growing
        backoff gap (``backoff * 2**attempt``).  The penalty extends the
        grant's duration — and therefore the issuing stream's timeline —
        but the copy still delivers its payload, so trajectories are
        unaffected: this is a *timing* fault, tallied in
        :attr:`retried_transfers` / :attr:`retry_time`.
        """
        if count < 1:
            raise ValueError(f"fault count must be >= 1, got {count}")
        if retries < 1:
            raise ValueError(f"retries must be >= 1, got {retries}")
        if backoff < 0.0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        self._pending_faults.extend((int(retries), float(backoff)) for _ in range(count))

    def _consume_fault(self, item: _PricingItem) -> float:
        """Retry penalty for one priced request (0.0 when no fault is armed)."""
        if not self._pending_faults:
            return 0.0
        request = item.request
        if request.direction not in (H2D, D2H) or request.nbytes <= 0:
            return 0.0
        retries, backoff = self._pending_faults.pop(0)
        penalty = sum(item.route.latency + backoff * 2.0**i for i in range(retries))
        self.retried_transfers += retries
        self.retry_time += penalty
        return penalty

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------
    def transfer(
        self,
        device: str,
        direction: str,
        nbytes: float,
        *,
        kind: HostMemoryKind | None = HostMemoryKind.PAGEABLE,
        start: float = 0.0,
        label: str = "",
    ) -> TransferGrant:
        """Price and commit one host<->device copy."""
        return self.transfer_batch(
            [
                TransferRequest(
                    device=device,
                    direction=direction,
                    nbytes=nbytes,
                    kind=kind,
                    start=start,
                    label=label,
                )
            ]
        )[0]

    def peer_transfer(
        self, src: str, dst: str, nbytes: float, *, start: float = 0.0, label: str = ""
    ) -> TransferGrant:
        """Price and commit one device->device copy over the peer fabric."""
        return self.transfer_batch(
            [
                TransferRequest(
                    device=src,
                    direction=P2P,
                    nbytes=nbytes,
                    kind=None,
                    start=start,
                    peer=dst,
                    label=label,
                )
            ]
        )[0]

    def transfer_batch(self, requests: Sequence[TransferRequest]) -> list[TransferGrant]:
        """Price a set of copies that are in flight together.

        Requests in one batch share every common link fairly for as long as
        they overlap; previously committed transfers act as background load.
        Issue the concurrent fan-out of one step as a single batch — that is
        what makes ``N`` simultaneous uploads each see ``~1/N`` of a shared
        uplink instead of the first one grabbing the full rate.
        """
        if not requests:
            return []
        for request in requests:
            if request.nbytes < 0:
                raise ValueError(f"nbytes must be non-negative, got {request.nbytes}")
        items = [_PricingItem(request, self._route(request)) for request in requests]
        self._arbitrate(items)
        grants = []
        for item in items:
            request = item.request
            penalty = self._consume_fault(item)
            duration = item.duration + item.route.latency + penalty
            grant = TransferGrant(
                request=request,
                start=request.start,
                duration=duration,
                # The retry penalty hits the dedicated price too (a lone copy
                # would retry just the same), so ``stall`` keeps measuring
                # only shared-link arbitration.
                dedicated=(
                    item.route.latency + float(request.nbytes) / item.route.rate_cap + penalty
                ),
                links=tuple(link.name for link in item.route.links),
            )
            self._commit(item, grant)
            grants.append(grant)
        return grants

    # ------------------------------------------------------------------
    def _load(self, link: Link, channel: str) -> _ChannelLoad:
        key = (link.name, channel)
        if key not in self._loads:
            self._loads[key] = _ChannelLoad()
        return self._loads[key]

    def _arbitrate(self, items: list[_PricingItem]) -> None:
        """Fluid fair-share integration of one batch against committed load."""
        unfinished = [item for item in items if not item.finished]
        if not unfinished:
            return
        t = min(item.request.start for item in unfinished)
        involved = {
            (link.name, channel) for item in items for link, channel in item.channels
        }
        committed_events = sum(
            len(self._loads[key].starts) for key in involved if key in self._loads
        )
        max_rounds = 64 * (len(items) + 8) + 4 * committed_events
        for _ in range(max_rounds):
            if not unfinished:
                return
            active = [item for item in unfinished if item.request.start <= t]
            if not active:
                t = min(item.request.start for item in unfinished)
                continue
            # Per-channel batch load at this instant.
            batch_load: dict[tuple[str, str], int] = {}
            for item in active:
                for link, channel in item.channels:
                    key = (link.name, channel)
                    batch_load[key] = batch_load.get(key, 0) + 1
            # Instantaneous rate of each active item: its rate cap, bounded
            # by its fair share of every link on its path.
            rates = {}
            for item in active:
                rate = item.route.rate_cap
                for link, channel in item.channels:
                    key = (link.name, channel)
                    load = self._loads.get(key)
                    n_active = batch_load[key] + (load.active_at(t) if load else 0)
                    rate = min(rate, link.bandwidth / n_active)
                rates[id(item)] = rate
            # Next event: a batch item finishing, a pending item starting,
            # or a committed transfer entering/leaving one of our links.
            to_finish = {id(item): item.remaining / rates[id(item)] for item in active}
            dt = min(to_finish.values())
            for item in unfinished:
                if item.request.start > t:
                    dt = min(dt, item.request.start - t)
            for item in active:
                for link, channel in item.channels:
                    load = self._loads.get((link.name, channel))
                    if load is not None:
                        boundary = load.next_boundary(t)
                        if boundary is not None:
                            dt = min(dt, boundary - t)
            if dt <= 0.0:
                dt = min(to_finish.values())
            threshold = dt * (1.0 + 1e-12)
            progressed = False
            for item in active:
                need = to_finish[id(item)]
                if need <= threshold:
                    item.duration += need
                    item.remaining = 0.0
                    item.finished = True
                    progressed = True
                else:
                    item.duration += dt
                    item.remaining -= rates[id(item)] * dt
            unfinished = [item for item in unfinished if not item.finished]
            t += dt
            if dt > 0.0:
                progressed = True
            if not progressed:  # pragma: no cover - numerical backstop
                break
        if unfinished:  # pragma: no cover - numerical backstop
            # Degenerate numerics: finish the stragglers at their rate caps.
            for item in unfinished:
                item.duration += item.remaining / item.route.rate_cap
                item.remaining = 0.0
                item.finished = True

    def _commit(self, item: _PricingItem, grant: TransferGrant) -> None:
        request = item.request
        self.transfers += 1
        self.total_stall += grant.stall
        self.stall_by_device[request.device] = (
            self.stall_by_device.get(request.device, 0.0) + grant.stall
        )
        for link, channel in item.channels:
            self._load(link, channel).commit(grant.start, grant.end, float(request.nbytes))
            if link.shared:
                stream = self.timeline.stream(link.name)
                stream.append_interval(
                    request.direction,
                    request.label or f"{request.device}:{request.direction}",
                    grant.start,
                    grant.end,
                )
                stream.cursor = max(stream.cursor, grant.end)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def link_bytes(self, link: str, direction: str | None = None) -> float:
        """Total bytes carried by ``link`` (optionally one direction only)."""
        return sum(
            load.nbytes
            for (name, channel), load in self._loads.items()
            if name == link and (direction is None or channel == direction)
        )

    def link_transfers(self, link: str, direction: str | None = None) -> int:
        return sum(
            load.transfers
            for (name, channel), load in self._loads.items()
            if name == link and (direction is None or channel == direction)
        )

    def link_busy(self, link: str) -> float:
        """Busiest channel's committed-interval union time on ``link``."""
        times = [
            load.busy_time()
            for (name, _channel), load in self._loads.items()
            if name == link
        ]
        return max(times, default=0.0)

    def uplink_busy(self) -> float:
        """Busy time of the shared host uplink (0 on dedicated fabrics)."""
        if self.topology.uplink is None:
            return 0.0
        return self.link_busy(self.topology.uplink.name)

    def uplink_bytes(self) -> float:
        if self.topology.uplink is None:
            return 0.0
        return self.link_bytes(self.topology.uplink.name)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Checkpointable arbitration state.

        The committed per-channel interval sets must round-trip exactly:
        :meth:`_ChannelLoad.active_at` / :meth:`_ChannelLoad.next_boundary`
        consult them when pricing *future* transfers, so a restored engine
        arbitrates the rest of the run bit-identically to an uninterrupted
        one.  Armed-but-unconsumed fault injections survive the checkpoint
        too.
        """
        return {
            "topology": self.topology.name,
            "loads": [
                {
                    "link": link_name,
                    "channel": channel,
                    "starts": list(load.starts),
                    "ends": list(load.ends),
                    "nbytes": load.nbytes,
                    "transfers": load.transfers,
                }
                for (link_name, channel), load in self._loads.items()
            ],
            "total_stall": self.total_stall,
            "stall_by_device": dict(self.stall_by_device),
            "transfers": self.transfers,
            "pending_faults": [list(pair) for pair in self._pending_faults],
            "retried_transfers": self.retried_transfers,
            "retry_time": self.retry_time,
            "timeline": self.timeline.snapshot(),
        }

    def restore(self, snap: dict) -> None:
        """Install a :meth:`snapshot` taken on an engine of the same topology."""
        if snap.get("topology") != self.topology.name:
            raise ValueError(
                f"checkpoint was taken on topology {snap.get('topology')!r}, "
                f"this engine routes {self.topology.name!r}"
            )
        self._loads = {
            (entry["link"], entry["channel"]): _ChannelLoad(
                starts=[float(t) for t in entry["starts"]],
                ends=[float(t) for t in entry["ends"]],
                nbytes=float(entry["nbytes"]),
                transfers=int(entry["transfers"]),
            )
            for entry in snap["loads"]
        }
        self.total_stall = float(snap["total_stall"])
        self.stall_by_device = {
            device: float(value) for device, value in snap["stall_by_device"].items()
        }
        self.transfers = int(snap["transfers"])
        self._pending_faults = [
            (int(retries), float(backoff)) for retries, backoff in snap["pending_faults"]
        ]
        self.retried_transfers = int(snap["retried_transfers"])
        self.retry_time = float(snap["retry_time"])
        self.timeline.restore(snap["timeline"])

    def reset(self) -> None:
        """Drop all committed load (call when the pool's clocks rewind)."""
        self._loads.clear()
        self.timeline.reset()
        self.total_stall = 0.0
        self.stall_by_device.clear()
        self.transfers = 0
        self._pending_faults.clear()
        self.retried_transfers = 0
        self.retry_time = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TransferEngine(topology={self.topology.name!r}, transfers={self.transfers})"


def format_interconnect(engine: TransferEngine) -> str:
    """Per-link traffic summary (the interconnect section of timeline reports)."""
    lines = [f"interconnect: topology {engine.topology.name}"]
    for name in sorted(engine.topology.links):
        link = engine.topology.links[name]
        transfers = engine.link_transfers(name)
        if not transfers:
            continue
        shared = " (shared)" if link.shared else ""
        lines.append(
            f"  link {name:<18}{shared:<9} {transfers:>6d} transfers, "
            f"{engine.link_bytes(name):>12.0f} B, busy {engine.link_busy(name) * 1e3:.4f}ms"
        )
    lines.append(
        f"  contention stall {engine.total_stall * 1e3:.4f}ms over "
        f"{engine.transfers} transfers"
    )
    return "\n".join(lines)
