"""CUDA-style thread hierarchy: grids of blocks of threads.

The kernel model of the paper (Section III-A) launches a 1-D or 2-D grid of
equally-sized thread blocks; every thread derives a unique id from
``blockIdx * blockDim + threadIdx`` and uses it as the flat neighbor index.
This module provides the small amount of structure needed to express that
faithfully in Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["Dim3", "ThreadIndex", "LaunchConfig", "grid_for", "DEFAULT_BLOCK_SIZE"]

#: Threads per block used by default for the neighborhood kernels; 256 keeps
#: every GT200-class multiprocessor at full occupancy while staying well
#: under the 512-thread hardware limit.
DEFAULT_BLOCK_SIZE = 256


@dataclass(frozen=True)
class Dim3:
    """CUDA ``dim3``: a triple of extents or coordinates.

    Used both for launch extents (``gridDim`` / ``blockDim``, which must be
    at least 1 — enforced by :class:`LaunchConfig`) and for thread/block
    coordinates (``blockIdx`` / ``threadIdx``, which start at 0).
    """

    x: int
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        for axis in (self.x, self.y, self.z):
            if axis < 0:
                raise ValueError(f"Dim3 components must be >= 0, got {self!r}")

    @property
    def size(self) -> int:
        return self.x * self.y * self.z

    def __iter__(self) -> Iterator[int]:
        yield from (self.x, self.y, self.z)


@dataclass(frozen=True)
class ThreadIndex:
    """Identity of one simulated thread inside a launch."""

    block: Dim3
    thread: Dim3
    block_dim: Dim3
    grid_dim: Dim3

    @property
    def global_x(self) -> int:
        """The paper's ``blockIdx.x * blockDim.x + threadIdx.x``."""
        return self.block.x * self.block_dim.x + self.thread.x

    @property
    def global_id(self) -> int:
        """Flattened global thread id across all three dimensions."""
        block_rank = (
            self.block.z * self.grid_dim.y + self.block.y
        ) * self.grid_dim.x + self.block.x
        thread_rank = (
            self.thread.z * self.block_dim.y + self.thread.y
        ) * self.block_dim.x + self.thread.x
        return block_rank * self.block_dim.size + thread_rank


@dataclass(frozen=True)
class LaunchConfig:
    """Grid/block geometry of one kernel launch."""

    grid: Dim3
    block: Dim3

    def __post_init__(self) -> None:
        for dim, label in ((self.grid, "grid"), (self.block, "block")):
            if min(dim.x, dim.y, dim.z) < 1:
                raise ValueError(f"{label} extents must all be >= 1, got {dim}")

    @property
    def threads_per_block(self) -> int:
        return self.block.size

    @property
    def num_blocks(self) -> int:
        return self.grid.size

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.threads_per_block

    def global_ids(self) -> np.ndarray:
        """All global thread ids of the launch, in execution order."""
        return np.arange(self.total_threads, dtype=np.int64)

    def thread_indices(self) -> Iterator[ThreadIndex]:
        """Iterate every :class:`ThreadIndex` of the launch (per-thread mode)."""
        for bz in range(self.grid.z):
            for by in range(self.grid.y):
                for bx in range(self.grid.x):
                    for tz in range(self.block.z):
                        for ty in range(self.block.y):
                            for tx in range(self.block.x):
                                yield ThreadIndex(
                                    block=Dim3(bx, by, bz),
                                    thread=Dim3(tx, ty, tz),
                                    block_dim=self.block,
                                    grid_dim=self.grid,
                                )


def grid_for(
    total_threads: int,
    block_size: int = DEFAULT_BLOCK_SIZE,
    *,
    max_grid_x: int = 65535,
) -> LaunchConfig:
    """1-D (or, when necessary, 2-D) launch configuration covering ``total_threads``.

    This mirrors how the paper sizes its kernels: one thread per neighbor,
    rounded up to whole blocks; when the number of blocks exceeds the
    hardware's 65535 per-dimension grid limit the grid spills into a second
    dimension (needed for the 3-Hamming neighborhoods of the larger
    instances).
    """
    if total_threads <= 0:
        raise ValueError(f"total_threads must be positive, got {total_threads}")
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    blocks = (total_threads + block_size - 1) // block_size
    if blocks <= max_grid_x:
        grid = Dim3(blocks)
    else:
        grid_y = (blocks + max_grid_x - 1) // max_grid_x
        grid = Dim3(max_grid_x, grid_y)
    return LaunchConfig(grid=grid, block=Dim3(block_size))
