"""CUDA-style streams and events for the simulated device.

A real device-resident pipeline issues its copies and kernels on separate
streams so that PCIe transfers overlap kernel execution.  The simulator
models that with an explicit timeline: each :class:`Stream` owns a cursor
(the simulated instant at which its last operation finishes) and a list of
:class:`StreamInterval` records; an operation scheduled on a stream starts at
the stream's cursor — or later, when it waits on an :class:`Event` recorded
on another stream — and the device-level elapsed time is the makespan over
all streams, not the sum of all operation durations.

Synchronous operations (the legacy :meth:`GPUContext.to_device` /
:meth:`GPUContext.launch` API) behave like CUDA's null stream: they start
only once *every* stream has drained, so a purely synchronous workload has a
timeline identical to the serial sum of its operation times, and the async
API strictly generalizes it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "StreamInterval",
    "Stream",
    "Event",
    "Timeline",
    "DEFAULT_STREAM",
    "COPY_STREAM",
    "COMPUTE_STREAM",
    "DOWNLOAD_STREAM",
    "P2P_STREAM",
    "format_timeline",
]

#: Name of the null stream used by the synchronous API.
DEFAULT_STREAM = "default"
#: Conventional stream names used by the device-resident evaluator pipeline.
COPY_STREAM = "h2d"
COMPUTE_STREAM = "compute"
DOWNLOAD_STREAM = "d2h"
#: Stream carrying device->device peer copies (``cudaMemcpyPeerAsync``); the
#: matching interval appears on *both* endpoints' timelines.
P2P_STREAM = "p2p"


@dataclass(frozen=True)
class StreamInterval:
    """One scheduled operation: what ran, on which stream, from when to when."""

    stream: str
    kind: str  # "kernel" | "h2d" | "d2h" | "reduce"
    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Event:
    """A recorded point on a stream's timeline (a la ``cudaEventRecord``)."""

    stream: str
    time: float


class Stream:
    """An in-order queue of device operations with its own clock.

    Interval records are kept as parallel columns (kind/name/start/end) with
    a running busy-time accumulator: the hot loop appends thousands of
    operations per run, and materializing a :class:`StreamInterval` object
    per operation dominated the accounting cost.  The object view is built
    lazily through the :attr:`intervals` property only when a report asks.
    """

    __slots__ = ("name", "cursor", "_kinds", "_names", "_starts", "_ends", "_busy")

    def __init__(self, name: str, cursor: float = 0.0) -> None:
        self.name = name
        self.cursor = cursor
        self._kinds: list[str] = []
        self._names: list[str] = []
        self._starts: list[float] = []
        self._ends: list[float] = []
        self._busy = 0.0

    def append_interval(self, kind: str, name: str, start: float, end: float) -> None:
        """Record one operation without materializing an interval object.

        Does not touch :attr:`cursor` — callers that manage their own stream
        clock (the interconnect's arbitrated transfers) update it themselves.
        """
        self._kinds.append(kind)
        self._names.append(name)
        self._starts.append(start)
        self._ends.append(end)
        self._busy += end - start

    def schedule(
        self, kind: str, name: str, duration: float, *, not_before: float = 0.0
    ) -> StreamInterval:
        """Append one operation; it starts at ``max(cursor, not_before)``.

        Operations on one stream execute in order and never overlap each
        other — overlap only happens *across* streams.
        """
        if duration < 0:
            raise ValueError(f"operation duration must be non-negative, got {duration}")
        start = max(self.cursor, not_before)
        interval = StreamInterval(
            stream=self.name, kind=kind, name=name, start=start, end=start + duration
        )
        self.cursor = interval.end
        self.append_interval(kind, name, start, interval.end)
        return interval

    def record_event(self) -> Event:
        """Capture the stream's current completion time."""
        return Event(stream=self.name, time=self.cursor)

    @property
    def num_intervals(self) -> int:
        """Number of recorded operations — O(1), no materialization."""
        return len(self._starts)

    @property
    def busy_time(self) -> float:
        """Total time this stream spent executing operations — O(1)."""
        return self._busy

    @property
    def intervals(self) -> list[StreamInterval]:
        """The recorded operations as interval objects (built on demand).

        This is a *snapshot*: mutating the returned list does not alter the
        stream's records.  Use :meth:`append_interval` / :meth:`schedule` to
        add operations.
        """
        return [
            StreamInterval(stream=self.name, kind=kind, name=name, start=start, end=end)
            for kind, name, start, end in zip(
                self._kinds, self._names, self._starts, self._ends
            )
        ]

    @intervals.setter
    def intervals(self, records: list[StreamInterval]) -> None:
        self._kinds = [interval.kind for interval in records]
        self._names = [interval.name for interval in records]
        self._starts = [interval.start for interval in records]
        self._ends = [interval.end for interval in records]
        self._busy = sum(interval.duration for interval in records)

    def copy_records_from(self, other: "Stream") -> None:
        """Append every record of ``other`` — column copies, no objects."""
        self._kinds += other._kinds
        self._names += other._names
        self._starts += other._starts
        self._ends += other._ends
        # Accumulate per-operation (not += other._busy): keeps the float sum
        # grouped exactly like a fresh sum over the concatenated records.
        for start, end in zip(other._starts, other._ends):
            self._busy += end - start

    # -- checkpointing ---------------------------------------------------
    def snapshot(self) -> dict:
        """Checkpointable accounting state: cursor + busy accumulator.

        The per-operation interval *records* are report-only and deliberately
        dropped: future operations on a restored stream are scheduled and
        accumulated bit-identically (that is the checkpoint guarantee), while
        pre-checkpoint rows simply no longer show up in timeline reports.
        """
        return {"cursor": self.cursor, "busy": self._busy, "ops": self.num_intervals}

    def restore(self, state: dict) -> None:
        """Install a :meth:`snapshot`, clearing any recorded intervals.

        The busy accumulator is assigned directly — never re-summed from
        records, whose float grouping differs from the incremental ``+=``
        updates and would break bit-identical restores.
        """
        self.cursor = float(state["cursor"])
        self._kinds = []
        self._names = []
        self._starts = []
        self._ends = []
        self._busy = float(state["busy"])


class Timeline:
    """The set of streams of one device, plus the device-level clock."""

    def __init__(self) -> None:
        self.streams: dict[str, Stream] = {}

    def stream(self, name: str = DEFAULT_STREAM) -> Stream:
        """The stream called ``name``, created on first use."""
        if name not in self.streams:
            self.streams[name] = Stream(name)
        return self.streams[name]

    @property
    def elapsed(self) -> float:
        """Device-level elapsed time: the latest completion over all streams."""
        if not self.streams:
            return 0.0
        return max(stream.cursor for stream in self.streams.values())

    @property
    def busy_time(self) -> float:
        """Sum of all operation durations (what a serial execution would take)."""
        return sum(stream.busy_time for stream in self.streams.values())

    @property
    def overlap_saved(self) -> float:
        """Simulated time hidden by running streams concurrently."""
        return max(0.0, self.busy_time - self.elapsed)

    @property
    def num_intervals(self) -> int:
        """Total recorded operations over all streams — O(1) per stream."""
        return sum(stream.num_intervals for stream in self.streams.values())

    def intervals(self) -> list[StreamInterval]:
        """All recorded intervals, sorted by start time (then stream name)."""
        records = [
            interval
            for stream in self.streams.values()
            for interval in stream.intervals
        ]
        records.sort(key=lambda interval: (interval.start, interval.stream))
        return records

    def schedule(
        self,
        kind: str,
        name: str,
        duration: float,
        *,
        stream: str = DEFAULT_STREAM,
        wait_for: Event | list[Event] | None = None,
        not_before: float = 0.0,
    ) -> StreamInterval:
        """Schedule one operation on ``stream`` after the given events."""
        if wait_for is None:
            events: list[Event] = []
        elif isinstance(wait_for, Event):
            events = [wait_for]
        else:
            events = list(wait_for)
        barrier = max([not_before, *(event.time for event in events)], default=not_before)
        return self.stream(stream).schedule(kind, name, duration, not_before=barrier)

    def schedule_sync(self, kind: str, name: str, duration: float) -> StreamInterval:
        """Null-stream semantics: start only after every stream has drained."""
        return self.stream(DEFAULT_STREAM).schedule(
            kind, name, duration, not_before=self.elapsed
        )

    def reset(self) -> None:
        """Drop all recorded intervals and rewind every stream to t=0."""
        self.streams.clear()

    # -- checkpointing ---------------------------------------------------
    def snapshot(self) -> dict:
        """Per-stream checkpoint state (see :meth:`Stream.snapshot`)."""
        return {name: stream.snapshot() for name, stream in self.streams.items()}

    def restore(self, state: dict) -> None:
        """Replace every stream with its snapshotted cursor/busy state."""
        self.streams.clear()
        for name, stream_state in state.items():
            self.stream(name).restore(stream_state)


def format_timeline(timeline: Timeline, *, limit: int | None = None) -> str:
    """Render the per-stream interval records as a fixed-width report.

    One row per operation in start order, followed by a per-stream busy
    summary and the makespan/overlap totals — the simulator's answer to
    ``nvvp``'s timeline view.
    """
    records = timeline.intervals()
    shown = records if limit is None else records[:limit]
    lines = [f"{'start':>12} {'end':>12} {'stream':<10} {'kind':<7} name"]
    for interval in shown:
        lines.append(
            f"{interval.start * 1e3:>10.4f}ms {interval.end * 1e3:>10.4f}ms "
            f"{interval.stream:<10} {interval.kind:<7} {interval.name}"
        )
    if limit is not None and len(records) > limit:
        lines.append(f"  ... ({len(records) - limit} more intervals)")
    for name in sorted(timeline.streams):
        stream = timeline.streams[name]
        lines.append(
            f"stream {name:<10} {stream.num_intervals:>6d} ops, "
            f"busy {stream.busy_time * 1e3:.4f}ms, idle until {stream.cursor * 1e3:.4f}ms"
        )
    lines.append(
        f"makespan {timeline.elapsed * 1e3:.4f}ms, serial sum {timeline.busy_time * 1e3:.4f}ms, "
        f"overlap saved {timeline.overlap_saved * 1e3:.4f}ms"
    )
    return "\n".join(lines)
