"""CUDA occupancy calculator for the simulated device.

Occupancy — the ratio of resident warps to the hardware maximum — determines
how well a kernel hides global-memory latency.  The paper's 1-Hamming
experiments are the textbook illustration: with only ``n`` threads in flight
the multiprocessors cannot cover the memory latency and the GPU loses to the
CPU; the 2- and 3-Hamming kernels launch orders of magnitude more threads
and reach full occupancy.  The timing model consumes the numbers computed
here.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec
from .hierarchy import LaunchConfig

__all__ = ["OccupancyResult", "occupancy"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy computation for one kernel launch."""

    #: Blocks that can be resident on one SM given all resource limits.
    blocks_per_mp: int
    #: Warps resident on one SM when the launch saturates the device.
    warps_per_mp: float
    #: ``warps_per_mp`` / hardware maximum, in [0, 1].
    occupancy: float
    #: Average resident warps per SM for *this* launch (can be < 1 for tiny
    #: launches, which is what kills the small 1-Hamming kernels).
    active_warps_per_mp: float
    #: Which resource bounds the residency ("threads", "blocks", "shared", "registers", "grid").
    limiter: str

    @property
    def is_latency_bound(self) -> bool:
        return self.active_warps_per_mp < 1.0


def occupancy(
    device: DeviceSpec,
    config: LaunchConfig,
    *,
    registers_per_thread: int = 16,
    shared_mem_per_block: int = 0,
) -> OccupancyResult:
    """Compute the theoretical occupancy of a launch on ``device``.

    The classic calculation: residency per SM is bounded by the thread
    limit, the block limit, the register file and shared memory; the actual
    number of active warps additionally depends on how many blocks the grid
    provides to feed the SMs.
    """
    threads_per_block = config.threads_per_block
    if threads_per_block > device.max_threads_per_block:
        raise ValueError(
            f"block of {threads_per_block} threads exceeds the device limit "
            f"of {device.max_threads_per_block}"
        )
    warps_per_block = _ceil_div(threads_per_block, device.warp_size)

    limits: dict[str, int] = {
        "threads": device.max_threads_per_mp // threads_per_block,
        "blocks": device.max_blocks_per_mp,
    }
    if registers_per_thread > 0:
        limits["registers"] = device.registers_per_mp // (registers_per_thread * threads_per_block)
    if shared_mem_per_block > 0:
        limits["shared"] = device.shared_mem_per_mp // shared_mem_per_block

    limiter = min(limits, key=lambda k: limits[k])
    blocks_per_mp = max(limits[limiter], 0)
    if blocks_per_mp == 0:
        # The launch cannot be scheduled at all (e.g. pathological shared
        # memory demand); report zero occupancy instead of raising so callers
        # can surface a clear diagnostic.
        return OccupancyResult(0, 0.0, 0.0, 0.0, limiter)

    warps_per_mp = float(blocks_per_mp * warps_per_block)
    max_warps = float(device.max_warps_per_mp)
    theoretical = min(warps_per_mp / max_warps, 1.0)

    # How many warps does *this* grid actually put on each SM?
    total_warps = config.num_blocks * warps_per_block
    resident_cap = warps_per_mp
    active_warps_per_mp = min(total_warps / device.multiprocessors, resident_cap)
    if config.num_blocks < device.multiprocessors:
        limiter = "grid"

    return OccupancyResult(
        blocks_per_mp=blocks_per_mp,
        warps_per_mp=warps_per_mp,
        occupancy=theoretical,
        active_warps_per_mp=active_warps_per_mp,
        limiter=limiter,
    )
