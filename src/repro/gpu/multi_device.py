"""Multi-GPU execution: neighborhood partitioning across several devices.

The paper's "Discussion and conclusion" section sketches the multi-GPU
perspective: *"It will consist of partitioning the neighborhood set, where
each partition is executed on a single GPU."*  This module implements that
partitioning over simulated devices.  Each device evaluates a contiguous
slice of the flat neighborhood index space; the host gathers the partial
fitness arrays and the simulated time of the step is the maximum over
devices (they run concurrently) plus the extra host-side gather.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec, GTX_280
from .kernel import ExecutionMode
from .runtime import GPUContext

__all__ = ["Partition", "partition_range", "MultiGPU"]


@dataclass(frozen=True)
class Partition:
    """A contiguous slice ``[start, stop)`` of the flat neighborhood indices."""

    device_index: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


def partition_range(total: int, parts: int) -> list[Partition]:
    """Split ``range(total)`` into ``parts`` balanced contiguous partitions.

    The first ``total % parts`` partitions receive one extra element, so the
    sizes differ by at most one — the natural static balancing when every
    neighbor costs the same (as is the case for a fixed Hamming distance).
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    base, extra = divmod(total, parts)
    partitions = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        partitions.append(Partition(device_index=i, start=start, stop=start + size))
        start += size
    return partitions


class MultiGPU:
    """A pool of simulated devices exploring one neighborhood cooperatively."""

    def __init__(
        self,
        devices: list[DeviceSpec] | int = 2,
        *,
        mode: ExecutionMode = ExecutionMode.VECTORIZED,
    ) -> None:
        if isinstance(devices, int):
            if devices <= 0:
                raise ValueError("need at least one device")
            devices = [GTX_280] * devices
        if not devices:
            raise ValueError("need at least one device")
        self.contexts = [GPUContext(spec, mode=mode) for spec in devices]

    @property
    def num_devices(self) -> int:
        return len(self.contexts)

    def partitions(self, total_threads: int) -> list[Partition]:
        return partition_range(total_threads, self.num_devices)

    # ------------------------------------------------------------------
    @property
    def elapsed_parallel_time(self) -> float:
        """Simulated wall time of the pool so far: the slowest device's clock.

        Each context accumulates its own kernel + transfer time; since the
        devices run concurrently the pool-level elapsed time is the maximum.
        """
        return max(ctx.stats.total_time for ctx in self.contexts)

    @property
    def total_device_time(self) -> float:
        """Sum of the per-device simulated times (i.e. consumed device-seconds)."""
        return sum(ctx.stats.total_time for ctx in self.contexts)

    def reset(self) -> None:
        for ctx in self.contexts:
            ctx.reset()
