"""Multi-GPU execution: neighborhood partitioning across several devices.

The paper's "Discussion and conclusion" section sketches the multi-GPU
perspective: *"It will consist of partitioning the neighborhood set, where
each partition is executed on a single GPU."*  This module implements that
partitioning over simulated devices.  Each device evaluates a contiguous
slice of the flat neighborhood index space; a homogeneous pool splits the
space evenly, while a heterogeneous pool (say, a GTX 280 next to an 8800
GTX) receives partitions proportional to each device's simulated throughput
on the kernel at hand, so that the slowest device stops being the
bottleneck of every step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .device import DeviceSpec, GTX_280
from .interconnect import InterconnectTopology, TransferEngine, resolve_topology
from .kernel import ExecutionMode
from .runtime import GPUContext
from .timing import KernelCostProfile

__all__ = [
    "Partition",
    "partition_range",
    "weighted_partition_range",
    "throughput_weights",
    "MultiGPU",
]


@dataclass(frozen=True)
class Partition:
    """A contiguous slice ``[start, stop)`` of the flat neighborhood indices."""

    device_index: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


def partition_range(total: int, parts: int) -> list[Partition]:
    """Split ``range(total)`` into ``parts`` balanced contiguous partitions.

    The first ``total % parts`` partitions receive one extra element, so the
    sizes differ by at most one — the natural static balancing when every
    neighbor costs the same (as is the case for a fixed Hamming distance)
    and every device runs at the same speed.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    base, extra = divmod(total, parts)
    partitions = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        partitions.append(Partition(device_index=i, start=start, stop=start + size))
        start += size
    return partitions


def weighted_partition_range(total: int, weights: Sequence[float]) -> list[Partition]:
    """Split ``range(total)`` proportionally to ``weights`` (contiguous slices).

    Sizes are apportioned by the largest-remainder method, so they sum to
    ``total`` exactly and each differs from the ideal fractional share by
    less than one element.  Equal weights reduce to :func:`partition_range`
    bit-for-bit (ties are broken toward lower device indices), making the
    even split the homogeneous special case rather than a separate code
    path.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    weights = [float(w) for w in weights]
    if not weights:
        raise ValueError("need at least one weight")
    if any(w < 0 for w in weights):
        raise ValueError(f"weights must be non-negative, got {weights}")
    total_weight = sum(weights)
    if total_weight <= 0:
        raise ValueError("at least one weight must be positive")
    shares = [total * w / total_weight for w in weights]
    sizes = [int(share) for share in shares]
    remainder = total - sum(sizes)
    # Hand the leftover elements to the parts with the largest fractional
    # share; ties go to the lower index (matching partition_range's layout).
    order = sorted(
        range(len(weights)), key=lambda i: (-(shares[i] - sizes[i]), i)
    )
    for i in order[:remainder]:
        sizes[i] += 1
    partitions = []
    start = 0
    for i, size in enumerate(sizes):
        partitions.append(Partition(device_index=i, start=start, stop=start + size))
        start += size
    return partitions


def throughput_weights(
    devices: Sequence[DeviceSpec], cost: KernelCostProfile | None = None
) -> list[float]:
    """Relative per-thread throughput of each device on a given kernel cost.

    The weight is the reciprocal of the roofline time one thread's work
    takes at full occupancy — ``max(flops / sustained_flops, bytes /
    sustained_bandwidth)`` — so a pool of identical devices gets identical
    weights (and thus the even split), while a mixed pool is apportioned by
    how fast each card actually chews through the kernel at hand.  Without a
    cost profile a balanced 1-flop/1-byte reference workload is assumed.
    """
    flops = cost.flops if cost is not None else 1.0
    gmem = cost.gmem_bytes + cost.texture_bytes if cost is not None else 1.0
    weights = []
    for spec in devices:
        seconds = max(flops / spec.sustained_flops, gmem / spec.sustained_bandwidth)
        weights.append(1.0 / seconds if seconds > 0 else 1.0)
    return weights


class MultiGPU:
    """A pool of simulated devices exploring one neighborhood cooperatively."""

    def __init__(
        self,
        devices: list[DeviceSpec] | int = 2,
        *,
        mode: ExecutionMode = ExecutionMode.VECTORIZED,
        pinned: bool = False,
        topology: InterconnectTopology | str | None = None,
    ) -> None:
        if isinstance(devices, int):
            if devices <= 0:
                raise ValueError("need at least one device")
            devices = [GTX_280] * devices
        if not devices:
            raise ValueError("need at least one device")
        #: The host interconnect the pool hangs off: every context shares one
        #: :class:`~repro.gpu.interconnect.TransferEngine`, so concurrent
        #: transfers of different devices contend on shared links.  The
        #: default derives a dedicated-link fabric from the device specs
        #: (the legacy fully-parallel model).
        self.topology = resolve_topology(topology, devices)
        self.engine = TransferEngine(self.topology)
        self.contexts = [
            GPUContext(
                spec,
                mode=mode,
                pinned=pinned,
                engine=self.engine,
                device_key=self.topology.device_keys[i],
            )
            for i, spec in enumerate(devices)
        ]

    @property
    def num_devices(self) -> int:
        return len(self.contexts)

    @property
    def is_homogeneous(self) -> bool:
        """Whether every device in the pool is the same preset."""
        first = self.contexts[0].device
        return all(ctx.device == first for ctx in self.contexts)

    def throughput_weights(self, cost: KernelCostProfile | None = None) -> list[float]:
        """Per-device weights for throughput-proportional partitioning."""
        return throughput_weights([ctx.device for ctx in self.contexts], cost)

    def partitions(
        self, total_threads: int, cost: KernelCostProfile | None = None
    ) -> list[Partition]:
        """Partition the flat index space across the pool.

        A homogeneous pool takes the exact even split; a heterogeneous pool
        splits proportionally to each device's simulated throughput on the
        kernel described by ``cost``.
        """
        if self.is_homogeneous:
            return partition_range(total_threads, self.num_devices)
        return weighted_partition_range(total_threads, self.throughput_weights(cost))

    # ------------------------------------------------------------------
    @property
    def elapsed_parallel_time(self) -> float:
        """Simulated wall time of the pool so far: the slowest device's clock.

        Each context accumulates its own kernel + transfer time; since the
        devices run concurrently the pool-level elapsed time is the maximum.
        """
        return max(ctx.stats.total_time for ctx in self.contexts)

    @property
    def total_device_time(self) -> float:
        """Sum of the per-device simulated times (i.e. consumed device-seconds)."""
        return sum(ctx.stats.total_time for ctx in self.contexts)

    def reset(self) -> None:
        for ctx in self.contexts:
            ctx.reset()
