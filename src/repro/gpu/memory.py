"""Simulated device memory spaces and host<->device transfer accounting.

The GPU in this reproduction is a simulator, so "device memory" is ordinary
NumPy storage; what matters is *accounting*: how many bytes live on the
device, how many bytes cross the PCIe bus and how often.  Those counters feed
the timing model and let the tests assert, for example, that an LS iteration
only copies the fitness array back (and not the whole neighborhood), exactly
as the paper's implementation does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "MemorySpace",
    "HostMemoryKind",
    "DeviceBuffer",
    "TransferRecord",
    "MemoryManager",
    "PinnedStagingPool",
    "OutOfDeviceMemory",
]


class MemorySpace(enum.Enum):
    """The CUDA memory spaces distinguished by the simulator."""

    GLOBAL = "global"
    SHARED = "shared"
    CONSTANT = "constant"
    TEXTURE = "texture"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class HostMemoryKind(enum.Enum):
    """Which kind of host memory a PCIe transfer reads from / writes to.

    Pageable memory goes through a driver-side bounce buffer (an extra host
    memcpy per transfer); pinned (page-locked) memory is DMA-able directly.
    The timing model prices the two differently, which is why the transfer
    log records the kind of every copy.
    """

    PAGEABLE = "pageable"
    PINNED = "pinned"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class OutOfDeviceMemory(RuntimeError):
    """Raised when an allocation exceeds the device's global memory capacity."""


@dataclass
class DeviceBuffer:
    """A named allocation living in one of the simulated memory spaces."""

    name: str
    data: np.ndarray
    space: MemorySpace = MemorySpace.GLOBAL

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def copy_from_host(self, host_array: np.ndarray) -> None:
        host_array = np.asarray(host_array)
        if host_array.shape != self.data.shape:
            raise ValueError(
                f"shape mismatch copying to device buffer {self.name!r}: "
                f"{host_array.shape} != {self.data.shape}"
            )
        np.copyto(self.data, host_array)

    def to_host(self) -> np.ndarray:
        return self.data.copy()


@dataclass(frozen=True)
class TransferRecord:
    """One host<->device copy, as logged by the :class:`MemoryManager`."""

    direction: str  # "h2d" or "d2h"
    nbytes: int
    buffer: str
    #: Host memory kind the copy was staged from/to (pageable unless the
    #: caller routed it through a pinned staging buffer).
    host_kind: HostMemoryKind = HostMemoryKind.PAGEABLE


@dataclass
class PinnedStagingPool:
    """A reusable pool of pinned (page-locked) host staging buffers.

    Real pipelines allocate a small set of ``cudaHostAlloc`` buffers once and
    recycle them for the per-iteration delta/result packets — pinning pages
    on every transfer would cost more than the bandwidth win.  The simulator
    models the pool as counters: how many packets were staged, how many bytes
    went through the pool and the high-water pinned footprint (allocations
    are rounded up to whole blocks, like a real suballocator).
    """

    #: Granularity of the pinned suballocator.
    block_bytes: int = 4096
    #: Number of packets staged through the pool so far.
    stagings: int = 0
    #: Total payload bytes routed through the pool.
    staged_bytes: int = 0
    #: High-water pinned allocation, in bytes (rounded up to whole blocks).
    high_water_bytes: int = 0

    def stage(self, nbytes: int) -> int:
        """Stage one packet of ``nbytes``; returns the pinned bytes reserved."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        blocks = max(1, -(-int(nbytes) // self.block_bytes))
        reserved = blocks * self.block_bytes
        self.stagings += 1
        self.staged_bytes += int(nbytes)
        self.high_water_bytes = max(self.high_water_bytes, reserved)
        return reserved

    def reset(self) -> None:
        self.stagings = 0
        self.staged_bytes = 0
        self.high_water_bytes = 0


@dataclass
class MemoryManager:
    """Tracks allocations and transfers for one simulated device."""

    capacity_bytes: int
    allocations: dict[str, DeviceBuffer] = field(default_factory=dict)
    transfers: list[TransferRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        return sum(buf.nbytes for buf in self.allocations.values() if buf.space is not MemorySpace.SHARED)

    def alloc(
        self,
        name: str,
        shape: tuple[int, ...] | int,
        dtype=np.float64,
        space: MemorySpace = MemorySpace.GLOBAL,
    ) -> DeviceBuffer:
        """Allocate an uninitialised buffer on the device."""
        if name in self.allocations:
            raise ValueError(f"device buffer {name!r} already allocated")
        data = np.empty(shape, dtype=dtype)
        if space is not MemorySpace.SHARED and self.allocated_bytes + data.nbytes > self.capacity_bytes:
            raise OutOfDeviceMemory(
                f"allocating {data.nbytes} bytes for {name!r} exceeds device capacity "
                f"({self.allocated_bytes}/{self.capacity_bytes} bytes in use)"
            )
        buf = DeviceBuffer(name=name, data=data, space=space)
        self.allocations[name] = buf
        return buf

    def free(self, name: str) -> None:
        if name not in self.allocations:
            raise KeyError(f"no device buffer named {name!r}")
        del self.allocations[name]

    def get(self, name: str) -> DeviceBuffer:
        return self.allocations[name]

    def free_all(self) -> None:
        self.allocations.clear()

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def to_device(
        self,
        name: str,
        host_array: np.ndarray,
        space: MemorySpace = MemorySpace.GLOBAL,
        host_kind: HostMemoryKind = HostMemoryKind.PAGEABLE,
    ) -> DeviceBuffer:
        """Allocate (if needed) and copy a host array to the device."""
        host_array = np.asarray(host_array)
        if name in self.allocations:
            buf = self.allocations[name]
            buf.copy_from_host(host_array)
        else:
            buf = self.alloc(name, host_array.shape, host_array.dtype, space)
            buf.copy_from_host(host_array)
        self.transfers.append(
            TransferRecord("h2d", int(host_array.nbytes), name, host_kind)
        )
        return buf

    def to_host(
        self, name: str, host_kind: HostMemoryKind = HostMemoryKind.PAGEABLE
    ) -> np.ndarray:
        """Copy a device buffer back to the host."""
        buf = self.get(name)
        self.transfers.append(TransferRecord("d2h", buf.nbytes, name, host_kind))
        return buf.to_host()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def bytes_transferred(
        self,
        direction: str | None = None,
        host_kind: HostMemoryKind | None = None,
    ) -> int:
        return sum(
            t.nbytes
            for t in self.transfers
            if (direction is None or t.direction == direction)
            and (host_kind is None or t.host_kind is host_kind)
        )

    def transfer_count(
        self,
        direction: str | None = None,
        host_kind: HostMemoryKind | None = None,
    ) -> int:
        return sum(
            1
            for t in self.transfers
            if (direction is None or t.direction == direction)
            and (host_kind is None or t.host_kind is host_kind)
        )

    def reset_statistics(self) -> None:
        self.transfers.clear()
