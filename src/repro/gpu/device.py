"""Device specifications for the SPMD GPU execution simulator.

The paper's experiments run on an NVIDIA GTX 280 (GT200 architecture) hosted
by an Intel Xeon 8-core 3 GHz machine.  Because this reproduction has no
physical GPU, the execution substrate is a simulator: kernels are executed
functionally by NumPy (or by a faithful per-thread interpreter) and *timed*
by an analytic model parameterised by the specifications below.

The numbers for the GTX 280 follow the public CUDA programming guide data
for that card; the paper itself quotes "32 multiprocessors" for its card, so
the preset uses that figure (the retail GTX 280 exposes 30 — the difference
is irrelevant to the reproduced trends but we stay faithful to the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "DeviceSpec",
    "HostSpec",
    "GTX_280",
    "GTX_8800",
    "TESLA_C1060",
    "TESLA_V100",
    "A100_SXM",
    "XEON_3GHZ",
    "DEVICE_PRESETS",
    "get_device",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware description of a CUDA-capable device.

    The fields are the subset of a real device's properties that the
    occupancy calculator and the timing model need.
    """

    name: str
    #: Number of streaming multiprocessors (SMs).
    multiprocessors: int
    #: Scalar cores ("streaming processors") per SM.
    cores_per_mp: int
    #: Shader clock in Hz.
    clock_hz: float
    #: Threads per warp (32 for every CUDA architecture).
    warp_size: int = 32
    #: Hardware limit on threads per block.
    max_threads_per_block: int = 512
    #: Hardware limit on resident threads per SM.
    max_threads_per_mp: int = 1024
    #: Hardware limit on resident blocks per SM.
    max_blocks_per_mp: int = 8
    #: Register file size per SM (32-bit registers).
    registers_per_mp: int = 16384
    #: Shared memory per SM in bytes.
    shared_mem_per_mp: int = 16384
    #: Total global memory in bytes.
    global_mem_bytes: int = 1024 * 1024 * 1024
    #: Peak global-memory bandwidth in bytes/s.
    mem_bandwidth: float = 141.7e9
    #: Global memory latency in clock cycles (used by the latency-hiding model).
    mem_latency_cycles: float = 500.0
    #: Fixed host-side cost of a kernel launch + synchronisation, in seconds.
    kernel_launch_overhead: float = 6.0e-5
    #: Host <-> device transfer bandwidth (PCIe) from *pageable* host memory,
    #: bytes/s.  A pageable copy is staged through a driver-side bounce
    #: buffer (an extra host memcpy), so its sustained rate sits well below
    #: the link peak.
    pcie_bandwidth: float = 5.0e9
    #: Host <-> device transfer latency per operation from pageable memory,
    #: seconds.
    pcie_latency: float = 2.0e-5
    #: Host <-> device transfer bandwidth from *pinned* (page-locked) host
    #: memory, bytes/s.  Pinned pages are DMA-able directly, skipping the
    #: bounce-buffer copy (``cudaMallocHost`` / ``cudaHostAlloc``).
    pcie_pinned_bandwidth: float = 6.4e9
    #: Per-operation latency of a pinned transfer, seconds (no page pinning
    #: or staging work on the host side).
    pcie_pinned_latency: float = 8.0e-6
    #: Whether the device supports direct peer-to-peer copies with another
    #: capable device on the same PCIe root (``cudaMemcpyPeerAsync``).
    p2p_capable: bool = True
    #: Sustained device <-> device bandwidth over the PCIe peer link, bytes/s.
    p2p_bandwidth: float = 6.0e9
    #: Per-operation latency of a peer-to-peer copy, seconds.
    p2p_latency: float = 1.2e-5
    #: Fraction of the theoretical arithmetic peak that integer-heavy,
    #: branchy metaheuristic kernels sustain.  The GT200's 933-GFLOP peak
    #: assumes dual-issued single-precision MAD+MUL; the neighborhood
    #: kernels are dominated by integer adds, gathers and branches and land
    #: around a few percent of that figure (calibrated against the paper's
    #: Table II/III accelerations).
    arithmetic_efficiency: float = 0.025
    #: Fraction of peak bandwidth sustained for the partially-coalesced
    #: column-gather access pattern of the neighborhood kernels (the GTX 280
    #: relaxed the G80's coalescing rules, hence its higher default).
    memory_efficiency: float = 0.35
    #: Instructions a warp can issue back-to-back; kept for documentation of
    #: the latency-hiding rationale.
    issue_cycles_per_instruction: float = 4.0
    #: Resident warps per SM needed to hide global-memory latency.  Beyond
    #: this many warps the memory pipeline stays saturated; below it,
    #: throughput degrades roughly linearly (the fate of the paper's small
    #: 1-Hamming launches).
    latency_hiding_warps: float = 8.0
    #: Fraction of peak bandwidth sustained for reads served through the
    #: texture cache.  Texture fetches are cached and not subject to the
    #: coalescing rules, which is why the paper's Figure 8 plots its GPU
    #: curve as "GPUTexture" (the A matrix is bound to a texture).
    texture_efficiency: float = 0.70

    # ------------------------------------------------------------------
    @property
    def peak_flops(self) -> float:
        """Peak single-precision MAD throughput in FLOP/s (2 flops per core per cycle)."""
        return 2.0 * self.multiprocessors * self.cores_per_mp * self.clock_hz

    @property
    def sustained_flops(self) -> float:
        """Arithmetic throughput the timing model assumes for kernel code."""
        return self.peak_flops * self.arithmetic_efficiency

    @property
    def sustained_bandwidth(self) -> float:
        """Global-memory throughput the timing model assumes for kernel code."""
        return self.mem_bandwidth * self.memory_efficiency

    @property
    def warps_to_hide_latency(self) -> float:
        """Resident warps per SM needed to fully hide global-memory latency."""
        return self.latency_hiding_warps

    @property
    def max_warps_per_mp(self) -> int:
        return self.max_threads_per_mp // self.warp_size

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """Return a copy with some fields replaced (useful for what-if studies)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class HostSpec:
    """CPU host description used for the sequential baseline timing model."""

    name: str
    #: Number of physical cores (the paper's baseline uses a single core).
    cores: int
    clock_hz: float
    #: Sustained scalar FLOP/s of the single-threaded baseline implementation
    #: (integer-dominated 2009-era C code sits well below peak).
    sustained_flops: float
    #: Sustained memory bandwidth of a single core, bytes/s.
    sustained_bandwidth: float = 6.0e9

    def with_overrides(self, **kwargs) -> "HostSpec":
        return replace(self, **kwargs)


#: The card used in the paper (as described there: 32 multiprocessors, GT200).
GTX_280 = DeviceSpec(
    name="NVIDIA GTX 280",
    multiprocessors=32,
    cores_per_mp=8,
    clock_hz=1.296e9,
    max_threads_per_block=512,
    max_threads_per_mp=1024,
    max_blocks_per_mp=8,
    registers_per_mp=16384,
    shared_mem_per_mp=16384,
    global_mem_bytes=1024**3,
    mem_bandwidth=141.7e9,
    memory_efficiency=0.50,
)

#: Previous-generation G80 card, with the stricter coalescing rules the paper
#: mentions ("constraints of memory alignment are relaxed in comparison with
#: the previous architectures (G80 series)").
GTX_8800 = DeviceSpec(
    name="NVIDIA 8800 GTX (G80)",
    multiprocessors=16,
    cores_per_mp=8,
    clock_hz=1.35e9,
    max_threads_per_mp=768,
    registers_per_mp=8192,
    mem_bandwidth=86.4e9,
    memory_efficiency=0.20,
    # The G80 generation predates direct peer access; deltas destined for an
    # 8800 GTX in a mixed pool must take the host round trip.
    p2p_capable=False,
    pcie_pinned_bandwidth=5.6e9,
)

#: Compute-oriented sibling of the GTX 280.
TESLA_C1060 = DeviceSpec(
    name="NVIDIA Tesla C1060",
    multiprocessors=30,
    cores_per_mp=8,
    clock_hz=1.296e9,
    global_mem_bytes=4 * 1024**3,
    mem_bandwidth=102.0e9,
    memory_efficiency=0.50,
)

#: Modern NVLink-class presets.  They extend the paper-era catalog so
#: heterogeneous-fleet scheduling (weighted repartition, elastic join/leave)
#: has meaningfully unequal devices to reason about: a V100 or A100 pulls an
#: order of magnitude more replicas than a GTX 280 under the same kernel
#: cost, and its NVLink-class peer links make migration nearly free compared
#: to a PCIe host round trip.  The efficiency factors stay at the
#: metaheuristic-kernel calibration (integer-dominated, gather-heavy), not
#: the cards' dense-GEMM marketing numbers.
TESLA_V100 = DeviceSpec(
    name="NVIDIA Tesla V100 (NVLink)",
    multiprocessors=80,
    cores_per_mp=64,
    clock_hz=1.53e9,
    max_threads_per_block=1024,
    max_threads_per_mp=2048,
    max_blocks_per_mp=32,
    registers_per_mp=65536,
    shared_mem_per_mp=96 * 1024,
    global_mem_bytes=32 * 1024**3,
    mem_bandwidth=900.0e9,
    mem_latency_cycles=400.0,
    kernel_launch_overhead=1.0e-5,
    pcie_bandwidth=12.0e9,
    pcie_latency=8.0e-6,
    pcie_pinned_bandwidth=13.0e9,
    pcie_pinned_latency=4.0e-6,
    p2p_bandwidth=45.0e9,
    p2p_latency=5.0e-6,
    memory_efficiency=0.55,
    latency_hiding_warps=12.0,
    texture_efficiency=0.80,
)

A100_SXM = DeviceSpec(
    name="NVIDIA A100 SXM (NVLink3)",
    multiprocessors=108,
    cores_per_mp=64,
    clock_hz=1.41e9,
    max_threads_per_block=1024,
    max_threads_per_mp=2048,
    max_blocks_per_mp=32,
    registers_per_mp=65536,
    shared_mem_per_mp=164 * 1024,
    global_mem_bytes=80 * 1024**3,
    mem_bandwidth=2039.0e9,
    mem_latency_cycles=400.0,
    kernel_launch_overhead=1.0e-5,
    pcie_bandwidth=24.0e9,
    pcie_latency=6.0e-6,
    pcie_pinned_bandwidth=26.0e9,
    pcie_pinned_latency=3.0e-6,
    p2p_bandwidth=250.0e9,
    p2p_latency=3.0e-6,
    memory_efficiency=0.60,
    latency_hiding_warps=16.0,
    texture_efficiency=0.85,
)

#: The paper's host CPU; the sustained figure reflects a scalar, single-core,
#: integer-heavy evaluation loop (calibrated so that the reproduced table
#: shapes match the paper's CPU columns within a small factor).
XEON_3GHZ = HostSpec(
    name="Intel Xeon 3 GHz (single core baseline)",
    cores=8,
    clock_hz=3.0e9,
    sustained_flops=0.7e9,
    sustained_bandwidth=6.0e9,
)

DEVICE_PRESETS: dict[str, DeviceSpec] = {
    "gtx280": GTX_280,
    "8800gtx": GTX_8800,
    "g80": GTX_8800,
    "teslac1060": TESLA_C1060,
    "v100": TESLA_V100,
    "teslav100": TESLA_V100,
    "a100": A100_SXM,
    "a100sxm": A100_SXM,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device preset by (case/punctuation-insensitive) name."""
    key = "".join(ch for ch in name.lower() if ch.isalnum())
    if key not in DEVICE_PRESETS:
        raise KeyError(f"unknown device preset {name!r}; available: {sorted(DEVICE_PRESETS)}")
    return DEVICE_PRESETS[key]
