"""Kernel abstraction and SPMD execution for the simulated device.

A :class:`Kernel` bundles two implementations of the same computation:

* ``thread_fn(ctx, *args)`` — the faithful per-thread body, written exactly
  like the paper's CUDA kernels (read the global thread id from ``ctx``,
  bounds-check it, map it to a move, evaluate, write the result);
* ``vectorized_fn(tids, *args)`` — the NumPy batch equivalent used for fast
  execution (one call handles every thread of the launch).

Both produce identical results; the per-thread interpreter exists so that
tests can assert the equivalence and so that kernel logic can be debugged at
"thread granularity", while experiments run the vectorized backend.  Timing
never comes from wall-clock measurement of either backend — it comes from
the analytic model in :mod:`repro.gpu.timing`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .hierarchy import DEFAULT_BLOCK_SIZE, LaunchConfig, ThreadIndex, grid_for
from .timing import KernelCostProfile, KernelTimeBreakdown

__all__ = [
    "ExecutionMode",
    "Kernel",
    "KernelLaunch",
    "PersistentKernel",
    "ThreadContext",
    "normalize_work",
]


def normalize_work(work: int | tuple[int, ...]) -> tuple[int, tuple[int, ...]]:
    """Coerce a thread count or logical work shape to ``(total, shape)``.

    A plain integer ``M`` is the paper's 1-D launch (one thread per
    neighbor); a tuple such as ``(S, M)`` describes a batched launch over
    ``S`` replicas of ``M`` neighbors — the total thread count is the
    product and the shape is preserved for launch records and profiling.
    """
    if isinstance(work, tuple):
        if not work or any(int(axis) <= 0 for axis in work):
            raise ValueError(f"work shape extents must all be positive, got {work!r}")
        shape = tuple(int(axis) for axis in work)
        total = 1
        for axis in shape:
            total *= axis
        return total, shape
    total = int(work)
    return total, (total,)


class ExecutionMode(enum.Enum):
    """How the simulator executes kernel bodies."""

    #: Loop over every simulated thread calling ``thread_fn`` — slow but a
    #: literal transcription of the SPMD semantics.
    PER_THREAD = "per_thread"
    #: Execute the whole launch with one call to ``vectorized_fn``.
    VECTORIZED = "vectorized"


@dataclass(frozen=True)
class ThreadContext:
    """What a kernel body may read about its own identity (a la ``threadIdx``)."""

    index: ThreadIndex

    @property
    def global_id(self) -> int:
        return self.index.global_x


@dataclass
class KernelLaunch:
    """Record of one executed launch: configuration, outputs and model time."""

    kernel_name: str
    config: LaunchConfig
    active_threads: int
    time: KernelTimeBreakdown
    mode: ExecutionMode
    #: Logical shape of the work the threads covered.  ``(M,)`` for the
    #: paper's one-thread-per-neighbor launches; ``(S, M)`` for the batched
    #: solution-parallel launches (one thread per (replica, neighbor) pair).
    work_shape: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.work_shape:
            self.work_shape = (self.active_threads,)

    @property
    def batch_size(self) -> int:
        """Number of independent replicas covered by the launch (1 if unbatched)."""
        return self.work_shape[0] if len(self.work_shape) > 1 else 1


class Kernel:
    """A device function executable over a grid of threads.

    Parameters
    ----------
    name:
        Display name (used in launch records and statistics).
    thread_fn:
        Per-thread body ``(ctx: ThreadContext, *args) -> None``.  It should
        bounds-check ``ctx.global_id`` against the logical problem size, like
        the ``if (move_index < N)`` guard of the paper's kernels.
    vectorized_fn:
        Batch body ``(tids: np.ndarray, *args) -> None`` where ``tids``
        contains only the *active* thread ids (the bounds check is applied by
        the launcher).
    cost:
        Per-thread cost profile used by the timing model.
    """

    def __init__(
        self,
        name: str,
        *,
        thread_fn: Callable | None = None,
        vectorized_fn: Callable | None = None,
        cost: KernelCostProfile,
    ) -> None:
        if thread_fn is None and vectorized_fn is None:
            raise ValueError("a kernel needs at least one of thread_fn / vectorized_fn")
        self.name = name
        self.thread_fn = thread_fn
        self.vectorized_fn = vectorized_fn
        self.cost = cost
        # Grow-only cache of the active-thread id range: re-allocating the
        # arange on every launch is measurable in the lockstep hot loop.
        self._tids = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    def launch_config(
        self, active_threads: int | tuple[int, ...], block_size: int = DEFAULT_BLOCK_SIZE
    ) -> LaunchConfig:
        """One thread per logical work item, rounded up to whole blocks.

        ``active_threads`` may be a multi-dimensional logical work shape
        (e.g. ``(S, M)`` replicas x neighbors); the grid covers its product.
        """
        total, _ = normalize_work(active_threads)
        return grid_for(total, block_size)

    def execute(
        self,
        config: LaunchConfig,
        args: Sequence,
        *,
        active_threads: int | None = None,
        mode: ExecutionMode = ExecutionMode.VECTORIZED,
    ) -> int:
        """Run the kernel body for every (active) thread of ``config``.

        Returns the number of active threads executed.  Results are produced
        through the output arrays passed in ``args`` — exactly like a real
        kernel writing to global memory.
        """
        total = config.total_threads
        active = total if active_threads is None else min(int(active_threads), total)
        if mode is ExecutionMode.VECTORIZED:
            if self.vectorized_fn is None:
                raise ValueError(f"kernel {self.name!r} has no vectorized implementation")
            if active > self._tids.size:
                self._tids = np.arange(active, dtype=np.int64)
                self._tids.setflags(write=False)
            self.vectorized_fn(self._tids[:active], *args)
        else:
            if self.thread_fn is None:
                raise ValueError(f"kernel {self.name!r} has no per-thread implementation")
            for thread_index in config.thread_indices():
                ctx = ThreadContext(index=thread_index)
                self.thread_fn(ctx, *args)
        return active


class PersistentKernel:
    """A kernel whose grid is launched once and then loops on-device.

    Persistent-threads designs keep the launched grid alive for the whole
    search: every iteration the resident threads scatter the pending deltas,
    evaluate the neighborhood, run the fused reduction and update the tabu
    memory, then spin on the host's early-stop flag instead of exiting.  The
    wrapper delegates the *functional* body to the per-iteration
    :class:`Kernel`; the timing consequence — the fixed launch overhead is
    paid once per run instead of once per iteration — is modeled by
    :class:`~repro.gpu.runtime.DeviceLoop`, which executes the body through
    this wrapper and emits a single launch record when the loop closes.
    """

    def __init__(self, body: Kernel, *, name: str | None = None) -> None:
        self.body = body
        self.name = name if name is not None else f"persistent[{body.name}]"

    @property
    def cost(self) -> KernelCostProfile:
        """Per-thread cost of one loop iteration (the wrapped body's cost)."""
        return self.body.cost

    def launch_config(
        self, active_threads: int | tuple[int, ...], block_size: int = DEFAULT_BLOCK_SIZE
    ) -> LaunchConfig:
        return self.body.launch_config(active_threads, block_size)

    def execute(
        self,
        config: LaunchConfig,
        args: Sequence,
        *,
        active_threads: int | None = None,
        mode: ExecutionMode = ExecutionMode.VECTORIZED,
    ) -> int:
        """Run one on-device iteration of the resident loop body."""
        return self.body.execute(config, args, active_threads=active_threads, mode=mode)

    def __repr__(self) -> str:  # pragma: no cover
        return f"PersistentKernel({self.body.name!r})"
