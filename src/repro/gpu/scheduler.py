"""Concurrent multi-device scheduler: one timeline per device, one per host.

The seed multi-GPU path issued per-device work from a serial host loop and
approximated concurrency as a per-step ``max`` over device times.
:class:`DeviceScheduler` replaces that with real concurrent *issue*: every
device owns its own :class:`~repro.gpu.streams.Timeline` (the one inside its
:class:`~repro.gpu.runtime.GPUContext`), the host owns another, and
operations are ordered only by the :class:`~repro.gpu.streams.Event`
dependencies the caller threads between them.  Because all timelines share
the same simulated clock origin, an event recorded on device 0 can gate an
operation on device 1 (or on the host) directly — that is how peer-routed
delta packets and host gathers serialize without a global barrier.

The pool-level elapsed time is the **cross-device makespan**: the latest
completion over every device timeline and the host timeline.  The
**serialized sum** — what the same work would cost if the devices ran one
after another — is the sum of per-timeline busy times; their difference is
the overlap the concurrent issue bought.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .hierarchy import DEFAULT_BLOCK_SIZE
from .interconnect import TransferEngine, TransferRequest
from .kernel import Kernel, KernelLaunch
from .memory import HostMemoryKind, MemorySpace
from .runtime import GPUContext
from .streams import (
    COPY_STREAM,
    DEFAULT_STREAM,
    DOWNLOAD_STREAM,
    Event,
    Stream,
    Timeline,
)
from .timing import KernelCostProfile

__all__ = ["DeviceScheduler", "HOST_TIMELINE_STREAM", "merge_timelines"]

#: Stream name used for host-side operations (gathers, scatter bookkeeping)
#: on the scheduler's host timeline.
HOST_TIMELINE_STREAM = "host"


def merge_timelines(
    timelines: dict[str, Timeline],
) -> Timeline:
    """Merge several timelines into one view with prefixed stream names.

    Streams of the timeline registered under prefix ``"gpu0"`` appear as
    ``"gpu0:compute"``, ``"gpu0:h2d"``, ... in the merged view, so
    :func:`~repro.gpu.streams.format_timeline` renders a single
    cross-device report whose makespan is the pool-level elapsed time.
    """
    merged = Timeline()
    for prefix, timeline in timelines.items():
        for name, stream in timeline.streams.items():
            label = f"{prefix}:{name}"
            view = Stream(name=label, cursor=stream.cursor)
            view.copy_records_from(stream)
            merged.streams[label] = view
    return merged


class DeviceScheduler:
    """Issues work across a pool of device contexts plus a host timeline.

    The scheduler does not own the contexts — it coordinates them: each
    ``issue_*`` helper delegates to the context's asynchronous API and
    returns the completion :class:`~repro.gpu.streams.Event`, which the
    caller can pass as a dependency of an operation on *any* device (or the
    host).  Cross-device ordering therefore costs exactly what the event
    times say, with no serializing host loop in between.
    """

    def __init__(
        self,
        contexts: Sequence[GPUContext],
        *,
        host_timeline: Timeline | None = None,
        engine: TransferEngine | None = None,
    ) -> None:
        if not contexts:
            raise ValueError("need at least one device context")
        self.contexts = list(contexts)
        self.host_timeline = host_timeline if host_timeline is not None else Timeline()
        if engine is None:
            # A pool built over one shared interconnect exposes it here; a
            # grab-bag of standalone contexts (each with a private engine)
            # leaves the scheduler without a pool-level fabric view.
            first = contexts[0].engine
            if all(ctx.engine is first for ctx in contexts):
                engine = first
        #: The pool's shared transfer engine (``None`` for mixed pools).
        self.engine = engine

    # ------------------------------------------------------------------
    @property
    def num_devices(self) -> int:
        return len(self.contexts)

    def device(self, index: int) -> GPUContext:
        return self.contexts[index]

    # ------------------------------------------------------------------
    # Issue helpers (thin wrappers that keep call sites uniform)
    # ------------------------------------------------------------------
    def upload(
        self,
        index: int,
        name: str,
        host_array: np.ndarray,
        *,
        wait_for: Event | list[Event] | None = None,
        not_before: float = 0.0,
        space: MemorySpace = MemorySpace.GLOBAL,
        host_kind: HostMemoryKind | None = None,
    ) -> Event:
        """Host -> device ``index`` copy on that device's copy stream."""
        return self.contexts[index].copy_async(
            name,
            host_array,
            wait_for=wait_for,
            not_before=not_before,
            space=space,
            host_kind=host_kind,
        )

    def launch(
        self,
        index: int,
        kernel: Kernel,
        active_threads,
        args,
        *,
        wait_for: Event | list[Event] | None = None,
        not_before: float = 0.0,
        block_size: int = DEFAULT_BLOCK_SIZE,
        cost: KernelCostProfile | None = None,
    ) -> tuple[KernelLaunch, Event]:
        """Kernel launch on device ``index``'s compute stream."""
        return self.contexts[index].launch_async(
            kernel,
            active_threads,
            args,
            wait_for=wait_for,
            not_before=not_before,
            block_size=block_size,
            cost=cost,
        )

    def reduce(
        self,
        index: int,
        name: str,
        num_elements: int,
        *,
        wait_for: Event | list[Event] | None = None,
        not_before: float = 0.0,
    ) -> Event:
        """Fused on-device reduction on device ``index``."""
        return self.contexts[index].reduce_async(
            name, num_elements, wait_for=wait_for, not_before=not_before
        )

    def download(
        self,
        index: int,
        name: str,
        *,
        wait_for: Event | list[Event] | None = None,
        not_before: float = 0.0,
        host_kind: HostMemoryKind | None = None,
    ) -> tuple[np.ndarray, Event]:
        """Device ``index`` -> host copy on that device's download stream."""
        return self.contexts[index].download_async(
            name, wait_for=wait_for, not_before=not_before, host_kind=host_kind
        )

    def route_peer(
        self,
        src: int,
        dst: int,
        name: str,
        data: np.ndarray,
        *,
        wait_for: Event | list[Event] | None = None,
        not_before: float = 0.0,
    ) -> Event:
        """Device -> device copy over the P2P link (no host round trip)."""
        return self.contexts[src].copy_peer_async(
            self.contexts[dst], name, data, wait_for=wait_for, not_before=not_before
        )

    def upload_batch(
        self,
        items: Sequence[tuple[int, str, np.ndarray]],
        *,
        host_kind: HostMemoryKind | None = None,
        stream: str = COPY_STREAM,
        sync: bool = False,
        not_before: float = 0.0,
    ) -> list[Event]:
        """Concurrent host -> device fan-out as ONE engine arbitration batch.

        ``items`` is a list of ``(device_index, buffer_name, host_array)``
        triples.  All copies are priced together, so on a shared-uplink
        topology ``N`` simultaneous uploads each see ``~1/N`` of the root
        complex — issuing them one by one would let the first grab the full
        rate before the others arrive.  ``sync=True`` uses null-stream
        semantics per device (the copy starts once that device has drained).
        """
        if not items:
            return []
        engine = self.engine
        prepared = []
        requests = []
        for index, name, host_array in items:
            ctx = self.contexts[index]
            host_array = np.asarray(host_array)
            kind = ctx._host_kind(host_kind)
            if sync:
                # Null-stream semantics: the copy starts once every stream
                # of that device has drained (or at the caller's floor).
                target_stream = DEFAULT_STREAM
                start = max(ctx.timeline.elapsed, not_before)
            else:
                target_stream = stream
                start = ctx._issue_start(stream, None, not_before)
            prepared.append((ctx, name, host_array, kind, start, target_stream))
            requests.append(
                TransferRequest(
                    device=ctx.device_key,
                    direction="h2d",
                    nbytes=int(host_array.nbytes),
                    kind=kind,
                    start=start,
                    label=name,
                )
            )
        if engine is not None:
            grants = engine.transfer_batch(requests)
        else:
            # Mixed pools without one shared fabric: per-context pricing.
            grants = [
                ctx.host_transfer_grant(
                    "h2d", request.nbytes, kind=request.kind,
                    start=request.start, label=request.label,
                )
                for (ctx, *_), request in zip(prepared, requests)
            ]
        return [
            ctx.copy_async(
                name, host_array,
                stream=target_stream, not_before=start,
                host_kind=kind, grant=grant,
            )
            for (ctx, name, host_array, kind, start, target_stream), grant in zip(
                prepared, grants
            )
        ]

    def download_batch(
        self,
        items: Sequence[tuple[int, str, Event | None]],
        *,
        host_kind: HostMemoryKind | None = None,
        stream: str = DOWNLOAD_STREAM,
    ) -> list[tuple[np.ndarray, Event]]:
        """Concurrent device -> host gather as ONE engine arbitration batch.

        ``items`` is a list of ``(device_index, buffer_name, wait_event)``
        triples; each copy starts once its device's download stream is free
        and its event (typically the kernel completion) has fired.
        """
        if not items:
            return []
        engine = self.engine
        prepared = []
        requests = []
        for index, name, wait_event in items:
            ctx = self.contexts[index]
            kind = ctx._host_kind(host_kind)
            start = ctx._issue_start(stream, wait_event, 0.0)
            nbytes = ctx.memory.get(name).nbytes
            prepared.append((ctx, name, kind, start, wait_event))
            requests.append(
                TransferRequest(
                    device=ctx.device_key,
                    direction="d2h",
                    nbytes=nbytes,
                    kind=kind,
                    start=start,
                    label=name,
                )
            )
        if engine is not None:
            grants = engine.transfer_batch(requests)
        else:
            grants = [
                ctx.host_transfer_grant(
                    "d2h", request.nbytes, kind=request.kind,
                    start=request.start, label=request.label,
                )
                for (ctx, *_), request in zip(prepared, requests)
            ]
        results = []
        for (ctx, name, kind, start, wait_event), grant in zip(prepared, grants):
            data, event = ctx.download_async(
                name, stream=stream, wait_for=wait_event,
                host_kind=kind, grant=grant,
            )
            results.append((data, event))
        return results

    def host_op(
        self,
        kind: str,
        name: str,
        duration: float,
        *,
        wait_for: Event | list[Event] | None = None,
        not_before: float = 0.0,
    ) -> Event:
        """Schedule a host-side operation (gather, scatter) on the host timeline."""
        interval = self.host_timeline.schedule(
            kind,
            name,
            duration,
            stream=HOST_TIMELINE_STREAM,
            wait_for=wait_for,
            not_before=not_before,
        )
        return Event(stream=HOST_TIMELINE_STREAM, time=interval.end)

    def can_route_peer(self, src: int, dst: int) -> bool:
        return self.contexts[src].can_access_peer(self.contexts[dst])

    @property
    def all_peer_capable(self) -> bool:
        """Whether every pairwise P2P link in the pool is available."""
        if self.engine is not None:
            keys = [ctx.device_key for ctx in self.contexts]
            return all(
                self.engine.has_peer_route(a, b)
                for i, a in enumerate(keys)
                for b in keys[i + 1 :]
            )
        return all(ctx.device.p2p_capable for ctx in self.contexts)

    # ------------------------------------------------------------------
    # Pool-level clocks
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Overlap-aware cross-device elapsed time (incl. the host timeline)."""
        return max(
            max(ctx.timeline.elapsed for ctx in self.contexts),
            self.host_timeline.elapsed,
        )

    @property
    def serialized_sum(self) -> float:
        """What the recorded work would cost run one device after another."""
        return (
            sum(ctx.timeline.busy_time for ctx in self.contexts)
            + self.host_timeline.busy_time
        )

    @property
    def overlap_saved(self) -> float:
        """Simulated time hidden by concurrent cross-device execution."""
        return max(0.0, self.serialized_sum - self.makespan)

    @property
    def per_device_elapsed(self) -> list[float]:
        return [ctx.timeline.elapsed for ctx in self.contexts]

    def synchronize(self) -> float:
        """Host-side sync point across the whole pool: the makespan instant."""
        return self.makespan

    # ------------------------------------------------------------------
    def merged_timeline(self) -> Timeline:
        """All device timelines plus the host one, as a single prefixed view.

        When the pool shares a transfer engine whose topology has shared
        links (a host uplink, a switch fabric), each populated link appears
        as its own ``interconnect:<link>`` lane, so the report shows *when*
        the root complex was busy next to the per-device streams.
        """
        timelines: dict[str, Timeline] = {
            f"gpu{i}": ctx.timeline for i, ctx in enumerate(self.contexts)
        }
        if self.host_timeline.streams:
            timelines["host"] = self.host_timeline
        if self.engine is not None and self.engine.timeline.streams:
            timelines["interconnect"] = self.engine.timeline
        return merge_timelines(timelines)

    def reset(self) -> None:
        """Reset every device context and the host timeline."""
        for ctx in self.contexts:
            ctx.reset()
        self.host_timeline.reset()

    def __repr__(self) -> str:  # pragma: no cover
        names = ", ".join(ctx.device.name for ctx in self.contexts)
        return f"DeviceScheduler([{names}])"
