"""Canonical dtypes of the data that crosses the simulated PCIe bus.

Every byte-accounting site (the evaluators' transfer bookkeeping, the
analytic timing model, the per-iteration estimates) must agree on how wide a
fitness value or a candidate solution is; deriving the sizes from one shared
set of dtypes keeps the transfer model consistent with what the functional
simulator actually stores.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FITNESS_DTYPE",
    "SOLUTION_DTYPE",
    "DELTA_DTYPE",
    "REDUCED_INDEX_DTYPE",
    "REDUCED_PAIR_DTYPE",
    "TABU_STAMP_DTYPE",
    "FITNESS_BYTES",
    "SOLUTION_ENTRY_BYTES",
    "DELTA_PAIR_BYTES",
    "REDUCED_RESULT_BYTES",
    "TABU_STAMP_BYTES",
    "STOP_FLAG_BYTES",
    "PEER_PACKET_HEADER_BYTES",
    "TABU_NEVER",
]

#: Fitness values as written by the evaluation kernels and copied back to the
#: host (the paper stores them as a dense array in global memory).
FITNESS_DTYPE = np.dtype(np.float64)

#: Candidate solutions as uploaded to the device (int32, as in the paper's
#: kernels).
SOLUTION_DTYPE = np.dtype(np.int32)

#: One entry of a delta packet: a ``(replica, bit)`` pair of int32 values
#: describing one flipped bit of the device-resident solution block.
DELTA_DTYPE = np.dtype(np.int32)

#: Index half of the fused reduction's per-replica ``(index, fitness)`` result.
REDUCED_INDEX_DTYPE = np.dtype(np.int64)

#: One per-replica result of the fused neighborhood+reduction launch: the
#: best admissible move's flat index and its fitness (16 bytes).
REDUCED_PAIR_DTYPE = np.dtype(
    [("index", REDUCED_INDEX_DTYPE), ("fitness", np.float64)]
)

#: Bytes per fitness entry crossing PCIe (device -> host).
FITNESS_BYTES = FITNESS_DTYPE.itemsize

#: Bytes per solution entry crossing PCIe (host -> device).
SOLUTION_ENTRY_BYTES = SOLUTION_DTYPE.itemsize

#: Bytes per ``(replica, bit)`` delta pair (host -> device).
DELTA_PAIR_BYTES = 2 * DELTA_DTYPE.itemsize

#: Bytes per replica of the fused reduction result (device -> host): one
#: int64 best-move index plus one float64 best fitness — 16 bytes instead of
#: the ``FITNESS_BYTES * M`` of a full fitness download.
REDUCED_RESULT_BYTES = REDUCED_PAIR_DTYPE.itemsize

#: Per-move "iteration last applied" stamps of the device-resident tabu
#: memory (int64, matching the host-side tabu bookkeeping).
TABU_STAMP_DTYPE = np.dtype(np.int64)

#: Bytes per replica of the per-iteration tabu stamp upload (the replica's
#: current iteration number) when the tabu memory is device-resident — the
#: ``O(S)`` packet that replaces the ``O(S·M/8)`` bit-packed admissibility
#: mask of the host-side tabu path.
TABU_STAMP_BYTES = TABU_STAMP_DTYPE.itemsize

#: Bytes per replica of the host's early-stop flag write into the persistent
#: kernel's control block (one byte per replica slot, each iteration).
STOP_FLAG_BYTES = 1

#: Fixed header of one peer-routed packet (destination replica range and
#: pair count, as two int64 words): the hub device prepends it to every
#: delta slice it forwards over a P2P link so the receiving device can
#: scatter without any host involvement.
PEER_PACKET_HEADER_BYTES = 16

#: Sentinel stamp for "move never applied" in the tabu memory (shared by the
#: host-side and device-resident encodings so trajectories stay identical).
TABU_NEVER = -(2**62)
