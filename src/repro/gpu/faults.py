"""Fault injection plans for the simulated device fleet.

A :class:`FaultPlan` is a deterministic schedule of failure/elasticity
events applied at lockstep-iteration boundaries by
:class:`~repro.localsearch.multistart.MultiStartRunner`:

- ``fail:<device>@<iteration>`` — the device dies; its resident replicas
  remigrate to the survivors (recovered from the exact host mirror) and the
  search continues bit-identically.
- ``join:<device>@<iteration>`` — an attached-but-inactive device comes
  online; a weighted repartition absorbs it.
- ``flaky:<retries>@<iteration>`` — the next host transfer priced by the
  pool's :class:`~repro.gpu.interconnect.TransferEngine` suffers
  ``retries`` transient failures, each retried with exponential backoff.
  Purely a timing event: trajectories are unaffected.
- ``kill-worker:<worker>@<iteration>`` — a host evaluation worker process
  is killed; the hardened :class:`~repro.parallel.pool.HostWorkerPool`
  detects the death, tears itself down and the run falls back to local
  evaluation, bit-identically.

Events fire *before* the iteration with that index executes, so two runs —
one with a plan and one applying the same fleet changes by hand — see the
same device set for every evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultPlan"]

#: Recognised event kinds (see the module docstring for semantics).
FAULT_KINDS = ("fail", "join", "flaky", "kill-worker")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` with integer argument ``arg`` at ``at``.

    ``arg`` is the device index for ``fail``/``join``, the retry count for
    ``flaky`` and the worker id for ``kill-worker``.
    """

    kind: str
    arg: int
    at: int

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.at < 0:
            raise ValueError(f"fault iteration must be >= 0, got {self.at}")
        if self.arg < 0:
            raise ValueError(f"fault argument must be >= 0, got {self.arg}")

    def __str__(self) -> str:
        return f"{self.kind}:{self.arg}@{self.at}"


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable schedule of :class:`FaultEvent` entries."""

    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: (e.at, FAULT_KINDS.index(e.kind))))
        object.__setattr__(self, "events", ordered)

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI syntax: comma-separated ``kind:arg@iteration`` terms.

        Example: ``"flaky:2@5,fail:1@40,join:2@80"``.  An empty string is an
        empty plan.
        """
        events = []
        for term in text.split(","):
            term = term.strip()
            if not term:
                continue
            try:
                head, at_text = term.rsplit("@", 1)
                kind, arg_text = head.split(":", 1)
                events.append(FaultEvent(kind.strip(), int(arg_text), int(at_text)))
            except ValueError as exc:
                if "unknown fault kind" in str(exc) or "must be >=" in str(exc):
                    raise
                raise ValueError(
                    f"bad fault term {term!r}; expected kind:arg@iteration with kind "
                    f"one of {FAULT_KINDS}"
                ) from None
        return cls(tuple(events))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __str__(self) -> str:
        return ",".join(str(event) for event in self.events)

    def due(self, iteration: int) -> tuple[FaultEvent, ...]:
        """Events scheduled exactly at ``iteration`` (in application order)."""
        return tuple(event for event in self.events if event.at == iteration)

    def device_events(self) -> tuple[FaultEvent, ...]:
        """The ``fail``/``join`` subset (what the fleet mask must honor)."""
        return tuple(event for event in self.events if event.kind in ("fail", "join"))
