"""Device runtime: the host-side context that owns memory, launches kernels
and accumulates the simulated clock.

:class:`GPUContext` plays the role of the CUDA runtime in the paper's
implementation: the host allocates device buffers, copies the candidate
solution and problem data up, launches the neighborhood kernel, copies the
fitness array back and keeps track of how much (simulated) time all of that
took.

Two issue models coexist:

* the **synchronous** API (:meth:`GPUContext.to_device`,
  :meth:`GPUContext.launch`, :meth:`GPUContext.to_host`) — every operation
  runs on the null stream and serializes against all outstanding work, so
  elapsed time is the plain sum of operation times (the seed behaviour);
* the **asynchronous** API (:meth:`GPUContext.copy_async`,
  :meth:`GPUContext.launch_async`, :meth:`GPUContext.download_async`,
  :meth:`GPUContext.reduce_async`) — operations are issued on named streams
  and ordered only by the :class:`~repro.gpu.streams.Event` dependencies the
  caller passes, so a transfer on one stream hides under a kernel running on
  another.  The overlap-aware elapsed time is :attr:`GPUContext.timeline`'s
  makespan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .device import DeviceSpec, GTX_280
from .hierarchy import DEFAULT_BLOCK_SIZE, LaunchConfig
from .interconnect import (
    InterconnectTopology,
    TransferEngine,
    TransferGrant,
    resolve_topology,
)
from .kernel import ExecutionMode, Kernel, KernelLaunch, PersistentKernel, normalize_work
from .memory import HostMemoryKind, MemoryManager, MemorySpace, PinnedStagingPool
from .streams import (
    COMPUTE_STREAM,
    COPY_STREAM,
    DOWNLOAD_STREAM,
    P2P_STREAM,
    Event,
    Timeline,
)
from .timing import GPUTimingModel, KernelCostProfile

__all__ = ["DeviceLoop", "DeviceStats", "GPUContext", "PersistentLaunchRecord"]


@dataclass
class DeviceStats:
    """Accumulated simulated activity of one device context."""

    kernel_launches: int = 0
    kernel_time: float = 0.0
    transfer_time: float = 0.0
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    #: Device->device traffic sent over peer links (never counted in the
    #: host-facing ``h2d_bytes``/``d2h_bytes`` — no host round trip happens).
    p2p_bytes: int = 0
    peer_transfers: int = 0
    p2p_time: float = 0.0
    #: Fused on-device reductions (argmin epilogues of the resident pipeline).
    reductions: int = 0
    reduction_time: float = 0.0
    #: *Host* wall-clock seconds spent executing kernel bodies functionally
    #: (NumPy work inside ``kernel.execute``).  This is real measured time,
    #: not simulated time — the harness uses it to split a run's wall clock
    #: into evaluation math vs simulator bookkeeping.
    host_eval_time: float = 0.0
    launch_records: list[KernelLaunch] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        """Total simulated device work (kernels + reductions + transfers).

        This is the *serial* sum; when operations were issued on concurrent
        streams the elapsed time is the context timeline's makespan, which
        can be smaller.
        """
        return self.kernel_time + self.reduction_time + self.transfer_time + self.p2p_time

    def reset(self) -> None:
        self.kernel_launches = 0
        self.kernel_time = 0.0
        self.transfer_time = 0.0
        self.h2d_bytes = 0
        self.d2h_bytes = 0
        self.p2p_bytes = 0
        self.peer_transfers = 0
        self.p2p_time = 0.0
        self.reductions = 0
        self.reduction_time = 0.0
        self.host_eval_time = 0.0
        self.launch_records.clear()

    # -- checkpointing ---------------------------------------------------
    def snapshot(self) -> dict:
        """Scalar counters only — launch records are profiling artifacts."""
        return {
            "kernel_launches": self.kernel_launches,
            "kernel_time": self.kernel_time,
            "transfer_time": self.transfer_time,
            "h2d_bytes": self.h2d_bytes,
            "d2h_bytes": self.d2h_bytes,
            "p2p_bytes": self.p2p_bytes,
            "peer_transfers": self.peer_transfers,
            "p2p_time": self.p2p_time,
            "reductions": self.reductions,
            "reduction_time": self.reduction_time,
            "host_eval_time": self.host_eval_time,
        }

    def restore(self, state: dict) -> None:
        self.kernel_launches = int(state["kernel_launches"])
        self.kernel_time = float(state["kernel_time"])
        self.transfer_time = float(state["transfer_time"])
        self.h2d_bytes = int(state["h2d_bytes"])
        self.d2h_bytes = int(state["d2h_bytes"])
        self.p2p_bytes = int(state["p2p_bytes"])
        self.peer_transfers = int(state["peer_transfers"])
        self.p2p_time = float(state["p2p_time"])
        self.reductions = int(state["reductions"])
        self.reduction_time = float(state["reduction_time"])
        self.host_eval_time = float(state["host_eval_time"])
        self.launch_records.clear()


@dataclass(frozen=True)
class PersistentLaunchRecord:
    """Summary of one completed persistent launch (one per *run*, not per iteration)."""

    kernel_name: str
    #: On-device loop iterations executed inside the single launch.
    iterations: int
    #: Accumulated on-device execution time (evaluation bodies + fused
    #: reductions), excluding the launch overhead.
    body_time: float
    #: The one fixed launch overhead the whole run pays.
    launch_overhead: float
    #: Result-ring traffic drained by the host while the kernel ran.
    ring_bytes: int
    #: Early-stop/control flag traffic written by the host while the kernel ran.
    control_bytes: int

    @property
    def total_time(self) -> float:
        return self.body_time + self.launch_overhead

    @property
    def amortized_overhead(self) -> float:
        """Launch overhead per iteration — the quantity the loop drives to zero."""
        return self.launch_overhead / self.iterations if self.iterations else self.launch_overhead


class DeviceLoop:
    """The host-side handle of one persistent launch.

    A real persistent kernel is launched once; its resident grid then
    iterates on-device (delta scatter → neighborhood evaluation → fused
    reduction/selection → tabu update) while the host merely drains a small
    per-iteration result ring and writes an early-stop flag.  The simulator
    models that with this loop object: while it is open,

    * :meth:`iterate` executes one loop body functionally and accumulates
      its execution time *without* any per-iteration launch overhead;
    * :meth:`reduce` accumulates a fused reduction as a pure bandwidth pass
      (the per-reduction launch overhead also disappears inside the loop);
    * :meth:`drain_ring` / :meth:`write_control` account the host's
      concurrent PCIe traffic (``O(S)`` bytes per iteration, both ways).

    :meth:`finish` then charges exactly **one** kernel launch and one launch
    overhead, and records one long interval per stream on the timeline: the
    compute stream holds the whole resident loop, while the ring drain and
    the control writes sit on the download/copy streams, concurrent with it.
    """

    def __init__(
        self,
        context: "GPUContext",
        kernel: PersistentKernel,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if not isinstance(kernel, PersistentKernel):
            kernel = PersistentKernel(kernel)
        self.context = context
        self.kernel = kernel
        self.block_size = int(block_size)
        #: The launch cannot start before outstanding work has drained
        #: (null-stream semantics for the launch itself).
        self.start_time = context.timeline.elapsed
        self.iterations = 0
        self._body_time = 0.0
        self._ring_time = 0.0
        self._ring_bytes = 0
        self._control_time = 0.0
        self._control_bytes = 0
        # The host's concurrent ring/control traffic is priced through the
        # interconnect engine at its approximate position inside the loop, so
        # persistent-mode drains contend on a shared uplink like any other
        # copy; each cursor advances past the grants already issued.
        loop_start = self.start_time + context.device.kernel_launch_overhead
        self._ring_cursor = loop_start
        self._control_cursor = loop_start
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("persistent loop has already been finished")

    @property
    def closed(self) -> bool:
        return self._closed

    # -- checkpointing ---------------------------------------------------
    def snapshot(self) -> dict:
        """Checkpointable progress of the open launch (all accumulators)."""
        self._check_open()
        return {
            "start_time": self.start_time,
            "iterations": self.iterations,
            "body_time": self._body_time,
            "ring_time": self._ring_time,
            "ring_bytes": self._ring_bytes,
            "control_time": self._control_time,
            "control_bytes": self._control_bytes,
            "ring_cursor": self._ring_cursor,
            "control_cursor": self._control_cursor,
        }

    def restore(self, state: dict) -> None:
        """Overwrite a freshly-opened loop with snapshotted progress."""
        self._check_open()
        self.start_time = float(state["start_time"])
        self.iterations = int(state["iterations"])
        self._body_time = float(state["body_time"])
        self._ring_time = float(state["ring_time"])
        self._ring_bytes = int(state["ring_bytes"])
        self._control_time = float(state["control_time"])
        self._control_bytes = int(state["control_bytes"])
        self._ring_cursor = float(state["ring_cursor"])
        self._control_cursor = float(state["control_cursor"])

    def iterate(
        self,
        active_threads: int | tuple[int, ...],
        args,
        *,
        cost: KernelCostProfile | None = None,
    ) -> float:
        """Run one on-device iteration of the loop body; returns its duration.

        The body executes functionally exactly like a standalone launch, but
        only the roofline execution time is charged — the fixed launch
        overhead is paid once for the whole loop, by :meth:`finish`.
        """
        self._check_open()
        total_active, _ = normalize_work(active_threads)
        if total_active <= 0:
            raise ValueError(f"active_threads must be positive, got {active_threads}")
        cfg = self.kernel.launch_config(total_active, self.block_size)
        eval_start = time.perf_counter()
        self.kernel.execute(
            cfg, args, active_threads=total_active, mode=self.context.mode
        )
        self.context.stats.host_eval_time += time.perf_counter() - eval_start
        breakdown = self.context.timing.kernel_time(
            cfg, cost if cost is not None else self.kernel.cost, active_threads=total_active
        )
        duration = breakdown.kernel_time  # overhead-free: the grid is already resident
        self._body_time += duration
        self.context.stats.kernel_time += duration
        self.iterations += 1
        return duration

    def reduce(self, num_elements: int) -> float:
        """Account one in-loop fused reduction (bandwidth pass, no launch)."""
        self._check_open()
        duration = (
            self.context.timing.reduction_time(num_elements)
            - self.context.device.kernel_launch_overhead
        )
        self._body_time += duration
        self.context.stats.reductions += 1
        self.context.stats.reduction_time += duration
        return duration

    def drain_ring(self, nbytes: int) -> float:
        """Account the host draining ``nbytes`` of the per-iteration result ring."""
        self._check_open()
        grant = self.context.host_transfer_grant(
            "d2h", nbytes, start=self._ring_cursor, label=f"ring[{self.kernel.name}]"
        )
        duration = grant.duration
        self._ring_cursor = grant.end
        self._ring_time += duration
        self._ring_bytes += int(nbytes)
        self.context.stats.transfer_time += duration
        self.context.stats.d2h_bytes += int(nbytes)
        return duration

    def write_control(self, nbytes: int) -> float:
        """Account the host writing ``nbytes`` of early-stop/control flags."""
        self._check_open()
        grant = self.context.host_transfer_grant(
            "h2d", nbytes, start=self._control_cursor, label=f"flags[{self.kernel.name}]"
        )
        duration = grant.duration
        self._control_cursor = grant.end
        self._control_time += duration
        self._control_bytes += int(nbytes)
        self.context.stats.transfer_time += duration
        self.context.stats.h2d_bytes += int(nbytes)
        return duration

    def finish(self) -> PersistentLaunchRecord:
        """Close the loop: one launch, one overhead, one interval per stream."""
        self._check_open()
        self._closed = True
        overhead = self.context.device.kernel_launch_overhead
        self.context.stats.kernel_launches += 1
        self.context.stats.kernel_time += overhead
        timeline = self.context.timeline
        timeline.schedule(
            "kernel",
            self.kernel.name,
            overhead + self._body_time,
            stream=COMPUTE_STREAM,
            not_before=self.start_time,
        )
        # The ring drain and the control writes run on the host concurrently
        # with the resident kernel; they start once the grid is up.
        if self._ring_time:
            timeline.schedule(
                "d2h",
                f"result_ring[{self.kernel.name}]",
                self._ring_time,
                stream=DOWNLOAD_STREAM,
                not_before=self.start_time + overhead,
            )
        if self._control_time:
            timeline.schedule(
                "h2d",
                f"stop_flags[{self.kernel.name}]",
                self._control_time,
                stream=COPY_STREAM,
                not_before=self.start_time + overhead,
            )
        return PersistentLaunchRecord(
            kernel_name=self.kernel.name,
            iterations=self.iterations,
            body_time=self._body_time,
            launch_overhead=overhead,
            ring_bytes=self._ring_bytes,
            control_bytes=self._control_bytes,
        )


class GPUContext:
    """Host-side handle to one simulated GPU.

    Parameters
    ----------
    device:
        Hardware description (defaults to the paper's GTX 280).
    mode:
        Execution backend for kernel bodies; the vectorized backend is the
        default, the per-thread backend is available for verification.
    keep_launch_records:
        Store a :class:`~repro.gpu.kernel.KernelLaunch` record per launch
        (disable for very long runs to bound memory).
    pinned:
        Stage host<->device transfers through pinned (page-locked) host
        memory: copies are priced with the device's pinned PCIe terms and
        packet stagings are accounted in :attr:`staging_pool`.  The default
        (pageable) keeps the seed model's single latency + bandwidth term.
    engine:
        The pool's shared :class:`~repro.gpu.interconnect.TransferEngine`.
        Every copy this context issues is routed and priced through it, so
        transfers of different devices contend on shared links.  Omitted, a
        private engine over a single-device topology is created (``topology``
        selects which; the default derives a dedicated link from the device
        spec, pricing bit-identically to the legacy model).
    device_key:
        This context's name inside the engine's topology (``"gpu0"``, ...).
    topology:
        Preset name or :class:`~repro.gpu.interconnect.InterconnectTopology`
        used when no ``engine`` is passed.
    """

    def __init__(
        self,
        device: DeviceSpec = GTX_280,
        *,
        mode: ExecutionMode = ExecutionMode.VECTORIZED,
        keep_launch_records: bool = False,
        pinned: bool = False,
        engine: TransferEngine | None = None,
        device_key: str = "gpu0",
        topology: InterconnectTopology | str | None = None,
    ) -> None:
        self.device = device
        self.mode = mode
        self.memory = MemoryManager(capacity_bytes=device.global_mem_bytes)
        self.timing = GPUTimingModel(device)
        self.stats = DeviceStats()
        self.timeline = Timeline()
        self.keep_launch_records = keep_launch_records
        self.pinned = bool(pinned)
        if engine is None:
            engine = TransferEngine(resolve_topology(topology, [device]))
            device_key = engine.topology.device_keys[0]
        elif topology is not None:
            raise ValueError("pass either a shared engine or a topology, not both")
        if device_key not in engine.topology.device_keys:
            raise ValueError(
                f"device_key {device_key!r} is not part of topology "
                f"{engine.topology.name!r} ({engine.topology.device_keys})"
            )
        #: Interconnect engine pricing every transfer this context issues.
        self.engine = engine
        #: This device's name inside the engine's topology.
        self.device_key = device_key
        #: Pinned staging buffers for the per-iteration delta/result packets
        #: (allocated once, recycled; ``None`` on pageable contexts).
        self.staging_pool: PinnedStagingPool | None = (
            PinnedStagingPool() if pinned else None
        )

    def _host_kind(self, kind: HostMemoryKind | None) -> HostMemoryKind:
        """Resolve a transfer's host-memory kind (default: the context's)."""
        if kind is not None:
            return kind
        return HostMemoryKind.PINNED if self.pinned else HostMemoryKind.PAGEABLE

    def _issue_start(
        self,
        stream: str,
        wait_for: Event | list[Event] | None,
        not_before: float,
    ) -> float:
        """The instant a stream-ordered operation would start (cursor + deps)."""
        if wait_for is None:
            events: list[Event] = []
        elif isinstance(wait_for, Event):
            events = [wait_for]
        else:
            events = list(wait_for)
        barrier = max([not_before, *(event.time for event in events)], default=not_before)
        return max(self.timeline.stream(stream).cursor, barrier)

    def host_transfer_grant(
        self,
        direction: str,
        nbytes: float,
        *,
        kind: HostMemoryKind | None = None,
        start: float | None = None,
        label: str = "",
    ) -> TransferGrant:
        """Route one host<->device copy of this device through the engine.

        ``start`` defaults to the null-stream issue point (the timeline's
        current makespan).  The caller schedules the returned grant's
        duration on whichever stream carries the copy.
        """
        return self.engine.transfer(
            self.device_key,
            direction,
            nbytes,
            kind=self._host_kind(kind),
            start=self.timeline.elapsed if start is None else start,
            label=label,
        )

    # ------------------------------------------------------------------
    # Memory operations (timed)
    # ------------------------------------------------------------------
    def to_device(
        self,
        name: str,
        host_array: np.ndarray,
        space: MemorySpace = MemorySpace.GLOBAL,
        *,
        host_kind: HostMemoryKind | None = None,
    ):
        """Copy ``host_array`` into device buffer ``name`` (allocating it if new).

        Synchronous (null-stream) semantics: the copy starts only after every
        outstanding operation on every stream has completed.
        """
        kind = self._host_kind(host_kind)
        buf = self.memory.to_device(name, host_array, space, host_kind=kind)
        grant = self.host_transfer_grant("h2d", buf.nbytes, kind=kind, label=name)
        self.stats.transfer_time += grant.duration
        self.stats.h2d_bytes += buf.nbytes
        self.timeline.schedule_sync("h2d", name, grant.duration)
        return buf

    def to_host(self, name: str, *, host_kind: HostMemoryKind | None = None) -> np.ndarray:
        """Copy device buffer ``name`` back to the host (null-stream semantics)."""
        kind = self._host_kind(host_kind)
        out = self.memory.to_host(name, host_kind=kind)
        grant = self.host_transfer_grant("d2h", out.nbytes, kind=kind, label=name)
        self.stats.transfer_time += grant.duration
        self.stats.d2h_bytes += out.nbytes
        self.timeline.schedule_sync("d2h", name, grant.duration)
        return out

    def alloc(self, name: str, shape, dtype=np.float64, space: MemorySpace = MemorySpace.GLOBAL):
        """Allocate an output buffer on the device (not timed: no data crosses PCIe)."""
        return self.memory.alloc(name, shape, dtype, space)

    def free(self, name: str) -> None:
        self.memory.free(name)

    def free_evaluator_buffers(self, owner) -> int:
        """Free every named buffer belonging to ``owner`` (an evaluator or its id).

        Evaluators name their persistent device buffers ``"<kind>:<id>"``
        (optionally with further ``:`` suffixes); when many evaluators share
        one context those allocations would otherwise accumulate as simulated
        device-memory leaks.  Returns the number of buffers freed.
        """
        owner_id = str(owner if isinstance(owner, int) else id(owner))
        names = [
            name for name in self.memory.allocations if owner_id in name.split(":")[1:]
        ]
        for name in names:
            self.memory.free(name)
        return len(names)

    # ------------------------------------------------------------------
    # Kernel launches (timed)
    # ------------------------------------------------------------------
    def _execute_and_time(
        self,
        kernel: Kernel,
        active_threads: int | tuple[int, ...],
        args,
        *,
        block_size: int,
        config: LaunchConfig | None,
        cost: KernelCostProfile | None,
    ) -> KernelLaunch:
        """Run the kernel body functionally and produce its launch record."""
        total_active, work_shape = normalize_work(active_threads)
        if total_active <= 0:
            raise ValueError(f"active_threads must be positive, got {active_threads}")
        cfg = config if config is not None else kernel.launch_config(total_active, block_size)
        if cfg.total_threads < total_active:
            raise ValueError(
                f"launch configuration provides {cfg.total_threads} threads but "
                f"{total_active} are required"
            )
        eval_start = time.perf_counter()
        kernel.execute(cfg, args, active_threads=total_active, mode=self.mode)
        self.stats.host_eval_time += time.perf_counter() - eval_start
        breakdown = self.timing.kernel_time(
            cfg, cost if cost is not None else kernel.cost, active_threads=total_active
        )
        record = KernelLaunch(
            kernel_name=kernel.name,
            config=cfg,
            active_threads=total_active,
            time=breakdown,
            mode=self.mode,
            work_shape=work_shape,
        )
        self.stats.kernel_launches += 1
        self.stats.kernel_time += breakdown.total_time
        if self.keep_launch_records:
            self.stats.launch_records.append(record)
        return record

    def launch(
        self,
        kernel: Kernel,
        active_threads: int | tuple[int, ...],
        args,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        config: LaunchConfig | None = None,
        cost: KernelCostProfile | None = None,
    ) -> KernelLaunch:
        """Execute ``kernel`` over ``active_threads`` logical work items.

        ``active_threads`` is either a plain thread count (the paper's 1-D
        one-thread-per-neighbor launch) or a logical work shape such as
        ``(S, M)`` for a solution-parallel batch of ``S`` replicas — the
        launch then covers the product and the shape is recorded so the
        profiler can attribute the time to a batched launch.  Functional
        results are written into the arrays in ``args``; the simulated
        execution time is added to :attr:`stats`.  Null-stream semantics: the
        launch serializes against all outstanding asynchronous work.
        """
        record = self._execute_and_time(
            kernel, active_threads, args, block_size=block_size, config=config, cost=cost
        )
        self.timeline.schedule_sync("kernel", kernel.name, record.time.total_time)
        return record

    # ------------------------------------------------------------------
    # Asynchronous (stream-ordered) operations
    # ------------------------------------------------------------------
    def copy_async(
        self,
        name: str,
        host_array: np.ndarray,
        *,
        stream: str = COPY_STREAM,
        wait_for: Event | list[Event] | None = None,
        not_before: float = 0.0,
        space: MemorySpace = MemorySpace.GLOBAL,
        host_kind: HostMemoryKind | None = None,
        grant: TransferGrant | None = None,
    ) -> Event:
        """Host -> device copy issued on ``stream``; returns its completion event.

        Unlike :meth:`to_device` the buffer is transparently reallocated when
        the staged array's geometry changes (delta packets shrink and grow
        with the number of still-active replicas).  On a pinned context the
        packet is staged through :attr:`staging_pool` and priced with the
        pinned PCIe terms.  Passing a pre-priced ``grant`` (from a batched
        engine arbitration) skips the per-copy pricing.
        """
        host_array = np.asarray(host_array)
        existing = self.memory.allocations.get(name)
        if existing is not None and (
            existing.data.shape != host_array.shape or existing.data.dtype != host_array.dtype
        ):
            self.memory.free(name)
        kind = self._host_kind(host_kind)
        if kind is HostMemoryKind.PINNED and self.staging_pool is not None:
            self.staging_pool.stage(int(host_array.nbytes))
        buf = self.memory.to_device(name, host_array, space, host_kind=kind)
        if grant is None:
            start = self._issue_start(stream, wait_for, not_before)
            grant = self.host_transfer_grant(
                "h2d", buf.nbytes, kind=kind, start=start, label=name
            )
        self.stats.transfer_time += grant.duration
        self.stats.h2d_bytes += buf.nbytes
        interval = self.timeline.schedule(
            "h2d", name, grant.duration,
            stream=stream, wait_for=wait_for, not_before=not_before,
        )
        return Event(stream=stream, time=interval.end)

    def download_async(
        self,
        name: str,
        *,
        stream: str = DOWNLOAD_STREAM,
        wait_for: Event | list[Event] | None = None,
        not_before: float = 0.0,
        host_kind: HostMemoryKind | None = None,
        grant: TransferGrant | None = None,
    ) -> tuple[np.ndarray, Event]:
        """Device -> host copy issued on ``stream``; returns (data, event)."""
        kind = self._host_kind(host_kind)
        out = self.memory.to_host(name, host_kind=kind)
        if kind is HostMemoryKind.PINNED and self.staging_pool is not None:
            self.staging_pool.stage(int(out.nbytes))
        if grant is None:
            start = self._issue_start(stream, wait_for, not_before)
            grant = self.host_transfer_grant(
                "d2h", out.nbytes, kind=kind, start=start, label=name
            )
        self.stats.transfer_time += grant.duration
        self.stats.d2h_bytes += out.nbytes
        interval = self.timeline.schedule(
            "d2h", name, grant.duration,
            stream=stream, wait_for=wait_for, not_before=not_before,
        )
        return out, Event(stream=stream, time=interval.end)

    # ------------------------------------------------------------------
    # Peer-to-peer (device -> device) operations
    # ------------------------------------------------------------------
    def can_access_peer(self, peer: "GPUContext") -> bool:
        """Whether a direct peer copy to ``peer`` is possible.

        Contexts sharing one interconnect engine consult its topology (the
        peer mesh is a routing property there); standalone contexts fall
        back to the specs' capability flags.
        """
        if self.engine is peer.engine:
            return self.engine.has_peer_route(self.device_key, peer.device_key)
        return self.device.p2p_capable and peer.device.p2p_capable

    def copy_peer_async(
        self,
        peer: "GPUContext",
        name: str,
        data: np.ndarray,
        *,
        wait_for: Event | list[Event] | None = None,
        not_before: float = 0.0,
        space: MemorySpace = MemorySpace.GLOBAL,
    ) -> Event:
        """Device -> device copy into ``peer``'s buffer ``name`` over the P2P link.

        The copy occupies the :data:`~repro.gpu.streams.P2P_STREAM` of *both*
        endpoints for its duration (the link is shared), starts once both
        streams are free and every ``wait_for`` event has fired, and returns
        the arrival event on the peer's stream.  The traffic is accounted in
        the source's ``p2p_bytes`` — never in the host-facing h2d/d2h
        counters, because no host round trip takes place.
        """
        if not self.can_access_peer(peer):
            if not self.device.p2p_capable or not peer.device.p2p_capable:
                incapable = self.device if not self.device.p2p_capable else peer.device
                reason = f"{incapable.name!r} is not p2p-capable"
            else:
                reason = (
                    f"topology {self.engine.topology.name!r} has no peer route "
                    f"{self.device_key} -> {peer.device_key}"
                )
            raise RuntimeError(
                f"peer access between {self.device.name!r} and {peer.device.name!r} "
                f"is unavailable ({reason}); "
                "route the packet through the host instead"
            )
        data = np.asarray(data)
        existing = peer.memory.allocations.get(name)
        if existing is not None and (
            existing.data.shape != data.shape or existing.data.dtype != data.dtype
        ):
            peer.memory.free(name)
        if name not in peer.memory.allocations:
            peer.memory.alloc(name, data.shape, data.dtype, space)
        peer.memory.get(name).copy_from_host(data)
        # Both endpoints' p2p engines are busy for the copy's duration; the
        # shared start is the later of the two stream cursors (plus deps).
        barrier = max(
            self.timeline.stream(P2P_STREAM).cursor,
            peer.timeline.stream(P2P_STREAM).cursor,
            not_before,
        )
        if self.engine is peer.engine:
            start = self._issue_start(P2P_STREAM, wait_for, barrier)
            start = max(start, peer.timeline.stream(P2P_STREAM).cursor)
            grant = self.engine.peer_transfer(
                self.device_key, peer.device_key, int(data.nbytes),
                start=start, label=name,
            )
            duration = grant.duration
        else:
            # Standalone contexts with private engines: legacy point-to-point
            # peer pricing from the device specs.
            duration = self.timing.peer_transfer_time(int(data.nbytes), peer.device)
        self.stats.p2p_bytes += int(data.nbytes)
        self.stats.peer_transfers += 1
        self.stats.p2p_time += duration
        self.timeline.schedule(
            "p2p", f"{name}->peer", duration,
            stream=P2P_STREAM, wait_for=wait_for, not_before=barrier,
        )
        interval = peer.timeline.schedule(
            "p2p", name, duration,
            stream=P2P_STREAM, wait_for=wait_for, not_before=barrier,
        )
        return Event(stream=P2P_STREAM, time=interval.end)

    def launch_async(
        self,
        kernel: Kernel,
        active_threads: int | tuple[int, ...],
        args,
        *,
        stream: str = COMPUTE_STREAM,
        wait_for: Event | list[Event] | None = None,
        not_before: float = 0.0,
        block_size: int = DEFAULT_BLOCK_SIZE,
        config: LaunchConfig | None = None,
        cost: KernelCostProfile | None = None,
    ) -> tuple[KernelLaunch, Event]:
        """Issue a kernel on ``stream``, ordered only by ``wait_for`` events."""
        record = self._execute_and_time(
            kernel, active_threads, args, block_size=block_size, config=config, cost=cost
        )
        interval = self.timeline.schedule(
            "kernel",
            kernel.name,
            record.time.total_time,
            stream=stream,
            wait_for=wait_for,
            not_before=not_before,
        )
        return record, Event(stream=stream, time=interval.end)

    def reduce_async(
        self,
        name: str,
        num_elements: int,
        *,
        stream: str = COMPUTE_STREAM,
        wait_for: Event | list[Event] | None = None,
        not_before: float = 0.0,
    ) -> Event:
        """Account a fused on-device min/argmin reduction over ``num_elements``.

        The functional result is produced by the caller (the simulator's
        evaluators compute it with NumPy); this method charges the
        :meth:`~repro.gpu.timing.GPUTimingModel.reduction_time` cost and
        places the pass on the stream timeline.
        """
        duration = self.timing.reduction_time(num_elements)
        self.stats.reductions += 1
        self.stats.reduction_time += duration
        interval = self.timeline.schedule(
            "reduce", name, duration, stream=stream, wait_for=wait_for, not_before=not_before
        )
        return Event(stream=stream, time=interval.end)

    def open_device_loop(
        self,
        kernel: Kernel | PersistentKernel,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> DeviceLoop:
        """Start a persistent launch: one :class:`DeviceLoop` per run.

        The returned loop accumulates every on-device iteration; closing it
        (:meth:`DeviceLoop.finish`) charges a single kernel launch whose
        overhead is amortized over all iterations and records one long
        timeline interval per stream.
        """
        return DeviceLoop(self, kernel, block_size=block_size)

    def synchronize(self) -> float:
        """Host-side sync point: the simulated instant all streams drain."""
        return self.timeline.elapsed

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_accounting(self) -> dict:
        """Checkpointable accounting state: stats, timeline, staging counters.

        Device *contents* (allocations) are deliberately not included —
        callers reinstall resident data through their own warm paths (see
        ``GPUEvaluator.restore_state``), and the shared interconnect engine
        is snapshotted separately by whoever owns it.
        """
        snap = {
            "device": self.device.name,
            "stats": self.stats.snapshot(),
            "timeline": self.timeline.snapshot(),
        }
        if self.staging_pool is not None:
            snap["staging"] = {
                "stagings": self.staging_pool.stagings,
                "staged_bytes": self.staging_pool.staged_bytes,
                "high_water_bytes": self.staging_pool.high_water_bytes,
            }
        return snap

    def restore_accounting(self, snap: dict) -> None:
        """Install a :meth:`snapshot_accounting` taken on an identical device."""
        if snap.get("device") != self.device.name:
            raise ValueError(
                f"checkpoint was taken on device {snap.get('device')!r}, "
                f"this context simulates {self.device.name!r}"
            )
        self.stats.restore(snap["stats"])
        self.timeline.restore(snap["timeline"])
        staging = snap.get("staging")
        if staging is not None and self.staging_pool is not None:
            self.staging_pool.stagings = int(staging["stagings"])
            self.staging_pool.staged_bytes = int(staging["staged_bytes"])
            self.staging_pool.high_water_bytes = int(staging["high_water_bytes"])

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear statistics, transfer logs and the stream timeline (allocations survive).

        The interconnect engine's committed load rewinds too — its load
        profile is anchored to the same simulated clock the timeline resets.
        A pool-shared engine is reset by whichever context resets first
        (pools rewind all their contexts together).
        """
        self.stats.reset()
        self.memory.reset_statistics()
        self.timeline.reset()
        self.engine.reset()
        if self.staging_pool is not None:
            self.staging_pool.reset()

    def __repr__(self) -> str:  # pragma: no cover
        return f"GPUContext(device={self.device.name!r}, mode={self.mode.value})"
