"""Device runtime: the host-side context that owns memory, launches kernels
and accumulates the simulated clock.

:class:`GPUContext` plays the role of the CUDA runtime in the paper's
implementation: the host allocates device buffers, copies the candidate
solution and problem data up, launches the neighborhood kernel, copies the
fitness array back and keeps track of how much (simulated) time all of that
took.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .device import DeviceSpec, GTX_280
from .hierarchy import DEFAULT_BLOCK_SIZE, LaunchConfig
from .kernel import ExecutionMode, Kernel, KernelLaunch, normalize_work
from .memory import MemoryManager, MemorySpace
from .timing import GPUTimingModel, KernelCostProfile

__all__ = ["DeviceStats", "GPUContext"]


@dataclass
class DeviceStats:
    """Accumulated simulated activity of one device context."""

    kernel_launches: int = 0
    kernel_time: float = 0.0
    transfer_time: float = 0.0
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    launch_records: list[KernelLaunch] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        """Total simulated device-related time (kernels + transfers)."""
        return self.kernel_time + self.transfer_time

    def reset(self) -> None:
        self.kernel_launches = 0
        self.kernel_time = 0.0
        self.transfer_time = 0.0
        self.h2d_bytes = 0
        self.d2h_bytes = 0
        self.launch_records.clear()


class GPUContext:
    """Host-side handle to one simulated GPU.

    Parameters
    ----------
    device:
        Hardware description (defaults to the paper's GTX 280).
    mode:
        Execution backend for kernel bodies; the vectorized backend is the
        default, the per-thread backend is available for verification.
    keep_launch_records:
        Store a :class:`~repro.gpu.kernel.KernelLaunch` record per launch
        (disable for very long runs to bound memory).
    """

    def __init__(
        self,
        device: DeviceSpec = GTX_280,
        *,
        mode: ExecutionMode = ExecutionMode.VECTORIZED,
        keep_launch_records: bool = False,
    ) -> None:
        self.device = device
        self.mode = mode
        self.memory = MemoryManager(capacity_bytes=device.global_mem_bytes)
        self.timing = GPUTimingModel(device)
        self.stats = DeviceStats()
        self.keep_launch_records = keep_launch_records

    # ------------------------------------------------------------------
    # Memory operations (timed)
    # ------------------------------------------------------------------
    def to_device(
        self, name: str, host_array: np.ndarray, space: MemorySpace = MemorySpace.GLOBAL
    ):
        """Copy ``host_array`` into device buffer ``name`` (allocating it if new)."""
        buf = self.memory.to_device(name, host_array, space)
        self.stats.transfer_time += self.timing.transfer_time(buf.nbytes)
        self.stats.h2d_bytes += buf.nbytes
        return buf

    def to_host(self, name: str) -> np.ndarray:
        """Copy device buffer ``name`` back to the host."""
        out = self.memory.to_host(name)
        self.stats.transfer_time += self.timing.transfer_time(out.nbytes)
        self.stats.d2h_bytes += out.nbytes
        return out

    def alloc(self, name: str, shape, dtype=np.float64, space: MemorySpace = MemorySpace.GLOBAL):
        """Allocate an output buffer on the device (not timed: no data crosses PCIe)."""
        return self.memory.alloc(name, shape, dtype, space)

    def free(self, name: str) -> None:
        self.memory.free(name)

    # ------------------------------------------------------------------
    # Kernel launches (timed)
    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: Kernel,
        active_threads: int | tuple[int, ...],
        args,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        config: LaunchConfig | None = None,
        cost: KernelCostProfile | None = None,
    ) -> KernelLaunch:
        """Execute ``kernel`` over ``active_threads`` logical work items.

        ``active_threads`` is either a plain thread count (the paper's 1-D
        one-thread-per-neighbor launch) or a logical work shape such as
        ``(S, M)`` for a solution-parallel batch of ``S`` replicas — the
        launch then covers the product and the shape is recorded so the
        profiler can attribute the time to a batched launch.  Functional
        results are written into the arrays in ``args``; the simulated
        execution time is added to :attr:`stats`.
        """
        total_active, work_shape = normalize_work(active_threads)
        if total_active <= 0:
            raise ValueError(f"active_threads must be positive, got {active_threads}")
        cfg = config if config is not None else kernel.launch_config(total_active, block_size)
        if cfg.total_threads < total_active:
            raise ValueError(
                f"launch configuration provides {cfg.total_threads} threads but "
                f"{total_active} are required"
            )
        kernel.execute(cfg, args, active_threads=total_active, mode=self.mode)
        breakdown = self.timing.kernel_time(
            cfg, cost if cost is not None else kernel.cost, active_threads=total_active
        )
        record = KernelLaunch(
            kernel_name=kernel.name,
            config=cfg,
            active_threads=total_active,
            time=breakdown,
            mode=self.mode,
            work_shape=work_shape,
        )
        self.stats.kernel_launches += 1
        self.stats.kernel_time += breakdown.total_time
        if self.keep_launch_records:
            self.stats.launch_records.append(record)
        return record

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear statistics and transfer logs (allocations survive)."""
        self.stats.reset()
        self.memory.reset_statistics()

    def __repr__(self) -> str:  # pragma: no cover
        return f"GPUContext(device={self.device.name!r}, mode={self.mode.value})"
