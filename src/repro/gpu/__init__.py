"""SPMD GPU execution simulator (the hardware substrate of the reproduction).

The paper runs its kernels on an NVIDIA GTX 280.  This subpackage provides a
software stand-in: the same thread-hierarchy abstractions, memory spaces and
kernel-launch API, a functional execution backend (vectorized NumPy or a
faithful per-thread interpreter) and an analytic timing model that supplies
the "GPU time" / "CPU time" columns of the reproduced tables.
"""

from .device import (
    DEVICE_PRESETS,
    GTX_280,
    GTX_8800,
    TESLA_C1060,
    XEON_3GHZ,
    DeviceSpec,
    HostSpec,
    get_device,
)
from .dtypes import (
    DELTA_DTYPE,
    DELTA_PAIR_BYTES,
    FITNESS_BYTES,
    FITNESS_DTYPE,
    PEER_PACKET_HEADER_BYTES,
    REDUCED_INDEX_DTYPE,
    REDUCED_RESULT_BYTES,
    SOLUTION_DTYPE,
    SOLUTION_ENTRY_BYTES,
    STOP_FLAG_BYTES,
    TABU_NEVER,
    TABU_STAMP_BYTES,
    TABU_STAMP_DTYPE,
)
from .hierarchy import DEFAULT_BLOCK_SIZE, Dim3, LaunchConfig, ThreadIndex, grid_for
from .kernel import (
    ExecutionMode,
    Kernel,
    KernelLaunch,
    PersistentKernel,
    ThreadContext,
    normalize_work,
)
from .memory import (
    DeviceBuffer,
    HostMemoryKind,
    MemoryManager,
    MemorySpace,
    OutOfDeviceMemory,
    PinnedStagingPool,
    TransferRecord,
)
from .multi_device import (
    MultiGPU,
    Partition,
    partition_range,
    throughput_weights,
    weighted_partition_range,
)
from .occupancy import OccupancyResult, occupancy
from .profiler import KernelProfile, ProfileReport, format_profile, profile, timeline_report
from .runtime import DeviceLoop, DeviceStats, GPUContext, PersistentLaunchRecord
from .scheduler import HOST_TIMELINE_STREAM, DeviceScheduler, merge_timelines
from .streams import (
    COMPUTE_STREAM,
    COPY_STREAM,
    DEFAULT_STREAM,
    DOWNLOAD_STREAM,
    P2P_STREAM,
    Event,
    Stream,
    StreamInterval,
    Timeline,
    format_timeline,
)
from .timing import GPUTimingModel, HostTimingModel, KernelCostProfile, KernelTimeBreakdown

__all__ = [
    "DeviceSpec",
    "HostSpec",
    "GTX_280",
    "GTX_8800",
    "TESLA_C1060",
    "XEON_3GHZ",
    "DEVICE_PRESETS",
    "get_device",
    "Dim3",
    "ThreadIndex",
    "LaunchConfig",
    "grid_for",
    "DEFAULT_BLOCK_SIZE",
    "ExecutionMode",
    "Kernel",
    "KernelLaunch",
    "PersistentKernel",
    "ThreadContext",
    "normalize_work",
    "MemorySpace",
    "HostMemoryKind",
    "DeviceBuffer",
    "MemoryManager",
    "PinnedStagingPool",
    "TransferRecord",
    "OutOfDeviceMemory",
    "occupancy",
    "OccupancyResult",
    "profile",
    "format_profile",
    "timeline_report",
    "ProfileReport",
    "KernelProfile",
    "Stream",
    "StreamInterval",
    "Event",
    "Timeline",
    "format_timeline",
    "DEFAULT_STREAM",
    "COPY_STREAM",
    "COMPUTE_STREAM",
    "DOWNLOAD_STREAM",
    "P2P_STREAM",
    "DeviceScheduler",
    "HOST_TIMELINE_STREAM",
    "merge_timelines",
    "FITNESS_DTYPE",
    "SOLUTION_DTYPE",
    "DELTA_DTYPE",
    "REDUCED_INDEX_DTYPE",
    "FITNESS_BYTES",
    "SOLUTION_ENTRY_BYTES",
    "DELTA_PAIR_BYTES",
    "REDUCED_RESULT_BYTES",
    "TABU_STAMP_DTYPE",
    "TABU_STAMP_BYTES",
    "STOP_FLAG_BYTES",
    "TABU_NEVER",
    "GPUTimingModel",
    "HostTimingModel",
    "KernelCostProfile",
    "KernelTimeBreakdown",
    "GPUContext",
    "DeviceStats",
    "DeviceLoop",
    "PersistentLaunchRecord",
    "MultiGPU",
    "Partition",
    "partition_range",
    "weighted_partition_range",
    "throughput_weights",
    "PEER_PACKET_HEADER_BYTES",
]
