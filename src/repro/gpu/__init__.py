"""SPMD GPU execution simulator (the hardware substrate of the reproduction).

The paper runs its kernels on an NVIDIA GTX 280.  This subpackage provides a
software stand-in: the same thread-hierarchy abstractions, memory spaces and
kernel-launch API, a functional execution backend (vectorized NumPy or a
faithful per-thread interpreter) and an analytic timing model that supplies
the "GPU time" / "CPU time" columns of the reproduced tables.
"""

from .device import (
    DEVICE_PRESETS,
    GTX_280,
    GTX_8800,
    TESLA_C1060,
    XEON_3GHZ,
    DeviceSpec,
    HostSpec,
    get_device,
)
from .hierarchy import DEFAULT_BLOCK_SIZE, Dim3, LaunchConfig, ThreadIndex, grid_for
from .kernel import ExecutionMode, Kernel, KernelLaunch, ThreadContext, normalize_work
from .memory import DeviceBuffer, MemoryManager, MemorySpace, OutOfDeviceMemory, TransferRecord
from .multi_device import MultiGPU, Partition, partition_range
from .occupancy import OccupancyResult, occupancy
from .profiler import KernelProfile, ProfileReport, format_profile, profile
from .runtime import DeviceStats, GPUContext
from .timing import GPUTimingModel, HostTimingModel, KernelCostProfile, KernelTimeBreakdown

__all__ = [
    "DeviceSpec",
    "HostSpec",
    "GTX_280",
    "GTX_8800",
    "TESLA_C1060",
    "XEON_3GHZ",
    "DEVICE_PRESETS",
    "get_device",
    "Dim3",
    "ThreadIndex",
    "LaunchConfig",
    "grid_for",
    "DEFAULT_BLOCK_SIZE",
    "ExecutionMode",
    "Kernel",
    "KernelLaunch",
    "ThreadContext",
    "normalize_work",
    "MemorySpace",
    "DeviceBuffer",
    "MemoryManager",
    "TransferRecord",
    "OutOfDeviceMemory",
    "occupancy",
    "OccupancyResult",
    "profile",
    "format_profile",
    "ProfileReport",
    "KernelProfile",
    "GPUTimingModel",
    "HostTimingModel",
    "KernelCostProfile",
    "KernelTimeBreakdown",
    "GPUContext",
    "DeviceStats",
    "MultiGPU",
    "Partition",
    "partition_range",
]
