"""Analytic timing model for simulated kernel launches and the CPU baseline.

This module is the substitute for the wall-clock numbers a physical GTX 280
would produce.  It uses a standard roofline-style estimate:

* a kernel is either **compute bound** (total flops / sustained FLOP/s) or
  **memory bound** (total global-memory traffic / sustained bandwidth),
  whichever is larger;
* both throughputs degrade when the launch does not put enough warps on each
  multiprocessor to hide latency (the fate of the paper's small 1-Hamming
  kernels);
* every launch pays a fixed host-side overhead, and host<->device copies pay
  PCIe latency plus size/bandwidth.

The CPU baseline model is the scalar analogue: total flops divided by the
sustained single-core throughput of the host.

The model is calibrated (via the :data:`~repro.gpu.device.GTX_280` and
:data:`~repro.gpu.device.XEON_3GHZ` presets) so that the *shape* of the
paper's results — the 1-Hamming CPU/GPU crossover around 200×217, the
×10–×18 2-Hamming accelerations and the ×24–×26 3-Hamming plateau — is
reproduced; absolute seconds are approximations, as documented in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec, HostSpec
from .dtypes import FITNESS_BYTES
from .hierarchy import LaunchConfig
from .memory import HostMemoryKind
from .occupancy import OccupancyResult, occupancy

__all__ = [
    "KernelCostProfile",
    "KernelTimeBreakdown",
    "GPUTimingModel",
    "HostTimingModel",
]


@dataclass(frozen=True)
class KernelCostProfile:
    """Per-thread work of one kernel, as counted by the caller.

    ``flops`` counts arithmetic operations (integer and floating point alike
    — the scalar units execute both), ``gmem_bytes`` counts uncached
    global-memory traffic per thread, ``texture_bytes`` counts read-only
    traffic served through the texture cache (the paper binds the problem
    data to a texture for its "GPUTexture" curve), ``smem_bytes`` the
    shared-memory footprint per block and ``registers`` an estimate of
    registers per thread.
    """

    flops: float
    gmem_bytes: float
    texture_bytes: float = 0.0
    smem_bytes: float = 0.0
    registers: int = 16

    def scaled(self, factor: float) -> "KernelCostProfile":
        return KernelCostProfile(
            flops=self.flops * factor,
            gmem_bytes=self.gmem_bytes * factor,
            texture_bytes=self.texture_bytes * factor,
            smem_bytes=self.smem_bytes,
            registers=self.registers,
        )


@dataclass(frozen=True)
class KernelTimeBreakdown:
    """Timing estimate of a single kernel launch, split by cause."""

    compute_time: float
    memory_time: float
    launch_overhead: float
    occupancy: OccupancyResult

    @property
    def kernel_time(self) -> float:
        """Device-side execution time (max of the roofline terms)."""
        return max(self.compute_time, self.memory_time)

    @property
    def total_time(self) -> float:
        return self.kernel_time + self.launch_overhead

    @property
    def bound(self) -> str:
        return "memory" if self.memory_time > self.compute_time else "compute"


@dataclass
class GPUTimingModel:
    """Roofline + latency-hiding timing model for one device."""

    device: DeviceSpec
    #: Warps per SM below which throughput degrades linearly.  Derived from
    #: the device's latency characteristics unless overridden.
    latency_hiding_warps: float | None = None

    def _hiding_threshold(self) -> float:
        if self.latency_hiding_warps is not None:
            return self.latency_hiding_warps
        return self.device.warps_to_hide_latency

    def latency_hiding_factor(self, occ: OccupancyResult) -> float:
        """Fraction of peak throughput sustained at the launch's occupancy."""
        threshold = self._hiding_threshold()
        if threshold <= 0:
            return 1.0
        return min(1.0, max(occ.active_warps_per_mp, 1.0 / self.device.warp_size) / threshold)

    def compute_hiding_factor(self, occ: OccupancyResult) -> float:
        """Arithmetic pipelines need far fewer warps than memory to stay busy."""
        threshold = max(self._hiding_threshold() / 4.0, 1.0)
        return min(1.0, max(occ.active_warps_per_mp, 1.0 / self.device.warp_size) / threshold)

    # ------------------------------------------------------------------
    def kernel_time(
        self,
        config: LaunchConfig,
        cost: KernelCostProfile,
        *,
        active_threads: int | None = None,
    ) -> KernelTimeBreakdown:
        """Estimate the execution time of one launch.

        ``active_threads`` is the number of threads that pass the kernel's
        bounds check (``if move_index < N``); padding threads in the last
        block do no work.
        """
        threads = config.total_threads if active_threads is None else int(active_threads)
        threads = max(threads, 0)
        occ = occupancy(
            self.device,
            config,
            registers_per_thread=cost.registers,
            shared_mem_per_block=int(cost.smem_bytes),
        )
        if occ.blocks_per_mp == 0:
            raise ValueError(
                f"kernel cannot be scheduled on {self.device.name}: limited by {occ.limiter}"
            )
        total_flops = cost.flops * threads
        total_bytes = cost.gmem_bytes * threads
        total_texture_bytes = cost.texture_bytes * threads
        compute = total_flops / (self.device.sustained_flops * self.compute_hiding_factor(occ))
        memory = total_bytes / (self.device.sustained_bandwidth * self.latency_hiding_factor(occ))
        if total_texture_bytes:
            # Texture fetches are cached and insensitive to coalescing; they
            # still need *some* parallelism to hide latency, but far less
            # than plain global loads.
            texture_hiding = min(
                1.0,
                max(occ.active_warps_per_mp, 1.0 / self.device.warp_size)
                / max(self._hiding_threshold() / 2.0, 1.0),
            )
            memory += total_texture_bytes / (
                self.device.mem_bandwidth * self.device.texture_efficiency * texture_hiding
            )
        return KernelTimeBreakdown(
            compute_time=compute,
            memory_time=memory,
            launch_overhead=self.device.kernel_launch_overhead,
            occupancy=occ,
        )

    def transfer_time(
        self, nbytes: float, kind: HostMemoryKind = HostMemoryKind.PAGEABLE
    ) -> float:
        """Host<->device copy time over PCIe, priced per host-memory kind.

        Pageable copies pay the driver's bounce-buffer staging (the seed
        model's single latency + bandwidth term); pinned copies DMA straight
        out of page-locked memory — lower latency, higher sustained rate.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if kind is HostMemoryKind.PINNED:
            return (
                self.device.pcie_pinned_latency
                + nbytes / self.device.pcie_pinned_bandwidth
            )
        return self.device.pcie_latency + nbytes / self.device.pcie_bandwidth

    def peer_transfer_time(self, nbytes: float, peer: DeviceSpec | None = None) -> float:
        """Device->device copy time over the PCIe peer link.

        The effective rate is the slower endpoint's peer bandwidth and the
        latency the larger endpoint latency; both devices must advertise
        peer capability.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if not self.device.p2p_capable or (peer is not None and not peer.p2p_capable):
            incapable = self.device if not self.device.p2p_capable else peer
            raise ValueError(
                f"device {incapable.name!r} does not support peer-to-peer access"
            )
        bandwidth = self.device.p2p_bandwidth
        latency = self.device.p2p_latency
        if peer is not None:
            bandwidth = min(bandwidth, peer.p2p_bandwidth)
            latency = max(latency, peer.p2p_latency)
        return latency + nbytes / bandwidth

    def reduction_time(self, num_elements: int) -> float:
        """Device-side parallel min/argmin reduction over ``num_elements`` values.

        Modeled as a bandwidth-bound pass over the data plus one launch
        overhead (the paper selects the best neighbor after the evaluation
        kernel; whether that reduction runs on the device or on the host
        after a copy-back, the cost is a single pass over the fitness
        array).
        """
        if num_elements < 0:
            raise ValueError("num_elements must be non-negative")
        bytes_read = float(FITNESS_BYTES) * num_elements
        return self.device.kernel_launch_overhead + bytes_read / self.device.sustained_bandwidth


@dataclass
class HostTimingModel:
    """Scalar CPU baseline: the sequential neighborhood scan of the paper."""

    host: HostSpec
    #: Use more than one core (the paper's baseline is single-core; the
    #: multi-core variant is provided for ablation studies).
    cores_used: int = 1

    def evaluation_time(self, total_flops: float, total_bytes: float = 0.0) -> float:
        """Time to execute ``total_flops`` of scalar evaluation work."""
        if total_flops < 0 or total_bytes < 0:
            raise ValueError("work amounts must be non-negative")
        cores = max(1, min(self.cores_used, self.host.cores))
        compute = total_flops / (self.host.sustained_flops * cores)
        memory = total_bytes / (self.host.sustained_bandwidth * min(cores, 2))
        return max(compute, memory)

    def iteration_overhead(self) -> float:
        """Per-iteration bookkeeping of the sequential local search (selection, tabu update)."""
        return 2.0e-7
