"""Kernel-launch profiler for the simulated device (an ``nvprof``-style summary).

When a :class:`~repro.gpu.runtime.GPUContext` is created with
``keep_launch_records=True`` every launch is recorded; this module aggregates
those records into the familiar profiler view — time per kernel, launch
counts, occupancy, whether each kernel is compute- or memory-bound — which is
how a practitioner would validate the performance model against a real card.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .interconnect import TransferEngine, format_interconnect
from .runtime import DeviceStats, GPUContext
from .scheduler import DeviceScheduler, merge_timelines
from .streams import Timeline, format_timeline

__all__ = [
    "KernelProfile",
    "ProfileReport",
    "profile",
    "format_profile",
    "timeline_report",
]


@dataclass
class KernelProfile:
    """Aggregated statistics of every launch of one kernel."""

    name: str
    launches: int = 0
    total_time: float = 0.0
    kernel_time: float = 0.0
    overhead_time: float = 0.0
    total_threads: int = 0
    memory_bound_launches: int = 0
    occupancy_sum: float = 0.0
    #: Launches whose logical work shape had more than one dimension (the
    #: solution-parallel ``(S, M)`` batches).
    batched_launches: int = 0
    #: Largest replica count seen in a batched launch (1 if never batched).
    max_batch: int = 1

    @property
    def mean_time(self) -> float:
        return self.total_time / self.launches if self.launches else 0.0

    @property
    def mean_occupancy(self) -> float:
        return self.occupancy_sum / self.launches if self.launches else 0.0

    @property
    def dominant_bound(self) -> str:
        if not self.launches:
            return "-"
        return "memory" if self.memory_bound_launches * 2 >= self.launches else "compute"


@dataclass
class ProfileReport:
    """Profiler view over one device context's recorded activity."""

    kernels: dict[str, KernelProfile] = field(default_factory=dict)
    transfer_time: float = 0.0
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    #: Fused on-device reductions (the resident pipeline's argmin epilogues).
    reductions: int = 0
    reduction_time: float = 0.0

    @property
    def total_kernel_time(self) -> float:
        return sum(k.total_time for k in self.kernels.values())

    @property
    def total_time(self) -> float:
        return self.total_kernel_time + self.reduction_time + self.transfer_time

    def fraction_of_time(self, kernel_name: str) -> float:
        if self.total_time == 0:
            return 0.0
        return self.kernels[kernel_name].total_time / self.total_time


def profile(context_or_stats: GPUContext | DeviceStats) -> ProfileReport:
    """Aggregate the launch records of a context (or raw stats) into a report."""
    if isinstance(context_or_stats, GPUContext):
        stats = context_or_stats.stats
    else:
        stats = context_or_stats
    report = ProfileReport(
        transfer_time=stats.transfer_time,
        h2d_bytes=stats.h2d_bytes,
        d2h_bytes=stats.d2h_bytes,
        reductions=stats.reductions,
        reduction_time=stats.reduction_time,
    )
    if not stats.launch_records and stats.kernel_launches:
        raise ValueError(
            "no launch records available: create the GPUContext with keep_launch_records=True "
            "to enable profiling"
        )
    for record in stats.launch_records:
        entry = report.kernels.setdefault(record.kernel_name, KernelProfile(record.kernel_name))
        entry.launches += 1
        entry.total_time += record.time.total_time
        entry.kernel_time += record.time.kernel_time
        entry.overhead_time += record.time.launch_overhead
        entry.total_threads += record.active_threads
        entry.occupancy_sum += record.time.occupancy.occupancy
        if record.time.bound == "memory":
            entry.memory_bound_launches += 1
        if len(record.work_shape) > 1:
            entry.batched_launches += 1
        entry.max_batch = max(entry.max_batch, record.batch_size)
    return report


def format_profile(report: ProfileReport) -> str:
    """Render the report as a fixed-width text table (one row per kernel)."""
    lines = [
        f"{'kernel':<58} {'launches':>8} {'time':>12} {'%':>6} {'avg':>12} "
        f"{'occ':>5} {'bound':>8} {'batch':>6}"
    ]
    for name in sorted(report.kernels, key=lambda n: -report.kernels[n].total_time):
        k = report.kernels[name]
        batch = f"x{k.max_batch}" if k.batched_launches else "-"
        lines.append(
            f"{name[:58]:<58} {k.launches:>8d} {k.total_time:>11.4f}s "
            f"{100 * report.fraction_of_time(name):>5.1f}% {k.mean_time * 1e3:>10.3f}ms "
            f"{k.mean_occupancy:>5.2f} {k.dominant_bound:>8} {batch:>6}"
        )
    if report.reductions:
        lines.append(
            f"{'fused on-device reductions':<58} {report.reductions:>8d} "
            f"{report.reduction_time:>11.4f}s "
            f"{100 * (report.reduction_time / report.total_time if report.total_time else 0):>5.1f}%"
        )
    lines.append(
        f"{'host<->device transfers':<58} {'':>8} {report.transfer_time:>11.4f}s "
        f"{100 * (report.transfer_time / report.total_time if report.total_time else 0):>5.1f}% "
        f"({report.h2d_bytes} B up, {report.d2h_bytes} B down)"
    )
    return "\n".join(lines)


def timeline_report(
    source: GPUContext | Timeline | DeviceScheduler | TransferEngine | list[GPUContext],
    *,
    limit: int | None = 40,
) -> str:
    """Per-stream interval view of recorded device activity.

    Complements the per-kernel summary of :func:`format_profile` with the
    *when* of each operation: which stream it ran on, what it waited for and
    how much transfer time hid under concurrent kernel execution.  Passing a
    :class:`~repro.gpu.scheduler.DeviceScheduler` (or a list of contexts)
    merges every device's streams — plus the host timeline — into one
    cross-device view whose makespan is the pool-level elapsed time.

    When the source carries an interconnect engine (a scheduler over one
    shared fabric, or the engine itself), the report gains an
    ``interconnect`` section: the shared host-uplink/switch lanes appear as
    their own timeline rows and a per-link traffic summary (bytes carried,
    busy time, contention stalls) is appended.
    """
    engine: TransferEngine | None = None
    if isinstance(source, DeviceScheduler):
        timeline = source.merged_timeline()
        if source.engine is not None and source.engine.topology.shared_links():
            engine = source.engine
    elif isinstance(source, TransferEngine):
        timeline = merge_timelines({"interconnect": source.timeline})
        engine = source
    elif isinstance(source, GPUContext):
        timeline = source.timeline
        if source.engine.topology.shared_links():
            engine = source.engine
    elif isinstance(source, Timeline):
        timeline = source
    else:
        timeline = merge_timelines(
            {f"gpu{i}": ctx.timeline for i, ctx in enumerate(source)}
        )
    report = format_timeline(timeline, limit=limit)
    if engine is not None and engine.transfers:
        report = f"{report}\n{format_interconnect(engine)}"
    return report
