"""Stopping criteria for local-search runs.

The paper's experiments stop a run either when a solution is found
(fitness 0) or after a maximum number of iterations equal to
``n(n-1)(n-2)/6``.  These criteria — and a few other classics — are modelled
as small composable objects.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

__all__ = [
    "SearchState",
    "StoppingCriterion",
    "MaxIterations",
    "TargetFitness",
    "MaxEvaluations",
    "NoImprovement",
    "AnyOf",
    "paper_stopping_criterion",
]


@dataclass(frozen=True)
class SearchState:
    """Snapshot of the search passed to stopping criteria."""

    iteration: int
    evaluations: int
    best_fitness: float
    iterations_since_improvement: int


class StoppingCriterion(abc.ABC):
    """Decides whether the search should stop."""

    @abc.abstractmethod
    def should_stop(self, state: SearchState) -> str | None:
        """Return a human-readable reason to stop, or ``None`` to continue."""


@dataclass(frozen=True)
class MaxIterations(StoppingCriterion):
    """Stop after a fixed number of iterations (the paper's main criterion)."""

    limit: int

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise ValueError(f"iteration limit must be non-negative, got {self.limit}")

    def should_stop(self, state: SearchState) -> str | None:
        return "max_iterations" if state.iteration >= self.limit else None


@dataclass(frozen=True)
class TargetFitness(StoppingCriterion):
    """Stop as soon as the best fitness reaches ``target`` (0 for the PPP)."""

    target: float = 0.0

    def should_stop(self, state: SearchState) -> str | None:
        return "target_reached" if state.best_fitness <= self.target else None


@dataclass(frozen=True)
class MaxEvaluations(StoppingCriterion):
    """Stop once the total number of neighbor evaluations exceeds ``limit``."""

    limit: int

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise ValueError(f"evaluation limit must be non-negative, got {self.limit}")

    def should_stop(self, state: SearchState) -> str | None:
        return "max_evaluations" if state.evaluations >= self.limit else None


@dataclass(frozen=True)
class NoImprovement(StoppingCriterion):
    """Stop after ``limit`` consecutive iterations without improving the best."""

    limit: int

    def __post_init__(self) -> None:
        if self.limit <= 0:
            raise ValueError(f"no-improvement limit must be positive, got {self.limit}")

    def should_stop(self, state: SearchState) -> str | None:
        return "no_improvement" if state.iterations_since_improvement >= self.limit else None


class AnyOf(StoppingCriterion):
    """Stop when any of the wrapped criteria fires (logical OR)."""

    def __init__(self, *criteria: StoppingCriterion) -> None:
        if not criteria:
            raise ValueError("AnyOf needs at least one criterion")
        self.criteria = tuple(criteria)

    def should_stop(self, state: SearchState) -> str | None:
        for criterion in self.criteria:
            reason = criterion.should_stop(state)
            if reason is not None:
                return reason
        return None


def paper_stopping_criterion(n: int, target: float = 0.0) -> StoppingCriterion:
    """The stopping rule used throughout the paper's evaluation.

    A run ends when a solution is found or after ``n(n-1)(n-2)/6`` iterations
    (the size of the 3-Hamming neighborhood of the instance).
    """
    limit = n * (n - 1) * (n - 2) // 6
    return AnyOf(TargetFitness(target), MaxIterations(limit))
