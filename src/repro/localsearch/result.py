"""Result record of one local-search run."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LSResult"]


@dataclass
class LSResult:
    """Everything a single local-search run produced.

    The experiment harness aggregates these into the rows of the reproduced
    tables (mean/std fitness, number of successful tries, average number of
    iterations, CPU/GPU model times).
    """

    #: Best solution found (0/1 vector).
    best_solution: np.ndarray
    #: Fitness of :attr:`best_solution` (lower is better).
    best_fitness: float
    #: Number of completed local-search iterations.
    iterations: int
    #: Total number of neighbor evaluations performed.
    evaluations: int
    #: Whether the problem's success criterion was reached (``fitness == 0`` for the PPP).
    success: bool
    #: Why the run stopped ("target_reached", "max_iterations", "local_optimum", ...).
    stopping_reason: str
    #: Simulated time accumulated by the evaluator that executed the run.
    simulated_time: float
    #: Wall-clock time of the Python run itself (useful for benchmarks only;
    #: this is *not* a paper-comparable number).
    wall_time: float
    #: Fitness of the initial solution.
    initial_fitness: float
    #: Best fitness after each iteration (present only when history tracking is on).
    history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.best_solution = np.asarray(self.best_solution, dtype=np.int8)

    @property
    def improvement(self) -> float:
        """Fitness improvement achieved over the initial solution."""
        return self.initial_fitness - self.best_fitness

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "SUCCESS" if self.success else "stopped"
        return (
            f"{status}: fitness {self.best_fitness:g} after {self.iterations} iterations "
            f"({self.evaluations} evaluations, {self.stopping_reason})"
        )
