"""Iterated local search and variable neighborhood search.

Both algorithms are listed in the paper's introduction among the common LS
heuristics the methodology applies to.  They are built *on top of* the
neighborhood-wide algorithms: ILS restarts a descent from a perturbed local
optimum, VNS cycles through neighborhoods of increasing Hamming order —
which is the natural consumer of the 1/2/3-Hamming structures made
affordable by the GPU exploration.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.evaluators import CPUEvaluator, NeighborhoodEvaluator
from ..neighborhoods import KHammingNeighborhood
from ..problems import BinaryProblem
from ..problems.base import flip_bits
from ..problems.incremental import attach_gain_engine, create_gain_engine, detach_gain_engine
from .base import check_transfer_mode
from .hill_climbing import HillClimbing
from .result import LSResult

__all__ = ["IteratedLocalSearch", "VariableNeighborhoodSearch"]


class IteratedLocalSearch:
    """ILS: repeated descent from perturbations of the incumbent local optimum."""

    name = "iterated-local-search"

    def __init__(
        self,
        evaluator: NeighborhoodEvaluator,
        *,
        restarts: int = 10,
        perturbation_strength: int = 3,
        descent_max_iterations: int = 1_000,
        target_fitness: float = 0.0,
        transfer_mode: str = "full",
    ) -> None:
        if restarts <= 0:
            raise ValueError("restarts must be positive")
        if perturbation_strength <= 0:
            raise ValueError("perturbation_strength must be positive")
        self.evaluator = evaluator
        self.problem = evaluator.problem
        self.restarts = int(restarts)
        self.perturbation_strength = int(perturbation_strength)
        self.descent_max_iterations = int(descent_max_iterations)
        self.target_fitness = float(target_fitness)
        #: Transfer mode of every inner descent: each descent runs
        #: device-resident (and, with ``"persistent"``, as one persistent
        #: launch per descent) instead of the scalar full-transfer loop.
        self.transfer_mode = check_transfer_mode(transfer_mode, evaluator)

    def perturb(self, solution: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Flip ``perturbation_strength`` random distinct bits."""
        positions = rng.choice(self.problem.n, size=min(self.perturbation_strength, self.problem.n),
                               replace=False)
        return flip_bits(solution, positions)

    def run(
        self,
        initial_solution: np.ndarray | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> LSResult:
        rng = np.random.default_rng(rng)
        start_wall = time.perf_counter()
        descent = HillClimbing(
            self.evaluator,
            max_iterations=self.descent_max_iterations,
            target_fitness=self.target_fitness,
            transfer_mode=self.transfer_mode,
        )
        # One gain engine shared by every descent: the kick between descents
        # mutates the solution outside the engine's commit stream, so the
        # next descent's first evaluation re-derives that one row instead of
        # rebuilding the engine (and its coupling tables) from scratch.
        engine = create_gain_engine(self.problem, rows_hint=1)
        prev_engine = attach_gain_engine(self.problem, engine) if engine is not None else None
        try:
            incumbent_result = descent.run(initial_solution, rng)
            best = incumbent_result.best_solution.copy()
            best_fitness = incumbent_result.best_fitness
            initial_fitness = incumbent_result.initial_fitness
            iterations = incumbent_result.iterations
            evaluations = incumbent_result.evaluations
            simulated_time = incumbent_result.simulated_time
            stopping_reason = "max_restarts"

            for _ in range(self.restarts):
                if self.problem.is_solution(best_fitness) and best_fitness <= self.target_fitness:
                    stopping_reason = "target_reached"
                    break
                candidate_start = self.perturb(best, rng)
                result = descent.run(candidate_start, rng)
                iterations += result.iterations
                evaluations += result.evaluations
                simulated_time += result.simulated_time
                if result.best_fitness < best_fitness:
                    best, best_fitness = result.best_solution.copy(), result.best_fitness
        finally:
            if engine is not None:
                detach_gain_engine(self.problem, prev_engine)

        return LSResult(
            best_solution=best,
            best_fitness=best_fitness,
            iterations=iterations,
            evaluations=evaluations,
            success=self.problem.is_solution(best_fitness),
            stopping_reason=stopping_reason,
            simulated_time=simulated_time,
            wall_time=time.perf_counter() - start_wall,
            initial_fitness=initial_fitness,
        )


class VariableNeighborhoodSearch:
    """VNS over k-Hamming neighborhoods of increasing order.

    Descends in the 1-Hamming neighborhood; when a local optimum is reached,
    switches to the next larger neighborhood (2-Hamming, then 3-Hamming,
    ...); any improvement resets the schedule to the smallest neighborhood.
    """

    name = "variable-neighborhood-search"

    def __init__(
        self,
        problem: BinaryProblem,
        *,
        max_order: int = 3,
        evaluator_factory=None,
        max_iterations_per_descent: int = 1_000,
        max_rounds: int = 50,
        target_fitness: float = 0.0,
        transfer_mode: str = "full",
    ) -> None:
        if max_order < 1:
            raise ValueError("max_order must be at least 1")
        if max_rounds <= 0:
            raise ValueError("max_rounds must be positive")
        self.problem = problem
        self.max_order = int(max_order)
        self.max_rounds = int(max_rounds)
        self.max_iterations_per_descent = int(max_iterations_per_descent)
        self.target_fitness = float(target_fitness)
        factory = evaluator_factory or (lambda prob, nb: CPUEvaluator(prob, nb))
        self.evaluators = [
            factory(problem, KHammingNeighborhood(problem.n, k))
            for k in range(1, self.max_order + 1)
        ]
        #: Transfer mode of every per-neighborhood descent (validated against
        #: each evaluator, since the factory chooses the backend).
        self.transfer_mode = transfer_mode
        for evaluator in self.evaluators:
            check_transfer_mode(transfer_mode, evaluator)

    def run(
        self,
        initial_solution: np.ndarray | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> LSResult:
        rng = np.random.default_rng(rng)
        start_wall = time.perf_counter()
        current = (
            self.problem.random_solution(rng)
            if initial_solution is None
            else np.array(initial_solution, dtype=np.int8).copy()
        )
        current_fitness = float(self.problem.evaluate(current))
        initial_fitness = current_fitness
        best, best_fitness = current.copy(), current_fitness
        iterations = 0
        evaluations = 0
        simulated_time = 0.0
        stopping_reason = "max_rounds"

        for _ in range(self.max_rounds):
            if self.problem.is_solution(best_fitness) and best_fitness <= self.target_fitness:
                stopping_reason = "target_reached"
                break
            improved_this_round = False
            order_index = 0
            while order_index < len(self.evaluators):
                descent = HillClimbing(
                    self.evaluators[order_index],
                    max_iterations=self.max_iterations_per_descent,
                    target_fitness=self.target_fitness,
                    transfer_mode=self.transfer_mode,
                )
                result = descent.run(best, rng)
                iterations += result.iterations
                evaluations += result.evaluations
                simulated_time += result.simulated_time
                if result.best_fitness < best_fitness:
                    best, best_fitness = result.best_solution.copy(), result.best_fitness
                    improved_this_round = True
                    order_index = 0  # back to the smallest neighborhood
                else:
                    order_index += 1
            if not improved_this_round:
                stopping_reason = "no_improvement"
                break

        return LSResult(
            best_solution=best,
            best_fitness=best_fitness,
            iterations=iterations,
            evaluations=evaluations,
            success=self.problem.is_solution(best_fitness),
            stopping_reason=stopping_reason,
            simulated_time=simulated_time,
            wall_time=time.perf_counter() - start_wall,
            initial_fitness=initial_fitness,
        )
