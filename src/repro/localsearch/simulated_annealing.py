"""Simulated annealing over a k-Hamming neighborhood.

Simulated annealing is one of the "common LS heuristics" the paper lists in
its introduction.  Unlike the neighborhood-wide algorithms it samples a
single random neighbor per step, so it does not use the parallel evaluator;
it is provided for completeness (and as a sequential baseline in the
examples), sharing the problem/neighborhood abstractions and the result
record of the rest of the library.
"""

from __future__ import annotations

import time

import numpy as np

from ..neighborhoods import KHammingNeighborhood, Neighborhood
from ..problems import BinaryProblem
from ..problems.base import flip_bits
from .result import LSResult

__all__ = ["SimulatedAnnealing"]


class SimulatedAnnealing:
    """Classic geometric-cooling simulated annealing on bit-flip moves."""

    name = "simulated-annealing"

    def __init__(
        self,
        problem: BinaryProblem,
        neighborhood: Neighborhood | None = None,
        *,
        initial_temperature: float = 10.0,
        cooling: float = 0.995,
        steps_per_temperature: int = 50,
        min_temperature: float = 1e-3,
        max_steps: int = 100_000,
        target_fitness: float = 0.0,
        track_history: bool = False,
    ) -> None:
        if not 0 < cooling < 1:
            raise ValueError(f"cooling factor must be in (0, 1), got {cooling}")
        if initial_temperature <= 0:
            raise ValueError(f"initial temperature must be positive, got {initial_temperature}")
        if steps_per_temperature <= 0:
            raise ValueError("steps_per_temperature must be positive")
        self.problem = problem
        self.neighborhood = neighborhood or KHammingNeighborhood(problem.n, 1)
        self.initial_temperature = float(initial_temperature)
        self.cooling = float(cooling)
        self.steps_per_temperature = int(steps_per_temperature)
        self.min_temperature = float(min_temperature)
        self.max_steps = int(max_steps)
        self.target_fitness = float(target_fitness)
        self.track_history = bool(track_history)

    def run(
        self,
        initial_solution: np.ndarray | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> LSResult:
        rng = np.random.default_rng(rng)
        start_wall = time.perf_counter()
        current = (
            self.problem.random_solution(rng)
            if initial_solution is None
            else np.array(initial_solution, dtype=np.int8).copy()
        )
        current_fitness = float(self.problem.evaluate(current))
        initial_fitness = current_fitness
        best, best_fitness = current.copy(), current_fitness

        temperature = self.initial_temperature
        history: list[float] = []
        steps = 0
        evaluations = 0
        stopping_reason = "max_iterations"

        while steps < self.max_steps:
            if best_fitness <= self.target_fitness and self.problem.is_solution(best_fitness):
                stopping_reason = "target_reached"
                break
            if temperature < self.min_temperature:
                stopping_reason = "frozen"
                break
            for _ in range(self.steps_per_temperature):
                move = self.neighborhood.random_move(rng)
                candidate_fitness = float(self.problem.delta_evaluate(current, move))
                evaluations += 1
                delta = candidate_fitness - current_fitness
                if delta <= 0 or rng.random() < np.exp(-delta / temperature):
                    current = flip_bits(current, move)
                    current_fitness = candidate_fitness
                    if current_fitness < best_fitness:
                        best, best_fitness = current.copy(), current_fitness
                steps += 1
                if self.track_history:
                    history.append(best_fitness)
                if steps >= self.max_steps:
                    break
            temperature *= self.cooling

        return LSResult(
            best_solution=best,
            best_fitness=best_fitness,
            iterations=steps,
            evaluations=evaluations,
            success=self.problem.is_solution(best_fitness),
            stopping_reason=stopping_reason,
            simulated_time=0.0,
            wall_time=time.perf_counter() - start_wall,
            initial_fitness=initial_fitness,
            history=history,
        )
