"""Lockstep multi-start execution: many independent searches per evaluation.

The paper's experimental protocol runs 50 independent tabu-search trials per
instance; the serial harness replays them one after the other, paying the
per-iteration evaluation overhead (kernel launch, transfers, NumPy dispatch)
once per replica per iteration.  :class:`MultiStartRunner` instead advances
``R`` independent replicas *in lockstep*: each iteration performs exactly one
batched :meth:`~repro.core.evaluators.NeighborhoodEvaluator.evaluate_many`
call over the still-active replicas — on the GPU backend a single
``S x M``-thread launch — and applies a vectorized selection rule per
replica.

Determinism is preserved replica by replica: given the same seed, a replica
follows bit-for-bit the same trajectory as a standalone
:class:`~repro.localsearch.tabu.TabuSearch` (or hill-climbing) run, because
the batched evaluators are functionally identical to the scalar ones and the
selection rules below are exact vectorizations of the scalar policies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..core.evaluators import NeighborhoodEvaluator, _fused_reduce
from ..gpu.dtypes import TABU_NEVER
from ..gpu.faults import FaultEvent, FaultPlan
from ..parallel import host_parallel
from ..problems.base import as_solution
from ..problems.incremental import (
    attach_gain_engine,
    create_gain_engine,
    detach_gain_engine,
)
from .base import REDUCED_SELECTION_MODES, check_transfer_mode
from .result import LSResult

__all__ = ["CHECKPOINT_VERSION", "MultiStartResult", "MultiStartRunner"]

#: Version tag written into every runner checkpoint.  Bumped whenever the
#: checkpoint layout changes; :meth:`MultiStartRunner.run` refuses to resume
#: from a different version instead of silently misreading it.
CHECKPOINT_VERSION = 1

#: Sentinel for "move never applied" in the vectorized tabu memory (matches
#: the scalar :class:`~repro.localsearch.tabu.TabuSearch` encoding and the
#: device-resident tabu memory).
_NEVER = TABU_NEVER


@dataclass
class MultiStartResult:
    """Per-replica results of one lockstep multi-start run."""

    #: One :class:`LSResult` per replica, in replica order.
    results: list[LSResult] = field(default_factory=list)
    #: Wall-clock time of the whole batched run.
    wall_time: float = 0.0
    #: Simulated time accumulated by the evaluator over the whole run (the
    #: batched launches are shared by all replicas — this is the elapsed
    #: simulated time of the multi-start, not a per-replica sum).
    simulated_time: float = 0.0
    #: Number of lockstep iterations executed (the longest replica's count).
    iterations: int = 0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[LSResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> LSResult:
        return self.results[index]

    @property
    def num_successes(self) -> int:
        return sum(r.success for r in self.results)

    @property
    def best(self) -> LSResult:
        """The replica that found the lowest fitness (ties: lowest index)."""
        if not self.results:
            raise ValueError("empty multi-start result")
        return min(self.results, key=lambda r: r.best_fitness)

    @property
    def best_fitness(self) -> float:
        return self.best.best_fitness

    def summary(self) -> str:
        return (
            f"{len(self.results)} replicas: best fitness {self.best_fitness:g}, "
            f"{self.num_successes} successes, {self.iterations} lockstep iterations"
        )


class MultiStartRunner:
    """Advance ``R`` independent local searches with one batched evaluation per step.

    Parameters
    ----------
    evaluator:
        Neighborhood evaluator (binds problem + neighborhood + platform).
        Any backend works; the GPU backend turns every lockstep iteration
        into a single ``S x M``-thread launch.
    algorithm:
        Vectorized selection rule: ``"tabu"`` (the paper's robust taboo
        search), ``"hill-climbing"`` (steepest descent) or
        ``"first-improvement"``.
    tenure:
        Tabu tenure; defaults to the paper's ``|N| / 6`` rule (floor 1).
    aspiration:
        Classic aspiration criterion for the tabu rule.
    max_iterations:
        Per-replica iteration cap; defaults to the paper's
        ``n(n-1)(n-2)/6``.
    target_fitness:
        A replica stops (reason ``"target_reached"``) once its best fitness
        is at or below this value.
    track_history:
        Record each replica's best fitness after every one of its
        iterations.
    transfer_mode:
        One of :data:`~repro.localsearch.base.TRANSFER_MODES`.  ``"delta"``
        keeps the solution block device-resident and uploads only flipped
        bits; ``"reduced"`` additionally runs the fused on-device reduction
        so only ``(index, fitness)`` pairs come back — 16 bytes per replica
        instead of the whole fitness row; ``"persistent"`` folds the whole
        lockstep loop into a single persistent launch per run (the tabu
        memory lives on-device, the host drains a 16 B/replica result ring
        and writes ``O(S)`` early-stop flags, and the launch overhead is
        paid once).  All need a device-resident evaluator and follow
        bit-identical trajectories to ``"full"``.
    rebalance_every:
        Every this many lockstep iterations, ask a multi-device resident
        evaluator to migrate replicas between devices so the *still-active*
        replicas stay split proportionally to device throughput (replicas
        that stopped early otherwise leave their device underloaded while
        others stay full).  Purely a placement/timing optimization over the
        peer links — trajectories are bit-identical with or without it.
        Ignored for evaluators without a ``rebalance_resident`` method, in
        ``"full"`` mode (nothing is resident) and in ``"persistent"`` mode
        (the launches are pinned to their devices for the whole run).
    host_workers:
        Shard each lockstep iteration's batched neighborhood evaluation
        across this many host worker processes over shared memory (see
        :mod:`repro.parallel`).  ``None`` (default) keeps everything in the
        calling process; explicit values are capped at ``os.cpu_count()``
        and the ``REPRO_HOST_WORKERS`` environment variable overrides both,
        uncapped.  Sharding only splits the replica axis of the evaluation —
        selection, RNG streams, tabu memory and the simulated accounting
        stay in the parent — so trajectories, fitness histories, transfer
        byte counters and makespans are bit-identical to a single-process
        run.
    """

    ALGORITHMS = ("tabu", "hill-climbing", "first-improvement")

    def __init__(
        self,
        evaluator: NeighborhoodEvaluator,
        *,
        algorithm: str = "tabu",
        tenure: int | None = None,
        aspiration: bool = True,
        max_iterations: int | None = None,
        target_fitness: float = 0.0,
        track_history: bool = False,
        transfer_mode: str = "full",
        rebalance_every: int | None = None,
        host_workers: int | None = None,
    ) -> None:
        if algorithm not in self.ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected one of {self.ALGORITHMS}"
            )
        if rebalance_every is not None and rebalance_every <= 0:
            raise ValueError(
                f"rebalance_every must be positive, got {rebalance_every}"
            )
        self.transfer_mode = check_transfer_mode(transfer_mode, evaluator)
        self.evaluator = evaluator
        self.problem = evaluator.problem
        self.neighborhood = evaluator.neighborhood
        self.algorithm = algorithm
        if max_iterations is None:
            n = self.problem.n
            max_iterations = n * (n - 1) * (n - 2) // 6
        if max_iterations < 0:
            raise ValueError(f"max_iterations must be non-negative, got {max_iterations}")
        self.max_iterations = int(max_iterations)
        if tenure is None:
            tenure = max(1, self.neighborhood.size // 6)
        if tenure < 0:
            raise ValueError(f"tabu tenure must be non-negative, got {tenure}")
        self.tenure = int(tenure)
        self.aspiration = bool(aspiration)
        self.target_fitness = float(target_fitness)
        self.track_history = bool(track_history)
        self.rebalance_every = rebalance_every
        if host_workers is not None and host_workers < 1:
            raise ValueError(f"host_workers must be >= 1, got {host_workers}")
        self.host_workers = host_workers

    # ------------------------------------------------------------------
    def _initial_block(
        self,
        replicas: int | None,
        seeds: Sequence[int] | None,
        rng: np.random.Generator | int | None,
        initial_solutions: np.ndarray | None,
    ) -> np.ndarray:
        """Resolve the ``(R, n)`` block of starting points.

        With ``seeds``, replica ``r`` draws its start from
        ``np.random.default_rng(seeds[r])`` exactly like a standalone
        ``search.run(rng=seeds[r])`` — that is what makes the batched
        harness bit-compatible with the serial trial loop.
        """
        if initial_solutions is not None:
            block = np.asarray(initial_solutions, dtype=np.int8)
            if block.ndim != 2 or block.shape[1] != self.problem.n:
                raise ValueError(
                    f"expected an (R, {self.problem.n}) block of initial solutions, "
                    f"got {block.shape}"
                )
            if replicas is not None and replicas != block.shape[0]:
                raise ValueError("replicas does not match the initial solution count")
            return np.stack([as_solution(row, self.problem.n) for row in block])
        if seeds is not None:
            if replicas is not None and replicas != len(seeds):
                raise ValueError("replicas does not match the number of seeds")
            streams = [np.random.default_rng(seed) for seed in seeds]
        else:
            if replicas is None:
                raise ValueError("need replicas, seeds or initial_solutions")
            if replicas <= 0:
                raise ValueError(f"replicas must be positive, got {replicas}")
            streams = np.random.default_rng(rng).spawn(replicas)
        return np.stack([self.problem.random_solution(stream) for stream in streams])

    # ------------------------------------------------------------------
    def _select(
        self,
        fitnesses: np.ndarray,
        current_fitness: np.ndarray,
        best_fitness: np.ndarray,
        iterations: np.ndarray,
        last_applied: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized per-replica move selection.

        Returns ``(indices, selected_fitness, stop_mask)`` over the active
        replicas; ``stop_mask`` marks replicas that hit a local optimum
        (hill-climbing rules only — the tabu rule always moves).  The
        selection core is :func:`~repro.core.evaluators._fused_reduce` —
        the same function the device-resident pipeline fuses into its
        reduction epilogue — so the ``full``/``delta`` host-side paths and
        the ``reduced`` on-device path share one definition and stay
        bit-identical by construction.
        """
        num_active = fitnesses.shape[0]
        rows = np.arange(num_active)
        if self.algorithm == "tabu":
            if self.tenure == 0:
                admissible = np.ones_like(fitnesses, dtype=bool)
            else:
                admissible = (iterations[:, None] - last_applied) > self.tenure
            indices, selected = _fused_reduce(
                fitnesses,
                "argmin",
                admissible,
                best_fitness if self.aspiration else None,
                None,
            )
            # Robust-tabu escape: when every move of a replica is
            # inadmissible, fall back to its oldest tabu move.
            blocked = indices < 0
            if blocked.any():
                indices = np.where(blocked, last_applied.argmin(axis=1), indices)
                selected = np.where(blocked, fitnesses[rows, indices], selected)
            return indices, selected, np.zeros(num_active, dtype=bool)
        if self.algorithm == "hill-climbing":
            indices, selected = _fused_reduce(fitnesses, "argmin", None, None, None)
            return indices, selected, selected >= current_fitness
        # first-improvement
        indices, selected = _fused_reduce(
            fitnesses, "first-improvement", None, None, current_fitness
        )
        stopped = indices < 0
        return np.where(stopped, 0, indices), selected, stopped

    # ------------------------------------------------------------------
    def _select_reduced(
        self,
        active_idx: np.ndarray,
        current_fitness: np.ndarray,
        best_fitness: np.ndarray,
        iterations: np.ndarray,
        last_applied: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Reduced transfer path: selection happens inside the fused reduction.

        Device-side semantics exactly mirror :meth:`_select`, so the
        trajectories stay bit-identical; only ``(index, fitness)`` pairs —
        plus, for tabu, the ``O(S)`` iteration stamps of the device-resident
        tabu memory (or the admissibility mask, when the memory is still
        host-side) going up — cross PCIe.
        """
        num_active = active_idx.size
        if self.algorithm == "tabu":
            if last_applied is None:
                # Device-resident tabu memory: the admissibility mask is
                # derived next to the reduction from the resident
                # ``last_applied`` stamps, the robust-tabu escape resolves
                # on-device, and the winning stamps are updated in place.
                indices, fits = self.evaluator.evaluate_resident(
                    active_idx,
                    reduce="argmin",
                    tabu_iterations=iterations,
                    aspiration_fitness=best_fitness if self.aspiration else None,
                )
                return indices, fits, np.zeros(num_active, dtype=bool)
            if self.tenure == 0:
                admissible = np.ones((num_active, self.neighborhood.size), dtype=bool)
            else:
                admissible = (iterations[:, None] - last_applied) > self.tenure
            indices, fits = self.evaluator.evaluate_resident(
                active_idx,
                reduce="argmin",
                admissible=admissible,
                aspiration_fitness=best_fitness if self.aspiration else None,
            )
            blocked = indices < 0
            if blocked.any():
                # Robust-tabu escape: the host falls back to the oldest tabu
                # move and fetches just that move's fitness (8 bytes each).
                indices = np.where(blocked, last_applied.argmin(axis=1), indices)
                fits = fits.copy()
                fits[blocked] = self.evaluator.fetch_fitnesses(
                    active_idx[blocked], indices[blocked]
                )
            return indices, fits, np.zeros(num_active, dtype=bool)
        if self.algorithm == "hill-climbing":
            indices, fits = self.evaluator.evaluate_resident(active_idx, reduce="argmin")
            return indices, fits, fits >= current_fitness
        # first-improvement
        indices, fits = self.evaluator.evaluate_resident(
            active_idx, reduce="first-improvement", thresholds=current_fitness
        )
        stopped = indices < 0
        return np.where(stopped, 0, indices), fits, stopped

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _checkpoint_config(self, replicas: int) -> dict:
        """The runner parameters a checkpoint must match to be resumable."""
        return {
            "problem": self.problem.name,
            "n": self.problem.n,
            "neighborhood": self.neighborhood.size,
            "algorithm": self.algorithm,
            "tenure": self.tenure,
            "aspiration": self.aspiration,
            "max_iterations": self.max_iterations,
            "target_fitness": self.target_fitness,
            "track_history": self.track_history,
            "transfer_mode": self.transfer_mode,
            "replicas": int(replicas),
        }

    def _restore_checkpoint(self, ckpt: dict) -> dict:
        """Validate a checkpoint, restore the evaluator, return loop state.

        The evaluator's :meth:`snapshot_state` is installed as a side
        effect (resident session, tabu stamps, accounting, fleet mask);
        the returned dict holds the runner-side arrays with their exact
        dtypes, ready for :meth:`_run_lockstep` to continue from.
        """
        if not isinstance(ckpt, dict) or ckpt.get("version") != CHECKPOINT_VERSION:
            version = ckpt.get("version") if isinstance(ckpt, dict) else None
            raise ValueError(
                f"unsupported checkpoint version {version!r}; this build writes "
                f"version {CHECKPOINT_VERSION}"
            )
        state = ckpt["state"]
        config = ckpt["config"]
        expected = self._checkpoint_config(len(state["active"]))
        mismatched = [key for key in expected if config.get(key) != expected[key]]
        if mismatched:
            raise ValueError(
                "checkpoint does not match this runner's configuration; "
                f"differing keys: {mismatched}"
            )
        self.evaluator.restore_state(ckpt["evaluator"])
        last = state.get("last_applied")
        return {
            "lockstep": int(ckpt["lockstep"]),
            "current": np.asarray(state["current"], dtype=np.int8),
            "current_fitness": np.asarray(state["current_fitness"], dtype=np.float64),
            "initial_fitness": np.asarray(state["initial_fitness"], dtype=np.float64),
            "best": np.asarray(state["best"], dtype=np.int8),
            "best_fitness": np.asarray(state["best_fitness"], dtype=np.float64),
            "iterations": np.asarray(state["iterations"], dtype=np.int64),
            "evaluations": np.asarray(state["evaluations"], dtype=np.int64),
            "sim_share": np.asarray(state["sim_share"], dtype=np.float64),
            "wall_share": np.asarray(state["wall_share"], dtype=np.float64),
            "active": np.asarray(state["active"], dtype=bool),
            "reasons": np.array([str(r) for r in state["reasons"]], dtype=object),
            "history_steps": [
                (np.asarray(movers, dtype=np.int64), np.asarray(vals, dtype=np.float64))
                for movers, vals in state["history_steps"]
            ],
            "last_applied": (
                np.asarray(last, dtype=np.int64) if last is not None else None
            ),
        }

    # ------------------------------------------------------------------
    def _apply_fault(self, event: FaultEvent, pool) -> None:
        """Apply one :class:`~repro.gpu.faults.FaultEvent` at a lockstep boundary."""
        # Belt and braces: fault recovery may reshuffle replica placement, so
        # drop all derived gain state (it re-derives on the next evaluation;
        # the engine's mirror check would also catch any divergence).
        gain_engine = getattr(self.problem, "_gain_engine", None)
        if gain_engine is not None:
            gain_engine.invalidate_all()
        if event.kind in ("fail", "join"):
            method = getattr(
                self.evaluator,
                "fail_device" if event.kind == "fail" else "join_device",
                None,
            )
            if method is None:
                raise RuntimeError(
                    f"fault {event} needs a multi-device evaluator, got "
                    f"{type(self.evaluator).__name__}"
                )
            method(event.arg)
        elif event.kind == "flaky":
            engine = getattr(getattr(self.evaluator, "pool", None), "engine", None)
            if engine is None:
                engine = getattr(
                    getattr(self.evaluator, "context", None), "engine", None
                )
            if engine is None:
                raise RuntimeError(
                    f"fault {event} needs a GPU evaluator with a transfer engine, "
                    f"got {type(self.evaluator).__name__}"
                )
            engine.inject_transfer_faults(retries=max(1, event.arg))
        else:  # kill-worker: a no-op once the run already fell back to local
            if pool is not None and pool.alive and event.arg < len(pool._procs):
                proc = pool._procs[event.arg]
                proc.kill()
                proc.join(timeout=5)

    # ------------------------------------------------------------------
    def run(
        self,
        replicas: int | None = None,
        *,
        seeds: Sequence[int] | None = None,
        rng: np.random.Generator | int | None = None,
        initial_solutions: np.ndarray | None = None,
        checkpoint_every: int | None = None,
        checkpoint_callback=None,
        fault_plan: FaultPlan | str | None = None,
        resume: dict | None = None,
    ) -> MultiStartResult:
        """Run all replicas to completion and return their per-replica results.

        ``checkpoint_every`` invokes ``checkpoint_callback(checkpoint)`` every
        that many lockstep iterations with a version-tagged dict capturing the
        full search state (runner arrays + evaluator session/accounting); feed
        it to :func:`repro.harness.io.save_checkpoint` or keep it in memory.
        ``resume`` takes such a checkpoint and continues the run from it — the
        continuation is bit-identical to the uninterrupted run (trajectories,
        byte counters, makespans), assuming the evaluator is freshly
        constructed with the same spec.  ``fault_plan`` (a
        :class:`~repro.gpu.faults.FaultPlan` or its string syntax) injects
        failures at lockstep boundaries; see :mod:`repro.gpu.faults`.
        """
        start_wall = time.perf_counter()
        start_sim = self.evaluator.stats.simulated_time

        if checkpoint_every is not None:
            if checkpoint_every <= 0:
                raise ValueError(
                    f"checkpoint_every must be positive, got {checkpoint_every}"
                )
            if checkpoint_callback is None:
                raise ValueError("checkpoint_every requires a checkpoint_callback")
        if isinstance(fault_plan, str):
            fault_plan = FaultPlan.parse(fault_plan)
        resume_state = None
        if resume is not None:
            if any(
                value is not None
                for value in (replicas, seeds, rng, initial_solutions)
            ):
                raise ValueError(
                    "resume is mutually exclusive with replicas/seeds/rng/"
                    "initial_solutions; the checkpoint carries the population"
                )
            resume_state = self._restore_checkpoint(resume)
            current = resume_state["current"]
        else:
            current = self._initial_block(replicas, seeds, rng, initial_solutions)
        # Host-parallel sharding: attach the problem to a worker pool for
        # the run's duration so the one batched evaluation per lockstep
        # iteration splits its replica axis across processes.  A no-op
        # (yields None) with one effective worker, so the single-process
        # path pays nothing.
        with host_parallel(
            self.problem,
            self.host_workers,
            max_rows=current.shape[0],
            max_moves=self.neighborhood.size,
        ) as pool:
            return self._run_lockstep(
                current,
                start_wall,
                start_sim,
                checkpoint_every=checkpoint_every,
                checkpoint_callback=checkpoint_callback,
                fault_plan=fault_plan,
                resume_state=resume_state,
                pool=pool,
            )

    def _run_lockstep(
        self,
        current: np.ndarray,
        start_wall: float,
        start_sim: float,
        *,
        checkpoint_every: int | None = None,
        checkpoint_callback=None,
        fault_plan: FaultPlan | None = None,
        resume_state: dict | None = None,
        pool=None,
    ) -> MultiStartResult:
        """Advance all replicas in lockstep to completion (see :meth:`run`)."""
        num_replicas = current.shape[0]
        size = self.neighborhood.size
        mapping = self.neighborhood.mapping

        resuming = resume_state is not None
        if resuming:
            current_fitness = resume_state["current_fitness"]
            initial_fitness = resume_state["initial_fitness"]
            best = resume_state["best"]
            best_fitness = resume_state["best_fitness"]
            iterations = resume_state["iterations"]
            evaluations = resume_state["evaluations"]
            sim_share = resume_state["sim_share"]
            wall_share = resume_state["wall_share"]
            active = resume_state["active"]
            reasons = resume_state["reasons"]
            history_steps = resume_state["history_steps"]
        else:
            current_fitness = np.asarray(
                self.problem.evaluate_batch(current), dtype=np.float64
            )
            initial_fitness = current_fitness.copy()
            best = current.copy()
            best_fitness = current_fitness.copy()

            iterations = np.zeros(num_replicas, dtype=np.int64)
            evaluations = np.zeros(num_replicas, dtype=np.int64)
            sim_share = np.zeros(num_replicas, dtype=np.float64)
            wall_share = np.zeros(num_replicas, dtype=np.float64)
            active = np.ones(num_replicas, dtype=bool)
            reasons = np.array(["max_iterations"] * num_replicas, dtype=object)
            # Per-lockstep (movers, best-so-far) snapshots; the per-replica
            # history lists are assembled vectorized after the loop instead of
            # appending row by row inside it.
            history_steps = []

        resident = self.transfer_mode != "full"
        reduced_path = self.transfer_mode in REDUCED_SELECTION_MODES
        # The tabu memory moves device-resident whenever selection happens
        # in the fused reduction and the backend supports it: the host then
        # never materializes (nor uploads) the O(S·M) admissibility data.
        device_tabu = (
            reduced_path
            and self.algorithm == "tabu"
            and hasattr(self.evaluator, "init_tabu_memory")
        )
        if resuming:
            # The evaluator restore already reinstalled the resident session
            # (and tabu memory) exactly as snapshotted — re-running
            # begin_search would re-charge the upload.
            last_applied = resume_state["last_applied"]
        else:
            last_applied = (
                np.full((num_replicas, size), _NEVER, dtype=np.int64)
                if self.algorithm == "tabu" and not device_tabu
                else None
            )
            if resident:
                # The whole (R, n) block crosses PCIe once; afterwards only
                # flipped-bit deltas go up ("persistent" additionally opens the
                # run's single persistent launch).
                self.evaluator.begin_search(
                    current, persistent=self.transfer_mode == "persistent"
                )
                if device_tabu:
                    self.evaluator.init_tabu_memory(self.tenure)

        rebalance = (
            self.rebalance_every
            if resident
            and self.transfer_mode != "persistent"
            and hasattr(self.evaluator, "rebalance_resident")
            else None
        )

        def take_checkpoint() -> dict:
            return {
                "version": CHECKPOINT_VERSION,
                "config": self._checkpoint_config(num_replicas),
                "lockstep": int(lockstep),
                "state": {
                    "current": current.copy(),
                    "current_fitness": current_fitness.copy(),
                    "initial_fitness": initial_fitness.copy(),
                    "best": best.copy(),
                    "best_fitness": best_fitness.copy(),
                    "iterations": iterations.copy(),
                    "evaluations": evaluations.copy(),
                    "sim_share": sim_share.copy(),
                    "wall_share": wall_share.copy(),
                    "active": active.copy(),
                    "reasons": [str(r) for r in reasons],
                    "history_steps": [
                        (movers.copy(), vals.copy())
                        for movers, vals in history_steps
                    ],
                    "last_applied": (
                        last_applied.copy() if last_applied is not None else None
                    ),
                },
                "evaluator": self.evaluator.snapshot_state(),
            }

        lockstep = resume_state["lockstep"] if resuming else 0
        resumed_at = lockstep if resuming else -1
        # Incremental gain cache: the one batched evaluation per lockstep
        # iteration is served from persistent per-replica gain state advanced
        # by the committed moves below; the engine re-derives any replica
        # whose solution changed outside a commit (restarts, faults, resume),
        # so trajectories stay bit-identical to the recompute path.  Gain
        # state is derived data — fresh per run, never checkpointed.
        gain_engine = create_gain_engine(self.problem, rows_hint=num_replicas)
        prev_engine = attach_gain_engine(self.problem, gain_engine)
        try:
            while True:
                # Per-replica stopping checks, in the scalar loop's order:
                # target first, then the iteration cap.
                reached = active & (best_fitness <= self.target_fitness)
                reasons[reached] = "target_reached"
                capped = active & ~reached & (iterations >= self.max_iterations)
                active &= ~(reached | capped)
                if not active.any():
                    break
                # Checkpoint before same-boundary faults: a resumed run re-applies
                # the faults due at the checkpointed lockstep, replaying exactly
                # what the uninterrupted run did after taking the checkpoint.
                if (
                    checkpoint_every
                    and lockstep
                    and lockstep % checkpoint_every == 0
                    and lockstep != resumed_at
                ):
                    checkpoint_callback(take_checkpoint())
                if fault_plan is not None:
                    for event in fault_plan.due(lockstep):
                        self._apply_fault(event, pool)
                if rebalance and lockstep and lockstep % rebalance == 0:
                    # Timing/placement only: keep the still-active replicas split
                    # proportionally to device throughput (trajectories unchanged).
                    self.evaluator.rebalance_resident(active=active)
                    if gain_engine is not None:
                        # Replica placement moved; drop derived gain state and
                        # let it re-derive at the next evaluation.
                        gain_engine.invalidate_all()
                lockstep += 1
                active_idx = np.nonzero(active)[0]

                # One batched evaluation for every still-active replica (the
                # single S x M GPU launch of the solution-parallel engine).
                step_wall = time.perf_counter()
                step_sim = self.evaluator.stats.simulated_time
                if gain_engine is not None:
                    gain_engine.expect(active_idx)
                sub_last = last_applied[active_idx] if last_applied is not None else None
                if reduced_path:
                    indices, selected_fitness, optima = self._select_reduced(
                        active_idx,
                        current_fitness[active_idx],
                        best_fitness[active_idx],
                        iterations[active_idx],
                        sub_last,
                    )
                else:
                    if resident:
                        fitnesses = self.evaluator.evaluate_resident(active_idx)
                    else:
                        fitnesses = self.evaluator.evaluate_many(current[active_idx])
                    indices, selected_fitness, optima = self._select(
                        fitnesses,
                        current_fitness[active_idx],
                        best_fitness[active_idx],
                        iterations[active_idx],
                        sub_last,
                    )
                sim_share[active_idx] += (
                    self.evaluator.stats.simulated_time - step_sim
                ) / active_idx.size
                evaluations[active_idx] += size
                if optima.any():
                    stopped = active_idx[optima]
                    reasons[stopped] = "local_optimum"
                    active[stopped] = False

                movers = active_idx[~optima]
                if movers.size:
                    move_idx = indices[~optima]
                    moves = mapping.from_flat_batch(move_idx)
                    current[movers[:, None], moves] ^= 1
                    if gain_engine is not None:
                        gain_engine.commit(movers, moves)
                    if resident:
                        # Delta packet: one (replica, bit) pair per flipped bit
                        # (free inside a persistent launch — the resident grid
                        # scattered its own selection).
                        self.evaluator.apply_deltas(
                            np.repeat(movers, moves.shape[1]), moves.reshape(-1)
                        )
                    current_fitness[movers] = selected_fitness[~optima]
                    if last_applied is not None:
                        last_applied[movers, move_idx] = iterations[movers]
                    improved = current_fitness[movers] < best_fitness[movers]
                    improved_rows = movers[improved]
                    best[improved_rows] = current[improved_rows]
                    best_fitness[improved_rows] = current_fitness[improved_rows]
                    iterations[movers] += 1
                    if self.track_history:
                        history_steps.append((movers, best_fitness[movers]))
                wall_share[active_idx] += (
                    time.perf_counter() - step_wall
                ) / active_idx.size
        finally:
            detach_gain_engine(self.problem, prev_engine)

        if resident:
            self.evaluator.end_search()

        histories: list[list[float]] = [[] for _ in range(num_replicas)]
        if history_steps:
            # Group the flat (replica, value) stream by replica in one stable
            # sort; within a replica the lockstep order is preserved, so each
            # list matches what per-iteration appends would have produced.
            rows = np.concatenate([movers for movers, _ in history_steps])
            values = np.concatenate([vals for _, vals in history_steps])
            order = np.argsort(rows, kind="stable")
            rows, values = rows[order], values[order]
            bounds = np.searchsorted(rows, np.arange(num_replicas + 1))
            histories = [
                values[bounds[r] : bounds[r + 1]].tolist() for r in range(num_replicas)
            ]

        results = [
            LSResult(
                best_solution=best[r],
                best_fitness=float(best_fitness[r]),
                iterations=int(iterations[r]),
                evaluations=int(evaluations[r]),
                success=self.problem.is_solution(float(best_fitness[r])),
                stopping_reason=str(reasons[r]),
                simulated_time=float(sim_share[r]),
                wall_time=float(wall_share[r]),
                initial_fitness=float(initial_fitness[r]),
                history=histories[r],
            )
            for r in range(num_replicas)
        ]
        return MultiStartResult(
            results=results,
            wall_time=time.perf_counter() - start_wall,
            simulated_time=self.evaluator.stats.simulated_time - start_sim,
            iterations=int(lockstep),
        )
