"""Local search algorithms built on the parallel neighborhood evaluators."""

from .base import REDUCED_SELECTION_MODES, TRANSFER_MODES, NeighborhoodLocalSearch
from .hill_climbing import FirstImprovementHillClimbing, HillClimbing
from .iterated import IteratedLocalSearch, VariableNeighborhoodSearch
from .multistart import MultiStartResult, MultiStartRunner
from .result import LSResult
from .simulated_annealing import SimulatedAnnealing
from .stopping import (
    AnyOf,
    MaxEvaluations,
    MaxIterations,
    NoImprovement,
    SearchState,
    StoppingCriterion,
    TargetFitness,
    paper_stopping_criterion,
)
from .tabu import TabuSearch

__all__ = [
    "NeighborhoodLocalSearch",
    "TRANSFER_MODES",
    "REDUCED_SELECTION_MODES",
    "HillClimbing",
    "FirstImprovementHillClimbing",
    "TabuSearch",
    "SimulatedAnnealing",
    "IteratedLocalSearch",
    "VariableNeighborhoodSearch",
    "LSResult",
    "MultiStartRunner",
    "MultiStartResult",
    "StoppingCriterion",
    "SearchState",
    "MaxIterations",
    "MaxEvaluations",
    "TargetFitness",
    "NoImprovement",
    "AnyOf",
    "paper_stopping_criterion",
]
