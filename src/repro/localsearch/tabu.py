"""Tabu search over a fully-evaluated neighborhood.

This is the algorithm the paper runs on every neighborhood (Section IV-B):
a Taillard-style *robust taboo search* adapted to binary problems.  The
short-term memory forbids recently applied moves for a fixed number of
iterations (the *tenure*); the paper sets the tabu list size to one sixth of
the neighborhood size.  An aspiration criterion overrides the tabu status of
a move that would improve on the best solution found so far.
"""

from __future__ import annotations

import numpy as np

from ..core.evaluators import NeighborhoodEvaluator
from ..core.selection import SelectedMove, best_admissible_move
from ..gpu.dtypes import TABU_NEVER
from .base import REDUCED_SELECTION_MODES, NeighborhoodLocalSearch
from .stopping import StoppingCriterion

__all__ = ["TabuSearch"]


class TabuSearch(NeighborhoodLocalSearch):
    """Best-admissible-move tabu search with recency-based memory.

    Parameters
    ----------
    evaluator:
        Neighborhood evaluator (binds problem + neighborhood + platform).
    tenure:
        Number of iterations a just-applied move stays tabu.  Defaults to
        ``neighborhood.size // 6`` as in the paper ("the tabu list size was
        arbitrary set to m/6 where m is the number of neighbors"), with a
        floor of 1.
    aspiration:
        Enable the classic aspiration criterion (a tabu move is admissible
        when it improves on the best fitness seen so far).
    """

    name = "tabu-search"
    reduction = "argmin"

    def __init__(
        self,
        evaluator: NeighborhoodEvaluator,
        *,
        tenure: int | None = None,
        aspiration: bool = True,
        stopping: StoppingCriterion | None = None,
        max_iterations: int | None = None,
        target_fitness: float = 0.0,
        track_history: bool = False,
        transfer_mode: str = "full",
    ) -> None:
        super().__init__(
            evaluator,
            stopping=stopping,
            max_iterations=max_iterations,
            target_fitness=target_fitness,
            track_history=track_history,
            transfer_mode=transfer_mode,
        )
        if tenure is None:
            tenure = max(1, self.neighborhood.size // 6)
        if tenure < 0:
            raise ValueError(f"tabu tenure must be non-negative, got {tenure}")
        self.tenure = int(tenure)
        self.aspiration = bool(aspiration)
        # last_applied[i] = iteration at which flat move i was last applied
        # (-inf semantics encoded as the sentinel shared with the
        # device-resident tabu memory).
        self._last_applied = np.full(self.neighborhood.size, TABU_NEVER, dtype=np.int64)
        # Whether the current run's tabu memory lives in device global
        # memory (set per run by prepare_resident_session).
        self._device_tabu = False

    # ------------------------------------------------------------------
    def on_start(self, initial_solution: np.ndarray, initial_fitness: float) -> None:
        self._last_applied.fill(TABU_NEVER)
        self._device_tabu = False

    def prepare_resident_session(self) -> None:
        """Move the tabu memory device-resident for this run's session.

        Only the modes whose selection happens in the fused reduction
        consume it ("delta" selects host-side); the per-iteration tabu
        packet then shrinks from the ``O(M/8)`` bit-packed admissibility
        mask to a single ``O(1)`` iteration stamp, and the robust-tabu
        escape resolves on-device instead of via an extra fitness fetch.
        The host-side ``_last_applied`` array keeps tracking the same
        values so ``tabu_mask`` stays answerable.
        """
        if self.transfer_mode in REDUCED_SELECTION_MODES and hasattr(
            self.evaluator, "init_tabu_memory"
        ):
            self.evaluator.init_tabu_memory(self.tenure)
            self._device_tabu = True

    def tabu_mask(self, iteration: int) -> np.ndarray:
        """Boolean mask of the moves currently forbidden by the tabu memory."""
        if self.tenure == 0:
            return np.zeros(self.neighborhood.size, dtype=bool)
        return (iteration - self._last_applied) <= self.tenure

    def select_move(
        self,
        fitnesses: np.ndarray,
        current_fitness: float,
        best_fitness: float,
        iteration: int,
        rng: np.random.Generator,
    ) -> SelectedMove | None:
        forbidden = self.tabu_mask(iteration)
        threshold = best_fitness if self.aspiration else None
        selected = best_admissible_move(fitnesses, forbidden, aspiration_threshold=threshold)
        if selected is None:
            # Every move is tabu and none passes aspiration: fall back to the
            # oldest tabu move (a standard robust-tabu escape) instead of
            # aborting the run.  The escape is an ordinary k-subset flip, so
            # the incremental gain engine commits it like any accepted move —
            # no re-derivation is needed.
            oldest = int(np.argmin(self._last_applied))
            selected = SelectedMove(index=oldest, fitness=float(fitnesses[oldest]))
        return selected

    def on_move_applied(self, selected: SelectedMove, iteration: int) -> None:
        self._last_applied[selected.index] = iteration

    # ------------------------------------------------------------------
    # Reduced transfer path: with the device-resident tabu memory only the
    # replica's iteration stamp goes up (the admissibility mask is derived
    # next to the fused argmin, which also applies aspiration and resolves
    # the robust-tabu escape on-device); without it the bit-packed mask is
    # uploaded with the delta packet.  Either way only the winning
    # (index, fitness) pair comes back.
    # ------------------------------------------------------------------
    def reduction_inputs(
        self, current_fitness: float, best_fitness: float, iteration: int
    ) -> dict:
        if self._device_tabu:
            inputs = {"tabu_iterations": np.array([iteration], dtype=np.int64)}
        else:
            inputs = {"admissible": ~self.tabu_mask(iteration)[None, :]}
        if self.aspiration:
            inputs["aspiration_fitness"] = np.array([best_fitness], dtype=np.float64)
        return inputs

    def select_from_reduced(
        self,
        index: int,
        fitness: float,
        current_fitness: float,
        best_fitness: float,
        iteration: int,
    ) -> SelectedMove | None:
        if index < 0:
            # Every move tabu, none aspirated, and the tabu memory is
            # host-side: robust-tabu escape to the oldest move.  Its fitness
            # is fetched individually (8 bytes) since the full array never
            # crossed PCIe.  (With the device-resident memory the escape
            # already happened on-device and index is never negative.)
            oldest = int(np.argmin(self._last_applied))
            fitness = float(self.evaluator.fetch_fitnesses([0], [oldest])[0])
            return SelectedMove(index=oldest, fitness=fitness)
        return SelectedMove(index=index, fitness=fitness)
