"""The general local-search model (paper Fig. 1) over a parallel evaluator.

At each iteration the *full* neighborhood of the current solution is
generated and evaluated (that is the step offloaded to the GPU), one
candidate is selected to replace the current solution and the process
repeats until a stopping criterion fires.  Concrete algorithms differ only
in the selection rule (and in per-iteration bookkeeping such as the tabu
list), which is what :meth:`NeighborhoodLocalSearch.select_move` captures.
"""

from __future__ import annotations

import abc
import time

import numpy as np

from ..core.evaluators import NeighborhoodEvaluator
from ..core.selection import SelectedMove
from ..problems.base import flip_bits
from ..problems.incremental import attach_gain_engine, create_gain_engine, detach_gain_engine
from .result import LSResult
from .stopping import AnyOf, MaxIterations, SearchState, StoppingCriterion, TargetFitness

__all__ = [
    "NeighborhoodLocalSearch",
    "REDUCED_SELECTION_MODES",
    "TRANSFER_MODES",
    "check_transfer_mode",
]

#: How candidate data moves between host and (simulated) device each iteration:
#:
#: * ``"full"``    — upload the solution, download every fitness (the seed
#:   behaviour, and the only possibility on the CPU backends);
#: * ``"delta"``   — the solution block stays device-resident, only the
#:   flipped-bit ``(replica, bit)`` pairs go up; the fitness matrix still
#:   comes down for host-side selection;
#: * ``"reduced"`` — delta uploads plus the fused neighborhood+reduction
#:   launch: only the per-replica best ``(index, fitness)`` pair comes down;
#: * ``"persistent"`` — the whole iteration loop runs inside **one**
#:   persistent launch per run: delta scatter, evaluation, fused reduction
#:   and tabu update all happen on-device, the host only drains a
#:   16 B/replica result ring and writes an ``O(S)`` early-stop flag, and
#:   the kernel launch overhead is paid once instead of once per iteration.
TRANSFER_MODES = ("full", "delta", "reduced", "persistent")

#: The modes whose per-iteration selection happens inside the fused
#: on-device reduction (the host sees only ``(index, fitness)`` pairs).
REDUCED_SELECTION_MODES = ("reduced", "persistent")


def check_transfer_mode(transfer_mode: str, evaluator: NeighborhoodEvaluator) -> str:
    """Validate ``transfer_mode`` against the evaluator's capabilities.

    Shared by every search driver (the scalar searches, the lockstep
    multi-start runner and the restart-based ILS/VNS wrappers) so they all
    reject unknown modes and non-resident backends with the same error.
    """
    if transfer_mode not in TRANSFER_MODES:
        raise ValueError(
            f"unknown transfer_mode {transfer_mode!r}; expected one of {TRANSFER_MODES}"
        )
    if transfer_mode != "full" and not evaluator.supports_device_residency:
        raise ValueError(
            f"transfer_mode={transfer_mode!r} needs a device-resident evaluator "
            f"(got {type(evaluator).__name__}); use the GPU backends or \"full\""
        )
    return transfer_mode


class NeighborhoodLocalSearch(abc.ABC):
    """Iterative improvement over a fully-evaluated neighborhood.

    Parameters
    ----------
    evaluator:
        The platform-specific neighborhood evaluator (CPU, GPU, multi-GPU);
        it binds the problem and the neighborhood structure.
    stopping:
        Stopping criterion; defaults to the paper's rule
        (target fitness 0 or ``n(n-1)(n-2)/6`` iterations).
    max_iterations:
        Convenience shortcut: when given (and ``stopping`` is not), the run
        stops at ``max_iterations`` or when the target fitness is reached.
    track_history:
        Record the best fitness after every iteration in the result.
    transfer_mode:
        One of :data:`TRANSFER_MODES`.  The ``"delta"`` and ``"reduced"``
        modes need an evaluator with device-resident support (the GPU
        backends); ``"reduced"`` additionally needs the algorithm to define
        its fused reduction (:attr:`reduction` and
        :meth:`select_from_reduced`).  All modes follow bit-identical
        trajectories for the same seeds.
    """

    #: Display name used by the harness.
    name: str = "local-search"

    #: Fused reduction op used by ``transfer_mode="reduced"``; ``None`` means
    #: the algorithm needs the full fitness array (e.g. stochastic acceptance)
    #: and cannot run the reduced path.
    reduction: str | None = None

    def __init__(
        self,
        evaluator: NeighborhoodEvaluator,
        *,
        stopping: StoppingCriterion | None = None,
        max_iterations: int | None = None,
        target_fitness: float = 0.0,
        track_history: bool = False,
        transfer_mode: str = "full",
    ) -> None:
        self.evaluator = evaluator
        self.problem = evaluator.problem
        self.neighborhood = evaluator.neighborhood
        if stopping is None:
            if max_iterations is None:
                n = self.problem.n
                max_iterations = n * (n - 1) * (n - 2) // 6
            stopping = AnyOf(TargetFitness(target_fitness), MaxIterations(max_iterations))
        self.stopping = stopping
        self.track_history = bool(track_history)
        check_transfer_mode(transfer_mode, evaluator)
        if transfer_mode in REDUCED_SELECTION_MODES and self.reduction is None:
            raise ValueError(
                f"{type(self).__name__} does not define a fused reduction; "
                "use transfer_mode=\"full\" or \"delta\""
            )
        self.transfer_mode = transfer_mode

    # ------------------------------------------------------------------
    # Hooks implemented by concrete algorithms
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def select_move(
        self,
        fitnesses: np.ndarray,
        current_fitness: float,
        best_fitness: float,
        iteration: int,
        rng: np.random.Generator,
    ) -> SelectedMove | None:
        """Choose the move to apply, or ``None`` to stop (local optimum)."""

    def on_start(self, initial_solution: np.ndarray, initial_fitness: float) -> None:
        """Reset per-run algorithm state (tabu lists, temperatures, ...)."""

    def on_move_applied(self, selected: SelectedMove, iteration: int) -> None:
        """Per-iteration bookkeeping after a move has been accepted."""

    def prepare_resident_session(self) -> None:
        """Configure the just-opened device-resident session.

        Called right after :meth:`~repro.core.evaluators.GPUEvaluator.begin_search`
        in the non-``full`` transfer modes; algorithms override it to move
        per-run memory device-resident (e.g. the tabu ``last_applied`` stamps).
        """

    # ------------------------------------------------------------------
    # Hooks of the reduced transfer path (algorithms that define
    # :attr:`reduction` must implement :meth:`select_from_reduced`).
    # ------------------------------------------------------------------
    def reduction_inputs(
        self, current_fitness: float, best_fitness: float, iteration: int
    ) -> dict:
        """Extra per-iteration inputs of the fused reduction (masks, thresholds)."""
        return {}

    def select_from_reduced(
        self,
        index: int,
        fitness: float,
        current_fitness: float,
        best_fitness: float,
        iteration: int,
    ) -> SelectedMove | None:
        """Turn the device-reduced ``(index, fitness)`` pair into a move."""
        raise NotImplementedError(
            f"{type(self).__name__} declares reduction={self.reduction!r} but does not "
            "implement select_from_reduced"
        )

    # ------------------------------------------------------------------
    # The general LS loop of the paper's Fig. 1
    # ------------------------------------------------------------------
    def run(
        self,
        initial_solution: np.ndarray | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> LSResult:
        """Execute the search and return its :class:`~repro.localsearch.result.LSResult`."""
        rng = np.random.default_rng(rng)
        start_wall = time.perf_counter()
        start_sim = self.evaluator.stats.simulated_time
        start_evals = self.evaluator.stats.evaluations

        if initial_solution is None:
            current = self.problem.random_solution(rng)
        else:
            current = np.array(initial_solution, dtype=np.int8).copy()
        current_fitness = float(self.problem.evaluate(current))
        initial_fitness = current_fitness
        best = current.copy()
        best_fitness = current_fitness

        self.on_start(current, current_fitness)

        history: list[float] = []
        iteration = 0
        since_improvement = 0
        stopping_reason = "max_iterations"

        resident = self.transfer_mode != "full"
        if resident:
            # Device-resident pipeline: the solution crosses PCIe once, here.
            # The persistent mode additionally opens the run's one device
            # loop: every following iteration happens inside that launch.
            self.evaluator.begin_search(
                current[None, :], persistent=self.transfer_mode == "persistent"
            )
            self.prepare_resident_session()

        # Incremental gain engine for the S=1 neighborhood evaluations.  An
        # engine attached by an outer driver (IteratedLocalSearch keeps one
        # alive across its descents, so kicks re-derive one row instead of
        # rebuilding the coupling tables) is reused; otherwise this run owns
        # a fresh one for its duration.
        engine = self.problem._gain_engine
        prev_engine = None
        owns_engine = False
        if engine is None:
            engine = create_gain_engine(self.problem, rows_hint=1)
            if engine is not None:
                prev_engine = attach_gain_engine(self.problem, engine)
                owns_engine = True
        row0 = np.zeros(1, dtype=np.int64)

        try:
            while True:
                state = SearchState(
                    iteration=iteration,
                    evaluations=self.evaluator.stats.evaluations - start_evals,
                    best_fitness=best_fitness,
                    iterations_since_improvement=since_improvement,
                )
                reason = self.stopping.should_stop(state)
                if reason is not None:
                    stopping_reason = reason
                    break

                # Generate + evaluate the whole neighborhood (the GPU step).
                if engine is not None:
                    engine.expect(row0)
                if self.transfer_mode in REDUCED_SELECTION_MODES:
                    # Fused neighborhood+reduction launch (inside the run's one
                    # persistent launch under "persistent"): only the best
                    # (index, fitness) pair comes back.
                    indices, fits = self.evaluator.evaluate_resident(
                        reduce=self.reduction,
                        **self.reduction_inputs(current_fitness, best_fitness, iteration),
                    )
                    selected = self.select_from_reduced(
                        int(indices[0]), float(fits[0]), current_fitness, best_fitness, iteration
                    )
                else:
                    if resident:
                        fitnesses = self.evaluator.evaluate_resident()[0]
                    else:
                        fitnesses = self.evaluator.evaluate(current)
                    selected = self.select_move(
                        fitnesses, current_fitness, best_fitness, iteration, rng
                    )
                if selected is None:
                    stopping_reason = "local_optimum"
                    break

                # Apply the selected move.
                move = self.neighborhood.mapping.from_flat(selected.index)
                move_bits = np.atleast_1d(np.asarray(move, dtype=np.int64))
                current = flip_bits(current, move_bits)
                if resident:
                    self.evaluator.apply_deltas(np.zeros(move_bits.size, dtype=np.int64), move_bits)
                if engine is not None:
                    engine.commit(row0, move_bits[None, :])
                current_fitness = selected.fitness
                self.on_move_applied(selected, iteration)

                if current_fitness < best_fitness:
                    best = current.copy()
                    best_fitness = current_fitness
                    since_improvement = 0
                else:
                    since_improvement += 1

                iteration += 1
                if self.track_history:
                    history.append(best_fitness)

        finally:
            if owns_engine:
                detach_gain_engine(self.problem, prev_engine)

        if resident:
            self.evaluator.end_search()

        return LSResult(
            best_solution=best,
            best_fitness=best_fitness,
            iterations=iteration,
            evaluations=self.evaluator.stats.evaluations - start_evals,
            success=self.problem.is_solution(best_fitness),
            stopping_reason=stopping_reason,
            simulated_time=self.evaluator.stats.simulated_time - start_sim,
            wall_time=time.perf_counter() - start_wall,
            initial_fitness=initial_fitness,
            history=history,
        )
