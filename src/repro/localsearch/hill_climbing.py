"""Hill climbing (steepest / first-improvement descent)."""

from __future__ import annotations

import numpy as np

from ..core.selection import SelectedMove, best_move, first_improving_move
from .base import NeighborhoodLocalSearch

__all__ = ["HillClimbing", "FirstImprovementHillClimbing"]


class HillClimbing(NeighborhoodLocalSearch):
    """Steepest-descent hill climbing.

    Every iteration evaluates the full neighborhood and moves to the best
    neighbor, stopping at the first local optimum (no neighbor strictly
    better than the current solution).
    """

    name = "hill-climbing"
    reduction = "argmin"

    def select_move(
        self,
        fitnesses: np.ndarray,
        current_fitness: float,
        best_fitness: float,
        iteration: int,
        rng: np.random.Generator,
    ) -> SelectedMove | None:
        selected = best_move(fitnesses)
        if selected.fitness >= current_fitness:
            return None  # local optimum
        return selected

    def select_from_reduced(
        self,
        index: int,
        fitness: float,
        current_fitness: float,
        best_fitness: float,
        iteration: int,
    ) -> SelectedMove | None:
        if fitness >= current_fitness:
            return None  # local optimum
        return SelectedMove(index=index, fitness=fitness)


class FirstImprovementHillClimbing(NeighborhoodLocalSearch):
    """First-improvement descent.

    The neighborhood is still evaluated in full (the parallel model of the
    paper evaluates all neighbors anyway); the *first* improving neighbor in
    flat-index order is selected, which reproduces the behaviour of the
    classic sequential first-improvement strategy.
    """

    name = "first-improvement"
    reduction = "first-improvement"

    def select_move(
        self,
        fitnesses: np.ndarray,
        current_fitness: float,
        best_fitness: float,
        iteration: int,
        rng: np.random.Generator,
    ) -> SelectedMove | None:
        return first_improving_move(fitnesses, current_fitness)

    def reduction_inputs(
        self, current_fitness: float, best_fitness: float, iteration: int
    ) -> dict:
        return {"thresholds": np.array([current_fitness], dtype=np.float64)}

    def select_from_reduced(
        self,
        index: int,
        fitness: float,
        current_fitness: float,
        best_fitness: float,
        iteration: int,
    ) -> SelectedMove | None:
        if index < 0:
            return None  # no improving neighbor: local optimum
        return SelectedMove(index=index, fitness=fitness)
