"""Neighborhood structures for binary local search.

A *neighborhood* couples a move mapping (how flat indices translate to bit
flips) with the metadata local search algorithms and evaluators need: its
size, its Hamming order and how to materialise or partition its moves.  The
paper's three structures are all instances of
:class:`~repro.neighborhoods.hamming.KHammingNeighborhood`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..mappings import MoveMapping

__all__ = ["Neighborhood", "NeighborhoodSlice"]


@dataclass(frozen=True)
class NeighborhoodSlice:
    """A contiguous range of flat move indices (used for partitioned exploration)."""

    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    def indices(self) -> np.ndarray:
        return np.arange(self.start, self.stop, dtype=np.int64)


class Neighborhood(abc.ABC):
    """Abstract neighborhood of a binary solution of length ``n``."""

    #: Length of the solutions this neighborhood applies to.
    n: int

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of neighbors of any solution (the paper's kernel thread count)."""

    @property
    @abc.abstractmethod
    def order(self) -> int:
        """Hamming distance between a solution and its neighbors."""

    @property
    @abc.abstractmethod
    def mapping(self) -> MoveMapping:
        """The flat-index <-> move mapping attached to this neighborhood."""

    # ------------------------------------------------------------------
    def moves(self, indices: np.ndarray | None = None) -> np.ndarray:
        """Materialise the moves for ``indices`` (default: the whole neighborhood)."""
        if indices is None:
            return self.mapping.all_moves()
        return self.mapping.from_flat_batch(np.asarray(indices, dtype=np.int64))

    def partition(self, parts: int) -> list[NeighborhoodSlice]:
        """Split the flat index space into ``parts`` balanced contiguous slices.

        This is the decomposition the paper proposes for multi-GPU
        exploration (one slice per device).
        """
        if parts <= 0:
            raise ValueError(f"parts must be positive, got {parts}")
        base, extra = divmod(self.size, parts)
        slices = []
        start = 0
        for i in range(parts):
            size = base + (1 if i < extra else 0)
            slices.append(NeighborhoodSlice(start, start + size))
            start += size
        return slices

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(n={self.n}, order={self.order}, size={self.size})"
