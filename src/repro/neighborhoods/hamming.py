"""k-Hamming-distance neighborhoods (the three structures of the paper and beyond)."""

from __future__ import annotations

import numpy as np

from ..mappings import MoveMapping, mapping_for
from .base import Neighborhood

__all__ = [
    "KHammingNeighborhood",
    "OneHammingNeighborhood",
    "TwoHammingNeighborhood",
    "ThreeHammingNeighborhood",
]


class KHammingNeighborhood(Neighborhood):
    """All solutions at Hamming distance exactly ``k`` from the current one.

    ``k = 1`` is the classic bit-flip neighborhood, ``k = 2`` the quadratic
    improvement and ``k = 3`` the "large neighborhood" whose exploration the
    paper makes practical on GPU.  Larger ``k`` falls back to the exact
    combinatorial mapping.
    """

    def __init__(self, n: int, k: int, *, float_sqrt: bool = False) -> None:
        if k <= 0:
            raise ValueError(f"Hamming order must be positive, got {k}")
        if k > n:
            raise ValueError(f"Hamming order {k} exceeds the solution length {n}")
        self.n = int(n)
        self._k = int(k)
        kwargs = {"float_sqrt": float_sqrt} if k in (2, 3) else {}
        self._mapping = mapping_for(n, k, **kwargs)

    @property
    def size(self) -> int:
        return self._mapping.size

    @property
    def order(self) -> int:
        return self._k

    @property
    def mapping(self) -> MoveMapping:
        return self._mapping

    # ------------------------------------------------------------------
    def random_move(self, rng: np.random.Generator | int | None = None) -> tuple[int, ...]:
        """Draw one uniform random move (used by sampling-based algorithms like SA)."""
        rng = np.random.default_rng(rng)
        flat = int(rng.integers(0, self.size))
        return self._mapping.from_flat(flat)


class OneHammingNeighborhood(KHammingNeighborhood):
    """Convenience alias for ``KHammingNeighborhood(n, 1)``."""

    def __init__(self, n: int) -> None:
        super().__init__(n, 1)


class TwoHammingNeighborhood(KHammingNeighborhood):
    """Convenience alias for ``KHammingNeighborhood(n, 2)``."""

    def __init__(self, n: int, *, float_sqrt: bool = False) -> None:
        super().__init__(n, 2, float_sqrt=float_sqrt)


class ThreeHammingNeighborhood(KHammingNeighborhood):
    """Convenience alias for ``KHammingNeighborhood(n, 3)``."""

    def __init__(self, n: int, *, float_sqrt: bool = False) -> None:
        super().__init__(n, 3, float_sqrt=float_sqrt)
