"""Neighborhood structures for binary problems (paper Section II)."""

from .base import Neighborhood, NeighborhoodSlice
from .hamming import (
    KHammingNeighborhood,
    OneHammingNeighborhood,
    ThreeHammingNeighborhood,
    TwoHammingNeighborhood,
)

__all__ = [
    "Neighborhood",
    "NeighborhoodSlice",
    "KHammingNeighborhood",
    "OneHammingNeighborhood",
    "TwoHammingNeighborhood",
    "ThreeHammingNeighborhood",
]
