"""Persistent shared-memory worker pool for batched neighborhood evaluation.

Design
------
The pool forks ``num_workers`` long-lived worker processes once per run and
keeps two ``multiprocessing.shared_memory`` blocks mapped in all of them: an
``int8`` block holding the ``(S, n)`` replica solutions and a ``float64``
block receiving the ``(S, M)`` fitness matrix.  Each lockstep iteration the
parent copies the current solution block into shared memory, broadcasts one
``eval`` command, and every worker scores its contiguous replica shard
``[lo_w, hi_w)`` in place — no per-iteration pickling of solution or result
arrays, only a few-byte command per worker.

Move tables (the ``(M, k)`` neighborhood definition) are broadcast once per
table and cached worker-side by the parent-side ``id`` of the frozen array —
the same identity-keyed discipline the fast scorers use, which is why the
pool only engages for read-only move arrays.

Determinism contract
--------------------
Workers evaluate *rows*; every fitness value ``out[s, m]`` is computed by
exactly one worker with the same row data the single-process path sees, and
every per-problem evaluator is row-independent (the fast scorers by their
integer-exactness guards, the reference paths by construction).  The parent
keeps selection, RNG streams, tabu state and the simulated transfer/launch
accounting, so sharded runs are bit-identical to single-process runs —
trajectories, fitness histories, byte counters and makespans included.

Sizing
------
``resolve_host_workers`` caps an explicit ``host_workers=N`` request at
``os.cpu_count()``; the ``REPRO_HOST_WORKERS`` environment variable
overrides the request *uncapped* (the escape hatch for containers that
report fewer cores than they can schedule, and for the identity tests).
Batches smaller than ``REPRO_HOST_MIN_WORK`` elements (default 16384) are
declined and evaluated locally — sharding tiny batches costs more in
synchronization than it saves.
"""

from __future__ import annotations

import atexit
import contextlib
import multiprocessing
import os
import traceback
import warnings
from multiprocessing import shared_memory

import numpy as np

from ..problems.incremental import attach_gain_engine, create_gain_engine

__all__ = [
    "DEFAULT_MIN_WORK",
    "HOST_WORKERS_ENV",
    "MIN_WORK_ENV",
    "HostWorkerPool",
    "WorkerDied",
    "get_host_pool",
    "host_parallel",
    "resolve_host_workers",
    "shard_bounds",
    "shutdown_host_pool",
]


class WorkerDied(RuntimeError):
    """A pool worker process exited (or was killed) mid-protocol.

    Raised after the pool has already torn itself down: the shared-memory
    blocks may hold rows the dead worker never wrote, so the pool can never
    be trusted again.  ``try_evaluate`` converts this into a declined call
    (``None``) so callers transparently fall back to local evaluation.
    """

#: Uncapped worker-count override (see :func:`resolve_host_workers`).
HOST_WORKERS_ENV = "REPRO_HOST_WORKERS"

#: Minimum ``S * M`` elements per batch before the pool engages.
MIN_WORK_ENV = "REPRO_HOST_MIN_WORK"
DEFAULT_MIN_WORK = 16_384

#: Worker-side cache size for broadcast move tables.
MAX_TABLES = 8


def resolve_host_workers(requested: int | None = None) -> int:
    """Effective worker count for a ``host_workers`` request.

    ``REPRO_HOST_WORKERS``, when set, wins and is *not* capped at the core
    count (containers frequently underreport; the identity tests rely on
    forcing real sharding on single-core CI runners).  An explicit request
    is capped at ``os.cpu_count()``; no request means single-process.

    An explicit request is validated *before* the environment override is
    consulted (``host_workers=0`` is a programming error either way), and
    when both are set and disagree a single :class:`RuntimeWarning` records
    that the environment won — a silently overridden experiment config is
    otherwise very hard to diagnose.
    """
    if requested is not None and requested < 1:
        raise ValueError(f"host_workers must be >= 1, got {requested}")
    env = os.environ.get(HOST_WORKERS_ENV)
    if env is not None:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(f"{HOST_WORKERS_ENV} must be an integer, got {env!r}") from None
        effective = max(1, value)
        if requested is not None and effective != int(requested):
            warnings.warn(
                f"{HOST_WORKERS_ENV}={env} overrides host_workers={requested}: "
                f"using {effective} worker(s)",
                RuntimeWarning,
                stacklevel=2,
            )
        return effective
    if requested is None:
        return 1
    return max(1, min(int(requested), os.cpu_count() or 1))


def shard_bounds(num_rows: int, num_workers: int, worker_id: int) -> tuple[int, int]:
    """Contiguous row range ``[lo, hi)`` owned by ``worker_id``.

    Balanced to within one row; the union over workers is exactly
    ``[0, num_rows)`` and shards never overlap, so each fitness row has one
    writer.
    """
    lo = (num_rows * worker_id) // num_workers
    hi = (num_rows * (worker_id + 1)) // num_workers
    return lo, hi


def _min_work() -> int:
    """Dispatch threshold, read per call so tests can retune it."""
    raw = os.environ.get(MIN_WORK_ENV)
    if raw is None:
        return DEFAULT_MIN_WORK
    try:
        return max(0, int(raw))
    except ValueError:
        raise ValueError(f"{MIN_WORK_ENV} must be an integer, got {raw!r}") from None


def _worker_main(worker_id, num_workers, conn, sol_shm, out_shm):  # pragma: no cover
    """Worker loop: evaluate the replica shard ``[lo, hi)`` on command.

    Runs in a forked child; coverage cannot observe it.  The protocol is a
    strict request/ack pairing over one Pipe per worker:

    - ``("attach", problem)``   — new problem instance (pool-less pickle)
    - ``("table", key, moves)`` — cache a frozen move table under ``key``
    - ``("drop", key)``         — evict a cached table
    - ``("eval", S, n, M, key, ops)`` — apply buffered gain-cache ops, then
      score rows ``[lo, hi)`` of the shm block
    - ``("update", ops)``       — apply gain-cache ops without evaluating
    - ``("stop",)``             — exit

    Every command is acked with ``("ok",)`` or ``("err", traceback)``.

    Each worker maintains its own shard-local incremental gain engine
    (:mod:`repro.problems.incremental`): the parent forwards the search
    loop's expect/commit/reset stream (piggybacked on ``eval`` — far below
    the dispatch threshold, the ops never pay their own IPC round trip) and
    the worker's engine serves its replica shard from maintained state,
    self-healing any replica whose shared-memory row diverged (migration,
    rebalance, faults, checkpoint restore).
    """
    problem = None
    tables: dict[int, np.ndarray] = {}
    gain_expect = None
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        try:
            cmd = msg[0]
            if cmd == "stop":
                conn.send(("ok",))
                break
            if cmd == "attach":
                problem = msg[1]
                tables.clear()
                gain_expect = None
                attach_gain_engine(problem, create_gain_engine(problem))
            elif cmd == "table":
                arr = np.asarray(msg[2], dtype=np.int64)
                arr.setflags(write=False)
                tables[msg[1]] = arr
            elif cmd == "drop":
                tables.pop(msg[1], None)
            elif cmd == "update":
                engine = getattr(problem, "_gain_engine", None)
                if engine is not None:
                    expect = engine.apply_ops(msg[1])
                    if expect is not None:
                        gain_expect = expect
            elif cmd == "eval":
                _, num_rows, n, num_moves, key, ops = msg
                engine = getattr(problem, "_gain_engine", None)
                if engine is not None and ops:
                    expect = engine.apply_ops(ops)
                    if expect is not None:
                        gain_expect = expect
                lo, hi = shard_bounds(num_rows, num_workers, worker_id)
                if lo < hi:
                    if engine is not None:
                        if gain_expect is not None and gain_expect.shape[0] == num_rows:
                            engine.set_expected(gain_expect[lo:hi])
                        else:
                            engine.set_expected(None)
                    sol = np.ndarray((num_rows, n), dtype=np.int8, buffer=sol_shm.buf)
                    out = np.ndarray((num_rows, num_moves), dtype=np.float64, buffer=out_shm.buf)
                    problem.evaluate_neighborhood_batch(sol[lo:hi], tables[key], out=out[lo:hi])
            else:
                raise ValueError(f"unknown pool command {cmd!r}")
            conn.send(("ok",))
        except Exception:
            conn.send(("err", traceback.format_exc()))
    conn.close()


class HostWorkerPool:
    """A fixed-size pool of forked evaluation workers over shared memory.

    Capacities are in elements: ``solution_capacity`` bounds ``S * n`` of
    the solution block, ``out_capacity`` bounds ``S * M`` of the fitness
    block.  Batches that don't fit are declined (evaluated locally), never
    split across calls.
    """

    def __init__(self, num_workers: int, *, solution_capacity: int, out_capacity: int) -> None:
        if num_workers < 2:
            raise ValueError(f"a worker pool needs >= 2 workers, got {num_workers}")
        self.num_workers = int(num_workers)
        self.solution_capacity = int(solution_capacity)
        self.out_capacity = int(out_capacity)
        self.dispatch_count = 0
        self.update_count = 0
        self._attached = None
        self._tables: dict[int, np.ndarray] = {}
        self._closed = False
        # Only the creating process may tear the pool down: forked children
        # inherit this object (and the module atexit hook), and a child
        # unlinking the shared-memory blocks would pull them out from under
        # the parent mid-run.
        self._owner_pid = os.getpid()
        ctx = multiprocessing.get_context("fork")
        self._sol_shm = shared_memory.SharedMemory(create=True, size=max(1, solution_capacity))
        self._out_shm = shared_memory.SharedMemory(create=True, size=max(8, out_capacity * 8))
        self._conns = []
        self._procs = []
        try:
            for worker_id in range(self.num_workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(worker_id, self.num_workers, child_conn, self._sol_shm, self._out_shm),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        except Exception:
            self.shutdown()
            raise

    # -- command plumbing ------------------------------------------------
    def _broadcast(self, msg: tuple) -> None:
        """Send ``msg`` to every worker and collect every ack.

        A worker raising inside a command stays alive and acks a traceback:
        the pool raises but remains usable.  A worker *dying* (closed pipe)
        leaves its shared-memory shard in an unknown state — the pool shuts
        itself down before raising :class:`WorkerDied`, so no later call can
        read stale fitness rows the dead worker never wrote.
        """
        for conn in self._conns:
            # A dead worker closes its pipe end; the recv loop below turns
            # that into a clean "worker died" error instead of a raw EPIPE.
            with contextlib.suppress(OSError, BrokenPipeError):
                conn.send(msg)
        errors = []
        deaths = False
        for worker_id, conn in enumerate(self._conns):
            try:
                ack = conn.recv()
            except (EOFError, OSError):
                errors.append(f"worker {worker_id} died")
                deaths = True
                continue
            if ack[0] != "ok":
                errors.append(f"worker {worker_id}: {ack[1]}")
        if deaths:
            self.shutdown()
            raise WorkerDied("host worker pool failure:\n" + "\n".join(errors))
        if errors:
            raise RuntimeError("host worker pool failure:\n" + "\n".join(errors))

    # -- lifecycle -------------------------------------------------------
    @property
    def alive(self) -> bool:
        # ``Process.is_alive`` may only be called from the parent; a forked
        # child inheriting this object must treat the pool as unusable.
        if os.getpid() != self._owner_pid:
            return False
        return not self._closed and all(p.is_alive() for p in self._procs)

    def attach(self, problem) -> None:
        """Ship ``problem`` to every worker and route its batch calls here.

        The problem pickles without its pool reference
        (``BinaryProblem.__getstate__``), so workers always evaluate
        locally — no recursive dispatch.
        """
        self._tables.clear()
        self._broadcast(("attach", problem))
        problem._host_pool = self
        self._attached = problem

    def detach(self, problem) -> None:
        """Stop routing ``problem``'s batch calls through the pool."""
        if problem.__dict__.get("_host_pool") is self:
            del problem._host_pool
        if self._attached is problem:
            self._attached = None

    def shutdown(self) -> None:
        """Stop the workers and release the shared-memory blocks.

        A no-op in any process other than the creator: forked children
        inherit the pool object and the module atexit hook, and must not
        ``unlink()`` shared memory the parent is still evaluating through.
        """
        if os.getpid() != self._owner_pid:
            return
        if self._closed:
            return
        self._closed = True
        if self._attached is not None:
            self.detach(self._attached)
        for conn in self._conns:
            with contextlib.suppress(OSError, BrokenPipeError):
                conn.send(("stop",))
        for conn in self._conns:
            with contextlib.suppress(EOFError, OSError):
                conn.recv()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            with contextlib.suppress(OSError):
                conn.close()
        for shm in (self._sol_shm, self._out_shm):
            with contextlib.suppress(OSError):
                shm.close()
            with contextlib.suppress(FileNotFoundError, OSError):
                shm.unlink()

    # -- evaluation ------------------------------------------------------
    def _ensure_table(self, moves: np.ndarray) -> int:
        """Broadcast ``moves`` once and return its worker-side cache key."""
        key = id(moves)
        entry = self._tables.get(key)
        if entry is not None and entry is moves:
            return key
        if len(self._tables) >= MAX_TABLES:
            oldest = next(iter(self._tables))
            del self._tables[oldest]
            self._broadcast(("drop", oldest))
        self._broadcast(("table", key, moves))
        self._tables[key] = moves
        return key

    def send_update(self, ops: list) -> None:
        """Broadcast gain-cache ops to every worker without evaluating.

        The hot path never calls this — ops piggyback on ``eval`` — but
        explicit resets (fault recovery outside an evaluation) can flush
        eagerly.
        """
        self._broadcast(("update", ops))
        self.update_count += 1

    def try_evaluate(
        self,
        problem,
        solutions: np.ndarray,
        moves: np.ndarray,
        *,
        out: np.ndarray | None = None,
    ) -> np.ndarray | None:
        """Shard one batched evaluation across the workers, or decline.

        Returns ``None`` (caller evaluates locally) when the batch cannot or
        should not be sharded: pool closed, different problem attached,
        fewer than two rows, empty move table, writable (unstable-identity)
        move array, batch under the dispatch threshold, or capacity
        exceeded.
        """
        if self._closed or problem is not self._attached:
            return None
        num_rows, n = solutions.shape
        num_moves = moves.shape[0]
        if num_rows < 2 or num_moves == 0:
            return None
        if moves.flags.writeable:
            return None
        if num_rows * num_moves < _min_work():
            return None
        if num_rows * n > self.solution_capacity or num_rows * num_moves > self.out_capacity:
            return None
        # Lazy gain-cache sync: the buffered expect/commit/reset ops ride the
        # eval broadcast (update payloads are tiny — far below the dispatch
        # threshold — so they must never pay their own IPC round trip; when
        # the pool declines an eval they simply stay buffered).  The workers
        # serve this evaluation, so the parent engine's pending expectation
        # is dropped — its own rows heal on the next local evaluation.
        ops: list = []
        engine = getattr(problem, "_gain_engine", None)
        if engine is not None:
            ops = engine.drain_ops()
            engine.set_expected(None)
        try:
            key = self._ensure_table(moves)
            sol_view = np.ndarray((num_rows, n), dtype=np.int8, buffer=self._sol_shm.buf)
            np.copyto(sol_view, solutions)
            self._broadcast(("eval", num_rows, n, num_moves, key, ops))
            if ops:
                self.update_count += 1
        except WorkerDied:
            # The pool already shut itself down (shared memory released, so
            # no stale rows can leak); decline and let the caller evaluate
            # this batch — and every later one — locally.
            return None
        out_view = np.ndarray((num_rows, num_moves), dtype=np.float64, buffer=self._out_shm.buf)
        self.dispatch_count += 1
        if out is None:
            return out_view.copy()
        np.copyto(out, out_view)
        return out


# ---------------------------------------------------------------------------
# Module-level pool reuse: forking workers costs tens of milliseconds, so one
# pool is kept alive across runs and recreated only when the requested shape
# (worker count or capacities) outgrows it.
# ---------------------------------------------------------------------------
_POOL: HostWorkerPool | None = None


def get_host_pool(
    num_workers: int, *, solution_capacity: int, out_capacity: int
) -> HostWorkerPool | None:
    """A live pool with at least the requested shape (``None`` if unavailable).

    Reuses the module singleton when it matches; otherwise tears it down and
    forks a fresh one.  Returns ``None`` on platforms without the ``fork``
    start method — callers fall back to single-process evaluation.
    """
    global _POOL
    if "fork" not in multiprocessing.get_all_start_methods():  # pragma: no cover
        return None
    pool = _POOL
    if pool is not None and pool._owner_pid != os.getpid():
        # Inherited from a parent process across a fork: the workers and the
        # shared memory belong to the parent.  Drop the reference without
        # shutting down (which would race the parent) and fork a fresh pool.
        pool = _POOL = None
    if (
        pool is not None
        and pool.alive
        and pool.num_workers == num_workers
        and pool.solution_capacity >= solution_capacity
        and pool.out_capacity >= out_capacity
    ):
        return pool
    if pool is not None:
        pool.shutdown()
        _POOL = None
    _POOL = HostWorkerPool(
        num_workers,
        solution_capacity=solution_capacity,
        out_capacity=out_capacity,
    )
    return _POOL


def shutdown_host_pool() -> None:
    """Tear down the module-level pool (idempotent)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


atexit.register(shutdown_host_pool)


@contextlib.contextmanager
def host_parallel(problem, host_workers: int | None = None, *, max_rows: int, max_moves: int):
    """Attach ``problem`` to a sized worker pool for the duration of a run.

    Yields the pool, or ``None`` when host parallelism is off (one effective
    worker), the run shape is degenerate, or pools are unavailable — callers
    need no fallback logic, the batch entry point simply evaluates locally.
    """
    workers = resolve_host_workers(host_workers)
    if workers <= 1 or max_rows < 2 or max_moves < 1:
        yield None
        return
    pool = get_host_pool(
        workers,
        solution_capacity=max_rows * problem.n,
        out_capacity=max_rows * max_moves,
    )
    if pool is None:  # pragma: no cover - fork-less platform
        yield None
        return
    try:
        pool.attach(problem)
    except WorkerDied:  # pragma: no cover - death between fork and attach
        yield None
        return
    try:
        yield pool
    finally:
        pool.detach(problem)
