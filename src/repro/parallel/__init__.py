"""Host-parallel execution layer: shared-memory replica sharding.

The lockstep multi-start engine funnels every iteration's work through one
``(S, n) -> (S, M)`` batched neighborhood evaluation.  This package shards
that single call across persistent worker processes over shared-memory
buffers — each worker owns a contiguous replica slice — while the parent
keeps all algorithm state (trajectories, RNG streams, tabu memory, simulated
transfer/launch accounting), which is what keeps sharded runs bit-identical
to single-process ones.
"""

from .pool import (
    DEFAULT_MIN_WORK,
    HOST_WORKERS_ENV,
    MIN_WORK_ENV,
    HostWorkerPool,
    WorkerDied,
    get_host_pool,
    host_parallel,
    resolve_host_workers,
    shard_bounds,
    shutdown_host_pool,
)

__all__ = [
    "DEFAULT_MIN_WORK",
    "HOST_WORKERS_ENV",
    "MIN_WORK_ENV",
    "HostWorkerPool",
    "WorkerDied",
    "get_host_pool",
    "host_parallel",
    "resolve_host_workers",
    "shard_bounds",
    "shutdown_host_pool",
]
