"""Neighborhood-evaluation kernels (the paper's ``MoveIncrEvalKernel``).

The paper's Figs. 7, 9 and 10 show one CUDA kernel per neighborhood: every
thread derives its move from its global id (identity, closed form with a
square root, or Newton–Raphson respectively), evaluates the corresponding
neighbor and writes the fitness into a global array indexed by the thread
id.  :func:`build_neighborhood_kernel` produces the simulator equivalent for
*any* binary problem and *any* k-Hamming neighborhood: the per-thread body
is a literal transcription of the paper's kernels, the vectorized body is
the NumPy batch equivalent used for fast execution.
"""

from __future__ import annotations

import inspect

import numpy as np

from ..gpu.kernel import Kernel, ThreadContext
from ..gpu.timing import KernelCostProfile
from ..neighborhoods import Neighborhood
from ..problems import BinaryProblem

__all__ = [
    "build_neighborhood_kernel",
    "build_batch_neighborhood_kernel",
    "mapping_flops",
    "kernel_cost_profile",
]

#: Approximate arithmetic cost of the thread-id -> move transformation, per
#: thread, by Hamming order: the identity, the closed form with one square
#: root (paper Appendix B), and the Newton–Raphson iteration plus a square
#: root (paper Appendix C / Algorithm 1).
_MAPPING_FLOPS = {1: 2.0, 2: 25.0, 3: 90.0}


def mapping_flops(order: int) -> float:
    """Per-thread cost of the one-to-k index transformation."""
    return _MAPPING_FLOPS.get(order, 40.0 * order)


def kernel_cost_profile(
    problem: BinaryProblem, order: int, *, use_texture: bool = False
) -> KernelCostProfile:
    """Per-thread cost of evaluating one neighbor of ``problem`` at Hamming order ``order``.

    With ``use_texture=True`` the read-only instance data (as declared by the
    problem's ``texture_bytes`` cost entry) is served through the texture
    cache instead of plain global memory — the optimisation behind the
    "GPUTexture" curve of the paper's Figure 8.
    """
    cost = problem.cost_profile(order)
    total_bytes = cost["bytes"]
    texture_bytes = 0.0
    if use_texture:
        texture_bytes = min(float(cost.get("texture_bytes", 0.0)), total_bytes)
    return KernelCostProfile(
        flops=cost["flops"] + mapping_flops(order),
        gmem_bytes=total_bytes - texture_bytes + 4.0,  # + the fitness write
        texture_bytes=texture_bytes,
        registers=24,
    )


def build_neighborhood_kernel(
    problem: BinaryProblem,
    neighborhood: Neighborhood,
    *,
    use_texture: bool = False,
) -> Kernel:
    """Create the evaluation kernel for ``problem`` explored with ``neighborhood``.

    The kernel signature (its ``args`` tuple at launch time) is
    ``(solution, fitnesses)``:

    * ``solution`` — the current candidate, a length-``n`` 0/1 vector living
      in (simulated) global memory;
    * ``fitnesses`` — the output array of ``neighborhood.size`` fitness
      values, one slot per thread.
    """
    mapping = neighborhood.mapping
    size = neighborhood.size

    def thread_fn(ctx: ThreadContext, solution: np.ndarray, fitnesses: np.ndarray) -> None:
        # Literal transcription of the paper's kernels:
        #   int move_index = blockIdx.x * blockDim.x + threadIdx.x;
        #   if (move_index < N) {
        #       <one-to-k index transformation>
        #       new_fitness[move_index] = compute_fitness(V, move...);
        #   }
        move_index = ctx.global_id
        if move_index < size:
            move = mapping.from_flat(move_index)
            fitnesses[move_index] = problem.delta_evaluate(solution, move)

    # The full move table is a pure function of the neighborhood: build it
    # once per kernel instead of re-deriving it every launch, and freeze it so
    # problems can cache per-table preprocessing keyed on its identity.
    full_moves: list[np.ndarray | None] = [None]

    def _full_moves() -> np.ndarray:
        if full_moves[0] is None:
            moves = mapping.from_flat_batch(np.arange(size, dtype=np.int64))
            moves.setflags(write=False)
            full_moves[0] = moves
        return full_moves[0]

    def vectorized_fn(tids: np.ndarray, solution: np.ndarray, fitnesses: np.ndarray) -> None:
        if tids.size == size and tids.size and tids[0] == 0 and tids[-1] == size - 1:
            fitnesses[:size] = problem.evaluate_neighborhood(solution, _full_moves())
            return
        moves = mapping.from_flat_batch(tids)
        fitnesses[tids] = problem.evaluate_neighborhood(solution, moves)

    return Kernel(
        name=f"MoveIncrEvalKernel<{problem.name},{neighborhood.order}-Hamming>",
        thread_fn=thread_fn,
        vectorized_fn=vectorized_fn,
        cost=kernel_cost_profile(problem, neighborhood.order, use_texture=use_texture),
    )


def build_batch_neighborhood_kernel(
    problem: BinaryProblem,
    neighborhood: Neighborhood,
    *,
    use_texture: bool = False,
) -> Kernel:
    """Solution-parallel generalization of the paper's evaluation kernel.

    One thread per (replica, neighbor) pair over a logical ``(S, M)`` work
    shape: thread ``t`` evaluates neighbor ``t % M`` of solution ``t // M``.
    The kernel's ``args`` tuple is ``(solutions, fitnesses)`` where
    ``solutions`` is the ``(S, n)`` block of current candidates and
    ``fitnesses`` a flat array of ``S * M`` output slots.  The per-thread
    cost profile is identical to the single-solution kernel — batching
    multiplies the thread count, not the per-thread work — which is exactly
    why the launch amortizes its fixed overhead over ``S`` replicas.
    """
    mapping = neighborhood.mapping
    size = neighborhood.size

    def thread_fn(ctx: ThreadContext, solutions: np.ndarray, fitnesses: np.ndarray) -> None:
        # The paper's kernel with a second logical axis:
        #   int tid = blockIdx.x * blockDim.x + threadIdx.x;
        #   int replica = tid / M, move_index = tid % M;
        #   if (replica < S) new_fitness[tid] = compute_fitness(V[replica], move...);
        tid = ctx.global_id
        replica, move_index = divmod(tid, size)
        if replica < solutions.shape[0]:
            move = mapping.from_flat(move_index)
            fitnesses[tid] = problem.delta_evaluate(solutions[replica], move)

    # Launch-invariant state, computed once: the full move table (frozen so
    # the problem can cache per-table preprocessing keyed on its identity)
    # and whether the problem's batch evaluation can write output in place.
    full_moves: list[np.ndarray | None] = [None]
    accepts_out = "out" in inspect.signature(problem.evaluate_neighborhood_batch).parameters

    def _full_moves() -> np.ndarray:
        if full_moves[0] is None:
            moves = mapping.from_flat_batch(np.arange(size, dtype=np.int64))
            moves.setflags(write=False)
            full_moves[0] = moves
        return full_moves[0]

    def vectorized_fn(tids: np.ndarray, solutions: np.ndarray, fitnesses: np.ndarray) -> None:
        num_solutions = solutions.shape[0]
        total = num_solutions * size
        if tids.size == total and tids.size:
            # Full batch: one broadcast delta evaluation over all replicas.
            # The launcher hands us a contiguous id range, so the scores land
            # in the output buffer without an S*M fancy-index scatter.
            moves = _full_moves()
            if tids[0] == 0 and tids[-1] == total - 1:
                view = fitnesses[:total].reshape(num_solutions, size)
                if accepts_out and view.flags.c_contiguous:
                    problem.evaluate_neighborhood_batch(solutions, moves, out=view)
                else:
                    view[...] = problem.evaluate_neighborhood_batch(solutions, moves)
            else:
                fitnesses[tids] = problem.evaluate_neighborhood_batch(solutions, moves).ravel()
            return
        # Partial coverage (e.g. a multi-device slice of the flat index
        # space): evaluate each replica's contiguous run of neighbors.
        replicas = tids // size
        for replica in np.unique(replicas):
            mask = replicas == replica
            moves = mapping.from_flat_batch(tids[mask] % size)
            fitnesses[tids[mask]] = problem.evaluate_neighborhood(solutions[replica], moves)

    return Kernel(
        name=f"BatchMoveIncrEvalKernel<{problem.name},{neighborhood.order}-Hamming>",
        thread_fn=thread_fn,
        vectorized_fn=vectorized_fn,
        cost=kernel_cost_profile(problem, neighborhood.order, use_texture=use_texture),
    )
