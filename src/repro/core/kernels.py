"""Neighborhood-evaluation kernels (the paper's ``MoveIncrEvalKernel``).

The paper's Figs. 7, 9 and 10 show one CUDA kernel per neighborhood: every
thread derives its move from its global id (identity, closed form with a
square root, or Newton–Raphson respectively), evaluates the corresponding
neighbor and writes the fitness into a global array indexed by the thread
id.  :func:`build_neighborhood_kernel` produces the simulator equivalent for
*any* binary problem and *any* k-Hamming neighborhood: the per-thread body
is a literal transcription of the paper's kernels, the vectorized body is
the NumPy batch equivalent used for fast execution.
"""

from __future__ import annotations

import numpy as np

from ..gpu.kernel import Kernel, ThreadContext
from ..gpu.timing import KernelCostProfile
from ..neighborhoods import Neighborhood
from ..problems import BinaryProblem

__all__ = ["build_neighborhood_kernel", "mapping_flops", "kernel_cost_profile"]

#: Approximate arithmetic cost of the thread-id -> move transformation, per
#: thread, by Hamming order: the identity, the closed form with one square
#: root (paper Appendix B), and the Newton–Raphson iteration plus a square
#: root (paper Appendix C / Algorithm 1).
_MAPPING_FLOPS = {1: 2.0, 2: 25.0, 3: 90.0}


def mapping_flops(order: int) -> float:
    """Per-thread cost of the one-to-k index transformation."""
    return _MAPPING_FLOPS.get(order, 40.0 * order)


def kernel_cost_profile(
    problem: BinaryProblem, order: int, *, use_texture: bool = False
) -> KernelCostProfile:
    """Per-thread cost of evaluating one neighbor of ``problem`` at Hamming order ``order``.

    With ``use_texture=True`` the read-only instance data (as declared by the
    problem's ``texture_bytes`` cost entry) is served through the texture
    cache instead of plain global memory — the optimisation behind the
    "GPUTexture" curve of the paper's Figure 8.
    """
    cost = problem.cost_profile(order)
    total_bytes = cost["bytes"]
    texture_bytes = 0.0
    if use_texture:
        texture_bytes = min(float(cost.get("texture_bytes", 0.0)), total_bytes)
    return KernelCostProfile(
        flops=cost["flops"] + mapping_flops(order),
        gmem_bytes=total_bytes - texture_bytes + 4.0,  # + the fitness write
        texture_bytes=texture_bytes,
        registers=24,
    )


def build_neighborhood_kernel(
    problem: BinaryProblem,
    neighborhood: Neighborhood,
    *,
    use_texture: bool = False,
) -> Kernel:
    """Create the evaluation kernel for ``problem`` explored with ``neighborhood``.

    The kernel signature (its ``args`` tuple at launch time) is
    ``(solution, fitnesses)``:

    * ``solution`` — the current candidate, a length-``n`` 0/1 vector living
      in (simulated) global memory;
    * ``fitnesses`` — the output array of ``neighborhood.size`` fitness
      values, one slot per thread.
    """
    mapping = neighborhood.mapping
    size = neighborhood.size

    def thread_fn(ctx: ThreadContext, solution: np.ndarray, fitnesses: np.ndarray) -> None:
        # Literal transcription of the paper's kernels:
        #   int move_index = blockIdx.x * blockDim.x + threadIdx.x;
        #   if (move_index < N) {
        #       <one-to-k index transformation>
        #       new_fitness[move_index] = compute_fitness(V, move...);
        #   }
        move_index = ctx.global_id
        if move_index < size:
            move = mapping.from_flat(move_index)
            fitnesses[move_index] = problem.delta_evaluate(solution, move)

    def vectorized_fn(tids: np.ndarray, solution: np.ndarray, fitnesses: np.ndarray) -> None:
        moves = mapping.from_flat_batch(tids)
        fitnesses[tids] = problem.evaluate_neighborhood(solution, moves)

    return Kernel(
        name=f"MoveIncrEvalKernel<{problem.name},{neighborhood.order}-Hamming>",
        thread_fn=thread_fn,
        vectorized_fn=vectorized_fn,
        cost=kernel_cost_profile(problem, neighborhood.order, use_texture=use_texture),
    )
