"""Parallel neighborhood evaluation engine (the paper's primary contribution).

This subpackage ties the mappings, neighborhoods and problems together with
the GPU execution substrate: kernels that evaluate one neighbor per thread,
evaluators for the CPU baseline / single GPU / multi-GPU platforms, move
selection policies and the per-iteration timing estimates that feed the
reproduced tables.
"""

from .evaluators import (
    REDUCE_OPS,
    CPUEvaluator,
    EvaluatorStats,
    GPUEvaluator,
    MultiGPUEvaluator,
    NeighborhoodEvaluator,
    SequentialEvaluator,
)
from .kernels import build_neighborhood_kernel, kernel_cost_profile, mapping_flops
from .selection import SelectedMove, best_admissible_move, best_move, first_improving_move
from .timing_estimates import IterationTimes, iteration_times, run_times

__all__ = [
    "NeighborhoodEvaluator",
    "SequentialEvaluator",
    "CPUEvaluator",
    "GPUEvaluator",
    "MultiGPUEvaluator",
    "EvaluatorStats",
    "REDUCE_OPS",
    "build_neighborhood_kernel",
    "kernel_cost_profile",
    "mapping_flops",
    "SelectedMove",
    "best_move",
    "best_admissible_move",
    "first_improving_move",
    "IterationTimes",
    "iteration_times",
    "run_times",
]
