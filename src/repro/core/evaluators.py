"""Neighborhood evaluators: the execution back-ends of the local search.

All evaluators compute *exactly the same* fitness array for a given
(problem, neighborhood, solution) triple; they differ in how the work would
be executed and therefore in the **simulated time** they accumulate:

``SequentialEvaluator``
    A literal Python loop over neighbors (one ``delta_evaluate`` per move).
    This is the reference implementation used in tests and for very small
    neighborhoods; its simulated time uses the CPU host model.

``CPUEvaluator``
    The NumPy-vectorized batch evaluation.  Functionally identical, much
    faster in wall-clock terms; its *simulated* time still models the
    paper's sequential single-core CPU baseline (that is the platform being
    compared against).

``GPUEvaluator``
    Runs the neighborhood kernel on a simulated device: upload the current
    solution, launch one thread per neighbor, download the fitness array.
    Simulated time comes from the device timing model.

``MultiGPUEvaluator``
    Partitions the flat index space across several simulated devices (the
    paper's multi-GPU perspective); elapsed simulated time is the slowest
    partition.

The GPU evaluators additionally expose a **device-resident** session API
(:meth:`GPUEvaluator.begin_search` / :meth:`GPUEvaluator.apply_deltas` /
:meth:`GPUEvaluator.evaluate_resident` / :meth:`GPUEvaluator.end_search`):
the solution block is uploaded once per search, each iteration sends only
the flipped-bit ``(replica, bit)`` deltas, and — with ``reduce="argmin"`` —
a fused neighborhood+reduction launch returns only the per-replica best
``(index, fitness)`` pair, shrinking the per-iteration PCIe traffic from
``O(S·M)`` floats down to 16 bytes per replica.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..gpu.device import GTX_280, XEON_3GHZ, DeviceSpec, HostSpec
from ..gpu.dtypes import (
    DELTA_DTYPE,
    FITNESS_BYTES,
    FITNESS_DTYPE,
    PEER_PACKET_HEADER_BYTES,
    REDUCED_PAIR_DTYPE,
    REDUCED_RESULT_BYTES,
    SOLUTION_DTYPE,
    STOP_FLAG_BYTES,
    TABU_NEVER,
    TABU_STAMP_DTYPE,
)
from ..gpu.hierarchy import DEFAULT_BLOCK_SIZE
from ..gpu.interconnect import InterconnectTopology
from ..gpu.kernel import ExecutionMode, Kernel, PersistentKernel
from ..gpu.multi_device import MultiGPU, weighted_partition_range
from ..gpu.runtime import DeviceLoop, GPUContext, PersistentLaunchRecord
from ..gpu.scheduler import DeviceScheduler
from ..gpu.streams import COPY_STREAM, DOWNLOAD_STREAM
from ..gpu.timing import HostTimingModel
from ..neighborhoods import Neighborhood
from ..problems import BinaryProblem, as_solution
from .kernels import (
    build_batch_neighborhood_kernel,
    build_neighborhood_kernel,
    mapping_flops,
)

__all__ = [
    "EvaluatorStats",
    "NeighborhoodEvaluator",
    "SequentialEvaluator",
    "CPUEvaluator",
    "GPUEvaluator",
    "MultiGPUEvaluator",
    "REDUCE_OPS",
]

#: Fused on-device reduction operators of the device-resident pipeline.
REDUCE_OPS = ("argmin", "first-improvement")


def _fused_reduce(
    fitnesses: np.ndarray,
    op: str,
    admissible: np.ndarray | None,
    aspiration_fitness: np.ndarray | None,
    thresholds: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Functional body of the fused reduction epilogue.

    Returns per-replica ``(index, fitness)``; a replica with no selectable
    move gets ``(-1, inf)`` (every admissibility decision the device cannot
    make — robust-tabu escapes, local-optimum stops — is left to the host).
    The selection semantics exactly match the host-side vectorized rules, so
    reduced-mode trajectories are bit-identical to full-mode ones.
    """
    rows = np.arange(fitnesses.shape[0])
    if op == "argmin":
        if admissible is None and aspiration_fitness is None:
            indices = fitnesses.argmin(axis=1)
            return indices.astype(np.int64), fitnesses[rows, indices].astype(np.float64)
        if admissible is None:
            mask = np.ones(fitnesses.shape, dtype=bool)
        else:
            mask = np.asarray(admissible, dtype=bool).copy()
        if aspiration_fitness is not None:
            mask |= fitnesses < np.asarray(aspiration_fitness, dtype=np.float64)[:, None]
        candidates = np.where(mask, fitnesses, np.inf)
        indices = candidates.argmin(axis=1)
        blocked = ~mask.any(axis=1)
        out_indices = np.where(blocked, -1, indices).astype(np.int64)
        out_fitness = np.where(blocked, np.inf, fitnesses[rows, indices])
        return out_indices, out_fitness.astype(np.float64)
    if op == "first-improvement":
        if thresholds is None:
            raise ValueError("first-improvement reduction needs per-replica thresholds")
        improving = fitnesses < np.asarray(thresholds, dtype=np.float64)[:, None]
        has_improving = improving.any(axis=1)
        indices = improving.argmax(axis=1)
        out_indices = np.where(has_improving, indices, -1).astype(np.int64)
        out_fitness = np.where(has_improving, fitnesses[rows, indices], np.inf)
        return out_indices, out_fitness.astype(np.float64)
    raise ValueError(f"unknown reduce op {op!r}; expected one of {REDUCE_OPS}")


@dataclass
class EvaluatorStats:
    """Work and simulated time accumulated by one evaluator."""

    calls: int = 0
    evaluations: int = 0
    simulated_time: float = 0.0

    def reset(self) -> None:
        self.calls = 0
        self.evaluations = 0
        self.simulated_time = 0.0


class NeighborhoodEvaluator(abc.ABC):
    """Evaluates all (or a slice of the) neighbors of a candidate solution."""

    #: Short platform label used by the harness ("cpu", "gpu", ...).
    platform: str = "abstract"

    #: Whether the backend implements the device-resident session API
    #: (``begin_search`` / ``apply_deltas`` / ``evaluate_resident``).
    supports_device_residency: bool = False

    def __init__(self, problem: BinaryProblem, neighborhood: Neighborhood) -> None:
        if neighborhood.n != problem.n:
            raise ValueError(
                f"neighborhood is defined over n={neighborhood.n} bits but the problem has n={problem.n}"
            )
        self.problem = problem
        self.neighborhood = neighborhood
        self.stats = EvaluatorStats()

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _evaluate(self, solution: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Platform-specific evaluation of the moves at the given flat indices."""

    def _evaluate_many(self, solutions: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Platform-specific batched evaluation; default replays the scalar path.

        The fallback runs the single-solution path once per replica (so its
        simulated time is exactly ``S`` sequential explorations); backends
        with a native batched execution override it.
        """
        return np.stack([self._evaluate(solution, indices) for solution in solutions])

    def _check_indices(self, indices: np.ndarray | None) -> np.ndarray:
        if indices is None:
            return np.arange(self.neighborhood.size, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.neighborhood.size):
            raise IndexError("neighborhood index out of range")
        return indices

    def evaluate(self, solution: np.ndarray, indices: np.ndarray | None = None) -> np.ndarray:
        """Fitness of the neighbors at ``indices`` (default: the whole neighborhood)."""
        solution = as_solution(solution, self.problem.n)
        indices = self._check_indices(indices)
        fitnesses = self._evaluate(solution, indices)
        self.stats.calls += 1
        self.stats.evaluations += int(indices.size)
        return fitnesses

    def evaluate_many(
        self, solutions: np.ndarray, indices: np.ndarray | None = None
    ) -> np.ndarray:
        """Neighborhood fitnesses of a whole ``(S, n)`` block of solutions.

        Returns an ``(S, M)`` matrix: row ``s`` is exactly what
        :meth:`evaluate` would return for ``solutions[s]``.  This is the
        entry point of the solution-parallel execution engine: backends that
        can batch (the CPU vectorized path, the GPU's single ``S x M``-thread
        launch) amortize per-call overheads — transfers, kernel launches,
        Python dispatch — across all replicas.
        """
        solutions = np.asarray(solutions, dtype=np.int8)
        if solutions.ndim == 1:
            solutions = solutions[None, :]
        if solutions.ndim != 2 or solutions.shape[1] != self.problem.n:
            raise ValueError(
                f"expected an (S, {self.problem.n}) solution block, got {solutions.shape}"
            )
        if solutions.size and not np.all((solutions == 0) | (solutions == 1)):
            raise ValueError("solution block must contain only 0/1 values")
        indices = self._check_indices(indices)
        if solutions.shape[0] == 0:
            return np.empty((0, indices.size), dtype=np.float64)
        fitnesses = self._evaluate_many(solutions, indices)
        self.stats.calls += 1
        self.stats.evaluations += solutions.shape[0] * int(indices.size)
        return fitnesses

    def reset_stats(self) -> None:
        self.stats.reset()

    # ------------------------------------------------------------------
    # Checkpoint API
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Checkpointable state of this evaluator (versioned by the runner).

        The base payload is the work counters; device-backed evaluators
        extend it with their timeline, interconnect and resident-session
        state so that a restored run continues *bit-identically* — same
        trajectories, same byte counters, same makespans.
        """
        return {
            "platform": self.platform,
            "stats": {
                "calls": self.stats.calls,
                "evaluations": self.stats.evaluations,
                "simulated_time": self.stats.simulated_time,
            },
        }

    def restore_state(self, snap: dict) -> None:
        """Install a :meth:`snapshot_state` payload into this fresh evaluator."""
        stats = snap["stats"]
        self.stats.calls = int(stats["calls"])
        self.stats.evaluations = int(stats["evaluations"])
        self.stats.simulated_time = float(stats["simulated_time"])

    def close(self) -> None:
        """Release any persistent per-evaluator device buffers (no-op on CPU)."""

    def __enter__(self) -> "NeighborhoodEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"{type(self).__name__}(problem={self.problem.name!r}, "
            f"order={self.neighborhood.order}, size={self.neighborhood.size})"
        )


class _HostModelMixin:
    """Shared CPU-side simulated-time accounting."""

    def _account_host_time(self, num_evaluations: int) -> None:
        cost = self.problem.cost_profile(self.neighborhood.order)
        flops = (cost["flops"] + mapping_flops(self.neighborhood.order)) * num_evaluations
        mem_bytes = cost["bytes"] * num_evaluations
        self.stats.simulated_time += self._host_model.evaluation_time(flops, mem_bytes)
        self.stats.simulated_time += self._host_model.iteration_overhead()


class SequentialEvaluator(_HostModelMixin, NeighborhoodEvaluator):
    """Reference evaluator: a literal per-neighbor Python loop."""

    platform = "cpu-sequential"

    def __init__(
        self,
        problem: BinaryProblem,
        neighborhood: Neighborhood,
        *,
        host: HostSpec = XEON_3GHZ,
        cores: int = 1,
    ) -> None:
        super().__init__(problem, neighborhood)
        self._host_model = HostTimingModel(host, cores_used=cores)

    def _evaluate(self, solution: np.ndarray, indices: np.ndarray) -> np.ndarray:
        mapping = self.neighborhood.mapping
        out = np.empty(indices.size, dtype=np.float64)
        for slot, flat in enumerate(indices):
            move = mapping.from_flat(int(flat))
            out[slot] = self.problem.delta_evaluate(solution, move)
        self._account_host_time(indices.size)
        return out


class CPUEvaluator(_HostModelMixin, NeighborhoodEvaluator):
    """Vectorized CPU evaluator (functional twin of the GPU kernel)."""

    platform = "cpu"

    def __init__(
        self,
        problem: BinaryProblem,
        neighborhood: Neighborhood,
        *,
        host: HostSpec = XEON_3GHZ,
        cores: int = 1,
    ) -> None:
        super().__init__(problem, neighborhood)
        self._host_model = HostTimingModel(host, cores_used=cores)

    def _evaluate(self, solution: np.ndarray, indices: np.ndarray) -> np.ndarray:
        moves = self.neighborhood.moves(indices)
        fitnesses = self.problem.evaluate_neighborhood(solution, moves)
        self._account_host_time(indices.size)
        return np.asarray(fitnesses, dtype=np.float64)

    def _evaluate_many(self, solutions: np.ndarray, indices: np.ndarray) -> np.ndarray:
        # One broadcast delta evaluation for the whole (S, n) block; the
        # modeled time still charges the sequential baseline for all S * M
        # evaluations (one per-call overhead instead of S — the batched
        # path's bookkeeping amortization).
        moves = self.neighborhood.moves(indices)
        fitnesses = self.problem.evaluate_neighborhood_batch(solutions, moves)
        self._account_host_time(solutions.shape[0] * indices.size)
        return np.asarray(fitnesses, dtype=np.float64)


class GPUEvaluator(NeighborhoodEvaluator):
    """Evaluator running the neighborhood kernel on one simulated GPU."""

    platform = "gpu"

    def __init__(
        self,
        problem: BinaryProblem,
        neighborhood: Neighborhood,
        *,
        device: DeviceSpec = GTX_280,
        block_size: int = DEFAULT_BLOCK_SIZE,
        mode: ExecutionMode = ExecutionMode.VECTORIZED,
        context: GPUContext | None = None,
        use_texture_memory: bool = False,
        pinned: bool = False,
        topology: InterconnectTopology | str | None = None,
    ) -> None:
        super().__init__(problem, neighborhood)
        if context is not None and topology is not None:
            raise ValueError("pass either an existing context or a topology, not both")
        self.context = (
            context
            if context is not None
            else GPUContext(device, mode=mode, pinned=pinned, topology=topology)
        )
        self.block_size = int(block_size)
        self.use_texture_memory = bool(use_texture_memory)
        self.kernel = build_neighborhood_kernel(
            problem, neighborhood, use_texture=self.use_texture_memory
        )
        self.batch_kernel = build_batch_neighborhood_kernel(
            problem, neighborhood, use_texture=self.use_texture_memory
        )
        # Persistent device-side fitness buffer, allocated once (as a real
        # implementation would) and reused across iterations.
        self._fitness_buffer = self.context.alloc(
            f"fitnesses:{id(self)}", (neighborhood.size,), np.float64
        )
        # Geometry of the last batched call (the device-side solution block
        # and fitness buffer are reallocated when the number of in-flight
        # replicas changes).
        self._solutions_shape: tuple[int, int] | None = None
        self._batch_fitness_size: int | None = None
        # --- device-resident session state -----------------------------
        #: Host mirror of the device-resident (R, n) solution block.
        self._resident: np.ndarray | None = None
        self._resident_fitness_size: int | None = None
        self._reduced_size: int | None = None
        #: Host-staged (replica, bit) pairs, shipped as one delta packet by
        #: the next resident evaluation (one PCIe transaction, one latency).
        self._staged_deltas: list[np.ndarray] = []
        #: Simulated instant the host last synchronized with the device;
        #: host-issued operations cannot start before it.
        self._sync_time: float = 0.0
        #: Fitness block and global replica ids of the last resident launch
        #: (still live in device memory — `fetch_fitnesses` reads from it).
        self._last_fitnesses: np.ndarray | None = None
        self._last_rows: np.ndarray | None = None
        #: Persistent launch of the current session (``transfer_mode=
        #: "persistent"``): the whole iteration loop runs inside one launch.
        self._loop: DeviceLoop | None = None
        #: Summary of the last completed persistent launch (for profiling
        #: and the invariant tests).
        self.last_persistent_record: PersistentLaunchRecord | None = None
        #: Device-resident tabu memory of the current session: the ``(R, M)``
        #: "iteration last applied" stamps, living in device global memory.
        self._tabu_last_applied: np.ndarray | None = None
        self._tabu_tenure: int = 0
        #: Set by close(); a closed evaluator's device buffers are gone, so
        #: further evaluations would escape the device-memory model.
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "evaluator has been closed (its device buffers were freed); "
                "create a new evaluator instead of reusing it"
            )

    def _is_canonical_full(self, indices: np.ndarray) -> bool:
        """Whether ``indices`` is exactly ``0, 1, ..., size - 1`` in order.

        A mere *permutation* of the full range must NOT take the full-
        neighborhood fast path: the kernel writes fitnesses in canonical
        order, which would silently ignore the caller's requested ordering.
        """
        return (
            indices.size == self.neighborhood.size
            and (
                indices.size == 0
                or (indices[0] == 0 and bool(np.all(np.diff(indices) == 1)))
            )
        )

    def _account_d2h(self, context: GPUContext, num_fitnesses: int) -> None:
        # Device -> host: the fitness array, for host-side move selection,
        # at the width of the shared fitness dtype; routed through the
        # interconnect engine like every other copy.
        d2h_bytes = float(FITNESS_BYTES) * num_fitnesses
        grant = context.host_transfer_grant("d2h", d2h_bytes, label="fitnesses")
        context.stats.transfer_time += grant.duration
        context.stats.d2h_bytes += int(d2h_bytes)
        context.timeline.schedule_sync("d2h", "fitnesses", grant.duration)

    def _evaluate(self, solution: np.ndarray, indices: np.ndarray) -> np.ndarray:
        self._check_open()
        before = self.context.stats.total_time
        # Host -> device: the candidate solution (int32, as in the paper's kernels).
        self.context.to_device(f"solution:{id(self)}", solution.astype(np.int32))
        fitnesses = self._fitness_buffer.data
        if self._is_canonical_full(indices):
            # Full neighborhood: one thread per neighbor, exactly the paper's launch.
            self.context.launch(
                self.kernel,
                self.neighborhood.size,
                (solution, fitnesses),
                block_size=self.block_size,
            )
            result = fitnesses.copy()
        else:
            # Partial evaluation (used by partitioned/multi-device exploration):
            # launch over the compacted index list.
            sub_fitnesses = np.empty(indices.size, dtype=np.float64)

            def vectorized_fn(tids, solution_arr, out):
                moves = self.neighborhood.mapping.from_flat_batch(indices[tids])
                out[tids] = self.problem.evaluate_neighborhood(solution_arr, moves)

            sub_kernel = Kernel(
                name=self.kernel.name + "[slice]",
                vectorized_fn=vectorized_fn,
                cost=self.kernel.cost,
            )
            self.context.launch(
                sub_kernel,
                indices.size,
                (solution, sub_fitnesses),
                block_size=self.block_size,
            )
            result = sub_fitnesses
        self._account_d2h(self.context, indices.size)
        self.stats.simulated_time += self.context.stats.total_time - before
        return result

    def _evaluate_many(self, solutions: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Solution-parallel evaluation: one ``S x M``-thread launch.

        The ``(S, n)`` solution block crosses PCIe once and a single kernel
        launch covers every (replica, neighbor) pair, so the fixed transfer
        latency and launch overhead are paid once instead of ``S`` times —
        the core amortization of the batched execution engine.
        """
        self._check_open()
        before = self.context.stats.total_time
        num_solutions, num_indices = solutions.shape[0], indices.size
        # Host -> device: the whole solution block, uploaded once.
        name = f"solutions:{id(self)}"
        if self._solutions_shape is not None and self._solutions_shape != solutions.shape:
            self.context.free(name)
        self._solutions_shape = solutions.shape
        self.context.to_device(name, solutions.astype(np.int32))
        # Device-side output buffer for all S * M fitness values, resized
        # (like the solution block) when the batch geometry changes so the
        # device-memory model sees the batched launch's largest allocation.
        buffer_name = f"batch_fitnesses:{id(self)}"
        flat_size = num_solutions * num_indices
        if self._batch_fitness_size not in (None, flat_size):
            self.context.free(buffer_name)
        if self._batch_fitness_size != flat_size:
            self.context.alloc(buffer_name, (flat_size,), np.float64)
            self._batch_fitness_size = flat_size
        flat = self.context.memory.get(buffer_name).data
        if self._is_canonical_full(indices):
            kernel = self.batch_kernel
        else:
            # Compacted index list: same batched launch over the (S, M_sub)
            # logical space, with the move list fixed by the caller.
            moves = self.neighborhood.moves(indices)

            def vectorized_fn(tids, solutions_arr, out):
                batch = self.problem.evaluate_neighborhood_batch(solutions_arr, moves)
                out[tids] = batch.reshape(-1)[tids]

            kernel = Kernel(
                name=self.batch_kernel.name + "[slice]",
                vectorized_fn=vectorized_fn,
                cost=self.batch_kernel.cost,
            )
        self.context.launch(
            kernel,
            (num_solutions, num_indices),
            (solutions, flat),
            block_size=self.block_size,
        )
        self._account_d2h(self.context, flat.size)
        self.stats.simulated_time += self.context.stats.total_time - before
        # Copy: the persistent device buffer is overwritten by the next call.
        return flat.reshape(num_solutions, num_indices).copy()

    # ------------------------------------------------------------------
    # Device-resident session API
    # ------------------------------------------------------------------
    supports_device_residency = True

    def _session_buffer(self, kind: str) -> str:
        return f"{kind}:{id(self)}"

    def begin_search(self, solutions: np.ndarray, *, persistent: bool = False) -> None:
        """Upload the ``(R, n)`` solution block once; it stays device-resident.

        Subsequent iterations mutate the resident block through
        :meth:`apply_deltas` and evaluate it through
        :meth:`evaluate_resident`; the block never crosses PCIe again.

        With ``persistent=True`` the session additionally opens a
        :class:`~repro.gpu.runtime.DeviceLoop`: the whole iteration loop runs
        inside one persistent launch (delta scatter, evaluation, fused
        reduction and tabu update all on-device), the host only drains the
        per-iteration result ring and writes early-stop flags, and exactly
        one kernel launch is charged when the session ends.
        """
        solutions = np.asarray(solutions, dtype=np.int8)
        if solutions.ndim != 2 or solutions.shape[1] != self.problem.n:
            raise ValueError(
                f"expected an (R, {self.problem.n}) solution block, got {solutions.shape}"
            )
        if solutions.shape[0] == 0:
            raise ValueError("need at least one replica to start a resident search")
        self._check_open()
        self.end_search()
        self._resident = solutions.copy()
        before = self.context.timeline.elapsed
        self.context.to_device(
            self._session_buffer("resident"), solutions.astype(SOLUTION_DTYPE)
        )
        self._sync_time = self.context.timeline.elapsed
        self.stats.simulated_time += self.context.timeline.elapsed - before
        if persistent:
            self.open_persistent_loop()

    def open_persistent_loop(self) -> None:
        """Open the session's single persistent launch (one per run).

        Split out of :meth:`begin_search` so the multi-GPU evaluator can
        batch the resident uploads of all devices through the interconnect
        engine first and open each device's loop once its slice has landed.
        """
        if self._resident is None:
            raise RuntimeError("begin_search must be called before open_persistent_loop")
        self.last_persistent_record = None
        self._loop = self.context.open_device_loop(
            PersistentKernel(self.batch_kernel), block_size=self.block_size
        )

    def init_tabu_memory(self, tenure: int) -> None:
        """Make the tabu memory device-resident for the current session.

        Allocates the ``(R, M)`` "iteration last applied" stamps in device
        global memory.  The admissibility mask is then computed next to the
        fused reduction instead of on the host, so the per-iteration tabu
        packet shrinks from the ``O(S·M/8)`` bit-packed mask to the ``O(S)``
        per-replica iteration stamps — and the robust-tabu escape (fall back
        to the oldest move when every move is inadmissible) resolves
        on-device too, removing its extra host round trip.
        """
        if self._resident is None:
            raise RuntimeError("begin_search must be called before init_tabu_memory")
        if tenure < 0:
            raise ValueError(f"tabu tenure must be non-negative, got {tenure}")
        name = self._session_buffer("tabu")
        if name in self.context.memory.allocations:
            self.context.free(name)
        buf = self.context.alloc(
            name, (self._resident.shape[0], self.neighborhood.size), TABU_STAMP_DTYPE
        )
        buf.data.fill(TABU_NEVER)
        self._tabu_last_applied = buf.data
        self._tabu_tenure = int(tenure)

    def read_tabu_rows(self, rows: np.ndarray) -> np.ndarray:
        """Copy out the device-resident tabu stamps of the given replica rows.

        The solve server uses this to suspend a preempted tenant: its
        ``last_applied`` stamps leave with the tenant and come back verbatim
        on resume, so the continued trajectory stays bit-identical.
        """
        if self._tabu_last_applied is None:
            raise RuntimeError("no device-resident tabu memory in this session")
        rows = np.asarray(rows, dtype=np.int64).ravel()
        return self._tabu_last_applied[rows].copy()

    def write_tabu_rows(self, rows: np.ndarray, stamps: np.ndarray | None = None) -> None:
        """Overwrite replica rows of the device-resident tabu memory.

        ``stamps=None`` resets the rows to the "never applied" sentinel —
        what a fresh tenant needs when it takes over a replica slot.  The
        fill happens in device global memory (folded into the next launch),
        so nothing crosses PCIe and nothing is priced on the timeline.
        """
        if self._tabu_last_applied is None:
            raise RuntimeError("no device-resident tabu memory in this session")
        rows = np.asarray(rows, dtype=np.int64).ravel()
        if stamps is None:
            self._tabu_last_applied[rows] = TABU_NEVER
            return
        stamps = np.asarray(stamps, dtype=TABU_STAMP_DTYPE)
        if stamps.shape != (rows.size, self.neighborhood.size):
            raise ValueError(
                f"expected a ({rows.size}, {self.neighborhood.size}) stamp block, "
                f"got {stamps.shape}"
            )
        self._tabu_last_applied[rows] = stamps

    def apply_deltas(
        self, replicas: np.ndarray, bits: np.ndarray, *, stage: bool = True
    ) -> None:
        """Send only the flipped bits: ``(replica, bit)`` int32 pairs.

        ``O(S·k)`` bytes per iteration instead of re-uploading the whole
        ``(S, n)`` block.  The pairs are staged host-side and cross PCIe as
        a single delta packet when the next resident evaluation is issued
        (the device folds the scatter into the evaluation launch).

        ``stage=False`` updates only the functional mirror and skips the
        host-side staging: the multi-GPU scheduler uses it when the packet
        reaches this device over a peer-to-peer link instead of PCIe (the
        arrival is then recorded through :meth:`note_peer_delivery`).
        """
        if self._resident is None:
            raise RuntimeError("begin_search must be called before apply_deltas")
        replicas = np.asarray(replicas, dtype=np.int64).ravel()
        bits = np.asarray(bits, dtype=np.int64).ravel()
        if replicas.shape != bits.shape:
            raise ValueError("replicas and bits must have the same length")
        if replicas.size == 0:
            return
        if replicas.min() < 0 or replicas.max() >= self._resident.shape[0]:
            raise IndexError("delta replica index out of range")
        if bits.min() < 0 or bits.max() >= self.problem.n:
            raise IndexError("delta bit index out of range")
        self._resident[replicas, bits] ^= 1
        if self._loop is not None and not self._loop.closed:
            # Persistent launch: the winning move was selected by the
            # resident grid itself, which scatters the flips in-place — no
            # delta packet ever crosses PCIe.  Only the host mirror is kept
            # in sync here.
            return
        if not stage:
            return
        self._staged_deltas.append(np.stack([replicas, bits], axis=1).astype(DELTA_DTYPE))

    def note_peer_delivery(self, time: float) -> None:
        """Order the next resident launch after a peer-delivered packet.

        The multi-GPU delta router ships this device's packet over a P2P
        link (or through the hub upload, for the hub device itself); the
        next evaluation kernel must not start before the packet has landed.
        """
        self._sync_time = max(self._sync_time, float(time))

    def _adopt_resident(
        self,
        solutions: np.ndarray,
        *,
        tenure: int | None = None,
        stamps: np.ndarray | None = None,
        arrival: float = 0.0,
    ) -> None:
        """Install an ``(R, n)`` resident block that arrived over a peer link.

        Used by the multi-GPU rebalancer: the rows were already priced as
        device-to-device (or host round trip) transfers, so this only
        rebuilds the session state — device buffers, host mirrors, and the
        device-resident tabu memory — without logging any further PCIe
        traffic.  ``arrival`` orders the next launch after the migration.
        """
        self._check_open()
        solutions = np.asarray(solutions, dtype=np.int8)
        name = self._session_buffer("resident")
        existing = self.context.memory.allocations.get(name)
        if existing is not None and existing.data.shape != solutions.shape:
            self.context.free(name)
        if name not in self.context.memory.allocations:
            self.context.alloc(name, solutions.shape, SOLUTION_DTYPE)
        self.context.memory.get(name).data[...] = solutions.astype(SOLUTION_DTYPE)
        self._resident = solutions.copy()
        if tenure is not None:
            tabu_name = self._session_buffer("tabu")
            shape = (solutions.shape[0], self.neighborhood.size)
            tabu_existing = self.context.memory.allocations.get(tabu_name)
            if tabu_existing is not None and tabu_existing.data.shape != shape:
                self.context.free(tabu_name)
            if tabu_name not in self.context.memory.allocations:
                self.context.alloc(tabu_name, shape, TABU_STAMP_DTYPE)
            buf = self.context.memory.get(tabu_name)
            if stamps is not None:
                buf.data[...] = stamps
            else:
                buf.data.fill(TABU_NEVER)
            self._tabu_last_applied = buf.data
            self._tabu_tenure = int(tenure)
        self._staged_deltas = []
        self._last_fitnesses = None
        self._last_rows = None
        self.note_peer_delivery(arrival)

    def _resident_tabu_mask(
        self, rows: np.ndarray, stamps: np.ndarray, num_indices: int
    ) -> np.ndarray:
        """Admissibility of the rows' moves, read from the device tabu memory."""
        if self._tabu_tenure == 0:
            return np.ones((rows.size, num_indices), dtype=bool)
        last = self._tabu_last_applied
        # ``rows`` is sorted and unique (it comes from np.nonzero), so a
        # full-range check identifies the every-replica-active fast case and
        # skips the O(S·M) gather copy.
        if not (rows.size == last.shape[0] and rows[0] == 0 and rows[-1] == rows.size - 1):
            last = last[rows]
        return (stamps[:, None] - last) > self._tabu_tenure

    def _resident_tabu_select(
        self,
        rows: np.ndarray,
        stamps: np.ndarray,
        fitnesses: np.ndarray,
        indices: np.ndarray,
        best: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """On-device epilogue of the tabu reduction: escape + memory update.

        A blocked replica (every move tabu, none aspirated) falls back to its
        oldest move — the robust-tabu escape, resolved next to the reduction
        so no extra fitness fetch crosses PCIe — and the winning move's
        ``last_applied`` stamp is written in place, in device memory.
        """
        blocked = indices < 0
        if blocked.any():
            oldest = self._tabu_last_applied[rows].argmin(axis=1)
            indices = np.where(blocked, oldest, indices).astype(np.int64)
            best = np.where(
                blocked, fitnesses[np.arange(rows.size), indices], best
            ).astype(np.float64)
        self._tabu_last_applied[rows, indices] = stamps
        return indices, best

    def evaluate_resident(
        self,
        replica_ids: np.ndarray | None = None,
        *,
        reduce: str | None = None,
        admissible: np.ndarray | None = None,
        aspiration_fitness: np.ndarray | None = None,
        thresholds: np.ndarray | None = None,
        tabu_iterations: np.ndarray | None = None,
    ):
        """Evaluate the full neighborhood of the resident block's replicas.

        Parameters
        ----------
        replica_ids:
            Rows of the resident block to evaluate (default: all).  The id
            list crosses PCIe (``O(S)`` int32), not the solutions.
        reduce:
            ``None`` downloads the full ``(S, M)`` fitness matrix (the
            "delta" transfer mode).  ``"argmin"`` / ``"first-improvement"``
            run the fused on-device reduction and download only the
            per-replica ``(index, fitness)`` pair — 16 bytes per replica.
        admissible:
            Optional ``(S, M)`` admissibility mask for ``"argmin"`` (the
            host-side tabu rule).  It is bit-packed and uploaded on the copy
            stream, overlapping the evaluation kernel, because only the
            reduction epilogue consumes it.
        aspiration_fitness:
            Per-replica aspiration thresholds: an inadmissible move becomes
            admissible when strictly better (device-side comparison).
        thresholds:
            Per-replica current fitnesses for ``"first-improvement"``.
        tabu_iterations:
            Per-replica current iteration numbers for the **device-resident**
            tabu memory (:meth:`init_tabu_memory`).  The admissibility mask
            is then derived on-device from the resident ``last_applied``
            stamps — only these ``O(S)`` stamps cross PCIe instead of the
            ``O(S·M/8)`` packed mask — the robust-tabu escape resolves
            on-device, and the winning move's stamp is updated in place.
            Mutually exclusive with ``admissible``.

        Returns the fitness matrix (``reduce=None``) or an
        ``(indices, fitnesses)`` pair of per-replica arrays where a blocked
        replica (no admissible / no improving move) gets ``(-1, inf)`` —
        except under ``tabu_iterations``, where blocked replicas already
        carry their escape move.
        """
        if self._resident is None:
            raise RuntimeError("begin_search must be called before evaluate_resident")
        context = self.context
        timeline = context.timeline
        before_elapsed = timeline.elapsed
        if replica_ids is None:
            rows = np.arange(self._resident.shape[0], dtype=np.int64)
            block = self._resident
        else:
            rows = np.asarray(replica_ids, dtype=np.int64).ravel()
            if rows.size and (rows.min() < 0 or rows.max() >= self._resident.shape[0]):
                raise IndexError("replica id out of range")
            block = self._resident[rows]
        num_solutions, num_indices = rows.size, self.neighborhood.size
        if num_solutions == 0:
            raise ValueError("need at least one active replica")
        if reduce is not None and reduce not in REDUCE_OPS:
            raise ValueError(f"unknown reduce op {reduce!r}; expected one of {REDUCE_OPS}")
        stamps = None
        if tabu_iterations is not None:
            if self._tabu_last_applied is None:
                raise RuntimeError(
                    "tabu_iterations needs a device-resident tabu memory; "
                    "call init_tabu_memory after begin_search"
                )
            if admissible is not None:
                raise ValueError("pass either admissible or tabu_iterations, not both")
            if reduce != "argmin":
                raise ValueError("tabu_iterations requires reduce=\"argmin\"")
            stamps = np.asarray(tabu_iterations, dtype=TABU_STAMP_DTYPE).ravel()
            if stamps.shape != (num_solutions,):
                raise ValueError(
                    f"tabu_iterations must have one stamp per replica "
                    f"({num_solutions}), got {stamps.shape}"
                )
        if admissible is not None:
            admissible = np.asarray(admissible, dtype=bool)
            if admissible.shape != (num_solutions, num_indices):
                raise ValueError(
                    f"admissible mask must be ({num_solutions}, {num_indices}), "
                    f"got {admissible.shape}"
                )
        flat_name = self._session_buffer("resident_fitnesses")
        flat_size = num_solutions * num_indices
        if self._resident_fitness_size not in (None, flat_size):
            context.free(flat_name)
        if self._resident_fitness_size != flat_size:
            context.alloc(flat_name, (flat_size,), FITNESS_DTYPE)
            self._resident_fitness_size = flat_size
        flat = context.memory.get(flat_name).data

        if self._loop is not None and not self._loop.closed:
            result = self._evaluate_persistent(
                rows, block, flat, reduce,
                admissible, aspiration_fitness, thresholds, stamps,
            )
        else:
            result = self._evaluate_resident_async(
                rows, block, flat, flat_name, reduce,
                admissible, aspiration_fitness, thresholds, stamps,
            )
            self.stats.simulated_time += timeline.elapsed - before_elapsed
        self.stats.calls += 1
        self.stats.evaluations += flat_size
        return result

    def _evaluate_resident_async(
        self,
        rows: np.ndarray,
        block: np.ndarray,
        flat: np.ndarray,
        flat_name: str,
        reduce: str | None,
        admissible: np.ndarray | None,
        aspiration_fitness: np.ndarray | None,
        thresholds: np.ndarray | None,
        stamps: np.ndarray | None,
    ):
        """One stream-ordered resident iteration (the delta/reduced modes)."""
        context = self.context
        num_solutions, num_indices = rows.size, self.neighborhood.size
        flat_size = num_solutions * num_indices
        # The pre-kernel delta packet: staged (replica, bit) flips plus —
        # when a strict subset of replicas is active — the id list.  One
        # staging buffer, one PCIe transaction, one latency.
        packet_parts = [pairs.reshape(-1).view(np.uint8) for pairs in self._staged_deltas]
        self._staged_deltas = []
        if rows.size != self._resident.shape[0] or not np.array_equal(
            rows, np.arange(self._resident.shape[0])
        ):
            packet_parts.append(rows.astype(SOLUTION_DTYPE).view(np.uint8))
        kernel_deps = []
        if packet_parts:
            kernel_deps.append(
                context.copy_async(
                    self._session_buffer("deltas"),
                    np.concatenate(packet_parts),
                    stream=COPY_STREAM,
                    not_before=self._sync_time,
                )
            )
        _, kernel_event = context.launch_async(
            self.batch_kernel,
            (num_solutions, num_indices),
            (block, flat),
            wait_for=kernel_deps,
            not_before=self._sync_time,
            block_size=self.block_size,
        )
        fitnesses = flat.reshape(num_solutions, num_indices)
        self._last_fitnesses = fitnesses
        self._last_rows = rows
        if reduce is None:
            data, down_event = context.download_async(flat_name, wait_for=kernel_event)
            self._sync_time = down_event.time
            return data.reshape(num_solutions, num_indices)
        reduce_deps = [kernel_event]
        # The reduction packet (bit-packed admissibility mask or — with the
        # device-resident tabu memory — just the O(S) per-replica iteration
        # stamps, plus per-replica aspiration / improvement thresholds) is
        # consumed only by the reduction epilogue, so its upload is issued on
        # the copy stream concurrently with the evaluation kernel — the
        # transfer hides under the kernel's execution time.
        reduction_parts = []
        if admissible is not None:
            reduction_parts.append(np.packbits(admissible, axis=1).reshape(-1))
        if stamps is not None:
            reduction_parts.append(stamps.view(np.uint8))
        if aspiration_fitness is not None:
            reduction_parts.append(
                np.asarray(aspiration_fitness, dtype=np.float64).view(np.uint8)
            )
        if thresholds is not None:
            reduction_parts.append(
                np.asarray(thresholds, dtype=np.float64).view(np.uint8)
            )
        if reduction_parts:
            reduce_deps.append(
                context.copy_async(
                    self._session_buffer("reduction_packet"),
                    np.concatenate(reduction_parts),
                    stream=COPY_STREAM,
                    not_before=self._sync_time,
                )
            )
        if stamps is not None:
            admissible = self._resident_tabu_mask(rows, stamps, num_indices)
        indices, best = _fused_reduce(
            fitnesses, reduce, admissible, aspiration_fitness, thresholds
        )
        if stamps is not None:
            indices, best = self._resident_tabu_select(
                rows, stamps, fitnesses, indices, best
            )
        reduced_name = self._session_buffer("reduced")
        if self._reduced_size not in (None, num_solutions):
            context.free(reduced_name)
        if self._reduced_size != num_solutions:
            context.alloc(reduced_name, (num_solutions,), REDUCED_PAIR_DTYPE)
            self._reduced_size = num_solutions
        reduced_buf = context.memory.get(reduced_name).data
        reduced_buf["index"] = indices
        reduced_buf["fitness"] = best
        reduce_event = context.reduce_async(
            f"FusedReduce<{reduce}>[{self.batch_kernel.name}]",
            flat_size,
            wait_for=reduce_deps,
        )
        data, down_event = context.download_async(reduced_name, wait_for=reduce_event)
        self._sync_time = down_event.time
        return (
            data["index"].astype(np.int64),
            data["fitness"].astype(np.float64),
        )

    def _evaluate_persistent(
        self,
        rows: np.ndarray,
        block: np.ndarray,
        flat: np.ndarray,
        reduce: str | None,
        admissible: np.ndarray | None,
        aspiration_fitness: np.ndarray | None,
        thresholds: np.ndarray | None,
        stamps: np.ndarray | None,
    ):
        """One on-device iteration of the persistent launch.

        No kernel is launched and no delta/id packet is uploaded: the
        resident grid scatters the flips it selected itself, evaluates, and
        reduces, all inside the one open launch.  The host's only traffic is
        the ``O(S)`` early-stop flag write and the 16 B/replica result-ring
        drain, both concurrent with the loop; the per-replica bookkeeping
        the reduction needs (iteration counters, best-so-far aspiration
        fitness) already lives on the device.
        """
        if reduce is None:
            raise ValueError(
                "the persistent loop folds selection on-device; downloading the "
                "full fitness matrix would defeat it — use reduce=\"argmin\" or "
                "\"first-improvement\", or transfer_mode=\"delta\""
            )
        loop = self._loop
        num_solutions, num_indices = rows.size, self.neighborhood.size
        flat_size = num_solutions * num_indices
        # Flips were applied on-device by the previous iteration's epilogue.
        self._staged_deltas = []
        loop.write_control(self._resident.shape[0] * STOP_FLAG_BYTES)
        added = loop.iterate(
            (num_solutions, num_indices), (block, flat), cost=self.batch_kernel.cost
        )
        fitnesses = flat.reshape(num_solutions, num_indices)
        self._last_fitnesses = fitnesses
        self._last_rows = rows
        if stamps is not None:
            admissible = self._resident_tabu_mask(rows, stamps, num_indices)
        indices, best = _fused_reduce(
            fitnesses, reduce, admissible, aspiration_fitness, thresholds
        )
        if stamps is not None:
            indices, best = self._resident_tabu_select(
                rows, stamps, fitnesses, indices, best
            )
        added += loop.reduce(flat_size)
        # The per-iteration result ring entry: 16 bytes per active replica,
        # drained by the host while the grid keeps looping.
        reduced_name = self._session_buffer("reduced")
        if self._reduced_size not in (None, num_solutions):
            self.context.free(reduced_name)
        if self._reduced_size != num_solutions:
            self.context.alloc(reduced_name, (num_solutions,), REDUCED_PAIR_DTYPE)
            self._reduced_size = num_solutions
        reduced_buf = self.context.memory.get(reduced_name).data
        reduced_buf["index"] = indices
        reduced_buf["fitness"] = best
        loop.drain_ring(num_solutions * REDUCED_RESULT_BYTES)
        # The ring drain and flag write hide under the resident loop; only
        # the on-device work advances the evaluator's clock.
        self.stats.simulated_time += added
        return indices.copy(), best.copy()

    def fetch_fitnesses(self, replicas: np.ndarray, move_indices: np.ndarray) -> np.ndarray:
        """Read single entries of the last evaluated fitness block.

        Used by the host for decisions the fused reduction cannot make (the
        robust-tabu escape to the oldest move): one fitness value per
        requested entry crosses PCIe — ``O(S)``, not ``O(S·M)``.
        """
        if self._last_fitnesses is None or self._last_rows is None:
            raise RuntimeError("no resident fitness block has been evaluated yet")
        replicas = np.asarray(replicas, dtype=np.int64).ravel()
        move_indices = np.asarray(move_indices, dtype=np.int64).ravel()
        # Map global replica ids to rows of the last launch without assuming
        # the caller evaluated them in sorted order.
        order = np.argsort(self._last_rows, kind="stable")
        positions = np.searchsorted(self._last_rows[order], replicas)
        if positions.size and (
            positions.max() >= order.size
            or not np.array_equal(self._last_rows[order][positions], replicas)
        ):
            raise KeyError("replica was not part of the last resident evaluation")
        local = order[positions]
        values = self._last_fitnesses[local, move_indices].astype(np.float64)
        context = self.context
        before = context.timeline.elapsed
        nbytes = int(FITNESS_BYTES) * values.size
        start = context._issue_start(DOWNLOAD_STREAM, None, self._sync_time)
        grant = context.host_transfer_grant(
            "d2h", nbytes, start=start, label="fitnesses[fetch]"
        )
        context.stats.transfer_time += grant.duration
        context.stats.d2h_bytes += nbytes
        interval = context.timeline.schedule(
            "d2h",
            "fitnesses[fetch]",
            grant.duration,
            stream=DOWNLOAD_STREAM,
            not_before=self._sync_time,
        )
        self._sync_time = interval.end
        self.stats.simulated_time += context.timeline.elapsed - before
        return values

    def end_search(self) -> None:
        """Drop the resident session's device buffers and host mirrors.

        A persistent session's :class:`~repro.gpu.runtime.DeviceLoop` is
        closed first: that is the moment the single launch (and its one
        amortized overhead) is charged and the per-stream loop intervals
        land on the timeline.
        """
        if self._loop is not None:
            if not self._loop.closed:
                record = self._loop.finish()
                self.stats.simulated_time += record.launch_overhead
                self.last_persistent_record = record
            self._loop = None
        for kind in (
            "resident",
            "deltas",
            "reduction_packet",
            "resident_fitnesses",
            "reduced",
            "tabu",
        ):
            name = self._session_buffer(kind)
            if name in self.context.memory.allocations:
                self.context.free(name)
        self._resident = None
        self._resident_fitness_size = None
        self._reduced_size = None
        self._staged_deltas = []
        self._last_fitnesses = None
        self._last_rows = None
        self._tabu_last_applied = None
        self._tabu_tenure = 0

    # ------------------------------------------------------------------
    # Checkpoint API
    # ------------------------------------------------------------------
    def snapshot_state(self, *, include_engine: bool = True) -> dict:
        """Everything a fresh evaluator needs to continue bit-identically.

        On top of the base work counters: the context's accounting (device
        stats + per-stream timeline), the interconnect engine's committed
        load (skipped with ``include_engine=False`` when the engine is
        pool-shared and snapshotted once by :class:`MultiGPUEvaluator`), and
        the resident session — solution mirror, staged deltas, sync point,
        device-resident tabu stamps and, in persistent mode, the open
        launch's accumulated progress.
        """
        snap = super().snapshot_state()
        snap["context"] = self.context.snapshot_accounting()
        if include_engine:
            snap["engine"] = self.context.engine.snapshot()
        if self._resident is not None:
            session = {
                "resident": self._resident.copy(),
                "sync_time": self._sync_time,
                "staged_deltas": [pairs.copy() for pairs in self._staged_deltas],
                "tenure": self._tabu_tenure,
                "stamps": (
                    self._tabu_last_applied.copy()
                    if self._tabu_last_applied is not None
                    else None
                ),
                "loop": (
                    self._loop.snapshot()
                    if self._loop is not None and not self._loop.closed
                    else None
                ),
            }
            snap["session"] = session
        return snap

    def restore_state(self, snap: dict) -> None:
        """Rebuild the snapshotted session without logging any transfers.

        The resident block is installed through the same warm path the
        rebalancer uses (:meth:`_adopt_resident`): the snapshotted counters
        already include the original ``begin_search`` upload, so re-charging
        it would double-count.  A snapshotted persistent launch is reopened
        and its progress accumulators overwritten in place.
        """
        self._check_open()
        self.end_search()
        super().restore_state(snap)
        context_snap = snap.get("context")
        if context_snap is not None:
            self.context.restore_accounting(context_snap)
        engine_snap = snap.get("engine")
        if engine_snap is not None:
            self.context.engine.restore(engine_snap)
        session = snap.get("session")
        if session is None:
            return
        stamps = session.get("stamps")
        if stamps is not None:
            stamps = np.asarray(stamps, dtype=TABU_STAMP_DTYPE)
        self._adopt_resident(
            np.asarray(session["resident"], dtype=np.int8),
            tenure=int(session["tenure"]) if stamps is not None else None,
            stamps=stamps,
        )
        self._sync_time = float(session["sync_time"])
        self._staged_deltas = [
            np.asarray(pairs, dtype=DELTA_DTYPE).reshape(-1, 2)
            for pairs in session["staged_deltas"]
        ]
        loop_state = session.get("loop")
        if loop_state is not None:
            self.open_persistent_loop()
            self._loop.restore(loop_state)

    def close(self) -> None:
        """Free every persistent device buffer owned by this evaluator.

        Long-lived contexts shared by many evaluators would otherwise
        accumulate the per-evaluator ``fitnesses:<id>`` / ``solution:<id>``
        allocations as simulated device-memory leaks.
        """
        self.end_search()
        self.context.free_evaluator_buffers(self)
        self._solutions_shape = None
        self._batch_fitness_size = None
        self._closed = True

    @property
    def simulated_time(self) -> float:
        return self.stats.simulated_time


class MultiGPUEvaluator(NeighborhoodEvaluator):
    """Partitioned exploration across several concurrently-scheduled devices.

    The pool is driven by a :class:`~repro.gpu.scheduler.DeviceScheduler`:
    every device owns its own stream timeline and the per-device
    upload/launch/reduce/download chains are issued asynchronously, ordered
    only by events — so the elapsed simulated time of a step is the
    cross-device makespan, not a serialized host loop.  Heterogeneous pools
    are partitioned proportionally to each device's simulated throughput on
    the neighborhood kernel; resident sessions route flipped-bit delta
    packets device-to-device over P2P links (one host upload to a hub
    device, peer forwards for the rest) and can migrate replicas between
    devices to rebalance load, all without changing any trajectory.
    """

    platform = "multi-gpu"

    def __init__(
        self,
        problem: BinaryProblem,
        neighborhood: Neighborhood,
        *,
        devices: int | list[DeviceSpec] = 2,
        block_size: int = DEFAULT_BLOCK_SIZE,
        mode: ExecutionMode = ExecutionMode.VECTORIZED,
        pinned: bool = False,
        peer_routing: bool = True,
        topology: InterconnectTopology | str | None = None,
        active_devices: list[int] | None = None,
    ) -> None:
        super().__init__(problem, neighborhood)
        self.pool = MultiGPU(devices, mode=mode, pinned=pinned, topology=topology)
        self.scheduler = DeviceScheduler(self.pool.contexts, engine=self.pool.engine)
        self.block_size = int(block_size)
        # Elastic fleet mask: every device is attached (its context, topology
        # port and peer links exist for the whole run) but only *active*
        # devices receive work.  ``fail_device`` / ``join_device`` flip the
        # mask mid-run; ``active_devices`` starts some devices dark so they
        # can join later.
        if active_devices is None:
            self._device_active = [True] * self.pool.num_devices
        else:
            chosen = {int(index) for index in active_devices}
            if not chosen:
                raise ValueError("need at least one active device")
            bad = [index for index in chosen if not 0 <= index < self.pool.num_devices]
            if bad:
                raise ValueError(
                    f"active device index out of range: {sorted(bad)} "
                    f"(pool has {self.pool.num_devices} devices)"
                )
            self._device_active = [
                index in chosen for index in range(self.pool.num_devices)
            ]
        self._sub_evaluators = [
            GPUEvaluator(
                problem,
                neighborhood,
                block_size=block_size,
                context=ctx,
            )
            for ctx in self.pool.contexts
        ]
        #: Whether resident-session delta packets take the hub-upload +
        #: peer-forward route instead of one host upload per device.  Only
        #: possible when the interconnect topology routes peer copies
        #: between every pair of devices in the pool.
        self.peer_routing = (
            bool(peer_routing)
            and self.num_devices > 1
            and self.scheduler.all_peer_capable
        )
        # Replica ranges [lo, hi) owned by each device in a resident session.
        self._replica_ranges: list[tuple[int, int]] | None = None
        self._persistent = False
        self._resident_tenure: int | None = None

    @property
    def num_devices(self) -> int:
        return self.pool.num_devices

    def _kernel_cost(self):
        """Cost profile used for throughput-proportional partitioning."""
        return self._sub_evaluators[0].batch_kernel.cost

    # ------------------------------------------------------------------
    # Elastic fleet: the active-device mask and its partitioner
    # ------------------------------------------------------------------
    @property
    def device_active(self) -> tuple[bool, ...]:
        """Which attached devices currently receive work."""
        return tuple(self._device_active)

    @property
    def num_active_devices(self) -> int:
        return sum(self._device_active)

    def _active_weights(self) -> list[float]:
        """Throughput weights with inactive devices masked to zero."""
        return [
            weight if active else 0.0
            for weight, active in zip(
                self.pool.throughput_weights(self._kernel_cost()), self._device_active
            )
        ]

    def _partitions(self, total: int):
        """Partition ``total`` flat indices across the *active* devices.

        With every device active this is exactly the pool's partitioner
        (the homogeneous even split, bit-for-bit); with a partial fleet the
        masked weighted split hands inactive devices empty slices.
        """
        if all(self._device_active):
            return self.pool.partitions(total, self._kernel_cost())
        return weighted_partition_range(total, self._active_weights())

    def fail_device(self, index: int) -> int:
        """Simulate the death of an active device mid-run.

        The device stops receiving work immediately.  If a resident session
        is open, its replicas are recovered from the *host mirror* — the
        functional state never left the host, so the mirror doubles as an
        always-current checkpoint — and re-uploaded to the surviving devices
        under the weighted repartition; only the single h2d recovery leg is
        priced (there is no live source device to download from).  Returns
        the number of migrated replicas.  Trajectories are unchanged.

        Persistent sessions cannot lose a device: the launches are pinned to
        their devices for the whole run, so a failure there raises.
        """
        index = int(index)
        if not 0 <= index < self.num_devices:
            raise ValueError(f"device index {index} out of range (pool has {self.num_devices})")
        if not self._device_active[index]:
            raise ValueError(f"device {index} is already inactive")
        if self.num_active_devices <= 1:
            raise RuntimeError("cannot fail the last active device")
        if self._replica_ranges is not None and self._persistent:
            raise RuntimeError(
                "persistent launches pin replicas to their devices for the whole "
                "run; a device failure is not recoverable in persistent mode"
            )
        self._device_active[index] = False
        if self._replica_ranges is None:
            return 0
        return self._repartition_resident(lost=index)

    def join_device(self, index: int) -> int:
        """Bring an attached-but-inactive device online mid-run.

        The weighted repartition immediately hands it a replica share (over
        the peer links, or the host round trip on pools without peer
        access).  Returns the number of migrated replicas.  Trajectories
        are unchanged.
        """
        index = int(index)
        if not 0 <= index < self.num_devices:
            raise ValueError(f"device index {index} out of range (pool has {self.num_devices})")
        if self._device_active[index]:
            raise ValueError(f"device {index} is already active")
        if self._replica_ranges is not None and self._persistent:
            raise RuntimeError(
                "persistent launches pin replicas to their devices for the whole "
                "run; a device cannot join a persistent session"
            )
        self._device_active[index] = True
        if self._replica_ranges is None:
            return 0
        return self._repartition_resident()

    def _device_buffer(self, context: GPUContext, name: str, size: int):
        """A per-device output buffer, reallocated when its size changes."""
        existing = context.memory.allocations.get(name)
        if existing is not None and existing.data.shape != (size,):
            context.free(name)
        if name not in context.memory.allocations:
            context.alloc(name, (size,), FITNESS_DTYPE)
        return context.memory.get(name).data

    def _evaluate(self, solution: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Concurrent per-device async chains over a partitioned index space.

        The per-device uploads (and later the downloads) are priced as one
        interconnect arbitration batch: they are simultaneous on the
        simulated clock, so on a shared-uplink topology they split the root
        complex fairly instead of each assuming a private link.
        """
        scheduler = self.scheduler
        before = scheduler.makespan
        out = np.empty(indices.size, dtype=np.float64)
        parts = self._partitions(indices.size)
        chains = [
            (evaluator, part)
            for evaluator, part in zip(self._sub_evaluators, parts)
            if part.size > 0
        ]
        upload_events = scheduler.upload_batch(
            [
                (part.device_index, f"solution:{id(self)}:{part.device_index}",
                 solution.astype(SOLUTION_DTYPE))
                for _evaluator, part in chains
            ]
        )
        download_items = []
        for (evaluator, part), upload in zip(chains, upload_events):
            context = evaluator.context
            dev = part.device_index
            part_indices = indices[part.start : part.stop]
            buffer_name = f"slice_out:{id(self)}:{dev}"
            sub_out = self._device_buffer(context, buffer_name, part.size)

            def vectorized_fn(tids, solution_arr, out_arr, part_indices=part_indices):
                moves = self.neighborhood.mapping.from_flat_batch(part_indices[tids])
                out_arr[tids] = self.problem.evaluate_neighborhood(solution_arr, moves)

            slice_kernel = Kernel(
                name=evaluator.kernel.name + f"[slice:{dev}]",
                vectorized_fn=vectorized_fn,
                cost=evaluator.kernel.cost,
            )
            _, kernel_event = context.launch_async(
                slice_kernel,
                part.size,
                (solution, sub_out),
                wait_for=[upload],
                block_size=self.block_size,
            )
            download_items.append((dev, buffer_name, kernel_event))
        downloads = scheduler.download_batch(download_items)
        for (_evaluator, part), (data, _event) in zip(chains, downloads):
            out[part.start : part.stop] = data
        # Devices run concurrently: the step advances the pool-level clock
        # by the cross-device makespan increase, not by a per-device sum.
        self.stats.simulated_time += scheduler.makespan - before
        return out

    def _evaluate_many(self, solutions: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Partition the flat ``S x M`` (replica, neighbor) space across devices.

        Each device receives a contiguous slice of the flattened batch (it
        may span several replicas) sized by its simulated throughput,
        uploads only the solution rows that slice touches and runs one
        asynchronous upload -> launch -> download chain; the chains of
        different devices overlap freely, so the step costs the cross-device
        makespan.
        """
        num_solutions, num_indices = solutions.shape[0], indices.size
        flat_total = num_solutions * num_indices
        out = np.empty(flat_total, dtype=np.float64)
        mapping = self.neighborhood.mapping
        scheduler = self.scheduler
        before = scheduler.makespan
        parts = self._partitions(flat_total)
        chains = []
        upload_items = []
        for evaluator, part in zip(self._sub_evaluators, parts):
            if part.size == 0:
                continue
            dev = part.device_index
            flat_ids = np.arange(part.start, part.stop, dtype=np.int64)
            replica_ids = flat_ids // num_indices
            neighbor_ids = indices[flat_ids % num_indices]
            replica_lo = int(replica_ids[0])
            block = solutions[replica_lo : int(replica_ids[-1]) + 1]
            chains.append((evaluator, part, block, replica_ids - replica_lo, neighbor_ids))
            upload_items.append(
                (dev, f"solutions:{id(self)}:{dev}", block.astype(SOLUTION_DTYPE))
            )
        # The simultaneous per-device uploads (and downloads below) share the
        # interconnect fairly: one arbitration batch each.
        upload_events = scheduler.upload_batch(upload_items)
        download_items = []
        for (evaluator, part, block, local_replicas, neighbor_ids), upload in zip(
            chains, upload_events
        ):
            context = evaluator.context
            dev = part.device_index
            buffer_name = f"batch_out:{id(self)}:{dev}"
            sub_out = self._device_buffer(context, buffer_name, part.size)

            def vectorized_fn(tids, solutions_arr, out_arr,
                              local_replicas=local_replicas, neighbor_ids=neighbor_ids):
                for replica in np.unique(local_replicas[tids]):
                    mask = local_replicas[tids] == replica
                    moves = mapping.from_flat_batch(neighbor_ids[tids][mask])
                    out_arr[tids[mask]] = self.problem.evaluate_neighborhood(
                        solutions_arr[replica], moves
                    )

            slice_kernel = Kernel(
                name=evaluator.batch_kernel.name + f"[slice:{dev}]",
                vectorized_fn=vectorized_fn,
                cost=evaluator.batch_kernel.cost,
            )
            _, kernel_event = context.launch_async(
                slice_kernel,
                part.size,
                (block, sub_out),
                wait_for=[upload],
                block_size=self.block_size,
            )
            download_items.append((dev, buffer_name, kernel_event))
        downloads = scheduler.download_batch(download_items)
        for (evaluator, part, *_), (data, _event) in zip(chains, downloads):
            out[part.start : part.stop] = data
        self.stats.simulated_time += scheduler.makespan - before
        return out.reshape(num_solutions, num_indices)

    # ------------------------------------------------------------------
    # Device-resident session API (replica-partitioned across devices)
    # ------------------------------------------------------------------
    supports_device_residency = True

    def _resident_parts(self):
        """Yield ``(evaluator, lo, hi)`` for devices owning at least one replica."""
        if self._replica_ranges is None:
            raise RuntimeError("begin_search must be called before resident operations")
        for evaluator, (lo, hi) in zip(self._sub_evaluators, self._replica_ranges):
            if hi > lo:
                yield evaluator, lo, hi

    def begin_search(self, solutions: np.ndarray, *, persistent: bool = False) -> None:
        """Split the ``(R, n)`` block into contiguous replica ranges, one per device.

        A heterogeneous pool receives ranges proportional to device
        throughput.  With ``persistent=True`` every owning device opens its
        own persistent launch over its replica slice (one launch per device
        per run — the multi-GPU analogue of the single-launch invariant).
        """
        solutions = np.asarray(solutions, dtype=np.int8)
        if solutions.ndim != 2 or solutions.shape[1] != self.problem.n:
            raise ValueError(
                f"expected an (R, {self.problem.n}) solution block, got {solutions.shape}"
            )
        if solutions.shape[0] == 0:
            raise ValueError("need at least one replica to start a resident search")
        self.end_search()
        parts = self._partitions(solutions.shape[0])
        self._replica_ranges = [(part.start, part.stop) for part in parts]
        self._persistent = bool(persistent)
        before = self.scheduler.makespan
        # The per-device resident uploads leave the host together, so they
        # are priced as one interconnect arbitration batch: on a shared
        # uplink each replica slice sees its fair share of the root complex
        # instead of a private full-rate link.
        slices = list(self._resident_parts())
        upload_items = []
        pre_elapsed = []
        for evaluator, lo, hi in slices:
            index = self.pool.contexts.index(evaluator.context)
            pre_elapsed.append(evaluator.context.timeline.elapsed)
            upload_items.append(
                (
                    index,
                    evaluator._session_buffer("resident"),
                    solutions[lo:hi].astype(SOLUTION_DTYPE),
                )
            )
        events = self.scheduler.upload_batch(upload_items, sync=True)
        for (evaluator, lo, hi), event, elapsed_before in zip(slices, events, pre_elapsed):
            evaluator._adopt_resident(solutions[lo:hi], arrival=event.time)
            evaluator.stats.simulated_time += event.time - elapsed_before
            if persistent:
                evaluator.open_persistent_loop()
        self.stats.simulated_time += self.scheduler.makespan - before

    def init_tabu_memory(self, tenure: int) -> None:
        """Allocate each device's slice of the resident tabu memory."""
        self._resident_tenure = int(tenure)
        for evaluator, _lo, _hi in self._resident_parts():
            evaluator.init_tabu_memory(tenure)

    def read_tabu_rows(self, rows: np.ndarray) -> np.ndarray:
        """Gather tabu stamp rows from the devices owning each replica."""
        rows = np.asarray(rows, dtype=np.int64).ravel()
        out = np.empty((rows.size, self.neighborhood.size), dtype=TABU_STAMP_DTYPE)
        seen = np.zeros(rows.size, dtype=bool)
        for evaluator, lo, hi in self._resident_parts():
            mask = (rows >= lo) & (rows < hi)
            if mask.any():
                out[mask] = evaluator.read_tabu_rows(rows[mask] - lo)
                seen |= mask
        if not seen.all():
            raise IndexError("tabu row index out of range")
        return out

    def write_tabu_rows(self, rows: np.ndarray, stamps: np.ndarray | None = None) -> None:
        """Scatter stamp rows (or the reset sentinel) to the owning devices."""
        rows = np.asarray(rows, dtype=np.int64).ravel()
        stamps_block = None if stamps is None else np.asarray(stamps, dtype=TABU_STAMP_DTYPE)
        if stamps_block is not None and stamps_block.shape != (
            rows.size,
            self.neighborhood.size,
        ):
            raise ValueError(
                f"expected a ({rows.size}, {self.neighborhood.size}) stamp block, "
                f"got {stamps_block.shape}"
            )
        for evaluator, lo, hi in self._resident_parts():
            mask = (rows >= lo) & (rows < hi)
            if mask.any():
                evaluator.write_tabu_rows(
                    rows[mask] - lo,
                    None if stamps_block is None else stamps_block[mask],
                )

    def apply_deltas(self, replicas: np.ndarray, bits: np.ndarray) -> None:
        """Route each ``(replica, bit)`` pair to the device owning the replica.

        With peer routing active (every device P2P-capable), the combined
        delta packet crosses PCIe **once** — to a hub device — and each
        other device's slice is forwarded device-to-device over the peer
        link, with the next evaluation launches ordered after the arrival
        events.  Otherwise every device's slice is staged for its own host
        upload (the seed behaviour).  Inside a persistent launch no packet
        moves at all: the resident grids scattered their own selections.
        """
        replicas = np.asarray(replicas, dtype=np.int64).ravel()
        bits = np.asarray(bits, dtype=np.int64).ravel()
        before = self.scheduler.makespan
        resident_session = self._replica_ranges is not None and not self._persistent
        route_peer = self.peer_routing and resident_session and replicas.size > 0
        per_device: list[tuple[GPUEvaluator, np.ndarray]] = []
        for evaluator, lo, hi in self._resident_parts():
            mask = (replicas >= lo) & (replicas < hi)
            if not mask.any():
                continue
            evaluator.apply_deltas(
                replicas[mask] - lo, bits[mask], stage=not route_peer
            )
            if route_peer:
                pairs = np.stack(
                    [replicas[mask] - lo, bits[mask]], axis=1
                ).astype(DELTA_DTYPE)
                per_device.append((evaluator, pairs))
            elif resident_session:
                # One host-issued packet per owning device: the driver calls
                # serialize on the host, which is exactly the per-device
                # latency wall the hub + peer-forward route amortizes.
                issue = self.scheduler.host_op(
                    "issue",
                    f"deltas:gpu{self.pool.contexts.index(evaluator.context)}",
                    evaluator.context.device.pcie_latency,
                )
                evaluator.note_peer_delivery(issue.time)
        if route_peer and per_device:
            self._route_deltas_peer(per_device)
        self.stats.simulated_time += self.scheduler.makespan - before

    def _route_deltas_peer(
        self, per_device: list[tuple["GPUEvaluator", np.ndarray]]
    ) -> None:
        """Hub upload + P2P forwards for one combined delta packet.

        The host pays one driver issue and one PCIe transaction (to the hub
        device — device 0); every other device's slice then travels over the
        peer link, with a small routing header per forwarded slice.  The
        forwarded bytes are accounted as ``p2p_bytes`` only — they never
        touch the h2d/d2h counters, because they never revisit the host.
        """
        hub = self._sub_evaluators[0]
        hub_context = hub.context
        remote = [(sub, pairs) for sub, pairs in per_device if sub is not hub]
        chunks = [pairs.reshape(-1).view(np.uint8) for _, pairs in per_device]
        if remote:
            chunks.append(
                np.zeros(len(remote) * PEER_PACKET_HEADER_BYTES, dtype=np.uint8)
            )
        packet = np.concatenate(chunks)
        issue = self.scheduler.host_op(
            "issue", "delta_hub", hub_context.device.pcie_latency
        )
        upload = hub_context.copy_async(
            f"delta_hub:{id(self)}",
            packet,
            not_before=max(hub._sync_time, issue.time),
        )
        if any(sub is hub for sub, _ in per_device):
            hub.note_peer_delivery(upload.time)
        for sub, pairs in remote:
            payload = np.concatenate(
                [
                    pairs.reshape(-1).view(np.uint8),
                    np.zeros(PEER_PACKET_HEADER_BYTES, dtype=np.uint8),
                ]
            )
            arrival = hub_context.copy_peer_async(
                sub.context,
                sub._session_buffer("deltas"),
                payload,
                wait_for=[upload],
            )
            sub.note_peer_delivery(arrival.time)

    def evaluate_resident(
        self,
        replica_ids: np.ndarray | None = None,
        *,
        reduce: str | None = None,
        admissible: np.ndarray | None = None,
        aspiration_fitness: np.ndarray | None = None,
        thresholds: np.ndarray | None = None,
        tabu_iterations: np.ndarray | None = None,
    ):
        """Per-device resident evaluation; elapsed time is the slowest device's.

        During a persistent session the sub-evaluators route the iteration
        through their open device loops, so the per-device stream clocks do
        not advance until the session ends; the elapsed contribution is then
        the slowest device's accumulated on-device time instead.
        """
        if self._replica_ranges is None:
            raise RuntimeError("begin_search must be called before evaluate_resident")
        total = self._replica_ranges[-1][1]
        if replica_ids is None:
            rows = np.arange(total, dtype=np.int64)
        else:
            rows = np.asarray(replica_ids, dtype=np.int64).ravel()
            if rows.size and (rows.min() < 0 or rows.max() >= total):
                raise IndexError("replica id out of range")
        num_solutions, num_indices = rows.size, self.neighborhood.size
        if num_solutions == 0:
            raise ValueError("need at least one active replica")
        if reduce is None:
            out_fitnesses = np.empty((num_solutions, num_indices), dtype=np.float64)
        else:
            out_indices = np.empty(num_solutions, dtype=np.int64)
            out_best = np.empty(num_solutions, dtype=np.float64)
        before_makespan = self.scheduler.makespan
        per_device_times = []
        for evaluator, lo, hi in self._resident_parts():
            mask = (rows >= lo) & (rows < hi)
            if not mask.any():
                continue
            local_ids = rows[mask] - lo
            before = evaluator.stats.simulated_time
            sub = evaluator.evaluate_resident(
                local_ids,
                reduce=reduce,
                admissible=admissible[mask] if admissible is not None else None,
                aspiration_fitness=(
                    aspiration_fitness[mask] if aspiration_fitness is not None else None
                ),
                thresholds=thresholds[mask] if thresholds is not None else None,
                tabu_iterations=(
                    tabu_iterations[mask] if tabu_iterations is not None else None
                ),
            )
            per_device_times.append(evaluator.stats.simulated_time - before)
            if reduce is None:
                out_fitnesses[mask] = sub
            else:
                out_indices[mask], out_best[mask] = sub
        self.stats.calls += 1
        self.stats.evaluations += num_solutions * num_indices
        if self._persistent:
            # Inside persistent launches the stream clocks advance only at
            # session end; the elapsed contribution is the slowest device's
            # accumulated on-device time.
            self.stats.simulated_time += (
                max(per_device_times) if per_device_times else 0.0
            )
        else:
            self.stats.simulated_time += self.scheduler.makespan - before_makespan
        if reduce is None:
            return out_fitnesses
        return out_indices, out_best

    def fetch_fitnesses(self, replicas: np.ndarray, move_indices: np.ndarray) -> np.ndarray:
        """Route single-entry fitness reads to the devices owning the replicas."""
        replicas = np.asarray(replicas, dtype=np.int64).ravel()
        move_indices = np.asarray(move_indices, dtype=np.int64).ravel()
        out = np.empty(replicas.size, dtype=np.float64)
        before = self.scheduler.makespan
        for evaluator, lo, hi in self._resident_parts():
            mask = (replicas >= lo) & (replicas < hi)
            if not mask.any():
                continue
            out[mask] = evaluator.fetch_fitnesses(replicas[mask] - lo, move_indices[mask])
        self.stats.simulated_time += self.scheduler.makespan - before
        return out

    # ------------------------------------------------------------------
    # Replica migration (load rebalancing over the peer links)
    # ------------------------------------------------------------------
    def rebalance_resident(self, active: np.ndarray | None = None) -> int:
        """Migrate resident replicas between devices to rebalance load.

        Recomputes the contiguous ownership ranges so that the *active*
        replicas (all of them, when no mask is given) are split across the
        pool proportionally to device throughput, then ships every row that
        changes owner — its solution and, when the tabu memory is
        device-resident, its stamp row — directly over the P2P links (or
        through a host round trip on pools without peer access).  Purely a
        placement/timing operation: every replica's functional state is
        preserved exactly, so trajectories are unchanged.

        Returns the number of migrated replicas.
        """
        return self._repartition_resident(active)

    def _repartition_resident(
        self, active: np.ndarray | None = None, *, lost: int | None = None
    ) -> int:
        """Shared body of :meth:`rebalance_resident` / :meth:`fail_device` /
        :meth:`join_device`.

        ``lost`` marks a just-failed source device: its rows cannot leave it
        over a peer link or a d2h leg (the device is gone), so they are
        recovered from the exact host mirror and priced as a single h2d
        upload to each destination.
        """
        if self._replica_ranges is None:
            raise RuntimeError("begin_search must be called before rebalance_resident")
        if self._persistent:
            raise RuntimeError(
                "cannot migrate replicas while persistent launches are open; "
                "rebalancing applies to the delta/reduced transfer modes"
            )
        total = self._replica_ranges[-1][1]
        if active is None:
            active_mask = np.ones(total, dtype=bool)
        else:
            active_mask = np.asarray(active, dtype=bool).ravel()
            if active_mask.shape != (total,):
                raise ValueError(
                    f"active mask must cover all {total} replicas, got {active_mask.shape}"
                )
        active_pos = np.nonzero(active_mask)[0]
        if active_pos.size == 0:
            return 0
        weights = self._active_weights()
        shares = weighted_partition_range(active_pos.size, weights)
        bounds = [0]
        consumed = 0
        for i, share in enumerate(shares):
            consumed += share.size
            if i == len(shares) - 1 or consumed >= active_pos.size:
                bounds.append(total)
            elif share.size == 0 and consumed == 0:
                bounds.append(bounds[-1])
            else:
                bounds.append(int(active_pos[consumed - 1]) + 1)
        bounds = [min(b, total) for b in bounds]
        for i in range(1, len(bounds)):
            bounds[i] = max(bounds[i], bounds[i - 1])
        new_ranges = [
            (bounds[i], bounds[i + 1]) for i in range(self.num_devices)
        ]
        old_ranges = self._replica_ranges
        if new_ranges == old_ranges:
            return 0

        # Snapshot the session's functional state in global replica order.
        n, size = self.problem.n, self.neighborhood.size
        global_block = np.empty((total, n), dtype=np.int8)
        tabu_resident = self._resident_tenure is not None
        global_tabu = (
            np.empty((total, size), dtype=TABU_STAMP_DTYPE) if tabu_resident else None
        )
        staged_chunks = []
        for evaluator, (lo, hi) in zip(self._sub_evaluators, old_ranges):
            if hi <= lo:
                continue
            global_block[lo:hi] = evaluator._resident
            if tabu_resident:
                global_tabu[lo:hi] = evaluator._tabu_last_applied
            for pairs in evaluator._staged_deltas:
                shifted = pairs.astype(np.int64)
                shifted[:, 0] += lo
                staged_chunks.append(shifted)
        staged_global = (
            np.concatenate(staged_chunks)
            if staged_chunks
            else np.empty((0, 2), dtype=np.int64)
        )

        # Price the movement: one packet per (source, destination) pair.
        migrated = 0
        row_bytes = n * SOLUTION_DTYPE.itemsize + (
            size * TABU_STAMP_DTYPE.itemsize if tabu_resident else 0
        )
        arrivals: dict[int, float] = {}
        for src, (old_lo, old_hi) in enumerate(old_ranges):
            for dst, (new_lo, new_hi) in enumerate(new_ranges):
                if src == dst:
                    continue
                move_lo = max(old_lo, new_lo)
                move_hi = min(old_hi, new_hi)
                count = move_hi - move_lo
                if count <= 0:
                    continue
                migrated += count
                src_sub = self._sub_evaluators[src]
                dst_sub = self._sub_evaluators[dst]
                chunks = [
                    np.ascontiguousarray(
                        global_block[move_lo:move_hi].astype(SOLUTION_DTYPE)
                    ).reshape(-1).view(np.uint8)
                ]
                if tabu_resident:
                    chunks.append(
                        np.ascontiguousarray(global_tabu[move_lo:move_hi])
                        .reshape(-1)
                        .view(np.uint8)
                    )
                payload = np.concatenate(chunks)
                assert payload.nbytes == count * row_bytes
                if src == lost:
                    # The source device is dead: its rows are recovered from
                    # the exact host mirror, so the only priced leg is the
                    # h2d upload into each destination.
                    dst_context = dst_sub.context
                    start = dst_sub._sync_time
                    up_start = dst_context._issue_start(COPY_STREAM, None, start)
                    up = dst_context.host_transfer_grant(
                        "h2d", payload.nbytes,
                        start=up_start, label=f"recover:{src}->{dst}",
                    )
                    up_interval = dst_context.timeline.schedule(
                        "h2d", f"recover:{src}->{dst}", up.duration,
                        stream=COPY_STREAM, not_before=start,
                    )
                    dst_context.stats.transfer_time += up.duration
                    dst_context.stats.h2d_bytes += payload.nbytes
                    arrivals[dst] = max(arrivals.get(dst, 0.0), up_interval.end)
                    continue
                start = max(src_sub._sync_time, dst_sub._sync_time)
                if src_sub.context.can_access_peer(dst_sub.context):
                    arrival = src_sub.context.copy_peer_async(
                        dst_sub.context,
                        f"migrate:{id(self)}:{src}:{dst}",
                        payload,
                        not_before=start,
                    )
                    arrival_time = arrival.time
                else:
                    # No peer link: the rows take the classic host round trip
                    # (device -> host -> device), both legs routed through
                    # the interconnect engine so migrations contend on a
                    # shared uplink like any other host transfer.
                    src_context, dst_context = src_sub.context, dst_sub.context
                    down_start = src_context._issue_start(DOWNLOAD_STREAM, None, start)
                    down = src_context.host_transfer_grant(
                        "d2h", payload.nbytes,
                        start=down_start, label=f"migrate:{src}->{dst}",
                    )
                    interval = src_context.timeline.schedule(
                        "d2h", f"migrate:{src}->{dst}", down.duration,
                        stream=DOWNLOAD_STREAM, not_before=start,
                    )
                    src_context.stats.transfer_time += down.duration
                    src_context.stats.d2h_bytes += payload.nbytes
                    up_start = dst_context._issue_start(COPY_STREAM, None, interval.end)
                    up = dst_context.host_transfer_grant(
                        "h2d", payload.nbytes,
                        start=up_start, label=f"migrate:{src}->{dst}",
                    )
                    up_interval = dst_context.timeline.schedule(
                        "h2d", f"migrate:{src}->{dst}", up.duration,
                        stream=COPY_STREAM, not_before=interval.end,
                    )
                    dst_context.stats.transfer_time += up.duration
                    dst_context.stats.h2d_bytes += payload.nbytes
                    arrival_time = up_interval.end
                arrivals[dst] = max(arrivals.get(dst, 0.0), arrival_time)
                arrivals[src] = max(arrivals.get(src, 0.0), arrival_time)

        # Rebuild every device's session slice from the global snapshot.
        for index, (evaluator, (lo, hi)) in enumerate(
            zip(self._sub_evaluators, new_ranges)
        ):
            if hi <= lo:
                if evaluator._resident is not None:
                    evaluator.end_search()
                continue
            stamps = global_tabu[lo:hi] if tabu_resident else None
            evaluator._adopt_resident(
                global_block[lo:hi],
                tenure=self._resident_tenure,
                stamps=stamps,
                arrival=arrivals.get(index, 0.0),
            )
            mask = (staged_global[:, 0] >= lo) & (staged_global[:, 0] < hi)
            if mask.any():
                local = staged_global[mask].copy()
                local[:, 0] -= lo
                evaluator._staged_deltas = [local.astype(DELTA_DTYPE)]
        self._replica_ranges = new_ranges
        return migrated

    # -- checkpointing ---------------------------------------------------
    def snapshot_state(self) -> dict:
        """Checkpoint the pool: shared engine, host timeline, every device.

        Sub-evaluator snapshots exclude the shared :class:`TransferEngine`
        (it is captured once at pool level), and the pool additionally
        records the elastic-fleet mask plus the resident session layout.
        """
        snap = super().snapshot_state()
        snap["engine"] = self.pool.engine.snapshot()
        snap["host_timeline"] = self.scheduler.host_timeline.snapshot()
        snap["subs"] = [
            evaluator.snapshot_state(include_engine=False)
            for evaluator in self._sub_evaluators
        ]
        snap["device_active"] = list(self._device_active)
        snap["replica_ranges"] = (
            [list(r) for r in self._replica_ranges]
            if self._replica_ranges is not None
            else None
        )
        snap["persistent"] = self._persistent
        snap["resident_tenure"] = self._resident_tenure
        return snap

    def restore_state(self, snap: dict) -> None:
        """Install a pool :meth:`snapshot_state`, replacing any live session."""
        self.end_search()
        super().restore_state(snap)
        self.pool.engine.restore(snap["engine"])
        self.scheduler.host_timeline.restore(snap["host_timeline"])
        subs = snap["subs"]
        if len(subs) != len(self._sub_evaluators):
            raise ValueError(
                f"checkpoint covers {len(subs)} devices, pool has "
                f"{len(self._sub_evaluators)}"
            )
        for evaluator, sub_snap in zip(self._sub_evaluators, subs):
            evaluator.restore_state(sub_snap)
        self._device_active = [bool(flag) for flag in snap["device_active"]]
        ranges = snap.get("replica_ranges")
        self._replica_ranges = (
            [(int(lo), int(hi)) for lo, hi in ranges] if ranges is not None else None
        )
        self._persistent = bool(snap.get("persistent", False))
        tenure = snap.get("resident_tenure")
        self._resident_tenure = int(tenure) if tenure is not None else None

    def end_search(self) -> None:
        for evaluator in self._sub_evaluators:
            evaluator.end_search()
        # Drop this evaluator's own pool-level buffers (the delta hub packet,
        # migration payloads, and the per-device scratch slices — all named
        # with this evaluator's id, so the context's owner-based free covers
        # them; the scratch buffers are reallocated on demand).
        for context in self.pool.contexts:
            context.free_evaluator_buffers(self)
        self._replica_ranges = None
        self._persistent = False
        self._resident_tenure = None

    def close(self) -> None:
        """Release every sub-evaluator's persistent device buffers."""
        self.end_search()
        for evaluator in self._sub_evaluators:
            evaluator.close()
            evaluator.context.free_evaluator_buffers(self)
