"""Neighborhood evaluators: the execution back-ends of the local search.

All evaluators compute *exactly the same* fitness array for a given
(problem, neighborhood, solution) triple; they differ in how the work would
be executed and therefore in the **simulated time** they accumulate:

``SequentialEvaluator``
    A literal Python loop over neighbors (one ``delta_evaluate`` per move).
    This is the reference implementation used in tests and for very small
    neighborhoods; its simulated time uses the CPU host model.

``CPUEvaluator``
    The NumPy-vectorized batch evaluation.  Functionally identical, much
    faster in wall-clock terms; its *simulated* time still models the
    paper's sequential single-core CPU baseline (that is the platform being
    compared against).

``GPUEvaluator``
    Runs the neighborhood kernel on a simulated device: upload the current
    solution, launch one thread per neighbor, download the fitness array.
    Simulated time comes from the device timing model.

``MultiGPUEvaluator``
    Partitions the flat index space across several simulated devices (the
    paper's multi-GPU perspective); elapsed simulated time is the slowest
    partition.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..gpu.device import GTX_280, XEON_3GHZ, DeviceSpec, HostSpec
from ..gpu.hierarchy import DEFAULT_BLOCK_SIZE
from ..gpu.kernel import ExecutionMode
from ..gpu.multi_device import MultiGPU
from ..gpu.runtime import GPUContext
from ..gpu.timing import GPUTimingModel, HostTimingModel
from ..neighborhoods import Neighborhood
from ..problems import BinaryProblem, as_solution
from .kernels import build_neighborhood_kernel, kernel_cost_profile, mapping_flops

__all__ = [
    "EvaluatorStats",
    "NeighborhoodEvaluator",
    "SequentialEvaluator",
    "CPUEvaluator",
    "GPUEvaluator",
    "MultiGPUEvaluator",
]


@dataclass
class EvaluatorStats:
    """Work and simulated time accumulated by one evaluator."""

    calls: int = 0
    evaluations: int = 0
    simulated_time: float = 0.0

    def reset(self) -> None:
        self.calls = 0
        self.evaluations = 0
        self.simulated_time = 0.0


class NeighborhoodEvaluator(abc.ABC):
    """Evaluates all (or a slice of the) neighbors of a candidate solution."""

    #: Short platform label used by the harness ("cpu", "gpu", ...).
    platform: str = "abstract"

    def __init__(self, problem: BinaryProblem, neighborhood: Neighborhood) -> None:
        if neighborhood.n != problem.n:
            raise ValueError(
                f"neighborhood is defined over n={neighborhood.n} bits but the problem has n={problem.n}"
            )
        self.problem = problem
        self.neighborhood = neighborhood
        self.stats = EvaluatorStats()

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _evaluate(self, solution: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Platform-specific evaluation of the moves at the given flat indices."""

    def evaluate(self, solution: np.ndarray, indices: np.ndarray | None = None) -> np.ndarray:
        """Fitness of the neighbors at ``indices`` (default: the whole neighborhood)."""
        solution = as_solution(solution, self.problem.n)
        if indices is None:
            indices = np.arange(self.neighborhood.size, dtype=np.int64)
        else:
            indices = np.asarray(indices, dtype=np.int64)
            if indices.size and (indices.min() < 0 or indices.max() >= self.neighborhood.size):
                raise IndexError("neighborhood index out of range")
        fitnesses = self._evaluate(solution, indices)
        self.stats.calls += 1
        self.stats.evaluations += int(indices.size)
        return fitnesses

    def reset_stats(self) -> None:
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"{type(self).__name__}(problem={self.problem.name!r}, "
            f"order={self.neighborhood.order}, size={self.neighborhood.size})"
        )


class _HostModelMixin:
    """Shared CPU-side simulated-time accounting."""

    def _account_host_time(self, num_evaluations: int) -> None:
        cost = self.problem.cost_profile(self.neighborhood.order)
        flops = (cost["flops"] + mapping_flops(self.neighborhood.order)) * num_evaluations
        mem_bytes = cost["bytes"] * num_evaluations
        self.stats.simulated_time += self._host_model.evaluation_time(flops, mem_bytes)
        self.stats.simulated_time += self._host_model.iteration_overhead()


class SequentialEvaluator(_HostModelMixin, NeighborhoodEvaluator):
    """Reference evaluator: a literal per-neighbor Python loop."""

    platform = "cpu-sequential"

    def __init__(
        self,
        problem: BinaryProblem,
        neighborhood: Neighborhood,
        *,
        host: HostSpec = XEON_3GHZ,
        cores: int = 1,
    ) -> None:
        super().__init__(problem, neighborhood)
        self._host_model = HostTimingModel(host, cores_used=cores)

    def _evaluate(self, solution: np.ndarray, indices: np.ndarray) -> np.ndarray:
        mapping = self.neighborhood.mapping
        out = np.empty(indices.size, dtype=np.float64)
        for slot, flat in enumerate(indices):
            move = mapping.from_flat(int(flat))
            out[slot] = self.problem.delta_evaluate(solution, move)
        self._account_host_time(indices.size)
        return out


class CPUEvaluator(_HostModelMixin, NeighborhoodEvaluator):
    """Vectorized CPU evaluator (functional twin of the GPU kernel)."""

    platform = "cpu"

    def __init__(
        self,
        problem: BinaryProblem,
        neighborhood: Neighborhood,
        *,
        host: HostSpec = XEON_3GHZ,
        cores: int = 1,
    ) -> None:
        super().__init__(problem, neighborhood)
        self._host_model = HostTimingModel(host, cores_used=cores)

    def _evaluate(self, solution: np.ndarray, indices: np.ndarray) -> np.ndarray:
        moves = self.neighborhood.moves(indices)
        fitnesses = self.problem.evaluate_neighborhood(solution, moves)
        self._account_host_time(indices.size)
        return np.asarray(fitnesses, dtype=np.float64)


class GPUEvaluator(NeighborhoodEvaluator):
    """Evaluator running the neighborhood kernel on one simulated GPU."""

    platform = "gpu"

    def __init__(
        self,
        problem: BinaryProblem,
        neighborhood: Neighborhood,
        *,
        device: DeviceSpec = GTX_280,
        block_size: int = DEFAULT_BLOCK_SIZE,
        mode: ExecutionMode = ExecutionMode.VECTORIZED,
        context: GPUContext | None = None,
        use_texture_memory: bool = False,
    ) -> None:
        super().__init__(problem, neighborhood)
        self.context = context if context is not None else GPUContext(device, mode=mode)
        self.block_size = int(block_size)
        self.use_texture_memory = bool(use_texture_memory)
        self.kernel = build_neighborhood_kernel(
            problem, neighborhood, use_texture=self.use_texture_memory
        )
        # Persistent device-side fitness buffer, allocated once (as a real
        # implementation would) and reused across iterations.
        self._fitness_buffer = self.context.alloc(
            f"fitnesses:{id(self)}", (neighborhood.size,), np.float64
        )

    def _evaluate(self, solution: np.ndarray, indices: np.ndarray) -> np.ndarray:
        before = self.context.stats.total_time
        # Host -> device: the candidate solution (int32, as in the paper's kernels).
        self.context.to_device(f"solution:{id(self)}", solution.astype(np.int32))
        fitnesses = self._fitness_buffer.data
        full = (
            indices.size == self.neighborhood.size
            and (indices.size == 0 or (indices[0] == 0 and indices[-1] == indices.size - 1))
        )
        if full:
            # Full neighborhood: one thread per neighbor, exactly the paper's launch.
            self.context.launch(
                self.kernel,
                self.neighborhood.size,
                (solution, fitnesses),
                block_size=self.block_size,
            )
            result = fitnesses.copy()
        else:
            # Partial evaluation (used by partitioned/multi-device exploration):
            # launch over the compacted index list.
            sub_fitnesses = np.empty(indices.size, dtype=np.float64)

            def vectorized_fn(tids, solution_arr, out):
                moves = self.neighborhood.mapping.from_flat_batch(indices[tids])
                out[tids] = self.problem.evaluate_neighborhood(solution_arr, moves)

            from ..gpu.kernel import Kernel  # local import to avoid cycle at module load

            sub_kernel = Kernel(
                name=self.kernel.name + "[slice]",
                vectorized_fn=vectorized_fn,
                cost=self.kernel.cost,
            )
            self.context.launch(
                sub_kernel,
                indices.size,
                (solution, sub_fitnesses),
                block_size=self.block_size,
            )
            result = sub_fitnesses
        # Device -> host: the fitness array, for host-side move selection.
        d2h_bytes = 4.0 * indices.size
        self.context.stats.transfer_time += self.context.timing.transfer_time(d2h_bytes)
        self.context.stats.d2h_bytes += int(d2h_bytes)
        self.stats.simulated_time += self.context.stats.total_time - before
        return result

    @property
    def simulated_time(self) -> float:
        return self.stats.simulated_time


class MultiGPUEvaluator(NeighborhoodEvaluator):
    """Partitioned exploration across several simulated devices."""

    platform = "multi-gpu"

    def __init__(
        self,
        problem: BinaryProblem,
        neighborhood: Neighborhood,
        *,
        devices: int | list[DeviceSpec] = 2,
        block_size: int = DEFAULT_BLOCK_SIZE,
        mode: ExecutionMode = ExecutionMode.VECTORIZED,
    ) -> None:
        super().__init__(problem, neighborhood)
        self.pool = MultiGPU(devices, mode=mode)
        self.block_size = int(block_size)
        self._sub_evaluators = [
            GPUEvaluator(
                problem,
                neighborhood,
                block_size=block_size,
                context=ctx,
            )
            for ctx in self.pool.contexts
        ]

    @property
    def num_devices(self) -> int:
        return self.pool.num_devices

    def _evaluate(self, solution: np.ndarray, indices: np.ndarray) -> np.ndarray:
        slices = np.array_split(indices, self.num_devices)
        out = np.empty(indices.size, dtype=np.float64)
        offset = 0
        per_device_times = []
        for evaluator, part in zip(self._sub_evaluators, slices):
            if part.size == 0:
                per_device_times.append(0.0)
                continue
            before = evaluator.stats.simulated_time
            out[offset : offset + part.size] = evaluator.evaluate(solution, part)
            per_device_times.append(evaluator.stats.simulated_time - before)
            offset += part.size
        # Devices run concurrently: the step costs as much as the slowest one.
        self.stats.simulated_time += max(per_device_times) if per_device_times else 0.0
        return out
