"""Neighborhood evaluators: the execution back-ends of the local search.

All evaluators compute *exactly the same* fitness array for a given
(problem, neighborhood, solution) triple; they differ in how the work would
be executed and therefore in the **simulated time** they accumulate:

``SequentialEvaluator``
    A literal Python loop over neighbors (one ``delta_evaluate`` per move).
    This is the reference implementation used in tests and for very small
    neighborhoods; its simulated time uses the CPU host model.

``CPUEvaluator``
    The NumPy-vectorized batch evaluation.  Functionally identical, much
    faster in wall-clock terms; its *simulated* time still models the
    paper's sequential single-core CPU baseline (that is the platform being
    compared against).

``GPUEvaluator``
    Runs the neighborhood kernel on a simulated device: upload the current
    solution, launch one thread per neighbor, download the fitness array.
    Simulated time comes from the device timing model.

``MultiGPUEvaluator``
    Partitions the flat index space across several simulated devices (the
    paper's multi-GPU perspective); elapsed simulated time is the slowest
    partition.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..gpu.device import GTX_280, XEON_3GHZ, DeviceSpec, HostSpec
from ..gpu.hierarchy import DEFAULT_BLOCK_SIZE
from ..gpu.kernel import ExecutionMode, Kernel
from ..gpu.multi_device import MultiGPU
from ..gpu.runtime import GPUContext
from ..gpu.timing import GPUTimingModel, HostTimingModel
from ..neighborhoods import Neighborhood
from ..problems import BinaryProblem, as_solution
from .kernels import (
    build_batch_neighborhood_kernel,
    build_neighborhood_kernel,
    kernel_cost_profile,
    mapping_flops,
)

__all__ = [
    "EvaluatorStats",
    "NeighborhoodEvaluator",
    "SequentialEvaluator",
    "CPUEvaluator",
    "GPUEvaluator",
    "MultiGPUEvaluator",
]


@dataclass
class EvaluatorStats:
    """Work and simulated time accumulated by one evaluator."""

    calls: int = 0
    evaluations: int = 0
    simulated_time: float = 0.0

    def reset(self) -> None:
        self.calls = 0
        self.evaluations = 0
        self.simulated_time = 0.0


class NeighborhoodEvaluator(abc.ABC):
    """Evaluates all (or a slice of the) neighbors of a candidate solution."""

    #: Short platform label used by the harness ("cpu", "gpu", ...).
    platform: str = "abstract"

    def __init__(self, problem: BinaryProblem, neighborhood: Neighborhood) -> None:
        if neighborhood.n != problem.n:
            raise ValueError(
                f"neighborhood is defined over n={neighborhood.n} bits but the problem has n={problem.n}"
            )
        self.problem = problem
        self.neighborhood = neighborhood
        self.stats = EvaluatorStats()

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _evaluate(self, solution: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Platform-specific evaluation of the moves at the given flat indices."""

    def _evaluate_many(self, solutions: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Platform-specific batched evaluation; default replays the scalar path.

        The fallback runs the single-solution path once per replica (so its
        simulated time is exactly ``S`` sequential explorations); backends
        with a native batched execution override it.
        """
        return np.stack([self._evaluate(solution, indices) for solution in solutions])

    def _check_indices(self, indices: np.ndarray | None) -> np.ndarray:
        if indices is None:
            return np.arange(self.neighborhood.size, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.neighborhood.size):
            raise IndexError("neighborhood index out of range")
        return indices

    def evaluate(self, solution: np.ndarray, indices: np.ndarray | None = None) -> np.ndarray:
        """Fitness of the neighbors at ``indices`` (default: the whole neighborhood)."""
        solution = as_solution(solution, self.problem.n)
        indices = self._check_indices(indices)
        fitnesses = self._evaluate(solution, indices)
        self.stats.calls += 1
        self.stats.evaluations += int(indices.size)
        return fitnesses

    def evaluate_many(
        self, solutions: np.ndarray, indices: np.ndarray | None = None
    ) -> np.ndarray:
        """Neighborhood fitnesses of a whole ``(S, n)`` block of solutions.

        Returns an ``(S, M)`` matrix: row ``s`` is exactly what
        :meth:`evaluate` would return for ``solutions[s]``.  This is the
        entry point of the solution-parallel execution engine: backends that
        can batch (the CPU vectorized path, the GPU's single ``S x M``-thread
        launch) amortize per-call overheads — transfers, kernel launches,
        Python dispatch — across all replicas.
        """
        solutions = np.asarray(solutions, dtype=np.int8)
        if solutions.ndim == 1:
            solutions = solutions[None, :]
        if solutions.ndim != 2 or solutions.shape[1] != self.problem.n:
            raise ValueError(
                f"expected an (S, {self.problem.n}) solution block, got {solutions.shape}"
            )
        if solutions.size and not np.all((solutions == 0) | (solutions == 1)):
            raise ValueError("solution block must contain only 0/1 values")
        indices = self._check_indices(indices)
        if solutions.shape[0] == 0:
            return np.empty((0, indices.size), dtype=np.float64)
        fitnesses = self._evaluate_many(solutions, indices)
        self.stats.calls += 1
        self.stats.evaluations += solutions.shape[0] * int(indices.size)
        return fitnesses

    def reset_stats(self) -> None:
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"{type(self).__name__}(problem={self.problem.name!r}, "
            f"order={self.neighborhood.order}, size={self.neighborhood.size})"
        )


class _HostModelMixin:
    """Shared CPU-side simulated-time accounting."""

    def _account_host_time(self, num_evaluations: int) -> None:
        cost = self.problem.cost_profile(self.neighborhood.order)
        flops = (cost["flops"] + mapping_flops(self.neighborhood.order)) * num_evaluations
        mem_bytes = cost["bytes"] * num_evaluations
        self.stats.simulated_time += self._host_model.evaluation_time(flops, mem_bytes)
        self.stats.simulated_time += self._host_model.iteration_overhead()


class SequentialEvaluator(_HostModelMixin, NeighborhoodEvaluator):
    """Reference evaluator: a literal per-neighbor Python loop."""

    platform = "cpu-sequential"

    def __init__(
        self,
        problem: BinaryProblem,
        neighborhood: Neighborhood,
        *,
        host: HostSpec = XEON_3GHZ,
        cores: int = 1,
    ) -> None:
        super().__init__(problem, neighborhood)
        self._host_model = HostTimingModel(host, cores_used=cores)

    def _evaluate(self, solution: np.ndarray, indices: np.ndarray) -> np.ndarray:
        mapping = self.neighborhood.mapping
        out = np.empty(indices.size, dtype=np.float64)
        for slot, flat in enumerate(indices):
            move = mapping.from_flat(int(flat))
            out[slot] = self.problem.delta_evaluate(solution, move)
        self._account_host_time(indices.size)
        return out


class CPUEvaluator(_HostModelMixin, NeighborhoodEvaluator):
    """Vectorized CPU evaluator (functional twin of the GPU kernel)."""

    platform = "cpu"

    def __init__(
        self,
        problem: BinaryProblem,
        neighborhood: Neighborhood,
        *,
        host: HostSpec = XEON_3GHZ,
        cores: int = 1,
    ) -> None:
        super().__init__(problem, neighborhood)
        self._host_model = HostTimingModel(host, cores_used=cores)

    def _evaluate(self, solution: np.ndarray, indices: np.ndarray) -> np.ndarray:
        moves = self.neighborhood.moves(indices)
        fitnesses = self.problem.evaluate_neighborhood(solution, moves)
        self._account_host_time(indices.size)
        return np.asarray(fitnesses, dtype=np.float64)

    def _evaluate_many(self, solutions: np.ndarray, indices: np.ndarray) -> np.ndarray:
        # One broadcast delta evaluation for the whole (S, n) block; the
        # modeled time still charges the sequential baseline for all S * M
        # evaluations (one per-call overhead instead of S — the batched
        # path's bookkeeping amortization).
        moves = self.neighborhood.moves(indices)
        fitnesses = self.problem.evaluate_neighborhood_batch(solutions, moves)
        self._account_host_time(solutions.shape[0] * indices.size)
        return np.asarray(fitnesses, dtype=np.float64)


class GPUEvaluator(NeighborhoodEvaluator):
    """Evaluator running the neighborhood kernel on one simulated GPU."""

    platform = "gpu"

    def __init__(
        self,
        problem: BinaryProblem,
        neighborhood: Neighborhood,
        *,
        device: DeviceSpec = GTX_280,
        block_size: int = DEFAULT_BLOCK_SIZE,
        mode: ExecutionMode = ExecutionMode.VECTORIZED,
        context: GPUContext | None = None,
        use_texture_memory: bool = False,
    ) -> None:
        super().__init__(problem, neighborhood)
        self.context = context if context is not None else GPUContext(device, mode=mode)
        self.block_size = int(block_size)
        self.use_texture_memory = bool(use_texture_memory)
        self.kernel = build_neighborhood_kernel(
            problem, neighborhood, use_texture=self.use_texture_memory
        )
        self.batch_kernel = build_batch_neighborhood_kernel(
            problem, neighborhood, use_texture=self.use_texture_memory
        )
        # Persistent device-side fitness buffer, allocated once (as a real
        # implementation would) and reused across iterations.
        self._fitness_buffer = self.context.alloc(
            f"fitnesses:{id(self)}", (neighborhood.size,), np.float64
        )
        # Geometry of the last batched call (the device-side solution block
        # and fitness buffer are reallocated when the number of in-flight
        # replicas changes).
        self._solutions_shape: tuple[int, int] | None = None
        self._batch_fitness_size: int | None = None

    def _is_canonical_full(self, indices: np.ndarray) -> bool:
        """Whether ``indices`` is exactly ``0, 1, ..., size - 1`` in order.

        A mere *permutation* of the full range must NOT take the full-
        neighborhood fast path: the kernel writes fitnesses in canonical
        order, which would silently ignore the caller's requested ordering.
        """
        return (
            indices.size == self.neighborhood.size
            and (
                indices.size == 0
                or (indices[0] == 0 and bool(np.all(np.diff(indices) == 1)))
            )
        )

    def _account_d2h(self, context: GPUContext, num_fitnesses: int) -> None:
        # Device -> host: the fitness array, for host-side move selection.
        # The buffer is float64, so 8 bytes per entry cross PCIe.
        d2h_bytes = 8.0 * num_fitnesses
        context.stats.transfer_time += context.timing.transfer_time(d2h_bytes)
        context.stats.d2h_bytes += int(d2h_bytes)

    def _evaluate(self, solution: np.ndarray, indices: np.ndarray) -> np.ndarray:
        before = self.context.stats.total_time
        # Host -> device: the candidate solution (int32, as in the paper's kernels).
        self.context.to_device(f"solution:{id(self)}", solution.astype(np.int32))
        fitnesses = self._fitness_buffer.data
        if self._is_canonical_full(indices):
            # Full neighborhood: one thread per neighbor, exactly the paper's launch.
            self.context.launch(
                self.kernel,
                self.neighborhood.size,
                (solution, fitnesses),
                block_size=self.block_size,
            )
            result = fitnesses.copy()
        else:
            # Partial evaluation (used by partitioned/multi-device exploration):
            # launch over the compacted index list.
            sub_fitnesses = np.empty(indices.size, dtype=np.float64)

            def vectorized_fn(tids, solution_arr, out):
                moves = self.neighborhood.mapping.from_flat_batch(indices[tids])
                out[tids] = self.problem.evaluate_neighborhood(solution_arr, moves)

            sub_kernel = Kernel(
                name=self.kernel.name + "[slice]",
                vectorized_fn=vectorized_fn,
                cost=self.kernel.cost,
            )
            self.context.launch(
                sub_kernel,
                indices.size,
                (solution, sub_fitnesses),
                block_size=self.block_size,
            )
            result = sub_fitnesses
        self._account_d2h(self.context, indices.size)
        self.stats.simulated_time += self.context.stats.total_time - before
        return result

    def _evaluate_many(self, solutions: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Solution-parallel evaluation: one ``S x M``-thread launch.

        The ``(S, n)`` solution block crosses PCIe once and a single kernel
        launch covers every (replica, neighbor) pair, so the fixed transfer
        latency and launch overhead are paid once instead of ``S`` times —
        the core amortization of the batched execution engine.
        """
        before = self.context.stats.total_time
        num_solutions, num_indices = solutions.shape[0], indices.size
        # Host -> device: the whole solution block, uploaded once.
        name = f"solutions:{id(self)}"
        if self._solutions_shape is not None and self._solutions_shape != solutions.shape:
            self.context.free(name)
        self._solutions_shape = solutions.shape
        self.context.to_device(name, solutions.astype(np.int32))
        # Device-side output buffer for all S * M fitness values, resized
        # (like the solution block) when the batch geometry changes so the
        # device-memory model sees the batched launch's largest allocation.
        buffer_name = f"batch_fitnesses:{id(self)}"
        flat_size = num_solutions * num_indices
        if self._batch_fitness_size not in (None, flat_size):
            self.context.free(buffer_name)
        if self._batch_fitness_size != flat_size:
            self.context.alloc(buffer_name, (flat_size,), np.float64)
            self._batch_fitness_size = flat_size
        flat = self.context.memory.get(buffer_name).data
        if self._is_canonical_full(indices):
            kernel = self.batch_kernel
        else:
            # Compacted index list: same batched launch over the (S, M_sub)
            # logical space, with the move list fixed by the caller.
            moves = self.neighborhood.moves(indices)

            def vectorized_fn(tids, solutions_arr, out):
                batch = self.problem.evaluate_neighborhood_batch(solutions_arr, moves)
                out[tids] = batch.reshape(-1)[tids]

            kernel = Kernel(
                name=self.batch_kernel.name + "[slice]",
                vectorized_fn=vectorized_fn,
                cost=self.batch_kernel.cost,
            )
        self.context.launch(
            kernel,
            (num_solutions, num_indices),
            (solutions, flat),
            block_size=self.block_size,
        )
        self._account_d2h(self.context, flat.size)
        self.stats.simulated_time += self.context.stats.total_time - before
        # Copy: the persistent device buffer is overwritten by the next call.
        return flat.reshape(num_solutions, num_indices).copy()

    @property
    def simulated_time(self) -> float:
        return self.stats.simulated_time


class MultiGPUEvaluator(NeighborhoodEvaluator):
    """Partitioned exploration across several simulated devices."""

    platform = "multi-gpu"

    def __init__(
        self,
        problem: BinaryProblem,
        neighborhood: Neighborhood,
        *,
        devices: int | list[DeviceSpec] = 2,
        block_size: int = DEFAULT_BLOCK_SIZE,
        mode: ExecutionMode = ExecutionMode.VECTORIZED,
    ) -> None:
        super().__init__(problem, neighborhood)
        self.pool = MultiGPU(devices, mode=mode)
        self.block_size = int(block_size)
        self._sub_evaluators = [
            GPUEvaluator(
                problem,
                neighborhood,
                block_size=block_size,
                context=ctx,
            )
            for ctx in self.pool.contexts
        ]
        # Per-device shape of the last uploaded solution slice (the buffers
        # are reallocated when a device's share of the batch changes).
        self._device_upload_shapes: dict[int, tuple[int, int]] = {}

    @property
    def num_devices(self) -> int:
        return self.pool.num_devices

    def _evaluate(self, solution: np.ndarray, indices: np.ndarray) -> np.ndarray:
        slices = np.array_split(indices, self.num_devices)
        out = np.empty(indices.size, dtype=np.float64)
        offset = 0
        per_device_times = []
        for evaluator, part in zip(self._sub_evaluators, slices):
            if part.size == 0:
                per_device_times.append(0.0)
                continue
            before = evaluator.stats.simulated_time
            out[offset : offset + part.size] = evaluator.evaluate(solution, part)
            per_device_times.append(evaluator.stats.simulated_time - before)
            offset += part.size
        # Devices run concurrently: the step costs as much as the slowest one.
        self.stats.simulated_time += max(per_device_times) if per_device_times else 0.0
        return out

    def _evaluate_many(self, solutions: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Partition the flat ``S x M`` (replica, neighbor) space across devices.

        Each device receives a contiguous slice of the flattened batch (it
        may span several replicas), uploads only the solution rows that
        slice touches and runs one launch; the step's elapsed simulated time
        is the slowest device's, as the devices run concurrently.
        """
        num_solutions, num_indices = solutions.shape[0], indices.size
        flat_total = num_solutions * num_indices
        out = np.empty(flat_total, dtype=np.float64)
        per_device_times = []
        mapping = self.neighborhood.mapping
        for evaluator, part in zip(self._sub_evaluators, self.pool.partitions(flat_total)):
            if part.size == 0:
                per_device_times.append(0.0)
                continue
            context = evaluator.context
            before = context.stats.total_time
            flat_ids = np.arange(part.start, part.stop, dtype=np.int64)
            replica_ids = flat_ids // num_indices
            neighbor_ids = indices[flat_ids % num_indices]
            replica_lo = int(replica_ids[0])
            block = solutions[replica_lo : int(replica_ids[-1]) + 1]
            name = f"solutions:{id(self)}:{part.device_index}"
            previous = self._device_upload_shapes.get(part.device_index)
            if previous is not None and previous != block.shape:
                context.free(name)
            self._device_upload_shapes[part.device_index] = block.shape
            context.to_device(name, block.astype(np.int32))
            sub_out = np.empty(part.size, dtype=np.float64)
            local_replicas = replica_ids - replica_lo

            def vectorized_fn(tids, solutions_arr, out_arr,
                              local_replicas=local_replicas, neighbor_ids=neighbor_ids):
                for replica in np.unique(local_replicas[tids]):
                    mask = local_replicas[tids] == replica
                    moves = mapping.from_flat_batch(neighbor_ids[tids][mask])
                    out_arr[tids[mask]] = self.problem.evaluate_neighborhood(
                        solutions_arr[replica], moves
                    )

            slice_kernel = Kernel(
                name=evaluator.batch_kernel.name + f"[slice:{part.device_index}]",
                vectorized_fn=vectorized_fn,
                cost=evaluator.batch_kernel.cost,
            )
            context.launch(
                slice_kernel, part.size, (block, sub_out), block_size=self.block_size
            )
            evaluator._account_d2h(context, part.size)
            per_device_times.append(context.stats.total_time - before)
            out[part.start : part.stop] = sub_out
        self.stats.simulated_time += max(per_device_times) if per_device_times else 0.0
        return out.reshape(num_solutions, num_indices)
