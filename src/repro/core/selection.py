"""Move selection policies applied to an evaluated neighborhood.

After the kernel (or its CPU equivalent) has filled the fitness array, the
local search selects the move to apply.  The paper's tabu search selects the
best *admissible* neighbor (not tabu, or passing the aspiration criterion);
hill climbing selects the best or the first improving one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SelectedMove", "best_move", "best_admissible_move", "first_improving_move"]


@dataclass(frozen=True)
class SelectedMove:
    """A selected flat move index together with its fitness."""

    index: int
    fitness: float


def best_move(fitnesses: np.ndarray) -> SelectedMove:
    """Best-improvement selection: the (lowest-index) minimum of the array."""
    fitnesses = np.asarray(fitnesses)
    if fitnesses.size == 0:
        raise ValueError("cannot select from an empty neighborhood")
    idx = int(np.argmin(fitnesses))
    return SelectedMove(index=idx, fitness=float(fitnesses[idx]))


def best_admissible_move(
    fitnesses: np.ndarray,
    forbidden: np.ndarray,
    *,
    aspiration_threshold: float | None = None,
) -> SelectedMove | None:
    """Best neighbor that is not forbidden, with an aspiration override.

    ``forbidden`` is a boolean mask over the flat neighborhood indices (the
    tabu status of each move).  A forbidden move is still admissible when its
    fitness is strictly better than ``aspiration_threshold`` (classically,
    the best fitness found so far).  Returns ``None`` when every move is
    inadmissible.
    """
    fitnesses = np.asarray(fitnesses, dtype=np.float64)
    forbidden = np.asarray(forbidden, dtype=bool)
    if fitnesses.shape != forbidden.shape:
        raise ValueError(
            f"fitnesses and forbidden masks differ in shape: {fitnesses.shape} vs {forbidden.shape}"
        )
    admissible = ~forbidden
    if aspiration_threshold is not None:
        admissible |= fitnesses < aspiration_threshold
    if not admissible.any():
        return None
    candidate_fitnesses = np.where(admissible, fitnesses, np.inf)
    idx = int(np.argmin(candidate_fitnesses))
    return SelectedMove(index=idx, fitness=float(fitnesses[idx]))


def first_improving_move(fitnesses: np.ndarray, current_fitness: float) -> SelectedMove | None:
    """First neighbor strictly better than the current solution, or ``None``."""
    fitnesses = np.asarray(fitnesses)
    better = np.nonzero(fitnesses < current_fitness)[0]
    if better.size == 0:
        return None
    idx = int(better[0])
    return SelectedMove(index=idx, fitness=float(fitnesses[idx]))
