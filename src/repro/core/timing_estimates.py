"""Per-iteration CPU / GPU time estimates for a neighborhood exploration.

One local-search iteration evaluates the full neighborhood and selects a
move.  The harness uses these estimates to fill the "CPU time" and "GPU
time" columns of the reproduced tables: the *same* functional run yields
both estimates (the explored search trajectory does not depend on the
platform), exactly as if the identical algorithm had been executed on the
paper's Xeon host and on its GTX 280.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import GTX_280, XEON_3GHZ, DeviceSpec, HostSpec
from ..gpu.dtypes import FITNESS_BYTES, SOLUTION_ENTRY_BYTES
from ..gpu.hierarchy import DEFAULT_BLOCK_SIZE, grid_for
from ..gpu.timing import GPUTimingModel, HostTimingModel
from ..neighborhoods import Neighborhood
from ..problems import BinaryProblem
from .kernels import kernel_cost_profile, mapping_flops

__all__ = ["IterationTimes", "iteration_times", "run_times"]


@dataclass(frozen=True)
class IterationTimes:
    """Modeled duration of one LS iteration on the CPU baseline and on the GPU."""

    cpu_time: float
    gpu_kernel_time: float
    gpu_transfer_time: float
    gpu_overhead_time: float

    @property
    def gpu_time(self) -> float:
        return self.gpu_kernel_time + self.gpu_transfer_time + self.gpu_overhead_time

    @property
    def speedup(self) -> float:
        """CPU / GPU acceleration factor for one iteration (the paper's "Acceleration")."""
        return self.cpu_time / self.gpu_time if self.gpu_time > 0 else float("inf")


def iteration_times(
    problem: BinaryProblem,
    neighborhood: Neighborhood,
    *,
    device: DeviceSpec = GTX_280,
    host: HostSpec = XEON_3GHZ,
    block_size: int = DEFAULT_BLOCK_SIZE,
    cpu_cores: int = 1,
    use_texture: bool = False,
) -> IterationTimes:
    """Model the time of one full-neighborhood iteration on both platforms.

    CPU baseline: a sequential scan evaluating every neighbor incrementally
    (plus the move-mapping arithmetic, which the CPU performs implicitly by
    iterating nested loops — counted once per neighbor for parity).

    GPU: upload the current solution, launch the evaluation kernel (one
    thread per neighbor), download the fitness array, plus the fixed launch
    overhead.  This mirrors the structure of the paper's implementation.
    """
    size = neighborhood.size
    order = neighborhood.order
    cost = problem.cost_profile(order)

    # --- CPU baseline -------------------------------------------------
    host_model = HostTimingModel(host, cores_used=cpu_cores)
    cpu_flops = (cost["flops"] + mapping_flops(order)) * size
    cpu_bytes = cost["bytes"] * size
    cpu_time = host_model.evaluation_time(cpu_flops, cpu_bytes) + host_model.iteration_overhead()

    # --- GPU ------------------------------------------------------------
    gpu_model = GPUTimingModel(device)
    config = grid_for(size, block_size)
    kernel_cost = kernel_cost_profile(problem, order, use_texture=use_texture)
    breakdown = gpu_model.kernel_time(config, kernel_cost, active_threads=size)
    # Host -> device: the candidate solution (the paper's int vector, at the
    # same width the evaluators upload it).
    h2d = gpu_model.transfer_time(float(SOLUTION_ENTRY_BYTES) * problem.n)
    # Device -> host: the fitness array, at the dtype of the evaluators'
    # device fitness buffer.
    d2h = gpu_model.transfer_time(float(FITNESS_BYTES) * size)
    return IterationTimes(
        cpu_time=cpu_time,
        gpu_kernel_time=breakdown.kernel_time,
        gpu_transfer_time=h2d + d2h,
        gpu_overhead_time=breakdown.launch_overhead,
    )


def run_times(
    problem: BinaryProblem,
    neighborhood: Neighborhood,
    iterations: int,
    **kwargs,
) -> IterationTimes:
    """Modeled duration of ``iterations`` LS iterations (simple linear scaling)."""
    if iterations < 0:
        raise ValueError(f"iterations must be non-negative, got {iterations}")
    per_iter = iteration_times(problem, neighborhood, **kwargs)
    return IterationTimes(
        cpu_time=per_iter.cpu_time * iterations,
        gpu_kernel_time=per_iter.gpu_kernel_time * iterations,
        gpu_transfer_time=per_iter.gpu_transfer_time * iterations,
        gpu_overhead_time=per_iter.gpu_overhead_time * iterations,
    )
