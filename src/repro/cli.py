"""Command-line interface of the reproduction.

``python -m repro <command>`` exposes the main entry points without writing
any code:

* ``tables``   — regenerate Tables I/II/III at a chosen scale;
* ``experiment`` — run the multi-trial tabu protocol on one instance, with a
  choice of trial execution mode (serial / parallel / batched lockstep);
* ``figure8``  — regenerate the Figure 8 acceleration sweep;
* ``solve``    — run one tabu search on a generated PPP instance;
* ``devices``  — list the simulated device presets and their key parameters;
* ``mapping``  — print the thread-id -> move table of a small neighborhood
  (useful to understand the paper's index transformations).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Large neighborhood local search optimization on (simulated) GPUs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="regenerate Tables I/II/III of the paper")
    p_tables.add_argument("--scale", default="smoke", choices=("smoke", "reduced", "paper"))
    p_tables.add_argument("--table", type=int, choices=(1, 2, 3), action="append",
                          help="which table(s); default all")
    p_tables.add_argument("--trial-mode", default="serial",
                          choices=("serial", "parallel", "batched"),
                          help="how the independent trials are executed")
    p_tables.add_argument("--jobs", type=int, default=1,
                          help="worker processes for --trial-mode parallel")

    p_exp = sub.add_parser(
        "experiment",
        help="run the paper's multi-trial tabu protocol on one generated PPP instance",
    )
    p_exp.add_argument("--m", type=int, default=25, help="constraints (rows of A)")
    p_exp.add_argument("--n", type=int, default=25, help="secret length (columns of A)")
    p_exp.add_argument("--k", type=int, default=1, choices=(1, 2, 3), help="Hamming order")
    p_exp.add_argument("--trials", type=int, default=50, help="independent runs (paper: 50)")
    p_exp.add_argument("--iterations", type=int, default=None,
                       help="iteration cap per trial (default: the paper's n(n-1)(n-2)/6)")
    p_exp.add_argument("--trial-mode", default="batched",
                       choices=("serial", "parallel", "batched"),
                       help="serial loop, worker processes, or the lockstep batched engine")
    p_exp.add_argument("--evaluator", default="cpu",
                       choices=("cpu", "sequential", "gpu", "multi-gpu"),
                       help="named evaluator spec used to run the trials")
    p_exp.add_argument("--transfer-mode", default="full",
                       choices=("full", "delta", "reduced", "persistent"),
                       help="host<->device transfer strategy: re-upload everything, "
                            "device-resident with flipped-bit deltas, deltas plus the "
                            "fused on-device reduction, or one persistent launch per "
                            "run with the whole loop on-device (GPU evaluators only)")
    p_exp.add_argument("--devices", type=int, default=None,
                       help="device count of the multi-gpu pool "
                            "(only with --evaluator multi-gpu)")
    p_exp.add_argument("--pinned", action=argparse.BooleanOptionalAction, default=False,
                       help="stage host transfers through pinned (page-locked) "
                            "memory on the GPU evaluators; --no-pinned keeps the "
                            "pageable model (the default)")
    p_exp.add_argument("--topology", default=None,
                       choices=("dedicated", "shared", "switched", "nvlink"),
                       help="interconnect topology the GPU transfers are routed "
                            "over: private per-device links (dedicated, the "
                            "default), a shared host root-complex uplink, a PCIe "
                            "switch, or an NVLink-style peer mesh")
    p_exp.add_argument("--jobs", type=int, default=1,
                       help="worker processes for --trial-mode parallel")
    p_exp.add_argument("--host-workers", type=int, default=None,
                       help="shard the batched lockstep evaluation across this many "
                            "host worker processes over shared memory (only with "
                            "--trial-mode batched; capped at the core count, "
                            "REPRO_HOST_WORKERS overrides uncapped); results are "
                            "bit-identical to the single-process run")
    p_exp.add_argument("--fault-plan", default=None, metavar="PLAN",
                       help="inject faults at lockstep boundaries (--trial-mode "
                            "batched only): comma-separated kind:arg@iteration "
                            "terms with kind one of fail/join/flaky/kill-worker, "
                            "e.g. 'flaky:2@5,fail:1@40,join:1@80'; timing-only — "
                            "per-trial records stay bit-identical")
    p_exp.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                       help="write the latest search checkpoint every N lockstep "
                            "iterations (--trial-mode batched only; needs "
                            "--checkpoint-path)")
    p_exp.add_argument("--checkpoint-path", default=None, metavar="FILE",
                       help="where --checkpoint-every writes its JSON snapshot")
    p_exp.add_argument("--restore", default=None, metavar="FILE",
                       help="resume from a checkpoint written by a previous run "
                            "(--trial-mode batched only); the finished run is "
                            "bit-identical to an uninterrupted one")

    p_fig = sub.add_parser("figure8", help="regenerate Figure 8 (acceleration vs instance size)")
    p_fig.add_argument("--scale", default="smoke", choices=("smoke", "reduced", "paper"))
    p_fig.add_argument("--points", type=int, default=None, help="first N instance sizes only")

    p_solve = sub.add_parser("solve", help="run one tabu search on a generated PPP instance")
    p_solve.add_argument("--m", type=int, default=73, help="constraints (rows of A)")
    p_solve.add_argument("--n", type=int, default=73, help="secret length (columns of A)")
    p_solve.add_argument("--k", type=int, default=2, choices=(1, 2, 3), help="Hamming order")
    p_solve.add_argument("--iterations", type=int, default=500, help="iteration cap")
    p_solve.add_argument("--platform", default="gpu", choices=("cpu", "gpu", "multi-gpu"),
                         help="which evaluator to use")
    p_solve.add_argument("--devices", type=int, default=2, help="device count for multi-gpu")
    p_solve.add_argument("--seed", type=int, default=0, help="instance and search seed")
    p_solve.add_argument("--texture", action="store_true",
                         help="bind the instance matrix to texture memory (GPU platforms)")
    p_solve.add_argument("--transfer-mode", default="full",
                         choices=("full", "delta", "reduced", "persistent"),
                         help="host<->device transfer strategy (GPU platforms); "
                              "\"persistent\" runs the whole search in one launch")
    p_solve.add_argument("--pinned", action=argparse.BooleanOptionalAction, default=False,
                         help="stage host transfers through pinned memory "
                              "(GPU platforms)")
    p_solve.add_argument("--topology", default=None,
                         choices=("dedicated", "shared", "switched", "nvlink"),
                         help="interconnect topology for the GPU platforms "
                              "(see the devices command for the link layout)")

    p_serve = sub.add_parser(
        "serve",
        help="replay a solve-job arrival trace through the continuous-batching "
             "solve server and print the latency/goodput table",
    )
    p_serve.add_argument("--trace", default=None, metavar="FILE",
                         help="workload JSON written by repro.service.save_trace; "
                              "omitted: generate an open-loop Poisson trace from "
                              "--trace-jobs/--load/--seed")
    p_serve.add_argument("--devices", type=int, default=4,
                         help="device count of the simulated pool")
    p_serve.add_argument("--topology", default=None,
                         choices=("dedicated", "shared", "switched", "nvlink"),
                         help="interconnect topology the GPU transfers are routed over")
    p_serve.add_argument("--evaluator", default="multi-gpu",
                         choices=("gpu", "multi-gpu"),
                         help="named evaluator spec the batch runs on")
    p_serve.add_argument("--transfer-mode", default="reduced",
                         choices=("full", "delta", "reduced", "persistent"),
                         help="host<->device transfer strategy of the live batch")
    p_serve.add_argument("--capacity", type=int, default=None,
                         help="replica slots in the live batch "
                              "(default: 16 per device, REPRO_SERVICE_CAPACITY "
                              "overrides)")
    p_serve.add_argument("--policy", default="both",
                         choices=("both", "continuous", "drain"),
                         help="continuous tenant packing, the drain-and-refill "
                              "baseline, or both side by side")
    p_serve.add_argument("--m", type=int, default=31, help="constraints (rows of A)")
    p_serve.add_argument("--n", type=int, default=31, help="secret length (columns of A)")
    p_serve.add_argument("--k", type=int, default=1, choices=(1, 2, 3),
                         help="Hamming order of the neighborhood")
    p_serve.add_argument("--trace-jobs", type=int, default=60,
                         help="jobs in the generated trace (without --trace)")
    p_serve.add_argument("--load", type=float, default=1.5,
                         help="offered load of the generated trace as a multiple "
                              "of the batch's calibrated service capacity")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="instance and trace seed")
    p_serve.add_argument("--host-workers", type=int, default=None,
                         help="shard the batched evaluation across host worker "
                              "processes (see the experiment command)")
    p_serve.add_argument("--save-trace", default=None, metavar="FILE",
                         help="also write the (generated or loaded) trace as JSON")

    p_dev = sub.add_parser("devices", help="list the simulated GPU device presets")
    p_dev.add_argument("--topology", default=None,
                       choices=("dedicated", "shared", "switched", "nvlink"),
                       help="additionally print the link layout of this "
                            "interconnect topology over a pool of GTX 280s")
    p_dev.add_argument("--devices", type=int, default=4,
                       help="pool size for the --topology listing (default 4)")

    p_map = sub.add_parser("mapping", help="print the thread-id -> move table of a neighborhood")
    p_map.add_argument("--n", type=int, default=6, help="solution length")
    p_map.add_argument("--k", type=int, default=2, help="Hamming order")
    p_map.add_argument("--limit", type=int, default=30, help="print at most this many rows")

    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_tables(args) -> int:
    from .harness import format_experiment_table, get_scale, table_one, table_three, table_two

    builders = {1: ("I", table_one), 2: ("II", table_two), 3: ("III", table_three)}
    scale = get_scale(args.scale)
    print(f"scale: {scale.name} ({scale.trials} trials per instance, "
          f"{args.trial_mode} trial mode)")
    for index in args.table or [1, 2, 3]:
        numeral, builder = builders[index]
        rows = builder(scale, trial_mode=args.trial_mode, n_jobs=args.jobs)
        print()
        print(format_experiment_table(
            rows,
            title=f"Table {numeral} ({scale.name} scale)",
            include_acceleration=(index != 1),
        ))
    return 0


def _cmd_experiment(args) -> int:
    from .harness import format_bytes, format_time, run_ppp_experiment

    n = args.n
    max_iterations = args.iterations
    if max_iterations is None:
        max_iterations = n * (n - 1) * (n - 2) // 6
    row = run_ppp_experiment(
        (args.m, n),
        args.k,
        trials=args.trials,
        max_iterations=max_iterations,
        evaluator_factory=args.evaluator,
        trial_mode=args.trial_mode,
        n_jobs=args.jobs,
        transfer_mode=args.transfer_mode,
        devices=args.devices,
        pinned=args.pinned,
        topology=args.topology,
        host_workers=args.host_workers,
        fault_plan=args.fault_plan,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint_path,
        restore=args.restore,
    )
    print(f"instance: {args.m} x {n} PPP, {args.k}-Hamming neighborhood, "
          f"{args.trials} trials ({args.trial_mode} mode, {args.evaluator} evaluator, "
          f"{args.transfer_mode} transfers"
          + (", pinned memory" if args.pinned else "")
          + (f", {args.topology} interconnect" if args.topology else "")
          + (f", {args.host_workers} host workers" if args.host_workers else "")
          + (f", faults [{args.fault_plan}]" if args.fault_plan else "")
          + (", resumed from checkpoint" if args.restore else "") + ")")
    print(f"fitness: {row.mean_fitness:.2f} +/- {row.std_fitness:.2f}, "
          f"successes: {row.successes}/{row.num_trials}, "
          f"mean iterations: {row.mean_iterations:.1f}")
    print(f"modeled CPU time {format_time(row.cpu_time)}, "
          f"GPU time {format_time(row.gpu_time)} (x{row.acceleration:.1f})")
    total_wall = sum(t.wall_time for t in row.trials)
    print(f"wall time (sum over trials): {format_time(total_wall)}")
    if row.h2d_bytes or row.d2h_bytes:
        print(f"PCIe traffic: {format_bytes(row.h2d_bytes)} up, "
              f"{format_bytes(row.d2h_bytes)} down; {row.kernel_launches} kernel "
              f"launches; simulated device elapsed {format_time(row.sim_elapsed_s)} "
              f"(overlap saved {format_time(row.overlap_saved_s)})")
    if row.num_devices > 1:
        print(f"device pool: {row.num_devices} devices, "
              f"peer-to-peer traffic {format_bytes(row.p2p_bytes)}, "
              f"serialized per-device sum {format_time(row.serialized_device_s)} "
              f"(cross-device overlap saved {format_time(row.cross_device_overlap_s)})")
    if row.topology != "dedicated" or row.contention_stall_s > 0:
        if row.sim_elapsed_s > 0:
            print(f"interconnect: {row.topology} topology, uplink busy "
                  f"{format_time(row.uplink_busy_s)} "
                  f"({row.uplink_utilization:.0%} of elapsed), contention stall "
                  f"{format_time(row.contention_stall_s)}")
        else:
            # Parallel trial mode: the engines live in the worker processes,
            # so no pool-level interconnect accounting was collected.
            print(f"interconnect: {row.topology} topology "
                  f"(per-worker accounting not collected in parallel mode)")
    return 0


def _cmd_figure8(args) -> int:
    from .harness import figure_eight, format_figure8_series, get_scale

    scale = get_scale(args.scale)
    points = figure_eight(scale, max_points=args.points)
    print(format_figure8_series(points, title=f"Figure 8 ({scale.name} scale)"))
    return 0


def _cmd_solve(args) -> int:
    from .core import CPUEvaluator, GPUEvaluator, MultiGPUEvaluator, iteration_times
    from .harness import format_time
    from .localsearch import TabuSearch
    from .neighborhoods import KHammingNeighborhood
    from .problems import PermutedPerceptronProblem

    problem = PermutedPerceptronProblem.generate(args.m, args.n, rng=args.seed)
    neighborhood = KHammingNeighborhood(problem.n, args.k)
    if args.platform == "cpu":
        evaluator = CPUEvaluator(problem, neighborhood)
    elif args.platform == "gpu":
        evaluator = GPUEvaluator(
            problem, neighborhood, use_texture_memory=args.texture,
            pinned=args.pinned, topology=args.topology,
        )
    else:
        evaluator = MultiGPUEvaluator(
            problem, neighborhood, devices=args.devices,
            pinned=args.pinned, topology=args.topology,
        )

    print(f"instance: {args.m} x {args.n} PPP, {args.k}-Hamming neighborhood "
          f"({neighborhood.size} neighbors), platform: {args.platform}, "
          f"{args.transfer_mode} transfers")
    search = TabuSearch(
        evaluator, max_iterations=args.iterations, transfer_mode=args.transfer_mode
    )
    result = search.run(rng=args.seed)
    print(result.summary())
    print(f"simulated {evaluator.platform} time: {format_time(result.simulated_time)}")
    times = iteration_times(problem, neighborhood, use_texture=args.texture)
    print(f"modeled acceleration vs single-core CPU: x{times.speedup:.1f}")
    return 0 if result.success else 1


def _cmd_serve(args) -> int:
    from .harness import format_service_table, resolve_evaluator_factory
    from .neighborhoods import KHammingNeighborhood
    from .problems import PermutedPerceptronProblem
    from .service import (
        SolveServer,
        calibrate_step_time,
        load_trace,
        poisson_trace,
        saturating_rate,
        save_trace,
    )

    m, n, k, seed = args.m, args.n, args.k, args.seed
    jobs = None
    if args.trace:
        meta, jobs = load_trace(args.trace)
        m = int(meta.get("m", m))
        n = int(meta.get("n", n))
        k = int(meta.get("k", k))
        seed = int(meta.get("seed", seed))
    problem = PermutedPerceptronProblem.generate(m, n, rng=seed)
    neighborhood = KHammingNeighborhood(problem.n, k)
    factory = resolve_evaluator_factory(
        args.evaluator,
        devices=args.devices if args.evaluator == "multi-gpu" else None,
        topology=args.topology,
    )
    capacity = args.capacity
    if capacity is None:
        devices = args.devices if args.evaluator == "multi-gpu" else 1
        capacity = 16 * devices

    replicas, budget = (1, 8), (10, 150)
    if jobs is None:
        calibrator = factory(problem, neighborhood)
        step_time = calibrate_step_time(
            calibrator, capacity=capacity, transfer_mode=args.transfer_mode
        )
        calibrator.close()
        mean_work = (sum(replicas) / 2) * (sum(budget) / 2)
        rate = saturating_rate(step_time, capacity, mean_work, load=args.load)
        jobs = poisson_trace(
            args.trace_jobs, rate, rng=seed, replicas=replicas, budget=budget
        )
    if args.save_trace:
        save_trace(
            args.save_trace, jobs, problem={"m": m, "n": n, "k": k, "seed": seed}
        )
    policies = ("continuous", "drain") if args.policy == "both" else (args.policy,)
    print(f"instance: {m} x {n} PPP, {k}-Hamming neighborhood, "
          f"{args.evaluator} evaluator ({args.devices} devices, "
          f"{args.transfer_mode} transfers), capacity {capacity} replica slots, "
          f"{len(jobs)} jobs")
    reports = {}
    for policy in policies:
        evaluator = factory(problem, neighborhood)
        server = SolveServer(
            evaluator,
            capacity=capacity,
            policy=policy,
            transfer_mode=args.transfer_mode,
            host_workers=args.host_workers,
        )
        reports[policy] = server.run_trace(jobs)
        evaluator.close()
    rows = [
        report.summary_row(load=args.load if args.trace is None else None)
        for report in reports.values()
    ]
    print()
    print(format_service_table(rows, title="Solve server: latency/goodput"))
    if len(reports) == 2 and reports["drain"].goodput > 0:
        ratio = reports["continuous"].goodput / reports["drain"].goodput
        print()
        print(f"continuous-batching goodput: x{ratio:.2f} over drain-and-refill")
    return 0


def _cmd_devices(args) -> int:
    from .gpu import DEVICE_PRESETS, GTX_280, XEON_3GHZ, HostMemoryKind, resolve_topology

    for key, dev in sorted(DEVICE_PRESETS.items()):
        print(f"{key:12s} {dev.name:28s} {dev.multiprocessors:3d} SMs x {dev.cores_per_mp} cores @ "
              f"{dev.clock_hz / 1e9:.2f} GHz, {dev.mem_bandwidth / 1e9:.0f} GB/s, "
              f"{dev.global_mem_bytes // 2**20} MiB")
        p2p = (f"p2p {dev.p2p_bandwidth / 1e9:.1f} GB/s"
               if dev.p2p_capable else "no p2p")
        print(f"{'':12s} PCIe {dev.pcie_bandwidth / 1e9:.1f} GB/s pageable / "
              f"{dev.pcie_pinned_bandwidth / 1e9:.1f} GB/s pinned, {p2p}")
    host = XEON_3GHZ
    print(f"{'host':12s} {host.name:28s} {host.cores} cores @ {host.clock_hz / 1e9:.1f} GHz "
          f"(baseline uses a single core)")
    if getattr(args, "topology", None):
        topo = resolve_topology(args.topology, [GTX_280] * args.devices)
        print()
        print(f"topology {topo.name}: {topo.num_devices} x GTX 280")
        for name in sorted(topo.links):
            link = topo.links[name]
            tags = []
            if link.shared:
                tags.append("shared fabric")
            if link.pageable_bandwidth is not None:
                tags.append(f"pageable cap {link.pageable_bandwidth / 1e9:.1f} GB/s")
            extra = f" ({', '.join(tags)})" if tags else ""
            print(f"  link {name:<18} {link.bandwidth / 1e9:>5.1f} GB/s, "
                  f"{link.latency * 1e6:.1f}us{extra}")
        for key in topo.device_keys:
            route = topo.host_route(key, HostMemoryKind.PAGEABLE)
            hops = " -> ".join(link.name for link in route.links)
            print(f"  host->{key:<6} via {hops}")
    return 0


def _cmd_mapping(args) -> int:
    from .mappings import mapping_for

    mapping = mapping_for(args.n, args.k)
    print(f"{args.k}-Hamming neighborhood of a {args.n}-bit solution: {mapping.size} moves")
    limit = min(args.limit, mapping.size)
    moves = mapping.from_flat_batch(np.arange(limit))
    for flat, move in enumerate(moves):
        print(f"  thread {flat:4d} -> flip bits {tuple(int(v) for v in move)}")
    if limit < mapping.size:
        print(f"  ... ({mapping.size - limit} more)")
    return 0


_COMMANDS = {
    "tables": _cmd_tables,
    "experiment": _cmd_experiment,
    "figure8": _cmd_figure8,
    "solve": _cmd_solve,
    "serve": _cmd_serve,
    "devices": _cmd_devices,
    "mapping": _cmd_mapping,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
