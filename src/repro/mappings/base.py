"""Common interface for neighborhood index mappings.

The central technical device of the paper is a pair of transformations
between the *flat* index space ``{0, ..., |N| - 1}`` (the GPU thread id
space) and the *move* space of a neighborhood (the indexes of the bits
flipped to obtain a neighbor).  Every mapping in this package implements
:class:`MoveMapping`:

* ``to_flat`` / ``to_flat_batch``   — move ``(i_1 < i_2 < ... < i_k)`` → flat id
  (the paper's *k*-to-one transformation),
* ``from_flat`` / ``from_flat_batch`` — flat id → move
  (the paper's one-to-*k* transformation executed by every GPU thread).

Moves are always canonicalised as strictly increasing tuples of bit
positions; the flat ordering is the lexicographic order of those tuples,
which is exactly the ordering induced by the paper's 2D/3D abstractions
(Appendices A–D).
"""

from __future__ import annotations

import abc
from math import comb
from typing import Iterable, Sequence

import numpy as np

__all__ = ["MoveMapping", "neighborhood_size", "canonical_move"]


def neighborhood_size(n: int, k: int) -> int:
    """Number of neighbors of a binary vector of length ``n`` at Hamming distance ``k``.

    This is the binomial coefficient ``C(n, k)``; for the three structures
    studied in the paper it reduces to the closed forms quoted there:
    ``n``, ``n(n-1)/2`` and ``n(n-1)(n-2)/6``.
    """
    if n < 0:
        raise ValueError(f"vector length must be non-negative, got {n}")
    if k < 0:
        raise ValueError(f"Hamming distance must be non-negative, got {k}")
    return comb(n, k)


def canonical_move(move: Iterable[int]) -> tuple[int, ...]:
    """Return ``move`` as a strictly increasing tuple, validating uniqueness."""
    t = tuple(sorted(int(i) for i in move))
    if len(set(t)) != len(t):
        raise ValueError(f"move contains repeated indexes: {move!r}")
    return t


class MoveMapping(abc.ABC):
    """Bijection between flat thread ids and k-bit-flip moves.

    Parameters
    ----------
    n:
        Length of the binary solution vector.

    Notes
    -----
    Concrete subclasses fix the Hamming distance ``k`` (class attribute) and
    provide scalar and vectorized implementations of the two directions.
    The scalar versions mirror the per-thread arithmetic of the paper's CUDA
    kernels; the batch versions are the NumPy equivalents used by the
    vectorized evaluators.
    """

    #: Hamming distance of the moves handled by this mapping.
    k: int = 0

    def __init__(self, n: int) -> None:
        if n < self.k:
            raise ValueError(
                f"vector length n={n} is too small for a {self.k}-Hamming neighborhood"
            )
        self.n = int(n)

    # ------------------------------------------------------------------
    # Required interface
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of moves (equivalently, number of GPU threads to launch)."""
        return neighborhood_size(self.n, self.k)

    @abc.abstractmethod
    def to_flat(self, move: Sequence[int]) -> int:
        """Map a move (ascending bit positions) to its flat index."""

    @abc.abstractmethod
    def from_flat(self, index: int) -> tuple[int, ...]:
        """Map a flat index to the corresponding move (ascending bit positions)."""

    # ------------------------------------------------------------------
    # Batch interface (default: loop over the scalar versions)
    # ------------------------------------------------------------------
    def to_flat_batch(self, moves: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`to_flat` over an ``(m, k)`` integer array."""
        moves = np.asarray(moves, dtype=np.int64)
        if moves.ndim != 2 or moves.shape[1] != self.k:
            raise ValueError(f"expected an (m, {self.k}) array, got shape {moves.shape}")
        return np.array([self.to_flat(tuple(row)) for row in moves], dtype=np.int64)

    def from_flat_batch(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`from_flat` over a 1-D integer array of flat ids."""
        indices = np.asarray(indices, dtype=np.int64).ravel()
        out = np.empty((indices.size, self.k), dtype=np.int64)
        for row, idx in enumerate(indices):
            out[row] = self.from_flat(int(idx))
        return out

    # ------------------------------------------------------------------
    # Convenience helpers
    # ------------------------------------------------------------------
    def all_moves(self) -> np.ndarray:
        """Materialize the full neighborhood as an ``(size, k)`` array of moves."""
        return self.from_flat_batch(np.arange(self.size, dtype=np.int64))

    def _check_index(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < self.size:
            raise IndexError(
                f"flat index {index} out of range for neighborhood of size {self.size}"
            )
        return index

    def _check_move(self, move: Sequence[int]) -> tuple[int, ...]:
        t = canonical_move(move)
        if len(t) != self.k:
            raise ValueError(f"expected a {self.k}-index move, got {move!r}")
        if t and (t[0] < 0 or t[-1] >= self.n):
            raise ValueError(f"move {move!r} out of range for n={self.n}")
        return t

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(n={self.n}, size={self.size})"
