"""1-Hamming distance mapping (paper Section III-B.1, Fig. 7).

For a binary vector of length ``n`` the 1-Hamming neighborhood has exactly
``n`` members and each neighbor is identified by the single bit position it
flips.  The thread-id → move mapping is therefore the identity: thread ``t``
evaluates the neighbor obtained by flipping bit ``t``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import MoveMapping

__all__ = ["OneHammingMapping"]


class OneHammingMapping(MoveMapping):
    """Identity mapping between thread ids and single-bit-flip moves."""

    k = 1

    def to_flat(self, move: Sequence[int]) -> int:
        (i,) = self._check_move(move)
        return i

    def from_flat(self, index: int) -> tuple[int, ...]:
        index = self._check_index(index)
        return (index,)

    def to_flat_batch(self, moves: np.ndarray) -> np.ndarray:
        moves = np.asarray(moves, dtype=np.int64)
        if moves.ndim != 2 or moves.shape[1] != 1:
            raise ValueError(f"expected an (m, 1) array, got shape {moves.shape}")
        if moves.size and (moves.min() < 0 or moves.max() >= self.n):
            raise ValueError("move index out of range")
        return moves[:, 0].copy()

    def from_flat_batch(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64).ravel()
        if indices.size and (indices.min() < 0 or indices.max() >= self.size):
            raise IndexError("flat index out of range")
        return indices.reshape(-1, 1).copy()

    def all_moves(self) -> np.ndarray:
        return np.arange(self.n, dtype=np.int64).reshape(-1, 1)
