"""Index mappings between GPU thread ids and neighborhood moves.

This subpackage implements the paper's core technical contribution: the
transformations that let each GPU thread deduce, from its flat id alone,
which neighbor of the current solution it must evaluate (Section III and
Appendices A–D of the paper).
"""

from .base import MoveMapping, canonical_move, neighborhood_size
from .exact import ExactKHammingMapping, rank_combination, unrank_combination
from .newton import (
    minimal_k_tetrahedral,
    minimal_k_tetrahedral_batch,
    newton_cubic_root,
    newton_cubic_root_batch,
)
from .one_hamming import OneHammingMapping
from .three_hamming import ThreeHammingMapping, flat_to_triple, triple_to_flat
from .two_hamming import TwoHammingMapping, flat_to_pair, pair_to_flat
from .validation import check_against_exact, check_bijection, check_roundtrip

__all__ = [
    "MoveMapping",
    "canonical_move",
    "neighborhood_size",
    "ExactKHammingMapping",
    "rank_combination",
    "unrank_combination",
    "OneHammingMapping",
    "TwoHammingMapping",
    "ThreeHammingMapping",
    "pair_to_flat",
    "flat_to_pair",
    "triple_to_flat",
    "flat_to_triple",
    "newton_cubic_root",
    "newton_cubic_root_batch",
    "minimal_k_tetrahedral",
    "minimal_k_tetrahedral_batch",
    "check_roundtrip",
    "check_bijection",
    "check_against_exact",
    "mapping_for",
]


def mapping_for(n: int, k: int, **kwargs) -> MoveMapping:
    """Factory returning the most efficient mapping for a k-Hamming neighborhood.

    The paper's closed-form mappings are used for ``k in {1, 2, 3}``; larger
    Hamming distances fall back to the exact combinatorial mapping.
    """
    if k == 1:
        return OneHammingMapping(n)
    if k == 2:
        return TwoHammingMapping(n, **kwargs)
    if k == 3:
        return ThreeHammingMapping(n, **kwargs)
    return ExactKHammingMapping(n, k)
