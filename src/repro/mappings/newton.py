"""Newton–Raphson solver for the cubic used by the 3-Hamming inverse mapping.

The one-to-three transformation (paper Appendix C) needs, for a flat index
``f`` with ``Y = m - f`` trailing elements, the smallest integer ``k`` such
that ::

    k * (k - 1) * (k - 2) / 6  >=  Y

Substituting ``u = k - 1`` turns the boundary equation into the depressed
cubic the paper solves::

    u**3 - u - 6*Y = 0                                   (paper eq. 9)

Cardano's formula would solve it exactly but, as the paper notes, loses
precision for large integers on single-precision hardware; a few
Newton–Raphson iterations are sufficient and map directly onto GPU-friendly
arithmetic (Algorithm 1 of the paper).  The routines below implement that
iteration (scalar and vectorized) plus the exact integer correction step
used by :class:`~repro.mappings.three_hamming.ThreeHammingMapping` so that
the overall mapping is exact regardless of floating-point rounding.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "newton_cubic_root",
    "newton_cubic_root_batch",
    "minimal_k_tetrahedral",
    "minimal_k_tetrahedral_batch",
]

#: Default relative precision of the Newton iteration (paper Algorithm 1).
DEFAULT_PRECISION = 1e-9

#: Hard cap on iterations; Newton on this cubic converges quadratically so a
#: handful of steps is always enough, but the cap keeps the loop finite for
#: degenerate inputs.
MAX_ITERATIONS = 128


def newton_cubic_root(y: float, *, precision: float = DEFAULT_PRECISION) -> float:
    """Positive real root of ``u**3 - u - 6*y = 0`` via Newton–Raphson.

    Parameters
    ----------
    y:
        The ``Y`` term of paper eq. (9); must be non-negative.
    precision:
        Relative step tolerance, mirroring the ``precision`` guard of the
        paper's Algorithm 1.
    """
    if y < 0:
        raise ValueError(f"Y must be non-negative, got {y}")
    if y == 0:
        return 1.0
    # A cube-root initial guess keeps the iteration monotone and fast.
    u = (6.0 * y) ** (1.0 / 3.0) + 1.0
    for _ in range(MAX_ITERATIONS):
        denom = 3.0 * u * u - 1.0
        term = (u * u * u - u - 6.0 * y) / denom
        u -= term
        if abs(term) <= precision * max(1.0, abs(u)):
            break
    return u


def newton_cubic_root_batch(
    y: np.ndarray, *, precision: float = DEFAULT_PRECISION
) -> np.ndarray:
    """Vectorized :func:`newton_cubic_root` over a non-negative array."""
    y = np.asarray(y, dtype=np.float64)
    if y.size and y.min() < 0:
        raise ValueError("Y must be non-negative")
    u = np.cbrt(6.0 * np.maximum(y, 1.0)) + 1.0
    for _ in range(MAX_ITERATIONS):
        denom = 3.0 * u * u - 1.0
        term = (u * u * u - u - 6.0 * y) / denom
        u -= term
        if np.all(np.abs(term) <= precision * np.maximum(1.0, np.abs(u))):
            break
    return np.where(y == 0, 1.0, u)


def _tetrahedral(k: int | np.ndarray):
    """``C(k, 3)`` written as the paper writes it: ``k(k-1)(k-2)/6``."""
    return (k * (k - 1) * (k - 2)) // 6


def minimal_k_tetrahedral(y: int) -> int:
    """Smallest integer ``k >= 2`` with ``k(k-1)(k-2)/6 >= y``.

    The float Newton root gives a candidate; an exact integer fix-up of at
    most one step in either direction guarantees correctness, which is what
    makes the float GPU-style arithmetic safe for arbitrarily large
    neighborhoods.
    """
    if y <= 0:
        return 2
    u = newton_cubic_root(float(y))
    k = int(math.ceil(u)) + 1
    # Exact correction: walk down while the predecessor still satisfies the
    # inequality, then up if the candidate itself does not.
    while k > 2 and _tetrahedral(k - 1) >= y:
        k -= 1
    while _tetrahedral(k) < y:
        k += 1
    return k


def minimal_k_tetrahedral_batch(y: np.ndarray) -> np.ndarray:
    """Vectorized :func:`minimal_k_tetrahedral`."""
    y = np.asarray(y, dtype=np.int64)
    u = newton_cubic_root_batch(y.astype(np.float64))
    k = np.ceil(u).astype(np.int64) + 1
    k = np.maximum(k, 2)
    # Two exact correction sweeps bound the float error (at most a couple of
    # ulps on the Newton root, hence at most a couple of integer steps).
    for _ in range(4):
        k = np.where((k > 2) & (_tetrahedral(k - 1) >= y), k - 1, k)
    for _ in range(4):
        k = np.where(_tetrahedral(k) < y, k + 1, k)
    k = np.where(y <= 0, 2, k)
    return k
