"""Validation helpers for neighborhood index mappings.

The correctness of the whole GPU exploration scheme hinges on the mappings
being true bijections between ``{0, ..., |N|-1}`` and the set of canonical
moves.  These helpers are used by the test-suite and are also part of the
public API so downstream users defining new mappings (e.g. for k >= 4 or for
non-binary encodings) can check them cheaply.
"""

from __future__ import annotations

import numpy as np

from .base import MoveMapping
from .exact import ExactKHammingMapping

__all__ = [
    "check_roundtrip",
    "check_bijection",
    "check_against_exact",
]


def check_roundtrip(mapping: MoveMapping, indices: np.ndarray | None = None) -> bool:
    """Verify ``to_flat(from_flat(i)) == i`` for the given flat indices.

    Raises ``AssertionError`` with a diagnostic message on the first failure
    and returns ``True`` otherwise.  When ``indices`` is ``None`` the whole
    index space is checked (only do this for small neighborhoods).
    """
    if indices is None:
        indices = np.arange(mapping.size, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64).ravel()
    moves = mapping.from_flat_batch(indices)
    back = mapping.to_flat_batch(moves)
    bad = np.nonzero(back != indices)[0]
    if bad.size:
        first = int(bad[0])
        raise AssertionError(
            f"roundtrip failed for flat index {indices[first]}: "
            f"from_flat -> {tuple(moves[first])}, to_flat -> {back[first]}"
        )
    return True


def check_bijection(mapping: MoveMapping) -> bool:
    """Exhaustively verify that ``from_flat`` enumerates each move exactly once."""
    moves = mapping.from_flat_batch(np.arange(mapping.size, dtype=np.int64))
    # Moves must be strictly increasing tuples within range.
    if moves.size:
        if moves.min() < 0 or moves.max() >= mapping.n:
            raise AssertionError("a generated move is out of range")
        if mapping.k > 1 and not np.all(np.diff(moves, axis=1) > 0):
            raise AssertionError("a generated move is not strictly increasing")
    as_tuples = {tuple(int(v) for v in row) for row in moves}
    if len(as_tuples) != mapping.size:
        raise AssertionError(
            f"from_flat is not injective: {mapping.size - len(as_tuples)} duplicate moves"
        )
    return True


def check_against_exact(mapping: MoveMapping, indices: np.ndarray | None = None) -> bool:
    """Compare a mapping against the exact combinatorial reference ordering."""
    reference = ExactKHammingMapping(mapping.n, mapping.k)
    if indices is None:
        indices = np.arange(mapping.size, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64).ravel()
    got = mapping.from_flat_batch(indices)
    expected = reference.from_flat_batch(indices)
    if not np.array_equal(got, expected):
        bad = np.nonzero(np.any(got != expected, axis=1))[0][0]
        raise AssertionError(
            f"mapping disagrees with exact reference at flat index {indices[bad]}: "
            f"got {tuple(got[bad])}, expected {tuple(expected[bad])}"
        )
    return True
