"""3-Hamming distance mapping (paper Section III-B.3, Appendices C and D).

A 3-Hamming move flips three distinct bit positions ``(z, x, y)`` with
``0 <= z < x < y < n``.  The paper organises the ``n(n-1)(n-2)/6`` moves as a
stack of triangular *plans* ("3D abstraction"): plan ``z`` contains every
move whose smallest flipped bit is ``z`` and is itself a 2-Hamming triangle
over the remaining ``n - z - 1`` positions.  The flat ordering is therefore
the lexicographic order of the ascending triples.

* **one-to-three** (Appendix C): given a flat index ``f``, find the plan by
  solving the cubic ``u³ - u - 6Y = 0`` with Newton–Raphson (``Y`` being the
  number of trailing elements), then reuse the 2-Hamming one-to-two
  transformation inside that plan with a change of variables.
* **three-to-one** (Appendix D): the plan ``z`` is known, so the number of
  elements in the preceding plans is a closed form and the 2-Hamming
  two-to-one formula finishes the job.

The implementation below follows that scheme exactly but adds an exact
integer correction to the Newton step (see :mod:`repro.mappings.newton`), so
the mapping is a true bijection for any ``n`` — including sizes far beyond
the 117-bit instances of the paper.
"""

from __future__ import annotations

from math import comb
from typing import Sequence

import numpy as np

from .base import MoveMapping
from .newton import minimal_k_tetrahedral, minimal_k_tetrahedral_batch
from .two_hamming import flat_to_pair, pair_to_flat

__all__ = ["ThreeHammingMapping", "triple_to_flat", "flat_to_triple"]


def _elements_from_plan(n: int, z: int) -> int:
    """Number of moves contained in plans ``z, z+1, ..., n-3``.

    Plan ``z`` holds ``C(n-1-z, 2)`` moves, so the tail sum telescopes to the
    tetrahedral number ``C(n-z, 3)``.
    """
    return comb(n - z, 3)


def triple_to_flat(z: int, x: int, y: int, n: int) -> int:
    """Three-to-one index transformation (paper Appendix D).

    ``z < x < y`` are the flipped bit positions; the result is the flat
    (thread) index in the lexicographic ordering of the 3D abstraction.
    """
    m = comb(n, 3)
    elements_before = m - _elements_from_plan(n, z)
    # Inside plan z the move is the pair (x, y) relabelled to the sub-problem
    # over positions {z+1, ..., n-1}.
    n_plan = n - (z + 1)
    return elements_before + pair_to_flat(x - (z + 1), y - (z + 1), n_plan)


def flat_to_triple(index: int, n: int, *, float_sqrt: bool = False) -> tuple[int, int, int]:
    """One-to-three index transformation (paper Appendix C)."""
    m = comb(n, 3)
    # Trailing elements counted from `index` (inclusive), as in the paper.
    remaining = m - index
    # Find the plan: smallest k with C(k, 3) >= remaining, where k = n - z.
    k = minimal_k_tetrahedral(remaining)
    z = n - k
    elements_before = m - comb(k, 3)
    local = index - elements_before
    n_plan = n - (z + 1)
    i, j = flat_to_pair(local, n_plan, float_sqrt=float_sqrt)
    return z, i + z + 1, j + z + 1


class ThreeHammingMapping(MoveMapping):
    """Plan-decomposition mapping between thread ids and three-bit-flip moves."""

    k = 3

    def __init__(self, n: int, *, float_sqrt: bool = False) -> None:
        super().__init__(n)
        self.float_sqrt = bool(float_sqrt)

    def to_flat(self, move: Sequence[int]) -> int:
        z, x, y = self._check_move(move)
        return triple_to_flat(z, x, y, self.n)

    def from_flat(self, index: int) -> tuple[int, ...]:
        index = self._check_index(index)
        return flat_to_triple(index, self.n, float_sqrt=self.float_sqrt)

    # ------------------------------------------------------------------
    # Vectorized versions
    # ------------------------------------------------------------------
    def to_flat_batch(self, moves: np.ndarray) -> np.ndarray:
        moves = np.asarray(moves, dtype=np.int64)
        if moves.ndim != 2 or moves.shape[1] != 3:
            raise ValueError(f"expected an (m, 3) array, got shape {moves.shape}")
        z, x, y = moves[:, 0], moves[:, 1], moves[:, 2]
        if moves.size and not (np.all(z < x) and np.all(x < y)):
            raise ValueError("moves must be strictly increasing triples (z < x < y)")
        if moves.size and (z.min() < 0 or y.max() >= self.n):
            raise ValueError("move index out of range")
        n = self.n
        m = self.size
        k = n - z
        elements_before = m - (k * (k - 1) * (k - 2)) // 6
        n_plan = n - (z + 1)
        xi = x - (z + 1)
        yj = y - (z + 1)
        local = xi * (n_plan - 1) + (yj - 1) - (xi * (xi + 1)) // 2
        return elements_before + local

    def from_flat_batch(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64).ravel()
        if indices.size and (indices.min() < 0 or indices.max() >= self.size):
            raise IndexError("flat index out of range")
        n = self.n
        m = self.size
        remaining = m - indices
        k = minimal_k_tetrahedral_batch(remaining)
        z = n - k
        elements_before = m - (k * (k - 1) * (k - 2)) // 6
        local = indices - elements_before
        n_plan = n - (z + 1)
        # Inline 2-Hamming one-to-two over per-element plan sizes.
        m_plan = (n_plan * (n_plan - 1)) // 2
        x_term = m_plan - local - 1
        if self.float_sqrt:
            kk = np.floor(
                (np.sqrt((8 * x_term + 1).astype(np.float32) + np.float32(0.1)) - 1.0) / 2.0
            ).astype(np.int64)
        else:
            root = np.sqrt((8 * x_term + 1).astype(np.float64)).astype(np.int64)
            root = np.where((root + 1) * (root + 1) <= 8 * x_term + 1, root + 1, root)
            root = np.where(root * root > 8 * x_term + 1, root - 1, root)
            kk = (root - 1) // 2
        i = n_plan - 2 - kk
        j = local - i * (n_plan - 1) + (i * (i + 1)) // 2 + 1
        x = i + z + 1
        y = j + z + 1
        return np.stack([z, x, y], axis=1)

    def all_moves(self) -> np.ndarray:
        return self.from_flat_batch(np.arange(self.size, dtype=np.int64))
