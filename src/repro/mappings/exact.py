"""Exact combinatorial (integer-only) rank/unrank of k-combinations.

The paper computes its one-to-two / one-to-three transformations with
floating-point square roots and a Newton–Raphson iteration because those are
cheap on a GPU.  For testing, and for neighborhoods of arbitrary Hamming
distance, this module provides the exact integer equivalents: the flat index
of a move is simply the lexicographic rank of the corresponding
k-combination of ``{0, ..., n-1}``.

These routines are the ground truth that the float mappings are validated
against in the test-suite.
"""

from __future__ import annotations

from math import comb
from typing import Sequence

import numpy as np

from .base import MoveMapping

__all__ = [
    "rank_combination",
    "unrank_combination",
    "ExactKHammingMapping",
]


def rank_combination(move: Sequence[int], n: int) -> int:
    """Lexicographic rank of the ascending combination ``move`` of ``{0..n-1}``.

    The rank counts how many k-combinations precede ``move`` in lexicographic
    order.  This matches the flat ordering of the paper's 2D and 3D
    abstractions for k = 2 and k = 3.
    """
    k = len(move)
    rank = 0
    prev = -1
    for pos, c in enumerate(move):
        if c <= prev:
            raise ValueError(f"move must be strictly increasing, got {tuple(move)!r}")
        if c >= n:
            raise ValueError(f"index {c} out of range for n={n}")
        # combinations whose element at `pos` is any value in (prev, c)
        for v in range(prev + 1, c):
            rank += comb(n - 1 - v, k - 1 - pos)
        prev = c
    return rank


def unrank_combination(rank: int, n: int, k: int) -> tuple[int, ...]:
    """Inverse of :func:`rank_combination`."""
    total = comb(n, k)
    if not 0 <= rank < total:
        raise IndexError(f"rank {rank} out of range for C({n},{k})={total}")
    move: list[int] = []
    prev = -1
    remaining = rank
    for pos in range(k):
        v = prev + 1
        while True:
            block = comb(n - 1 - v, k - 1 - pos)
            if remaining < block:
                break
            remaining -= block
            v += 1
        move.append(v)
        prev = v
    return tuple(move)


class ExactKHammingMapping(MoveMapping):
    """Integer-exact mapping for a k-Hamming neighborhood of arbitrary order.

    This class is both the generic fallback (for ``k >= 4`` structures, which
    the paper mentions as "large neighborhoods" but does not evaluate) and
    the reference implementation the float GPU-style mappings are checked
    against.
    """

    def __init__(self, n: int, k: int) -> None:
        if k < 0:
            raise ValueError(f"Hamming distance must be non-negative, got {k}")
        self.k = int(k)
        super().__init__(n)

    def to_flat(self, move: Sequence[int]) -> int:
        t = self._check_move(move)
        return rank_combination(t, self.n)

    def from_flat(self, index: int) -> tuple[int, ...]:
        index = self._check_index(index)
        return unrank_combination(index, self.n, self.k)

    def all_moves(self) -> np.ndarray:
        # Enumerating lexicographically is much faster than repeated unranking.
        if self.k == 0:
            return np.empty((1, 0), dtype=np.int64)
        from itertools import combinations

        out = np.fromiter(
            (v for c in combinations(range(self.n), self.k) for v in c),
            dtype=np.int64,
            count=self.size * self.k,
        )
        return out.reshape(self.size, self.k)
