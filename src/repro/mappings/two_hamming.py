"""2-Hamming distance mapping (paper Section III-B.2, Appendices A and B).

A 2-Hamming move flips two distinct bit positions ``(i, j)`` with
``0 <= i < j < n``.  The neighborhood is laid out as the strictly lower part
of an ``n x n`` triangle ("2D abstraction"), giving the closed forms

* two-to-one (Appendix A, eq. 1)::

      f(i, j) = i*(n-1) + (j-1) - i*(i+1)/2

* one-to-two (Appendix B, eqs. 2–6)::

      X = m - f - 1
      k = floor((sqrt(8*X + 1) - 1) / 2)
      i = n - 2 - k
      j = f - i*(n-1) + i*(i+1)/2 + 1

where ``m = n*(n-1)/2`` is the neighborhood size.  The GPU kernel in the
paper (Fig. 9) evaluates the inverse with ``sqrtf`` plus a small epsilon to
guard against the square root of a perfect square landing just below the
integer; :class:`TwoHammingMapping` exposes both the exact integer square
root (default) and the float emulation (``float_sqrt=True``) so that the
kernel arithmetic can be reproduced verbatim and tested for robustness.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .base import MoveMapping

__all__ = ["TwoHammingMapping", "pair_to_flat", "flat_to_pair"]


def pair_to_flat(i: int, j: int, n: int) -> int:
    """Paper eq. (1): flat index of the move flipping bits ``i < j``."""
    return i * (n - 1) + (j - 1) - (i * (i + 1)) // 2


def flat_to_pair(index: int, n: int, *, float_sqrt: bool = False) -> tuple[int, int]:
    """Paper eqs. (2)–(6): move ``(i, j)`` corresponding to flat ``index``."""
    m = n * (n - 1) // 2
    x = m - index - 1
    if float_sqrt:
        # Emulates the single-precision arithmetic of the CUDA kernel
        # (Fig. 9), including its protective epsilon.
        k = int(math.floor((math.sqrt(np.float32(8 * x + 1) + np.float32(0.1)) - 1.0) / 2.0))
    else:
        k = (math.isqrt(8 * x + 1) - 1) // 2
    i = n - 2 - k
    j = index - i * (n - 1) + (i * (i + 1)) // 2 + 1
    return i, j


class TwoHammingMapping(MoveMapping):
    """Closed-form mapping between thread ids and two-bit-flip moves."""

    k = 2

    def __init__(self, n: int, *, float_sqrt: bool = False) -> None:
        super().__init__(n)
        self.float_sqrt = bool(float_sqrt)

    def to_flat(self, move: Sequence[int]) -> int:
        i, j = self._check_move(move)
        return pair_to_flat(i, j, self.n)

    def from_flat(self, index: int) -> tuple[int, ...]:
        index = self._check_index(index)
        return flat_to_pair(index, self.n, float_sqrt=self.float_sqrt)

    # ------------------------------------------------------------------
    # Vectorized versions
    # ------------------------------------------------------------------
    def to_flat_batch(self, moves: np.ndarray) -> np.ndarray:
        moves = np.asarray(moves, dtype=np.int64)
        if moves.ndim != 2 or moves.shape[1] != 2:
            raise ValueError(f"expected an (m, 2) array, got shape {moves.shape}")
        i = moves[:, 0]
        j = moves[:, 1]
        if moves.size and not np.all(i < j):
            raise ValueError("moves must be strictly increasing pairs (i < j)")
        if moves.size and (i.min() < 0 or j.max() >= self.n):
            raise ValueError("move index out of range")
        n = self.n
        return i * (n - 1) + (j - 1) - (i * (i + 1)) // 2

    def from_flat_batch(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64).ravel()
        if indices.size and (indices.min() < 0 or indices.max() >= self.size):
            raise IndexError("flat index out of range")
        n = self.n
        m = self.size
        x = m - indices - 1
        if self.float_sqrt:
            k = np.floor(
                (np.sqrt((8 * x + 1).astype(np.float32) + np.float32(0.1)) - 1.0) / 2.0
            ).astype(np.int64)
        else:
            # NumPy has no vectorized integer sqrt; use float64 (exact for the
            # magnitudes involved: 8*x+1 < 8*C(n,2) fits comfortably in the
            # 2**53 float64 integer range for any realistic n) with an exact
            # correction step.
            root = np.sqrt((8 * x + 1).astype(np.float64)).astype(np.int64)
            # correct possible off-by-one from float rounding
            root = np.where((root + 1) * (root + 1) <= 8 * x + 1, root + 1, root)
            root = np.where(root * root > 8 * x + 1, root - 1, root)
            k = (root - 1) // 2
        i = n - 2 - k
        j = indices - i * (n - 1) + (i * (i + 1)) // 2 + 1
        return np.stack([i, j], axis=1)

    def all_moves(self) -> np.ndarray:
        return self.from_flat_batch(np.arange(self.size, dtype=np.int64))
