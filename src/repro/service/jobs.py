"""Solve-job specifications, arrival traces and per-job accounting.

A :class:`JobSpec` is what a client submits to the solve server: how many
lockstep replicas it wants, each replica's iteration budget, an optional
deadline, a priority and a tenant identity for fair-share.  Traces — lists
of specs ordered by arrival time — are what the server replays; the
open-loop Poisson generator below produces them and the JSON round-trip
stores them, so a recorded workload can be replayed bit-identically through
``repro serve --trace``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "JOB_STATUSES",
    "JobSpec",
    "TRACE_VERSION",
    "load_trace",
    "poisson_trace",
    "save_trace",
]

#: Version tag written into every trace file; :func:`load_trace` refuses a
#: different version instead of silently misreading the jobs.
TRACE_VERSION = 1

#: Lifecycle of a job inside the server:
#:
#: * ``queued``    — admitted to the queue, waiting for replica slots;
#: * ``running``   — its replica group is resident in the lockstep batch;
#: * ``preempted`` — suspended mid-flight to make room for a higher
#:   priority job (its full row state left with it; it resumes verbatim);
#: * ``completed`` — every replica retired (budget, target or local optimum);
#: * ``rejected``  — refused at arrival (queue full or the replica group
#:   exceeds the fleet's capacity outright);
#: * ``expired``   — its deadline passed while it was still waiting.
JOB_STATUSES = (
    "queued",
    "running",
    "preempted",
    "completed",
    "rejected",
    "expired",
)


@dataclass(frozen=True)
class JobSpec:
    """One client solve request, as submitted to the server queue."""

    #: Unique identifier within a trace.
    job_id: str
    #: Arrival time on the simulated clock (seconds).
    arrival: float
    #: Lockstep replica slots the job asks for (its multi-start width).
    replicas: int
    #: Per-replica iteration budget (the job's ``max_iterations``).
    budget: int
    #: Base seed; replica ``r`` starts from ``np.random.default_rng(seed + r)``
    #: unless :attr:`seeds` pins the per-replica seeds explicitly.
    seed: int = 0
    #: Explicit per-replica seeds (length :attr:`replicas`), overriding
    #: the ``seed + r`` derivation.
    seeds: tuple[int, ...] | None = None
    #: Relative deadline in simulated seconds (``None``: no deadline).  A
    #: queued job past its deadline is dropped (``expired``); a finished job
    #: past it still completes but does not count toward goodput.
    deadline: float | None = None
    #: Larger values are served first; strictly lower-priority running jobs
    #: may be preempted to make room.
    priority: int = 0
    #: Fair-share identity: the scheduler soft-caps the replica slots any
    #: one tenant holds while other tenants are waiting.
    tenant: str = "default"
    #: A replica retires early once its best fitness reaches this value.
    target_fitness: float = 0.0

    def __post_init__(self) -> None:
        if self.replicas <= 0:
            raise ValueError(f"replicas must be positive, got {self.replicas}")
        if self.budget < 0:
            raise ValueError(f"budget must be non-negative, got {self.budget}")
        if self.arrival < 0:
            raise ValueError(f"arrival must be non-negative, got {self.arrival}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.seeds is not None:
            object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
            if len(self.seeds) != self.replicas:
                raise ValueError(
                    f"seeds has {len(self.seeds)} entries for {self.replicas} replicas"
                )

    def resolved_seeds(self) -> tuple[int, ...]:
        """The per-replica seeds this job's replica group starts from."""
        if self.seeds is not None:
            return self.seeds
        return tuple(self.seed + r for r in range(self.replicas))

    def to_dict(self) -> dict:
        data = {
            "job_id": self.job_id,
            "arrival": self.arrival,
            "replicas": self.replicas,
            "budget": self.budget,
            "seed": self.seed,
            "priority": self.priority,
            "tenant": self.tenant,
            "target_fitness": self.target_fitness,
        }
        if self.seeds is not None:
            data["seeds"] = list(self.seeds)
        if self.deadline is not None:
            data["deadline"] = self.deadline
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        seeds = data.get("seeds")
        return cls(
            job_id=str(data["job_id"]),
            arrival=float(data["arrival"]),
            replicas=int(data["replicas"]),
            budget=int(data["budget"]),
            seed=int(data.get("seed", 0)),
            seeds=tuple(int(s) for s in seeds) if seeds is not None else None,
            deadline=(
                float(data["deadline"]) if data.get("deadline") is not None else None
            ),
            priority=int(data.get("priority", 0)),
            tenant=str(data.get("tenant", "default")),
            target_fitness=float(data.get("target_fitness", 0.0)),
        )


def poisson_trace(
    num_jobs: int,
    rate: float,
    *,
    rng: np.random.Generator | int | None = None,
    replicas: tuple[int, int] = (1, 4),
    budget: tuple[int, int] = (20, 120),
    deadline: float | tuple[float, float] | None = None,
    priorities: Sequence[int] = (0,),
    tenants: int = 1,
    target_fitness: float = 0.0,
) -> list[JobSpec]:
    """Open-loop Poisson arrivals: ``num_jobs`` specs at ``rate`` jobs/second.

    Inter-arrival gaps are exponential with mean ``1/rate``; replica counts
    and budgets are drawn uniformly from their inclusive ranges, priorities
    uniformly from ``priorities`` and tenants round-robin-free (uniform) over
    ``tenants`` identities.  The same ``rng`` seed reproduces the same trace
    exactly — that is what makes a recorded benchmark workload replayable.
    """
    if num_jobs <= 0:
        raise ValueError(f"num_jobs must be positive, got {num_jobs}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    stream = np.random.default_rng(rng)
    arrivals = np.cumsum(stream.exponential(1.0 / rate, size=num_jobs))
    jobs: list[JobSpec] = []
    for index in range(num_jobs):
        if deadline is None:
            job_deadline = None
        elif isinstance(deadline, tuple):
            job_deadline = float(stream.uniform(deadline[0], deadline[1]))
        else:
            job_deadline = float(deadline)
        jobs.append(
            JobSpec(
                job_id=f"job-{index:04d}",
                arrival=float(arrivals[index]),
                replicas=int(stream.integers(replicas[0], replicas[1] + 1)),
                budget=int(stream.integers(budget[0], budget[1] + 1)),
                seed=int(stream.integers(0, 2**31 - 1)),
                deadline=job_deadline,
                priority=int(priorities[int(stream.integers(len(priorities)))]),
                tenant=f"tenant-{int(stream.integers(tenants))}",
                target_fitness=target_fitness,
            )
        )
    return jobs


def save_trace(path, jobs: Sequence[JobSpec], *, problem: dict | None = None) -> None:
    """Write a trace (and an optional problem-spec header) as JSON."""
    payload = {
        "version": TRACE_VERSION,
        "problem": problem,
        "jobs": [job.to_dict() for job in jobs],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def load_trace(path) -> tuple[dict, list[JobSpec]]:
    """Read a trace written by :func:`save_trace`; returns ``(problem, jobs)``."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != TRACE_VERSION:
        raise ValueError(
            f"unsupported trace version {version!r}; this build reads "
            f"version {TRACE_VERSION}"
        )
    jobs = [JobSpec.from_dict(entry) for entry in payload.get("jobs", [])]
    return payload.get("problem") or {}, jobs
