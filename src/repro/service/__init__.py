"""Optimization-as-a-service: continuous batching over the lockstep engine.

Clients submit solve jobs (replica count, iteration budget, deadline,
priority, tenant) to a queue; the scheduler packs them as replica groups
into the *already-running* lockstep batch on the simulated multi-GPU pool —
joining at step boundaries and retiring the moment their budget or stopping
rule fires — the way LLM inference servers do continuous batching, so batch
occupancy stays near 100% under open-loop load instead of draining to a
straggler tail between jobs.
"""

from .continuous import CapacityError, ContinuousRunner, StepReport
from .jobs import (
    JOB_STATUSES,
    JobSpec,
    TRACE_VERSION,
    load_trace,
    poisson_trace,
    save_trace,
)
from .server import (
    POLICIES,
    JobRecord,
    ServiceReport,
    SolveServer,
    calibrate_step_time,
    saturating_rate,
)

__all__ = [
    "CapacityError",
    "ContinuousRunner",
    "JOB_STATUSES",
    "JobRecord",
    "JobSpec",
    "POLICIES",
    "ServiceReport",
    "SolveServer",
    "StepReport",
    "TRACE_VERSION",
    "calibrate_step_time",
    "load_trace",
    "poisson_trace",
    "saturating_rate",
    "save_trace",
]
