"""Continuous-batching solve server over the lockstep replica batch.

:class:`SolveServer` replays an arrival trace of :class:`~.jobs.JobSpec`
requests against one :class:`~.continuous.ContinuousRunner` session — the
optimization analogue of an LLM inference server's continuous batching.  One
server binds one (problem, neighborhood) pair, the way an inference server
binds one model; jobs differ in replica count, budget, seeds, deadline,
priority and tenant.

The event loop runs on the *simulated* clock: each lockstep step advances
time by the evaluator's simulated delta, and when the batch is empty the
clock fast-forwards to the next arrival (the pool sits idle; nothing is
priced).  Scheduling is:

* **admission control** — arrivals whose replica group exceeds the fleet
  capacity outright, or that find the queue full, are rejected; queued jobs
  whose deadline passes before first admission expire;
* **priority + backfill** — the queue is served in (priority desc, arrival
  asc) order, and smaller jobs further back may backfill slots the head
  cannot use;
* **per-tenant fair-share** — a soft cap: while other tenants are waiting,
  a tenant already holding at least ``fair_share * capacity`` slots is
  passed over (jobs are atomic, so the cap may be exceeded by the job that
  crossed it — progress is always possible);
* **preemption** — when the highest-priority queued job cannot fit,
  strictly lower-priority running jobs are suspended (most recently
  admitted first) and re-queued with their full row state, resuming
  bit-identically later;
* **policy="drain"** — the run-to-completion baseline: a new batch is
  admitted only once the previous batch fully drained.  This is the
  straggler-tail behaviour the continuous policy exists to beat.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..localsearch.result import LSResult
from .continuous import ContinuousRunner
from .jobs import JobSpec

__all__ = [
    "JobRecord",
    "POLICIES",
    "ServiceReport",
    "SolveServer",
    "calibrate_step_time",
    "saturating_rate",
]

#: Batch scheduling policies: continuous tenant packing vs the
#: drain-and-refill (run-to-completion) baseline.
POLICIES = ("continuous", "drain")


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


@dataclass
class JobRecord:
    """Lifecycle and accounting of one job through the server."""

    spec: JobSpec
    #: One of :data:`~.jobs.JOB_STATUSES`.
    status: str = "queued"
    #: Simulated time of first admission into the batch (``None``: never ran).
    admitted: float | None = None
    #: Simulated time the last replica retired (``None``: did not complete).
    finished: float | None = None
    #: How many times the job was suspended mid-flight.
    preemptions: int = 0
    #: Per-replica results, harvested as the replicas retire.
    results: list[LSResult] = field(default_factory=list)
    #: Simulated-GPU seconds attributed to this job (sum of its replicas'
    #: shares of each batched launch).
    gpu_seconds: float = 0.0
    #: Total replica iterations the job consumed.
    iterations: int = 0

    @property
    def latency(self) -> float | None:
        """Arrival-to-completion time on the simulated clock."""
        if self.finished is None:
            return None
        return self.finished - self.spec.arrival

    @property
    def queue_wait(self) -> float | None:
        """Arrival-to-first-admission time."""
        if self.admitted is None:
            return None
        return self.admitted - self.spec.arrival

    @property
    def service_time(self) -> float | None:
        """First-admission-to-completion time (includes preempted gaps)."""
        if self.finished is None or self.admitted is None:
            return None
        return self.finished - self.admitted

    @property
    def deadline_met(self) -> bool:
        """Completed within its deadline (no deadline: any completion)."""
        if self.status != "completed":
            return False
        if self.spec.deadline is None:
            return True
        latency = self.latency
        return latency is not None and latency <= self.spec.deadline

    @property
    def best_fitness(self) -> float | None:
        if not self.results:
            return None
        return min(result.best_fitness for result in self.results)


@dataclass
class ServiceReport:
    """What one trace replay produced, with the derived service metrics."""

    policy: str
    capacity: int
    #: Total simulated time from the first arrival's epoch to the last
    #: completion (idle gaps included).
    makespan: float
    #: Simulated time the batch spent evaluating (idle gaps excluded).
    busy_time: float
    #: Busy-time-weighted mean fraction of slots evaluating.
    mean_occupancy: float
    records: list[JobRecord]
    #: Lockstep steps the replay executed.
    steps: int

    def _count(self, status: str) -> int:
        return sum(record.status == status for record in self.records)

    @property
    def completed(self) -> int:
        return self._count("completed")

    @property
    def rejected(self) -> int:
        return self._count("rejected")

    @property
    def expired(self) -> int:
        return self._count("expired")

    @property
    def preempted_jobs(self) -> int:
        return sum(record.preemptions > 0 for record in self.records)

    def latencies(self) -> list[float]:
        return [
            record.latency
            for record in self.records
            if record.status == "completed" and record.latency is not None
        ]

    def latency_percentile(self, q: float) -> float:
        values = self.latencies()
        if not values:
            return float("nan")
        return float(np.percentile(values, q))

    @property
    def p50_latency(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99_latency(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def goodput(self) -> float:
        """Deadline-met completions per simulated second."""
        if self.makespan <= 0.0:
            return 0.0
        met = sum(record.deadline_met for record in self.records)
        return met / self.makespan

    @property
    def gpu_seconds(self) -> float:
        return sum(record.gpu_seconds for record in self.records)

    def summary_row(self, *, label: str | None = None, load: float | None = None) -> dict:
        """One row for :func:`repro.harness.format_service_table`."""
        return {
            "label": label or self.policy,
            "policy": self.policy,
            "load": load,
            "jobs": len(self.records),
            "completed": self.completed,
            "rejected": self.rejected,
            "expired": self.expired,
            "preempted": self.preempted_jobs,
            "p50": self.p50_latency,
            "p99": self.p99_latency,
            "goodput": self.goodput,
            "occupancy": self.mean_occupancy,
            "makespan": self.makespan,
        }


class _QueueEntry:
    """A queued job, possibly carrying suspended mid-flight state."""

    __slots__ = ("spec", "record", "saved")

    def __init__(self, spec: JobSpec, record: JobRecord, saved: dict | None = None):
        self.spec = spec
        self.record = record
        self.saved = saved

    @property
    def need(self) -> int:
        """Replica slots the entry needs (suspended groups may have shrunk)."""
        if self.saved is not None:
            return int(self.saved["current"].shape[0])
        return self.spec.replicas


class SolveServer:
    """Replay solve-job traces through a continuously-running lockstep batch.

    Parameters mirror :class:`~.continuous.ContinuousRunner` where they
    configure the batch itself; the service knobs are:

    capacity:
        Replica slots in the live batch (env default
        ``REPRO_SERVICE_CAPACITY``, 32).
    max_queue:
        Arrivals finding this many jobs already queued are rejected (env
        default ``REPRO_SERVICE_MAX_QUEUE``, 128).
    policy:
        ``"continuous"`` (tenants join/leave mid-flight) or ``"drain"``
        (run-to-completion batches — the baseline).
    preemption:
        Allow suspending strictly lower-priority running jobs when the
        highest-priority queued job cannot fit.
    fair_share:
        Soft per-tenant slot cap as a fraction of capacity, applied only
        while other tenants are waiting; ``None`` disables it.
    """

    def __init__(
        self,
        evaluator,
        *,
        capacity: int | None = None,
        policy: str = "continuous",
        algorithm: str = "tabu",
        tenure: int | None = None,
        aspiration: bool = True,
        transfer_mode: str = "full",
        rebalance_every: int | None = None,
        host_workers: int | None = None,
        track_history: bool = False,
        max_queue: int | None = None,
        preemption: bool = True,
        fair_share: float | None = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
        if capacity is None:
            capacity = _env_int("REPRO_SERVICE_CAPACITY", 32)
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if max_queue is None:
            max_queue = _env_int("REPRO_SERVICE_MAX_QUEUE", 128)
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if fair_share is not None and not 0.0 < fair_share <= 1.0:
            raise ValueError(f"fair_share must be in (0, 1], got {fair_share}")
        self.evaluator = evaluator
        self.capacity = int(capacity)
        self.policy = policy
        self.max_queue = int(max_queue)
        self.preemption = bool(preemption)
        self.fair_share = fair_share
        self._runner_options = dict(
            algorithm=algorithm,
            tenure=tenure,
            aspiration=aspiration,
            transfer_mode=transfer_mode,
            rebalance_every=rebalance_every,
            host_workers=host_workers,
            track_history=track_history,
        )

    # ------------------------------------------------------------------
    def run_trace(self, jobs: Sequence[JobSpec]) -> ServiceReport:
        """Replay ``jobs`` (any order; sorted by arrival) to completion."""
        order = sorted(jobs, key=lambda spec: (spec.arrival, spec.job_id))
        records = {spec.job_id: JobRecord(spec=spec) for spec in order}
        if len(records) != len(order):
            raise ValueError("duplicate job_id in trace")

        pending = deque(order)
        queue: list[_QueueEntry] = []
        #: job_id -> {"record", "slots" (live set), "seq"}
        running: dict[str, dict] = {}
        slot_owner: dict[int, str] = {}
        admit_seq = 0

        runner = ContinuousRunner(
            self.evaluator, capacity=self.capacity, **self._runner_options
        )
        runner.open()
        clock = 0.0
        idle_time = 0.0
        sim_base = self.evaluator.stats.simulated_time
        steps = 0
        fair_cap = (
            max(1, int(round(self.fair_share * self.capacity)))
            if self.fair_share is not None
            else None
        )

        def tenant_hold(tenant: str) -> int:
            return sum(
                len(state["slots"])
                for state in running.values()
                if state["record"].spec.tenant == tenant
            )

        def harvest(retired_slots: list[int]) -> None:
            by_job: dict[str, list[int]] = {}
            for slot in retired_slots:
                by_job.setdefault(slot_owner.pop(slot), []).append(slot)
            for job_id, slots in by_job.items():
                state = running[job_id]
                record = state["record"]
                for result in runner.detach(np.asarray(slots, dtype=np.int64)):
                    record.results.append(result)
                    record.gpu_seconds += result.simulated_time
                    record.iterations += result.iterations
                state["slots"].difference_update(slots)
                if not state["slots"]:
                    del running[job_id]
                    record.status = "completed"
                    record.finished = clock

        def suspend_job(state: dict) -> None:
            record = state["record"]
            slots = sorted(state["slots"])
            saved = runner.suspend(np.asarray(slots, dtype=np.int64))
            for slot in slots:
                del slot_owner[slot]
            del running[record.spec.job_id]
            record.status = "preempted"
            record.preemptions += 1
            queue.append(_QueueEntry(record.spec, record, saved))

        def try_preempt(entry: _QueueEntry) -> None:
            """Free slots for the queue head by suspending lower-priority jobs."""
            victims = sorted(
                (
                    state
                    for state in running.values()
                    if state["record"].spec.priority < entry.spec.priority
                ),
                key=lambda state: (state["record"].spec.priority, -state["seq"]),
            )
            freeable = runner.free_slots
            chosen = []
            for state in victims:
                if freeable >= entry.need:
                    break
                freeable += len(state["slots"])
                chosen.append(state)
            if freeable < entry.need:
                return
            for state in chosen:
                suspend_job(state)

        def admit() -> None:
            nonlocal admit_seq
            if not queue:
                return
            if self.policy == "drain" and running:
                return
            queue.sort(
                key=lambda e: (-e.spec.priority, e.spec.arrival, e.spec.job_id)
            )
            progressed = True
            while progressed and queue:
                progressed = False
                for entry in list(queue):
                    if (
                        entry.need > runner.free_slots
                        and self.preemption
                        and entry is queue[0]
                    ):
                        try_preempt(entry)
                    if entry.need > runner.free_slots:
                        continue
                    if (
                        fair_cap is not None
                        and tenant_hold(entry.spec.tenant) >= fair_cap
                        and any(
                            other.spec.tenant != entry.spec.tenant for other in queue
                        )
                    ):
                        continue
                    spec = entry.spec
                    if entry.saved is not None:
                        slots = runner.resume(entry.saved)
                    else:
                        slots = runner.attach(
                            seeds=spec.resolved_seeds(),
                            budgets=spec.budget,
                            targets=spec.target_fitness,
                        )
                    record = entry.record
                    if record.admitted is None:
                        record.admitted = clock
                    record.status = "running"
                    running[spec.job_id] = {
                        "record": record,
                        "slots": set(slots.tolist()),
                        "seq": admit_seq,
                    }
                    admit_seq += 1
                    for slot in slots.tolist():
                        slot_owner[slot] = spec.job_id
                    queue.remove(entry)
                    progressed = True

        try:
            while pending or queue or running:
                while pending and pending[0].arrival <= clock + 1e-9:
                    spec = pending.popleft()
                    record = records[spec.job_id]
                    if spec.replicas > self.capacity or len(queue) >= self.max_queue:
                        record.status = "rejected"
                        continue
                    queue.append(_QueueEntry(spec, record))
                kept = []
                for entry in queue:
                    deadline = entry.spec.deadline
                    if (
                        deadline is not None
                        and entry.record.admitted is None
                        and clock > entry.spec.arrival + deadline
                    ):
                        entry.record.status = "expired"
                    else:
                        kept.append(entry)
                queue[:] = kept
                admit()
                if runner.num_active == 0:
                    # Batch empty and nothing admittable: fast-forward the
                    # idle pool to the next arrival.
                    if pending:
                        idle_time += max(0.0, pending[0].arrival - clock)
                        clock = idle_time + (
                            self.evaluator.stats.simulated_time - sim_base
                        )
                        continue
                    break
                report = runner.step()
                steps += 1
                clock = idle_time + (self.evaluator.stats.simulated_time - sim_base)
                if report.retired:
                    harvest(report.retired)
            makespan = clock
            busy_time = runner.busy_time
            mean_occupancy = runner.mean_occupancy
        finally:
            runner.close()
        return ServiceReport(
            policy=self.policy,
            capacity=self.capacity,
            makespan=makespan,
            busy_time=busy_time,
            mean_occupancy=mean_occupancy,
            records=[records[spec.job_id] for spec in order],
            steps=steps,
        )


# ----------------------------------------------------------------------
# Load calibration helpers (shared by the CLI and the benchmark)
# ----------------------------------------------------------------------
def calibrate_step_time(
    evaluator,
    *,
    capacity: int,
    steps: int = 5,
    seed: int = 0,
    **runner_options,
) -> float:
    """Mean simulated seconds per full-occupancy lockstep step.

    Opens a throwaway :class:`~.continuous.ContinuousRunner` session on
    ``evaluator``, runs a few steps with every slot leased and returns the
    mean step time.  The evaluator's cumulative counters advance; callers
    that measure via deltas (the server does) are unaffected.
    """
    runner = ContinuousRunner(evaluator, capacity=capacity, **runner_options)
    runner.open()
    try:
        slots = runner.attach(
            seeds=range(seed, seed + capacity), budgets=steps + 1
        )
        total = 0.0
        measured = 0
        for _ in range(steps):
            report = runner.step()
            if not report.evaluated:
                break
            total += report.sim_elapsed
            measured += 1
        runner.detach(slots, cancel=True)
    finally:
        runner.close()
    if measured == 0:
        raise RuntimeError("calibration ran no steps; increase the budgets")
    return total / measured


def saturating_rate(
    step_time: float,
    capacity: int,
    mean_job_work: float,
    *,
    load: float = 1.0,
) -> float:
    """Arrival rate offering ``load`` x the batch's replica-iteration capacity.

    One full-occupancy step advances ``capacity`` replica-iterations in
    ``step_time`` simulated seconds; a job consumes
    ``replicas * budget`` replica-iterations (``mean_job_work`` on average).
    ``load=1.0`` therefore offers exactly what the fleet can serve.
    """
    if step_time <= 0 or capacity <= 0 or mean_job_work <= 0:
        raise ValueError("step_time, capacity and mean_job_work must be positive")
    return load * capacity / (step_time * mean_job_work)
