"""Dynamic lockstep core: attach/detach replica rows in a live batch.

:class:`~repro.localsearch.multistart.MultiStartRunner` runs *closed*
workloads: the replica population is fixed at ``run()`` and the batch drains
to a straggler tail as replicas finish.  :class:`ContinuousRunner` keeps the
same lockstep step — one batched ``(S, n) -> (S, M)`` evaluation plus the
exact vectorized selection rules, inherited unchanged — but turns the batch
into a pool of ``capacity`` replica *slots* that tenants lease mid-flight:

* :meth:`attach` installs a tenant's replica group into free slots at a step
  boundary.  The start block is patched into the device-resident population
  as an ordinary flipped-bit delta packet (the XOR difference against
  whatever the slot last held), so admission is priced like any other
  delta upload and never re-uploads the whole population.  The incremental
  gain engine's self-healing mirror check re-derives exactly the mutated
  rows at the next evaluation, and the slot's tabu stamps are reset to the
  "never applied" sentinel — the state a standalone run starts from.
* :meth:`step` advances every active slot one lockstep iteration with the
  per-slot budgets/targets standing in for the runner's global stopping
  rule, and reports the slots that retired (budget, target or local
  optimum).
* :meth:`detach` harvests a retired group's
  :class:`~repro.localsearch.result.LSResult` records and frees the slots.
* :meth:`suspend`/:meth:`resume` move a live group out of and back into the
  batch (priority preemption).  A replica's trajectory is a pure function
  of its row state — solution, fitnesses, iteration counter, tabu stamps —
  all of which leave and return verbatim, so the resumed trajectory is
  bit-identical to an uninterrupted one.

Because selection and evaluation are exact row-wise vectorizations, a
tenant's trajectory is bit-identical to the same seeds/budget run standalone
and is never perturbed by other tenants joining or leaving — the property
the solve server's correctness rests on (``tests/service/test_continuous``).
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field

import numpy as np

from ..gpu.dtypes import TABU_NEVER
from ..localsearch.base import REDUCED_SELECTION_MODES
from ..localsearch.multistart import MultiStartRunner
from ..localsearch.result import LSResult
from ..parallel import host_parallel
from ..problems.incremental import (
    attach_gain_engine,
    create_gain_engine,
    detach_gain_engine,
)

__all__ = ["CapacityError", "ContinuousRunner", "StepReport"]


class CapacityError(RuntimeError):
    """A replica group does not fit into the currently free slots."""


@dataclass
class StepReport:
    """What one :meth:`ContinuousRunner.step` boundary produced."""

    #: Whether a batched evaluation ran (False: every slot was already done).
    evaluated: bool = False
    #: Slots that retired this step, ready for :meth:`ContinuousRunner.detach`.
    retired: list[int] = field(default_factory=list)
    #: Simulated seconds the step's evaluation added.
    sim_elapsed: float = 0.0
    #: Fraction of the slot pool that evaluated this step.
    occupancy: float = 0.0


class ContinuousRunner(MultiStartRunner):
    """A lockstep batch of ``capacity`` replica slots with mid-flight churn.

    The runner reuses :class:`MultiStartRunner`'s selection rules, transfer
    modes, host-worker pool and incremental gain engine; it replaces the
    closed ``run()`` loop with an ``open() -> attach/step/detach -> close()``
    session whose per-slot budgets and targets come from the tenants.
    ``max_iterations`` is meaningless here (every tenant brings its own
    budget), so it is pinned to 0.
    """

    def __init__(
        self,
        evaluator,
        *,
        capacity: int,
        algorithm: str = "tabu",
        tenure: int | None = None,
        aspiration: bool = True,
        target_fitness: float = 0.0,
        track_history: bool = False,
        transfer_mode: str = "full",
        rebalance_every: int | None = None,
        host_workers: int | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        super().__init__(
            evaluator,
            algorithm=algorithm,
            tenure=tenure,
            aspiration=aspiration,
            max_iterations=0,
            target_fitness=target_fitness,
            track_history=track_history,
            transfer_mode=transfer_mode,
            rebalance_every=rebalance_every,
            host_workers=host_workers,
        )
        self.capacity = int(capacity)
        self._open = False

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def open(self) -> "ContinuousRunner":
        """Allocate the slot pool and open the device-resident session.

        In the resident transfer modes the whole ``(capacity, n)`` zero
        block crosses PCIe once, here; afterwards every tenant arrival and
        move is a flipped-bit delta.
        """
        if self._open:
            raise RuntimeError("runner is already open")
        capacity, n = self.capacity, self.problem.n
        size = self.neighborhood.size
        self.current = np.zeros((capacity, n), dtype=np.int8)
        self.current_fitness = np.zeros(capacity, dtype=np.float64)
        self.initial_fitness = np.zeros(capacity, dtype=np.float64)
        self.best = np.zeros((capacity, n), dtype=np.int8)
        self.best_fitness = np.zeros(capacity, dtype=np.float64)
        self.iterations = np.zeros(capacity, dtype=np.int64)
        self.evaluations = np.zeros(capacity, dtype=np.int64)
        self.sim_share = np.zeros(capacity, dtype=np.float64)
        self.wall_share = np.zeros(capacity, dtype=np.float64)
        self.budgets = np.zeros(capacity, dtype=np.int64)
        self.targets = np.zeros(capacity, dtype=np.float64)
        self.active = np.zeros(capacity, dtype=bool)
        self.leased = np.zeros(capacity, dtype=bool)
        self.reasons = np.array(["max_iterations"] * capacity, dtype=object)
        self.histories: list[list[float]] = [[] for _ in range(capacity)]
        self.lockstep = 0
        self.busy_time = 0.0
        self.occupancy_time = 0.0

        self._resident = self.transfer_mode != "full"
        self._reduced = self.transfer_mode in REDUCED_SELECTION_MODES
        self._device_tabu = (
            self._reduced
            and self.algorithm == "tabu"
            and hasattr(self.evaluator, "init_tabu_memory")
        )
        self.last_applied = (
            np.full((capacity, size), TABU_NEVER, dtype=np.int64)
            if self.algorithm == "tabu" and not self._device_tabu
            else None
        )
        self._stack = contextlib.ExitStack()
        try:
            self._pool = self._stack.enter_context(
                host_parallel(
                    self.problem, self.host_workers, max_rows=capacity, max_moves=size
                )
            )
            self._gain_engine = create_gain_engine(self.problem, rows_hint=capacity)
            prev_engine = attach_gain_engine(self.problem, self._gain_engine)
            self._stack.callback(detach_gain_engine, self.problem, prev_engine)
            if self._resident:
                self.evaluator.begin_search(
                    self.current, persistent=self.transfer_mode == "persistent"
                )
                self._stack.callback(self.evaluator.end_search)
                if self._device_tabu:
                    self.evaluator.init_tabu_memory(self.tenure)
        except Exception:
            self._stack.close()
            raise
        self._open = True
        return self

    def close(self) -> None:
        """Tear down the resident session, gain engine and worker pool."""
        if not self._open:
            return
        self._open = False
        self._stack.close()

    def __enter__(self) -> "ContinuousRunner":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if not self._open:
            raise RuntimeError("runner is not open; call open() first")

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------
    @property
    def num_active(self) -> int:
        """Slots still searching (leased and not yet retired)."""
        return int(self.active.sum())

    @property
    def num_leased(self) -> int:
        """Slots held by a tenant (searching or retired-awaiting-detach)."""
        return int(self.leased.sum())

    @property
    def free_slots(self) -> int:
        return self.capacity - self.num_leased

    @property
    def mean_occupancy(self) -> float:
        """Simulated-time-weighted mean fraction of slots evaluating."""
        if self.busy_time <= 0.0:
            return 0.0
        return self.occupancy_time / self.busy_time

    # ------------------------------------------------------------------
    # Tenant churn
    # ------------------------------------------------------------------
    def attach(
        self,
        *,
        seeds=None,
        initial_solutions: np.ndarray | None = None,
        budgets,
        targets=None,
    ) -> np.ndarray:
        """Lease free slots to a new replica group; returns the slot indices.

        ``seeds`` draws replica ``r``'s start from
        ``np.random.default_rng(seeds[r])`` exactly like a standalone run —
        the bit-compatibility anchor.  ``budgets``/``targets`` broadcast
        over the group.  Raises :class:`CapacityError` when the group does
        not fit (the admission controller's signal to queue the job).
        """
        self._check_open()
        block = self._initial_block(None, seeds, None, initial_solutions)
        count = block.shape[0]
        free = np.nonzero(~self.leased)[0]
        if count > free.size:
            raise CapacityError(
                f"replica group needs {count} slots, only {free.size} free"
            )
        slots = free[:count]
        budget_block = np.broadcast_to(
            np.asarray(budgets, dtype=np.int64), (count,)
        ).copy()
        if (budget_block < 0).any():
            raise ValueError("budgets must be non-negative")
        target_block = (
            np.full(count, self.target_fitness, dtype=np.float64)
            if targets is None
            else np.broadcast_to(np.asarray(targets, dtype=np.float64), (count,)).copy()
        )
        self._install_rows(slots, block)
        fitness = np.asarray(self.problem.evaluate_batch(block), dtype=np.float64)
        self.current_fitness[slots] = fitness
        self.initial_fitness[slots] = fitness
        self.best[slots] = block
        self.best_fitness[slots] = fitness
        self.iterations[slots] = 0
        self.evaluations[slots] = 0
        self.sim_share[slots] = 0.0
        self.wall_share[slots] = 0.0
        self.budgets[slots] = budget_block
        self.targets[slots] = target_block
        self.reasons[slots] = "max_iterations"
        for slot in slots:
            self.histories[slot] = []
        # A fresh tenant starts from clean tabu state, exactly like a
        # standalone run's init: host stamps reset here, device-resident
        # stamps through the session's row fill.
        if self.last_applied is not None:
            self.last_applied[slots] = TABU_NEVER
        elif self._device_tabu:
            self.evaluator.write_tabu_rows(slots)
        self.leased[slots] = True
        self.active[slots] = True
        return slots

    def _install_rows(self, slots: np.ndarray, block: np.ndarray) -> None:
        """Patch ``block`` into the slot rows via a flipped-bit delta packet.

        The resident copy is brought in sync by XOR-ing in the difference
        against whatever the slots last held — priced as a normal delta
        upload, never a population re-upload.  The gain engine is *not*
        told: its self-healing mirror check re-derives exactly these rows
        at the next evaluation, which is the designed invalidation path for
        out-of-band row mutation.
        """
        if self._resident:
            rows, bits = np.nonzero(self.current[slots] ^ block)
            if rows.size:
                self.evaluator.apply_deltas(slots[rows], bits)
        self.current[slots] = block

    def detach(self, slots, *, cancel: bool = False) -> list[LSResult]:
        """Harvest retired slots' results and free them for the next tenant.

        ``cancel=True`` additionally allows detaching slots that are still
        searching (server shutdown); their results carry stopping reason
        ``"cancelled"``.
        """
        self._check_open()
        slots = np.asarray(slots, dtype=np.int64).ravel()
        results: list[LSResult] = []
        for slot in slots.tolist():
            if not self.leased[slot]:
                raise ValueError(f"slot {slot} is not leased")
            if self.active[slot]:
                if not cancel:
                    raise RuntimeError(
                        f"slot {slot} is still searching; pass cancel=True to"
                        " cut it short"
                    )
                self.active[slot] = False
                self.reasons[slot] = "cancelled"
            results.append(
                LSResult(
                    best_solution=self.best[slot].copy(),
                    best_fitness=float(self.best_fitness[slot]),
                    iterations=int(self.iterations[slot]),
                    evaluations=int(self.evaluations[slot]),
                    success=self.problem.is_solution(float(self.best_fitness[slot])),
                    stopping_reason=str(self.reasons[slot]),
                    simulated_time=float(self.sim_share[slot]),
                    wall_time=float(self.wall_share[slot]),
                    initial_fitness=float(self.initial_fitness[slot]),
                    history=list(self.histories[slot]),
                )
            )
            self.leased[slot] = False
            self.histories[slot] = []
        return results

    def suspend(self, slots) -> dict:
        """Pull a live replica group out of the batch, returning its state.

        The returned dict is everything :meth:`resume` needs to continue
        the group bit-identically in any free slots later: solutions,
        fitness/best/counter arrays, accrued accounting and the tabu stamps
        (host- or device-resident).
        """
        self._check_open()
        slots = np.asarray(slots, dtype=np.int64).ravel()
        for slot in slots.tolist():
            if not (self.leased[slot] and self.active[slot]):
                raise ValueError(f"slot {slot} is not actively searching")
        state = {
            "current": self.current[slots].copy(),
            "current_fitness": self.current_fitness[slots].copy(),
            "initial_fitness": self.initial_fitness[slots].copy(),
            "best": self.best[slots].copy(),
            "best_fitness": self.best_fitness[slots].copy(),
            "iterations": self.iterations[slots].copy(),
            "evaluations": self.evaluations[slots].copy(),
            "sim_share": self.sim_share[slots].copy(),
            "wall_share": self.wall_share[slots].copy(),
            "budgets": self.budgets[slots].copy(),
            "targets": self.targets[slots].copy(),
            "histories": [list(self.histories[slot]) for slot in slots.tolist()],
            "last_applied": (
                self.last_applied[slots].copy()
                if self.last_applied is not None
                else None
            ),
            "tabu_stamps": (
                self.evaluator.read_tabu_rows(slots) if self._device_tabu else None
            ),
        }
        self.active[slots] = False
        self.leased[slots] = False
        for slot in slots.tolist():
            self.histories[slot] = []
        return state

    def resume(self, state: dict) -> np.ndarray:
        """Re-admit a suspended group into free slots, restoring its state."""
        self._check_open()
        block = np.asarray(state["current"], dtype=np.int8)
        count = block.shape[0]
        free = np.nonzero(~self.leased)[0]
        if count > free.size:
            raise CapacityError(
                f"replica group needs {count} slots, only {free.size} free"
            )
        slots = free[:count]
        self._install_rows(slots, block)
        self.current_fitness[slots] = state["current_fitness"]
        self.initial_fitness[slots] = state["initial_fitness"]
        self.best[slots] = state["best"]
        self.best_fitness[slots] = state["best_fitness"]
        self.iterations[slots] = state["iterations"]
        self.evaluations[slots] = state["evaluations"]
        self.sim_share[slots] = state["sim_share"]
        self.wall_share[slots] = state["wall_share"]
        self.budgets[slots] = state["budgets"]
        self.targets[slots] = state["targets"]
        self.reasons[slots] = "max_iterations"
        for offset, slot in enumerate(slots.tolist()):
            self.histories[slot] = list(state["histories"][offset])
        if self.last_applied is not None:
            self.last_applied[slots] = state["last_applied"]
        elif self._device_tabu:
            self.evaluator.write_tabu_rows(slots, state["tabu_stamps"])
        self.leased[slots] = True
        self.active[slots] = True
        return slots

    # ------------------------------------------------------------------
    # The lockstep step boundary
    # ------------------------------------------------------------------
    def step(self) -> StepReport:
        """Advance every active slot one lockstep iteration.

        Semantics match one iteration of the closed runner's loop exactly —
        retire checks first (target takes precedence over the budget cap,
        like the scalar loop), then one batched evaluation + vectorized
        selection over the still-active slots, local optima retiring within
        the step.  Newly retired slots are reported for harvest.
        """
        self._check_open()
        report = StepReport()
        reached = self.active & (self.best_fitness <= self.targets)
        self.reasons[reached] = "target_reached"
        capped = self.active & ~reached & (self.iterations >= self.budgets)
        finished = reached | capped
        if finished.any():
            self.active &= ~finished
            report.retired.extend(np.nonzero(finished)[0].tolist())
        if not self.active.any():
            return report
        if (
            self._rebalance_enabled()
            and self.lockstep
            and self.lockstep % self.rebalance_every == 0
        ):
            # Placement/timing only — trajectories are unchanged; derived
            # gain state re-derives at the next evaluation.
            self.evaluator.rebalance_resident(active=self.active)
            if self._gain_engine is not None:
                self._gain_engine.invalidate_all()
        self.lockstep += 1
        active_idx = np.nonzero(self.active)[0]

        step_wall = time.perf_counter()
        step_sim = self.evaluator.stats.simulated_time
        if self._gain_engine is not None:
            self._gain_engine.expect(active_idx)
        sub_last = (
            self.last_applied[active_idx] if self.last_applied is not None else None
        )
        if self._reduced:
            indices, selected_fitness, optima = self._select_reduced(
                active_idx,
                self.current_fitness[active_idx],
                self.best_fitness[active_idx],
                self.iterations[active_idx],
                sub_last,
            )
        else:
            if self._resident:
                fitnesses = self.evaluator.evaluate_resident(active_idx)
            else:
                fitnesses = self.evaluator.evaluate_many(self.current[active_idx])
            indices, selected_fitness, optima = self._select(
                fitnesses,
                self.current_fitness[active_idx],
                self.best_fitness[active_idx],
                self.iterations[active_idx],
                sub_last,
            )
        sim_elapsed = self.evaluator.stats.simulated_time - step_sim
        self.sim_share[active_idx] += sim_elapsed / active_idx.size
        self.evaluations[active_idx] += self.neighborhood.size
        self.busy_time += sim_elapsed
        self.occupancy_time += sim_elapsed * (active_idx.size / self.capacity)

        if optima.any():
            stopped = active_idx[optima]
            self.reasons[stopped] = "local_optimum"
            self.active[stopped] = False
            report.retired.extend(stopped.tolist())

        movers = active_idx[~optima]
        if movers.size:
            move_idx = indices[~optima]
            moves = self.neighborhood.mapping.from_flat_batch(move_idx)
            self.current[movers[:, None], moves] ^= 1
            if self._gain_engine is not None:
                self._gain_engine.commit(movers, moves)
            if self._resident:
                self.evaluator.apply_deltas(
                    np.repeat(movers, moves.shape[1]), moves.reshape(-1)
                )
            self.current_fitness[movers] = selected_fitness[~optima]
            if self.last_applied is not None:
                self.last_applied[movers, move_idx] = self.iterations[movers]
            improved = self.current_fitness[movers] < self.best_fitness[movers]
            improved_rows = movers[improved]
            self.best[improved_rows] = self.current[improved_rows]
            self.best_fitness[improved_rows] = self.current_fitness[improved_rows]
            self.iterations[movers] += 1
            if self.track_history:
                for row, value in zip(
                    movers.tolist(), self.best_fitness[movers].tolist()
                ):
                    self.histories[row].append(value)
        self.wall_share[active_idx] += (
            time.perf_counter() - step_wall
        ) / active_idx.size
        report.evaluated = True
        report.sim_elapsed = sim_elapsed
        report.occupancy = active_idx.size / self.capacity
        return report

    def _rebalance_enabled(self) -> bool:
        return bool(
            self.rebalance_every
            and self._resident
            and self.transfer_mode != "persistent"
            and hasattr(self.evaluator, "rebalance_resident")
        )
