"""Text reporting of reproduced tables and figures.

The formatting mirrors the layout of the paper's tables so that a
side-by-side comparison with the published numbers is straightforward; the
same renderer feeds EXPERIMENTS.md and the command-line examples.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .experiment import ExperimentRow
from .figures import Figure8Point

__all__ = [
    "format_bytes",
    "format_experiment_table",
    "format_figure8_series",
    "format_time",
    "render_markdown_table",
]


def format_time(seconds: float) -> str:
    """Human-readable duration (the paper prints whole seconds)."""
    if seconds != seconds:  # NaN
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.0f}ms"
    if seconds < 120:
        return f"{seconds:.1f}s"
    if seconds < 7200:
        return f"{seconds / 60:.1f}min"
    return f"{seconds / 3600:.1f}h"


def format_bytes(count: int) -> str:
    """Human-readable byte count (PCIe traffic columns)."""
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024 or unit == "GiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GiB"  # pragma: no cover - loop always returns


def render_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def format_experiment_table(
    rows: Sequence[ExperimentRow],
    *,
    title: str | None = None,
    include_acceleration: bool = True,
    include_transfers: bool | None = None,
    include_devices: bool | None = None,
    include_interconnect: bool | None = None,
) -> str:
    """Format one reproduced table in the paper's column layout.

    ``include_transfers`` appends the device-pipeline columns (transfer
    mode, PCIe traffic, pinned staging, stream-overlap savings);
    ``include_devices`` appends the multi-GPU scheduler columns (pool size,
    peer-routed traffic, cross-device overlap); ``include_interconnect``
    appends the contention columns of the interconnect engine (topology,
    shared-uplink busy time, arbitration stalls).  All default to appearing
    automatically when any row carries the corresponding accounting.
    """
    if include_transfers is None:
        include_transfers = any(row.h2d_bytes or row.d2h_bytes for row in rows)
    if include_devices is None:
        include_devices = any(
            row.num_devices > 1 or row.p2p_bytes for row in rows
        )
    if include_interconnect is None:
        # Rows from parallel trial mode carry the topology *configuration*
        # but no engine accounting (sim_elapsed_s == 0); showing zero busy
        # times for them would present fabricated measurements.
        include_interconnect = any(
            (row.topology != "dedicated" and row.sim_elapsed_s > 0.0)
            or row.contention_stall_s > 0.0
            for row in rows
        )
    headers = [
        "Problem",
        "Fitness",
        "# iterations",
        "# solutions",
        "CPU time",
        "GPU time",
    ]
    if include_acceleration:
        headers.append("Acceleration")
    if include_transfers:
        headers.extend(["Mode", "Pinned", "H2D", "D2H", "Launches", "Overlap saved"])
    if include_devices:
        headers.extend(["Devices", "P2P", "Device overlap"])
    if include_interconnect:
        headers.extend(["Topology", "Uplink busy", "Contention stall"])
    body = []
    for row in rows:
        cells = [
            row.label,
            f"{row.mean_fitness:.1f} (+/-{row.std_fitness:.1f})",
            f"{row.mean_iterations:.1f}",
            f"{row.successes}/{row.num_trials}",
            format_time(row.cpu_time),
            format_time(row.gpu_time),
        ]
        if include_acceleration:
            cells.append(f"x{row.acceleration:.1f}")
        if include_transfers:
            cells.extend([
                row.transfer_mode,
                "yes" if row.pinned else "no",
                format_bytes(row.h2d_bytes),
                format_bytes(row.d2h_bytes),
                str(row.kernel_launches),
                format_time(row.overlap_saved_s),
            ])
        if include_devices:
            cells.extend([
                str(row.num_devices),
                format_bytes(row.p2p_bytes),
                format_time(row.cross_device_overlap_s),
            ])
        if include_interconnect:
            cells.extend([
                row.topology,
                f"{format_time(row.uplink_busy_s)} ({row.uplink_utilization:.0%})",
                format_time(row.contention_stall_s),
            ])
        body.append(cells)
    table = render_markdown_table(headers, body)
    if title:
        return f"**{title}**\n\n{table}"
    return table


def format_figure8_series(points: Sequence[Figure8Point], *, title: str | None = None) -> str:
    """Format the Figure 8 series (CPU curve, GPU curve, acceleration)."""
    headers = ["Problem size", "CPU time", "GPU time", "Acceleration"]
    body = [
        [p.label, format_time(p.cpu_time), format_time(p.gpu_time), f"x{p.acceleration:.1f}"]
        for p in points
    ]
    table = render_markdown_table(headers, body)
    if title:
        return f"**{title}**\n\n{table}"
    return table
