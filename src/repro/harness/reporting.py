"""Text reporting of reproduced tables and figures.

The formatting mirrors the layout of the paper's tables so that a
side-by-side comparison with the published numbers is straightforward; the
same renderer feeds EXPERIMENTS.md and the command-line examples.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .experiment import ExperimentRow
from .figures import Figure8Point

__all__ = [
    "format_experiment_table",
    "format_figure8_series",
    "format_time",
    "render_markdown_table",
]


def format_time(seconds: float) -> str:
    """Human-readable duration (the paper prints whole seconds)."""
    if seconds != seconds:  # NaN
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.0f}ms"
    if seconds < 120:
        return f"{seconds:.1f}s"
    if seconds < 7200:
        return f"{seconds / 60:.1f}min"
    return f"{seconds / 3600:.1f}h"


def render_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def format_experiment_table(
    rows: Sequence[ExperimentRow],
    *,
    title: str | None = None,
    include_acceleration: bool = True,
) -> str:
    """Format one reproduced table in the paper's column layout."""
    headers = [
        "Problem",
        "Fitness",
        "# iterations",
        "# solutions",
        "CPU time",
        "GPU time",
    ]
    if include_acceleration:
        headers.append("Acceleration")
    body = []
    for row in rows:
        cells = [
            row.label,
            f"{row.mean_fitness:.1f} (+/-{row.std_fitness:.1f})",
            f"{row.mean_iterations:.1f}",
            f"{row.successes}/{row.num_trials}",
            format_time(row.cpu_time),
            format_time(row.gpu_time),
        ]
        if include_acceleration:
            cells.append(f"x{row.acceleration:.1f}")
        body.append(cells)
    table = render_markdown_table(headers, body)
    if title:
        return f"**{title}**\n\n{table}"
    return table


def format_figure8_series(points: Sequence[Figure8Point], *, title: str | None = None) -> str:
    """Format the Figure 8 series (CPU curve, GPU curve, acceleration)."""
    headers = ["Problem size", "CPU time", "GPU time", "Acceleration"]
    body = [
        [p.label, format_time(p.cpu_time), format_time(p.gpu_time), f"x{p.acceleration:.1f}"]
        for p in points
    ]
    table = render_markdown_table(headers, body)
    if title:
        return f"**{title}**\n\n{table}"
    return table
