"""Experiment harness: regenerates every table and figure of the paper's evaluation."""

from .ablations import (
    AblationPoint,
    block_size_ablation,
    cpu_cores_ablation,
    device_ablation,
    multi_gpu_ablation,
    texture_ablation,
)
from .config import PAPER, REDUCED, SMOKE, ExperimentScale, get_scale
from .experiment import (
    EVALUATOR_SPECS,
    TRANSFER_MODES,
    TRIAL_MODES,
    ExperimentRow,
    TrialRecord,
    resolve_evaluator_factory,
    run_ppp_experiment,
    scale_experiment_rows,
)
from .figures import PAPER_FIGURE8_REFERENCE, Figure8Point, figure_eight
from .io import load_rows, points_to_json, rows_from_json, rows_to_json, save_figure8, save_rows
from .reporting import (
    format_bytes,
    format_experiment_table,
    format_figure8_series,
    format_time,
    render_markdown_table,
)
from .tables import (
    PAPER_REFERENCE,
    all_tables,
    format_service_table,
    table_one,
    table_three,
    table_two,
)

__all__ = [
    "AblationPoint",
    "block_size_ablation",
    "cpu_cores_ablation",
    "device_ablation",
    "multi_gpu_ablation",
    "texture_ablation",
    "rows_to_json",
    "rows_from_json",
    "save_rows",
    "load_rows",
    "points_to_json",
    "save_figure8",
    "ExperimentScale",
    "PAPER",
    "REDUCED",
    "SMOKE",
    "get_scale",
    "ExperimentRow",
    "TrialRecord",
    "run_ppp_experiment",
    "scale_experiment_rows",
    "EVALUATOR_SPECS",
    "TRIAL_MODES",
    "TRANSFER_MODES",
    "resolve_evaluator_factory",
    "table_one",
    "table_two",
    "table_three",
    "all_tables",
    "PAPER_REFERENCE",
    "Figure8Point",
    "figure_eight",
    "PAPER_FIGURE8_REFERENCE",
    "format_bytes",
    "format_experiment_table",
    "format_service_table",
    "format_figure8_series",
    "format_time",
    "render_markdown_table",
]
