"""Serialization of harness results (JSON round-tripping of rows and figure points).

Long experiment campaigns (the ``paper`` scale in particular) should be able
to checkpoint their results and have EXPERIMENTS.md regenerated without
rerunning anything; these helpers provide the stable on-disk representation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from ..problems.instances import PPPInstanceSpec
from .experiment import ExperimentRow, TrialRecord
from .figures import Figure8Point

__all__ = [
    "rows_to_json",
    "rows_from_json",
    "save_rows",
    "load_rows",
    "points_to_json",
    "save_figure8",
]


def rows_to_json(rows: Sequence[ExperimentRow]) -> list[dict]:
    """Convert experiment rows (including per-trial records) to plain dictionaries."""
    out = []
    for row in rows:
        out.append(
            {
                "instance": {"m": row.instance.m, "n": row.instance.n},
                "order": row.order,
                "cpu_time_per_iteration": row.cpu_time_per_iteration,
                "gpu_time_per_iteration": row.gpu_time_per_iteration,
                "trials": [
                    {
                        "trial": t.trial,
                        "fitness": t.fitness,
                        "iterations": t.iterations,
                        "success": bool(t.success),
                        "wall_time": t.wall_time,
                    }
                    for t in row.trials
                ],
            }
        )
    return out


def rows_from_json(payload: Sequence[dict]) -> list[ExperimentRow]:
    """Inverse of :func:`rows_to_json`."""
    rows = []
    for entry in payload:
        row = ExperimentRow(
            instance=PPPInstanceSpec(entry["instance"]["m"], entry["instance"]["n"]),
            order=int(entry["order"]),
            cpu_time_per_iteration=float(entry["cpu_time_per_iteration"]),
            gpu_time_per_iteration=float(entry["gpu_time_per_iteration"]),
        )
        for t in entry["trials"]:
            row.trials.append(
                TrialRecord(
                    trial=int(t["trial"]),
                    fitness=float(t["fitness"]),
                    iterations=int(t["iterations"]),
                    success=bool(t["success"]),
                    wall_time=float(t["wall_time"]),
                )
            )
        rows.append(row)
    return rows


def save_rows(rows: Sequence[ExperimentRow], path: str | Path) -> Path:
    """Write experiment rows to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(rows_to_json(rows), indent=2))
    return path


def load_rows(path: str | Path) -> list[ExperimentRow]:
    """Read experiment rows previously written by :func:`save_rows`."""
    return rows_from_json(json.loads(Path(path).read_text()))


def points_to_json(points: Sequence[Figure8Point]) -> list[dict]:
    """Convert Figure 8 points to plain dictionaries (one-way: for reports)."""
    return [p.as_dict() for p in points]


def save_figure8(points: Sequence[Figure8Point], path: str | Path) -> Path:
    """Write the Figure 8 series to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(points_to_json(points), indent=2))
    return path
