"""Serialization of harness results (JSON round-tripping of rows and figure points).

Long experiment campaigns (the ``paper`` scale in particular) should be able
to checkpoint their results and have EXPERIMENTS.md regenerated without
rerunning anything; these helpers provide the stable on-disk representation.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Sequence

import numpy as np

from ..problems.instances import PPPInstanceSpec
from .experiment import ExperimentRow, TrialRecord
from .figures import Figure8Point

__all__ = [
    "rows_to_json",
    "rows_from_json",
    "save_rows",
    "load_rows",
    "points_to_json",
    "save_figure8",
    "save_checkpoint",
    "load_checkpoint",
]


def rows_to_json(rows: Sequence[ExperimentRow]) -> list[dict]:
    """Convert experiment rows (including per-trial records) to plain dictionaries."""
    out = []
    for row in rows:
        out.append(
            {
                "instance": {"m": row.instance.m, "n": row.instance.n},
                "order": row.order,
                "cpu_time_per_iteration": row.cpu_time_per_iteration,
                "gpu_time_per_iteration": row.gpu_time_per_iteration,
                "trials": [
                    {
                        "trial": t.trial,
                        "fitness": t.fitness,
                        "iterations": t.iterations,
                        "success": bool(t.success),
                        "wall_time": t.wall_time,
                    }
                    for t in row.trials
                ],
            }
        )
    return out


def rows_from_json(payload: Sequence[dict]) -> list[ExperimentRow]:
    """Inverse of :func:`rows_to_json`."""
    rows = []
    for entry in payload:
        row = ExperimentRow(
            instance=PPPInstanceSpec(entry["instance"]["m"], entry["instance"]["n"]),
            order=int(entry["order"]),
            cpu_time_per_iteration=float(entry["cpu_time_per_iteration"]),
            gpu_time_per_iteration=float(entry["gpu_time_per_iteration"]),
        )
        for t in entry["trials"]:
            row.trials.append(
                TrialRecord(
                    trial=int(t["trial"]),
                    fitness=float(t["fitness"]),
                    iterations=int(t["iterations"]),
                    success=bool(t["success"]),
                    wall_time=float(t["wall_time"]),
                )
            )
        rows.append(row)
    return rows


def save_rows(rows: Sequence[ExperimentRow], path: str | Path) -> Path:
    """Write experiment rows to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(rows_to_json(rows), indent=2))
    return path


def load_rows(path: str | Path) -> list[ExperimentRow]:
    """Read experiment rows previously written by :func:`save_rows`."""
    return rows_from_json(json.loads(Path(path).read_text()))


def points_to_json(points: Sequence[Figure8Point]) -> list[dict]:
    """Convert Figure 8 points to plain dictionaries (one-way: for reports)."""
    return [p.as_dict() for p in points]


def save_figure8(points: Sequence[Figure8Point], path: str | Path) -> Path:
    """Write the Figure 8 series to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(points_to_json(points), indent=2))
    return path


# ---------------------------------------------------------------------------
# Runner checkpoints (see repro.localsearch.multistart.CHECKPOINT_VERSION)
# ---------------------------------------------------------------------------
#
# Checkpoints are nested dicts of scalars and numpy arrays.  The codec below
# is lossless: arrays are stored as raw little-ordered bytes (base64) with
# their dtype and shape, so tabu stamps, int8 solution blocks and float64
# accounting all round-trip bit-for-bit; Python floats survive exactly
# because ``json`` emits ``repr``-roundtrippable literals.  Tuples come back
# as lists — the runner's restore path re-coerces the handful it cares about.

_NDARRAY_TAG = "__ndarray__"


def _encode(value):
    if isinstance(value, np.ndarray):
        return {
            _NDARRAY_TAG: {
                "dtype": str(value.dtype),
                "shape": list(value.shape),
                "data": base64.b64encode(np.ascontiguousarray(value).tobytes()).decode(
                    "ascii"
                ),
            }
        }
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        return {str(key): _encode(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    return value


def _decode(value):
    if isinstance(value, dict):
        tagged = value.get(_NDARRAY_TAG)
        if tagged is not None and len(value) == 1:
            raw = base64.b64decode(tagged["data"])
            array = np.frombuffer(raw, dtype=np.dtype(tagged["dtype"]))
            return array.reshape(tuple(tagged["shape"])).copy()
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


def save_checkpoint(path: str | Path, checkpoint: dict) -> Path:
    """Write a runner checkpoint to ``path`` as self-describing JSON."""
    path = Path(path)
    path.write_text(json.dumps(_encode(checkpoint)))
    return path


def load_checkpoint(path: str | Path) -> dict:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Purely structural: version/config validation happens in
    :meth:`repro.localsearch.multistart.MultiStartRunner.run` when the
    checkpoint is fed back through ``resume=``.
    """
    return _decode(json.loads(Path(path).read_text()))
