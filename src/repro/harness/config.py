"""Experiment scale presets.

The paper's evaluation protocol (Section IV-B) runs each tabu search 50
times per instance with a maximum of ``n(n-1)(n-2)/6`` iterations — hours of
compute even on the original hardware, and far more in pure Python.  The
harness therefore exposes *scales*: the exact paper protocol, a reduced
protocol that regenerates every table/figure in minutes with the real
instance dimensions, and a smoke protocol (scaled-down instances, a handful
of iterations) used by the automated benchmarks and CI.

All scales run exactly the same code path; only trial counts, iteration
budgets and instance dimensions change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..problems.instances import FIGURE8_INSTANCES, TABLE_INSTANCES, PPPInstanceSpec

__all__ = ["ExperimentScale", "PAPER", "REDUCED", "SMOKE", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs of one experiment-protocol preset."""

    name: str
    #: Independent tabu-search runs per instance (the paper uses 50).
    trials: int
    #: Instances used for the Table I/II/III experiments.
    table_instances: tuple[PPPInstanceSpec, ...]
    #: Iteration caps per Hamming order; ``None`` means the paper's rule
    #: ``n(n-1)(n-2)/6``.
    max_iterations: dict[int, int | None] = field(default_factory=dict)
    #: Instances used for the Figure 8 sweep.
    figure8_instances: tuple[PPPInstanceSpec, ...] = FIGURE8_INSTANCES
    #: Iteration count Figure 8 reports times for (the paper uses 10 000).
    figure8_nominal_iterations: int = 10_000
    #: Iterations actually executed per Figure 8 point to verify behaviour
    #: functionally (model times are then scaled to the nominal count).
    figure8_executed_iterations: int = 10_000
    #: Trials per Figure 8 point.
    figure8_trials: int = 1

    def iteration_cap(self, spec: PPPInstanceSpec, order: int) -> int:
        """Iteration budget for one run on ``spec`` with a ``order``-Hamming neighborhood."""
        cap = self.max_iterations.get(order)
        if cap is None:
            n = spec.n
            return n * (n - 1) * (n - 2) // 6
        return cap


#: The exact protocol of the paper.  Running it in pure Python takes a very
#: long time; it exists so the full configuration is explicit and runnable.
PAPER = ExperimentScale(
    name="paper",
    trials=50,
    table_instances=TABLE_INSTANCES,
    max_iterations={1: None, 2: None, 3: None},
    figure8_nominal_iterations=10_000,
    figure8_executed_iterations=10_000,
)

#: Same instances as the paper, reduced trial counts and iteration budgets.
#: Regenerates every table and figure in minutes on a laptop.
REDUCED = ExperimentScale(
    name="reduced",
    trials=5,
    table_instances=TABLE_INSTANCES,
    max_iterations={1: 400, 2: 120, 3: 40},
    figure8_nominal_iterations=10_000,
    figure8_executed_iterations=25,
)

#: Scaled-down instances and tiny budgets for CI / pytest-benchmark.  The
#: instance family keeps the paper's aspect (square instances plus one
#: rectangular m < n instance).
SMOKE = ExperimentScale(
    name="smoke",
    trials=3,
    table_instances=(
        PPPInstanceSpec(25, 25),
        PPPInstanceSpec(27, 27),
        PPPInstanceSpec(33, 33),
        PPPInstanceSpec(33, 39),
    ),
    max_iterations={1: 60, 2: 40, 3: 25},
    figure8_instances=FIGURE8_INSTANCES,
    figure8_nominal_iterations=10_000,
    figure8_executed_iterations=3,
)

_SCALES = {scale.name: scale for scale in (PAPER, REDUCED, SMOKE)}


def get_scale(name: str | ExperimentScale) -> ExperimentScale:
    """Look up a scale preset by name (or pass through an explicit scale)."""
    if isinstance(name, ExperimentScale):
        return name
    key = name.lower()
    if key not in _SCALES:
        raise KeyError(f"unknown scale {name!r}; available: {sorted(_SCALES)}")
    return _SCALES[key]
