"""Regeneration of Figure 8: GPU acceleration of the 1-Hamming kernel vs instance size.

The paper measures, for fifteen synthetic PPP instances from 101x117 up to
1501x1517, the execution time of 10 000 tabu-search iterations with the
1-Hamming neighborhood on the CPU and on the GPU, and plots both curves
(the acceleration factor grows from ~1.1x at 201x217 to ~10.8x at
1501x1517).

Reproducing the *functional* part of 10 000 iterations for every size in
pure Python is unnecessary: the per-iteration time is independent of the
search trajectory, so each point executes a small number of real iterations
(to exercise the code path end to end) and reports model times scaled to
the nominal 10 000 iterations — exactly how the paper itself extrapolates
the 3-Hamming CPU times it could not afford to measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.evaluators import CPUEvaluator
from ..core.timing_estimates import iteration_times
from ..localsearch.tabu import TabuSearch
from ..neighborhoods import OneHammingNeighborhood
from ..problems import PermutedPerceptronProblem
from ..problems.instances import PPPInstanceSpec, instance_seed
from .config import ExperimentScale, get_scale

__all__ = ["Figure8Point", "figure_eight", "PAPER_FIGURE8_REFERENCE"]

#: Approximate values read off the paper's Figure 8 (acceleration factors).
PAPER_FIGURE8_REFERENCE = {
    "201 x 217": 1.1,
    "1501 x 1517": 10.8,
}


@dataclass(frozen=True)
class Figure8Point:
    """One x-position of Figure 8."""

    instance: PPPInstanceSpec
    nominal_iterations: int
    executed_iterations: int
    cpu_time: float
    gpu_time: float
    final_fitness: float

    @property
    def label(self) -> str:
        return self.instance.label

    @property
    def acceleration(self) -> float:
        return self.cpu_time / self.gpu_time if self.gpu_time else float("inf")

    def as_dict(self) -> dict:
        return {
            "instance": self.label,
            "cpu_time_s": self.cpu_time,
            "gpu_time_s": self.gpu_time,
            "acceleration": self.acceleration,
            "nominal_iterations": self.nominal_iterations,
        }


def figure_eight(
    scale: str | ExperimentScale = "smoke",
    *,
    max_points: int | None = None,
) -> list[Figure8Point]:
    """Compute the CPU/GPU execution-time series of Figure 8.

    ``max_points`` truncates the instance sweep (useful for quick benches —
    the largest instances allocate matrices of ~1500 x 1500).
    """
    scale = get_scale(scale)
    points: list[Figure8Point] = []
    specs = scale.figure8_instances
    if max_points is not None:
        specs = specs[:max_points]
    for spec in specs:
        problem = PermutedPerceptronProblem.generate(
            spec.m, spec.n, rng=instance_seed(spec.m, spec.n)
        )
        neighborhood = OneHammingNeighborhood(problem.n)
        per_iteration = iteration_times(problem, neighborhood)

        final_fitness = float("nan")
        executed = scale.figure8_executed_iterations
        if executed > 0:
            search = TabuSearch(
                CPUEvaluator(problem, neighborhood),
                max_iterations=executed,
                target_fitness=-1.0,  # run exactly `executed` iterations
            )
            result = search.run(rng=instance_seed(spec.m, spec.n, trial=1))
            final_fitness = result.best_fitness

        nominal = scale.figure8_nominal_iterations
        points.append(
            Figure8Point(
                instance=spec,
                nominal_iterations=nominal,
                executed_iterations=executed,
                cpu_time=per_iteration.cpu_time * nominal,
                gpu_time=per_iteration.gpu_time * nominal,
                final_fitness=final_fitness,
            )
        )
    return points
