"""Ablation studies of the design choices called out in DESIGN.md.

Each function sweeps one modelling/implementation knob and returns a list of
labelled measurements, so the effect of every choice the paper (or this
reproduction) makes can be quantified:

* thread-block size — the occupancy trade-off of Section III-A;
* texture binding of the instance data — the "GPUTexture" curve of Figure 8;
* device generation — GTX 280 vs the G80 the paper contrasts it with;
* number of devices — the multi-GPU perspective of Section V;
* number of CPU cores — how much of the GPU advantage a multi-core CPU
  baseline would claw back (a question the paper leaves open).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.evaluators import GPUEvaluator, MultiGPUEvaluator
from ..core.timing_estimates import iteration_times
from ..gpu.device import GTX_280, GTX_8800, TESLA_C1060, DeviceSpec
from ..neighborhoods import KHammingNeighborhood
from ..problems import PermutedPerceptronProblem

__all__ = [
    "AblationPoint",
    "block_size_ablation",
    "texture_ablation",
    "device_ablation",
    "multi_gpu_ablation",
    "cpu_cores_ablation",
]


@dataclass(frozen=True)
class AblationPoint:
    """One configuration of an ablation sweep and its modeled iteration time."""

    label: str
    gpu_time: float
    cpu_time: float

    @property
    def speedup(self) -> float:
        return self.cpu_time / self.gpu_time if self.gpu_time else float("inf")


def _default_problem(order: int) -> tuple[PermutedPerceptronProblem, KHammingNeighborhood]:
    problem = PermutedPerceptronProblem.generate(101, 117, rng=0)
    return problem, KHammingNeighborhood(problem.n, order)


def block_size_ablation(
    order: int = 2,
    block_sizes: tuple[int, ...] = (32, 64, 128, 256, 512),
) -> list[AblationPoint]:
    """Modeled iteration time as a function of the threads-per-block choice."""
    problem, neighborhood = _default_problem(order)
    points = []
    for block in block_sizes:
        t = iteration_times(problem, neighborhood, block_size=block)
        points.append(AblationPoint(label=f"block={block}", gpu_time=t.gpu_time, cpu_time=t.cpu_time))
    return points


def texture_ablation(orders: tuple[int, ...] = (1, 2, 3)) -> list[AblationPoint]:
    """Plain global-memory reads vs binding the instance matrix to a texture."""
    points = []
    for order in orders:
        problem, neighborhood = _default_problem(order)
        plain = iteration_times(problem, neighborhood, use_texture=False)
        tex = iteration_times(problem, neighborhood, use_texture=True)
        points.append(AblationPoint(f"{order}-Hamming/global", plain.gpu_time, plain.cpu_time))
        points.append(AblationPoint(f"{order}-Hamming/texture", tex.gpu_time, tex.cpu_time))
    return points


def device_ablation(
    order: int = 2,
    devices: tuple[DeviceSpec, ...] = (GTX_8800, TESLA_C1060, GTX_280),
) -> list[AblationPoint]:
    """Modeled iteration time across device generations (G80 vs GT200)."""
    problem, neighborhood = _default_problem(order)
    points = []
    for device in devices:
        t = iteration_times(problem, neighborhood, device=device)
        points.append(AblationPoint(label=device.name, gpu_time=t.gpu_time, cpu_time=t.cpu_time))
    return points


def multi_gpu_ablation(
    order: int = 3,
    device_counts: tuple[int, ...] = (1, 2, 4, 8),
) -> list[AblationPoint]:
    """Simulated per-iteration time of the partitioned multi-GPU exploration."""
    problem, neighborhood = _default_problem(order)
    solution = problem.random_solution(0)
    cpu_time = iteration_times(problem, neighborhood).cpu_time
    points = []
    for count in device_counts:
        if count == 1:
            evaluator = GPUEvaluator(problem, neighborhood)
        else:
            evaluator = MultiGPUEvaluator(problem, neighborhood, devices=count)
        evaluator.evaluate(solution)
        points.append(
            AblationPoint(label=f"{count} GPU(s)", gpu_time=evaluator.stats.simulated_time,
                          cpu_time=cpu_time)
        )
    return points


def cpu_cores_ablation(
    order: int = 3,
    core_counts: tuple[int, ...] = (1, 2, 4, 8),
) -> list[AblationPoint]:
    """How a multi-core CPU baseline would narrow the gap (paper uses one core)."""
    problem, neighborhood = _default_problem(order)
    gpu_time = iteration_times(problem, neighborhood).gpu_time
    points = []
    for cores in core_counts:
        t = iteration_times(problem, neighborhood, cpu_cores=cores)
        points.append(AblationPoint(label=f"{cores} core(s)", gpu_time=gpu_time, cpu_time=t.cpu_time))
    return points
