"""Multi-trial experiment runner for the PPP tabu-search evaluation.

This module turns individual :class:`~repro.localsearch.result.LSResult`
runs into the aggregate rows reported by the paper's tables: mean/std
fitness, number of iterations, number of successful tries and the modeled
CPU/GPU times for the measured trajectory length.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
import numpy as np

from ..core.evaluators import (
    CPUEvaluator,
    GPUEvaluator,
    MultiGPUEvaluator,
    NeighborhoodEvaluator,
    SequentialEvaluator,
)
from ..core.timing_estimates import iteration_times
from ..localsearch.base import TRANSFER_MODES
from ..localsearch.multistart import MultiStartRunner
from ..localsearch.tabu import TabuSearch
from ..neighborhoods import KHammingNeighborhood
from ..problems.instances import PPPInstanceSpec, instance_seed, make_table_instance
from .config import ExperimentScale

__all__ = [
    "TrialRecord",
    "ExperimentRow",
    "run_ppp_experiment",
    "EVALUATOR_SPECS",
    "resolve_evaluator_factory",
    "TRIAL_MODES",
    "TRANSFER_MODES",
]

#: Trial execution strategies of :func:`run_ppp_experiment`: one search at a
#: time, one worker process per trial, or all trials advanced in lockstep
#: through one batched evaluator.
TRIAL_MODES = ("serial", "parallel", "batched")

#: Named evaluator factories.  Names (unlike arbitrary callables) can be
#: shipped to worker processes and rebuilt there, which is what lets the
#: parallel trial runner support every platform.  The GPU-backed factories
#: accept the device-pool options (``devices``, ``pinned``, ``topology``).
EVALUATOR_SPECS = {
    "cpu": lambda problem, neighborhood: CPUEvaluator(problem, neighborhood),
    "sequential": lambda problem, neighborhood: SequentialEvaluator(problem, neighborhood),
    "gpu": lambda problem, neighborhood, pinned=False, topology=None: GPUEvaluator(
        problem, neighborhood, pinned=pinned, topology=topology
    ),
    "multi-gpu": lambda problem, neighborhood, devices=2, pinned=False, topology=None: (
        MultiGPUEvaluator(
            problem, neighborhood, devices=devices, pinned=pinned, topology=topology
        )
    ),
}

#: Which pool options each named spec understands.
_SPEC_OPTIONS = {
    "cpu": (),
    "sequential": (),
    "gpu": ("pinned", "topology"),
    "multi-gpu": ("devices", "pinned", "topology"),
}


def resolve_evaluator_factory(
    spec,
    *,
    devices: int | None = None,
    pinned: bool = False,
    topology: str | None = None,
):
    """Turn an evaluator spec (name, callable or ``None``) into a factory.

    ``None`` selects the default vectorized CPU evaluator; a string is looked
    up in :data:`EVALUATOR_SPECS`; a callable is returned unchanged.  The
    ``devices``/``pinned``/``topology`` pool options apply only to the
    GPU-backed named specs — passing them with a CPU spec or a custom
    callable is an error (silently ignoring them would misreport the
    experiment's configuration).
    """
    options_requested = devices is not None or pinned or topology is not None
    if spec is None:
        if options_requested:
            raise ValueError(
                "devices/pinned/topology need a GPU-backed evaluator spec "
                "(\"gpu\" or \"multi-gpu\")"
            )
        return EVALUATOR_SPECS["cpu"]
    if isinstance(spec, str):
        try:
            base = EVALUATOR_SPECS[spec]
        except KeyError:
            raise ValueError(
                f"unknown evaluator spec {spec!r}; expected one of {sorted(EVALUATOR_SPECS)}"
            ) from None
        supported = _SPEC_OPTIONS[spec]
        if devices is not None and "devices" not in supported:
            raise ValueError(f"evaluator spec {spec!r} does not take a device count")
        if pinned and "pinned" not in supported:
            raise ValueError(f"evaluator spec {spec!r} does not support pinned memory")
        if topology is not None and "topology" not in supported:
            raise ValueError(
                f"evaluator spec {spec!r} does not take an interconnect topology"
            )
        if not supported or not options_requested:
            return base
        options = {}
        if devices is not None and "devices" in supported:
            options["devices"] = devices
        if "pinned" in supported:
            options["pinned"] = pinned
        if topology is not None and "topology" in supported:
            options["topology"] = topology
        return lambda problem, neighborhood: base(problem, neighborhood, **options)
    if callable(spec):
        if options_requested:
            raise ValueError(
                "devices/pinned/topology apply to named evaluator specs only; "
                "bake them into the custom factory instead"
            )
        return spec
    raise TypeError(f"evaluator spec must be a name, a callable or None, got {type(spec)}")


@dataclass(frozen=True)
class TrialRecord:
    """Outcome of one tabu-search run."""

    trial: int
    fitness: float
    iterations: int
    success: bool
    wall_time: float


@dataclass
class ExperimentRow:
    """One row of a reproduced table (one instance, one neighborhood order)."""

    instance: PPPInstanceSpec
    order: int
    trials: list[TrialRecord] = field(default_factory=list)
    #: Modeled single-iteration times for this instance/neighborhood.
    cpu_time_per_iteration: float = 0.0
    gpu_time_per_iteration: float = 0.0
    #: Transfer/timeline accounting of the run (populated when the trials
    #: execute on a simulated device).
    transfer_mode: str = "full"
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    #: Device->device bytes routed over peer links (no host round trip);
    #: disjoint from the h2d/d2h counters by construction.
    p2p_bytes: int = 0
    #: Kernel launches issued over the whole run (summed across devices).
    #: The persistent mode collapses this to one launch per device per run.
    kernel_launches: int = 0
    #: Overlap-aware elapsed simulated device time: the cross-device
    #: stream-timeline makespan.
    sim_elapsed_s: float = 0.0
    #: Transfer time hidden under concurrent kernel execution.
    overlap_saved_s: float = 0.0
    #: Devices in the pool the trials ran on (1 for single-GPU/CPU).
    num_devices: int = 1
    #: Whether host transfers were staged through pinned memory.
    pinned: bool = False
    #: *Measured host* wall-clock seconds spent in kernel bodies (the NumPy
    #: evaluation math), summed over the pool.  Subtracting it from a bench's
    #: measured wall time isolates the simulator's own bookkeeping overhead.
    eval_wall_s: float = 0.0
    #: Total host<->device transfer time summed over the pool.
    transfer_time_s: float = 0.0
    #: What the recorded device work would cost serialized one device after
    #: another (sum of per-device stream busy times).
    serialized_device_s: float = 0.0
    #: Per-device overlap-aware elapsed times (timeline makespans).
    device_elapsed_s: list[float] = field(default_factory=list)
    #: Interconnect topology the pool's transfers were routed over.
    topology: str = "dedicated"
    #: Busy time of the shared host uplink (0 on dedicated fabrics).
    uplink_busy_s: float = 0.0
    #: Total time transfers spent stalled on shared-link arbitration.
    contention_stall_s: float = 0.0

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        return self.instance.label

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    @property
    def mean_fitness(self) -> float:
        return float(np.mean([t.fitness for t in self.trials])) if self.trials else float("nan")

    @property
    def std_fitness(self) -> float:
        return float(np.std([t.fitness for t in self.trials])) if self.trials else float("nan")

    @property
    def mean_iterations(self) -> float:
        return float(np.mean([t.iterations for t in self.trials])) if self.trials else float("nan")

    @property
    def successes(self) -> int:
        return sum(t.success for t in self.trials)

    @property
    def cpu_time(self) -> float:
        """Modeled CPU time of one average run (paper's "CPU time" column)."""
        return self.cpu_time_per_iteration * self.mean_iterations

    @property
    def gpu_time(self) -> float:
        """Modeled GPU time of one average run (paper's "GPU time" column)."""
        return self.gpu_time_per_iteration * self.mean_iterations

    @property
    def acceleration(self) -> float:
        """CPU / GPU acceleration factor (paper's "Acceleration" column)."""
        return self.cpu_time / self.gpu_time if self.gpu_time else float("inf")

    @property
    def cross_device_overlap_s(self) -> float:
        """Simulated time saved by running the devices concurrently."""
        return max(0.0, self.serialized_device_s - self.sim_elapsed_s)

    @property
    def uplink_utilization(self) -> float:
        """Fraction of the elapsed makespan the shared host uplink was busy."""
        if self.sim_elapsed_s <= 0.0:
            return 0.0
        return self.uplink_busy_s / self.sim_elapsed_s

    def as_dict(self) -> dict:
        """Plain-dictionary view (used by the reporting code and the benches)."""
        return {
            "instance": self.label,
            "order": self.order,
            "trials": self.num_trials,
            "fitness_mean": self.mean_fitness,
            "fitness_std": self.std_fitness,
            "iterations_mean": self.mean_iterations,
            "successes": self.successes,
            "cpu_time_s": self.cpu_time,
            "gpu_time_s": self.gpu_time,
            "acceleration": self.acceleration,
            "transfer_mode": self.transfer_mode,
            "h2d_bytes": self.h2d_bytes,
            "d2h_bytes": self.d2h_bytes,
            "p2p_bytes": self.p2p_bytes,
            "kernel_launches": self.kernel_launches,
            "sim_elapsed_s": self.sim_elapsed_s,
            "overlap_saved_s": self.overlap_saved_s,
            "num_devices": self.num_devices,
            "pinned": self.pinned,
            "eval_wall_s": self.eval_wall_s,
            "transfer_time_s": self.transfer_time_s,
            "serialized_device_s": self.serialized_device_s,
            "cross_device_overlap_s": self.cross_device_overlap_s,
            "device_elapsed_s": list(self.device_elapsed_s),
            "topology": self.topology,
            "uplink_busy_s": self.uplink_busy_s,
            "uplink_utilization": self.uplink_utilization,
            "contention_stall_s": self.contention_stall_s,
        }


def _collect_transfer_stats(evaluator, row: ExperimentRow) -> None:
    """Fill the row's transfer/timeline columns from a device-backed evaluator."""
    contexts = []
    if hasattr(evaluator, "context"):
        contexts = [evaluator.context]
    elif hasattr(evaluator, "pool"):
        contexts = list(evaluator.pool.contexts)
    if not contexts:
        return
    row.h2d_bytes = sum(ctx.stats.h2d_bytes for ctx in contexts)
    row.d2h_bytes = sum(ctx.stats.d2h_bytes for ctx in contexts)
    row.p2p_bytes = sum(ctx.stats.p2p_bytes for ctx in contexts)
    row.kernel_launches = sum(ctx.stats.kernel_launches for ctx in contexts)
    # Concurrent devices: the elapsed makespan is the slowest device's.
    row.sim_elapsed_s = max(ctx.timeline.elapsed for ctx in contexts)
    row.overlap_saved_s = sum(ctx.timeline.overlap_saved for ctx in contexts)
    row.num_devices = len(contexts)
    row.pinned = any(ctx.pinned for ctx in contexts)
    row.eval_wall_s = sum(ctx.stats.host_eval_time for ctx in contexts)
    row.transfer_time_s = sum(ctx.stats.transfer_time for ctx in contexts)
    row.serialized_device_s = sum(ctx.timeline.busy_time for ctx in contexts)
    row.device_elapsed_s = [ctx.timeline.elapsed for ctx in contexts]
    engine = contexts[0].engine
    if all(ctx.engine is engine for ctx in contexts):
        row.topology = engine.topology.name
        row.uplink_busy_s = engine.uplink_busy()
        row.contention_stall_s = engine.total_stall


def _run_single_trial(
    spec: tuple[int, int],
    order: int,
    max_iterations: int,
    tenure: int | None,
    seed: int,
    trial: int,
    evaluator: str = "cpu",
    transfer_mode: str = "full",
    devices: int | None = None,
    pinned: bool = False,
    topology: str | None = None,
) -> TrialRecord:
    """Worker executing one tabu-search trial (used by the parallel runner).

    Rebuilds the instance, the evaluator (from its picklable *name*) and the
    search from scratch so the function is self-contained; determinism is
    guaranteed by the seeds.
    """
    m, n = spec
    problem = make_table_instance(PPPInstanceSpec(m, n), trial=0)
    neighborhood = KHammingNeighborhood(problem.n, order)
    factory = resolve_evaluator_factory(
        evaluator, devices=devices, pinned=pinned, topology=topology
    )
    search = TabuSearch(
        factory(problem, neighborhood),
        tenure=tenure,
        max_iterations=max_iterations,
        transfer_mode=transfer_mode,
    )
    result = search.run(rng=seed)
    return TrialRecord(
        trial=trial,
        fitness=result.best_fitness,
        iterations=result.iterations,
        success=result.success,
        wall_time=result.wall_time,
    )


def run_ppp_experiment(
    spec: PPPInstanceSpec | tuple[int, int],
    order: int,
    *,
    trials: int,
    max_iterations: int,
    tenure: int | None = None,
    evaluator_factory=None,
    base_seed: int | None = None,
    track_history: bool = False,
    n_jobs: int = 1,
    trial_mode: str = "serial",
    transfer_mode: str = "full",
    devices: int | None = None,
    pinned: bool = False,
    topology: str | None = None,
    host_workers: int | None = None,
    fault_plan: str | None = None,
    checkpoint_every: int | None = None,
    checkpoint_path=None,
    restore=None,
) -> ExperimentRow:
    """Run the paper's tabu-search protocol on one instance and one neighborhood.

    Parameters
    ----------
    spec:
        Instance dimensions ``(m, n)``.
    order:
        Hamming order of the neighborhood (1, 2 or 3 in the paper).
    trials:
        Number of independent runs (the paper uses 50).
    max_iterations:
        Iteration cap per run (the paper uses ``n(n-1)(n-2)/6``).
    tenure:
        Tabu tenure; defaults to the paper's ``|N| / 6`` rule.
    evaluator_factory:
        Either a named evaluator spec (one of :data:`EVALUATOR_SPECS`:
        ``"cpu"``, ``"sequential"``, ``"gpu"``, ``"multi-gpu"``) or a
        callable ``(problem, neighborhood) -> NeighborhoodEvaluator``;
        defaults to the vectorized CPU evaluator (all evaluators are
        functionally identical, so the choice only affects wall-clock
        time).  Parallel mode accepts only *named* specs, because the
        worker processes must rebuild the evaluator from a picklable
        description.
    base_seed:
        Base RNG seed; each trial uses a distinct derived seed.
    n_jobs:
        Number of worker processes for ``trial_mode="parallel"``.  Passing
        ``n_jobs > 1`` alone selects parallel mode for backward
        compatibility.
    trial_mode:
        How the independent trials are executed; all three modes produce
        identical per-trial records for the same seeds:

        * ``"serial"`` — one :class:`TabuSearch` run after the other (the
          paper's protocol, literally);
        * ``"parallel"`` — one worker process per trial across ``n_jobs``
          host cores;
        * ``"batched"`` — all trials advance in lockstep through a
          :class:`~repro.localsearch.multistart.MultiStartRunner`, one
          batched ``(S, n) -> (S, M)`` evaluation per iteration — the
          solution-parallel execution engine.
    transfer_mode:
        One of :data:`TRANSFER_MODES` (``"full"``, ``"delta"``,
        ``"reduced"``, ``"persistent"``): how candidate data moves between
        host and device each iteration — ``"persistent"`` runs every search
        as a single persistent launch whose loop lives on-device.  The
        non-default modes need a device-backed evaluator (``"gpu"`` /
        ``"multi-gpu"``); per-trial records are bit-identical across all
        modes.
    devices:
        Device count of the ``"multi-gpu"`` pool (named specs only).
    pinned:
        Stage host transfers through pinned memory on the GPU-backed
        evaluators (named specs only); the timing model then prices PCIe
        copies with the devices' pinned latency/bandwidth terms.
    topology:
        Interconnect topology preset the GPU-backed evaluators route their
        transfers over (one of
        :data:`~repro.gpu.interconnect.TOPOLOGY_PRESETS`: ``"dedicated"``,
        ``"shared"``, ``"switched"``, ``"nvlink"``).  The default keeps the
        legacy dedicated-link model; the contended fabrics time-share the
        host root complex among concurrent transfers.  Purely a timing
        property — trajectories are identical across topologies.
    host_workers:
        ``"batched"`` mode only: shard each lockstep iteration's batched
        neighborhood evaluation across this many host worker processes over
        shared memory (see :mod:`repro.parallel`).  Capped at
        ``os.cpu_count()``; the ``REPRO_HOST_WORKERS`` environment variable
        overrides, uncapped.  Per-trial records stay bit-identical to the
        single-process run.
    fault_plan:
        ``"batched"`` mode only: a fault schedule in the
        :meth:`repro.gpu.faults.FaultPlan.parse` syntax
        (``kind:arg@iteration``, comma-separated) injected at lockstep
        boundaries.  Device failures/joins and flaky transfers change
        timing and placement only — per-trial records stay bit-identical.
    checkpoint_every:
        ``"batched"`` mode only: write the run's latest checkpoint to
        ``checkpoint_path`` every this many lockstep iterations (see
        :func:`repro.harness.io.save_checkpoint`).
    checkpoint_path:
        Where ``checkpoint_every`` writes its snapshot (required with it).
    restore:
        ``"batched"`` mode only: path of a checkpoint written by a previous
        (killed) run; the experiment resumes from it instead of starting
        fresh, and its records are bit-identical to an uninterrupted run.
    """
    if not isinstance(spec, PPPInstanceSpec):
        spec = PPPInstanceSpec(*spec)
    if order < 1:
        raise ValueError(f"neighborhood order must be >= 1, got {order}")
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if trial_mode not in TRIAL_MODES:
        raise ValueError(f"unknown trial_mode {trial_mode!r}; expected one of {TRIAL_MODES}")
    if transfer_mode not in TRANSFER_MODES:
        raise ValueError(
            f"unknown transfer_mode {transfer_mode!r}; expected one of {TRANSFER_MODES}"
        )
    if host_workers is not None and trial_mode != "batched":
        raise ValueError(
            f"host_workers applies to trial_mode='batched' only, got trial_mode={trial_mode!r}"
        )
    if trial_mode != "batched":
        for name, value in (
            ("fault_plan", fault_plan),
            ("checkpoint_every", checkpoint_every),
            ("checkpoint_path", checkpoint_path),
            ("restore", restore),
        ):
            if value is not None:
                raise ValueError(
                    f"{name} applies to trial_mode='batched' only, "
                    f"got trial_mode={trial_mode!r}"
                )
    if checkpoint_every is not None and checkpoint_path is None:
        raise ValueError("checkpoint_every requires a checkpoint_path")
    if trial_mode == "serial" and n_jobs > 1:
        trial_mode = "parallel"
    if trial_mode == "parallel":
        if evaluator_factory is not None and not isinstance(evaluator_factory, str):
            raise ValueError(
                "parallel trials (n_jobs > 1) need a named evaluator spec "
                f"(one of {sorted(EVALUATOR_SPECS)}): custom evaluator callables "
                "cannot be shipped to worker processes"
            )
        if isinstance(evaluator_factory, str) and evaluator_factory not in EVALUATOR_SPECS:
            raise ValueError(
                f"unknown evaluator spec {evaluator_factory!r}; "
                f"expected one of {sorted(EVALUATOR_SPECS)}"
            )
        # Validate the pool options before shipping them to the workers.
        resolve_evaluator_factory(
            evaluator_factory, devices=devices, pinned=pinned, topology=topology
        )

    problem = make_table_instance(spec, trial=0)
    neighborhood = KHammingNeighborhood(problem.n, order)

    per_iteration = iteration_times(problem, neighborhood)
    row = ExperimentRow(
        instance=spec,
        order=order,
        cpu_time_per_iteration=per_iteration.cpu_time,
        gpu_time_per_iteration=per_iteration.gpu_time,
        transfer_mode=transfer_mode,
    )
    # Record the pool configuration up front so the parallel path (whose
    # evaluators live in the workers) still reports it; the serial/batched
    # paths overwrite these with the actual per-context accounting below.
    if isinstance(evaluator_factory, str) and evaluator_factory in ("gpu", "multi-gpu"):
        row.pinned = pinned
        if topology is not None:
            row.topology = topology
        if evaluator_factory == "multi-gpu":
            row.num_devices = devices if devices is not None else 2

    seeds = [
        instance_seed(spec.m, spec.n, trial) if base_seed is None else base_seed + trial
        for trial in range(trials)
    ]

    if trial_mode == "parallel":
        evaluator_name = evaluator_factory if isinstance(evaluator_factory, str) else "cpu"
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            futures = [
                pool.submit(
                    _run_single_trial, (spec.m, spec.n), order, max_iterations, tenure,
                    seeds[trial], trial, evaluator_name, transfer_mode, devices, pinned,
                    topology,
                )
                for trial in range(trials)
            ]
            row.trials.extend(future.result() for future in futures)
        return row

    factory = resolve_evaluator_factory(
        evaluator_factory, devices=devices, pinned=pinned, topology=topology
    )
    evaluator: NeighborhoodEvaluator = factory(problem, neighborhood)

    if trial_mode == "batched":
        # Imported lazily: io imports ExperimentRow from this module.
        from .io import load_checkpoint, save_checkpoint

        runner = MultiStartRunner(
            evaluator,
            algorithm="tabu",
            tenure=tenure,
            max_iterations=max_iterations,
            track_history=track_history,
            transfer_mode=transfer_mode,
            host_workers=host_workers,
        )
        checkpoint_callback = (
            (lambda checkpoint: save_checkpoint(checkpoint_path, checkpoint))
            if checkpoint_every is not None
            else None
        )
        if restore is not None:
            multi = runner.run(
                resume=load_checkpoint(restore),
                checkpoint_every=checkpoint_every,
                checkpoint_callback=checkpoint_callback,
                fault_plan=fault_plan,
            )
        else:
            multi = runner.run(
                seeds=seeds,
                checkpoint_every=checkpoint_every,
                checkpoint_callback=checkpoint_callback,
                fault_plan=fault_plan,
            )
        row.trials.extend(
            TrialRecord(
                trial=trial,
                fitness=result.best_fitness,
                iterations=result.iterations,
                success=result.success,
                wall_time=result.wall_time,
            )
            for trial, result in enumerate(multi)
        )
        _collect_transfer_stats(evaluator, row)
        return row

    search = TabuSearch(
        evaluator,
        tenure=tenure,
        max_iterations=max_iterations,
        track_history=track_history,
        transfer_mode=transfer_mode,
    )
    for trial in range(trials):
        result = search.run(rng=seeds[trial])
        row.trials.append(
            TrialRecord(
                trial=trial,
                fitness=result.best_fitness,
                iterations=result.iterations,
                success=result.success,
                wall_time=result.wall_time,
            )
        )
    _collect_transfer_stats(evaluator, row)
    return row


def scale_experiment_rows(
    scale: ExperimentScale,
    order: int,
    *,
    evaluator_factory=None,
    trial_mode: str = "serial",
    n_jobs: int = 1,
    transfer_mode: str = "full",
) -> list[ExperimentRow]:
    """Run one table's worth of experiments (every instance of ``scale``)."""
    rows = []
    for spec in scale.table_instances:
        rows.append(
            run_ppp_experiment(
                spec,
                order,
                trials=scale.trials,
                max_iterations=scale.iteration_cap(spec, order),
                evaluator_factory=evaluator_factory,
                trial_mode=trial_mode,
                n_jobs=n_jobs,
                transfer_mode=transfer_mode,
            )
        )
    return rows
