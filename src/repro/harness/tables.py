"""Regeneration of Tables I, II and III of the paper.

Each table reports, for the four literature PPP instances and one
neighborhood order, the mean/std fitness over 50 tabu-search runs, the
average number of iterations, the number of successful tries and the CPU /
GPU execution times (plus, for the 2- and 3-Hamming tables, the acceleration
factor).
"""

from __future__ import annotations

from typing import Sequence

from .config import ExperimentScale, get_scale
from .experiment import ExperimentRow, scale_experiment_rows
from .reporting import format_time, render_markdown_table

__all__ = [
    "table_one",
    "table_two",
    "table_three",
    "all_tables",
    "format_service_table",
    "PAPER_REFERENCE",
]

#: The paper's published rows, kept for side-by-side comparison in
#: EXPERIMENTS.md and for sanity checks of the reproduced *shape*
#: (who wins, by roughly which factor).  Keys: (table, instance label).
PAPER_REFERENCE = {
    # Table I: 1-Hamming — fitness (mean, std), iterations, successes, cpu s, gpu s
    ("I", "73 x 73"): {"fitness": (10.3, 5.1), "iterations": 59184.1, "successes": 10,
                       "cpu_time_s": 4.0, "gpu_time_s": 9.0},
    ("I", "81 x 81"): {"fitness": (10.8, 5.6), "iterations": 77321.3, "successes": 6,
                       "cpu_time_s": 6.0, "gpu_time_s": 13.0},
    ("I", "101 x 101"): {"fitness": (20.2, 14.1), "iterations": 166650.0, "successes": 0,
                         "cpu_time_s": 16.0, "gpu_time_s": 33.0},
    ("I", "101 x 117"): {"fitness": (16.4, 5.4), "iterations": 260130.0, "successes": 0,
                         "cpu_time_s": 29.0, "gpu_time_s": 57.0},
    # Table II: 2-Hamming — plus acceleration
    ("II", "73 x 73"): {"fitness": (16.4, 17.9), "iterations": 43031.7, "successes": 19,
                        "cpu_time_s": 81.0, "gpu_time_s": 8.0, "acceleration": 9.9},
    ("II", "81 x 81"): {"fitness": (15.5, 16.6), "iterations": 67462.5, "successes": 13,
                        "cpu_time_s": 174.0, "gpu_time_s": 16.0, "acceleration": 11.0},
    ("II", "101 x 101"): {"fitness": (14.2, 14.3), "iterations": 138349.0, "successes": 12,
                          "cpu_time_s": 748.0, "gpu_time_s": 44.0, "acceleration": 17.0},
    ("II", "101 x 117"): {"fitness": (13.8, 10.8), "iterations": 260130.0, "successes": 0,
                          "cpu_time_s": 1947.0, "gpu_time_s": 105.0, "acceleration": 18.5},
    # Table III: 3-Hamming — CPU time is the *expected* (extrapolated) time
    ("III", "73 x 73"): {"fitness": (2.4, 4.3), "iterations": 21360.2, "successes": 35,
                         "cpu_time_s": 1202.0, "gpu_time_s": 50.0, "acceleration": 24.2},
    ("III", "81 x 81"): {"fitness": (3.5, 4.4), "iterations": 43230.7, "successes": 28,
                         "cpu_time_s": 3730.0, "gpu_time_s": 146.0, "acceleration": 25.5},
    ("III", "101 x 101"): {"fitness": (6.2, 5.4), "iterations": 117422.0, "successes": 18,
                           "cpu_time_s": 24657.0, "gpu_time_s": 955.0, "acceleration": 25.8},
    ("III", "101 x 117"): {"fitness": (7.7, 2.7), "iterations": 255337.0, "successes": 1,
                           "cpu_time_s": 88151.0, "gpu_time_s": 3551.0, "acceleration": 24.8},
}


def table_one(scale: str | ExperimentScale = "smoke", **kwargs) -> list[ExperimentRow]:
    """Table I: tabu search with the 1-Hamming-distance neighborhood."""
    return scale_experiment_rows(get_scale(scale), order=1, **kwargs)


def table_two(scale: str | ExperimentScale = "smoke", **kwargs) -> list[ExperimentRow]:
    """Table II: tabu search with the 2-Hamming-distance neighborhood."""
    return scale_experiment_rows(get_scale(scale), order=2, **kwargs)


def table_three(scale: str | ExperimentScale = "smoke", **kwargs) -> list[ExperimentRow]:
    """Table III: tabu search with the 3-Hamming-distance neighborhood."""
    return scale_experiment_rows(get_scale(scale), order=3, **kwargs)


def all_tables(scale: str | ExperimentScale = "smoke", **kwargs) -> dict[str, list[ExperimentRow]]:
    """Regenerate the three tables, keyed by their paper numbering."""
    return {
        "I": table_one(scale, **kwargs),
        "II": table_two(scale, **kwargs),
        "III": table_three(scale, **kwargs),
    }


def format_service_table(rows: Sequence[dict], *, title: str | None = None) -> str:
    """Latency/goodput table of the solve server's trace replays.

    Each row is a :meth:`repro.service.ServiceReport.summary_row` dict —
    one per (policy, offered load) replay — rendered as the same markdown
    the other harness tables use.  Goodput is deadline-met completions per
    simulated second; occupancy is the busy-time-weighted mean fraction of
    replica slots evaluating.
    """
    headers = [
        "Policy",
        "Load",
        "Jobs",
        "Done",
        "Rej",
        "Exp",
        "Pre",
        "p50 latency",
        "p99 latency",
        "Goodput",
        "Occupancy",
        "Makespan",
    ]
    body = []
    for row in rows:
        load = row.get("load")
        body.append(
            [
                str(row.get("label", row.get("policy", "?"))),
                "-" if load is None else f"{load:.2f}x",
                str(row["jobs"]),
                str(row["completed"]),
                str(row["rejected"]),
                str(row["expired"]),
                str(row["preempted"]),
                format_time(row["p50"]),
                format_time(row["p99"]),
                f"{row['goodput']:.1f}/s",
                f"{row['occupancy']:.0%}",
                format_time(row["makespan"]),
            ]
        )
    table = render_markdown_table(headers, body)
    if title:
        return f"**{title}**\n\n{table}"
    return table
