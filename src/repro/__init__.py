"""repro — Large Neighborhood Local Search Optimization on (simulated) GPUs.

A from-scratch Python reproduction of Luong, Melab and Talbi,
"Large Neighborhood Local Search Optimization on Graphics Processing Units"
(LSPP workshop @ IPDPS, 2010).

The package is organised in layers:

* :mod:`repro.mappings` — thread-id <-> move index transformations
  (the paper's core technical contribution);
* :mod:`repro.neighborhoods` — 1/2/3-Hamming (and generic k) neighborhoods;
* :mod:`repro.problems` — the Permuted Perceptron Problem and auxiliary
  binary workloads;
* :mod:`repro.gpu` — the SPMD GPU execution simulator and timing model;
* :mod:`repro.core` — neighborhood-evaluation kernels, CPU/GPU/multi-GPU
  evaluators, move selection, per-iteration time estimates;
* :mod:`repro.localsearch` — tabu search, hill climbing, SA, ILS, VNS;
* :mod:`repro.harness` — the experiment runner regenerating every table and
  figure of the paper's evaluation.
"""

from . import core, gpu, localsearch, mappings, neighborhoods, problems
from .core import CPUEvaluator, GPUEvaluator, MultiGPUEvaluator, SequentialEvaluator
from .localsearch import HillClimbing, LSResult, TabuSearch
from .mappings import mapping_for
from .neighborhoods import KHammingNeighborhood
from .problems import PermutedPerceptronProblem

__version__ = "1.0.0"

__all__ = [
    "core",
    "gpu",
    "localsearch",
    "mappings",
    "neighborhoods",
    "problems",
    "CPUEvaluator",
    "GPUEvaluator",
    "MultiGPUEvaluator",
    "SequentialEvaluator",
    "TabuSearch",
    "HillClimbing",
    "LSResult",
    "KHammingNeighborhood",
    "PermutedPerceptronProblem",
    "mapping_for",
    "__version__",
]
