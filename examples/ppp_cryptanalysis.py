#!/usr/bin/env python3
"""PPP cryptanalysis with growing neighborhoods (the paper's core experiment, in miniature).

The paper's central claim is that larger neighborhoods — affordable only on
the GPU — improve the quality of the attack on the Permuted Perceptron
Problem: more successful tries and better fitness within the same iteration
budget.  This example reproduces that comparison on a moderate instance and
prints a miniature version of Tables I–III.

Run with:  python examples/ppp_cryptanalysis.py [--m 41] [--n 41] [--trials 5]
"""

import argparse

import numpy as np

from repro import CPUEvaluator, KHammingNeighborhood, PermutedPerceptronProblem, TabuSearch
from repro.core import iteration_times
from repro.harness import format_time, render_markdown_table


def attack(problem, order: int, trials: int, max_iterations: int):
    """Run `trials` independent tabu searches with a k-Hamming neighborhood."""
    neighborhood = KHammingNeighborhood(problem.n, order)
    evaluator = CPUEvaluator(problem, neighborhood)  # functionally identical to the GPU
    search = TabuSearch(evaluator, max_iterations=max_iterations)
    results = [search.run(rng=seed) for seed in range(trials)]
    times = iteration_times(problem, neighborhood)
    mean_iters = float(np.mean([r.iterations for r in results]))
    return {
        "order": order,
        "size": neighborhood.size,
        "fitness_mean": float(np.mean([r.best_fitness for r in results])),
        "fitness_std": float(np.std([r.best_fitness for r in results])),
        "successes": sum(r.success for r in results),
        "iterations": mean_iters,
        "cpu_time": times.cpu_time * mean_iters,
        "gpu_time": times.gpu_time * mean_iters,
        "acceleration": times.speedup,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=41, help="number of PPP constraints (rows)")
    parser.add_argument("--n", type=int, default=41, help="secret length (columns)")
    parser.add_argument("--trials", type=int, default=5, help="independent tabu-search runs")
    parser.add_argument("--iterations", type=int, default=150, help="iteration cap per run")
    args = parser.parse_args()

    problem = PermutedPerceptronProblem.generate(args.m, args.n, rng=1)
    print(f"Attacking a {args.m} x {args.n} PPP instance "
          f"({args.trials} tabu-search runs per neighborhood, {args.iterations} iterations max)\n")

    rows = []
    for order in (1, 2, 3):
        stats = attack(problem, order, args.trials, args.iterations)
        rows.append([
            f"{order}-Hamming",
            f"{stats['size']}",
            f"{stats['fitness_mean']:.1f} (+/-{stats['fitness_std']:.1f})",
            f"{stats['successes']}/{args.trials}",
            f"{stats['iterations']:.0f}",
            format_time(stats["cpu_time"]),
            format_time(stats["gpu_time"]),
            f"x{stats['acceleration']:.1f}",
        ])

    print(render_markdown_table(
        ["Neighborhood", "|N|", "Fitness", "# solutions", "# iterations",
         "CPU time (model)", "GPU time (model)", "Acceleration"],
        rows,
    ))
    print(
        "\nReading: with the same iteration budget, the larger neighborhoods find more\n"
        "solutions (the paper's Tables I->III pattern), and only the GPU makes the\n"
        "3-Hamming structure affordable (last column)."
    )


if __name__ == "__main__":
    main()
