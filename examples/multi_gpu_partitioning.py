#!/usr/bin/env python3
"""Multi-GPU neighborhood partitioning (the paper's "perspectives" section).

The paper closes by proposing to partition the neighborhood across several
GPUs, each device evaluating one slice of the flat index space.  This
example runs the 3-Hamming neighborhood of a PPP instance on 1, 2, 4 and 8
simulated GTX 280 cards and reports the modeled per-iteration time and the
parallel efficiency of the partitioning.

Run with:  python examples/multi_gpu_partitioning.py [--m 101] [--n 117]
"""

import argparse

from repro.core import GPUEvaluator, MultiGPUEvaluator
from repro.harness import format_time, render_markdown_table
from repro.neighborhoods import KHammingNeighborhood
from repro.problems import PermutedPerceptronProblem


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=101, help="PPP rows")
    parser.add_argument("--n", type=int, default=117, help="PPP columns (secret length)")
    parser.add_argument("--order", type=int, default=3, choices=(1, 2, 3))
    args = parser.parse_args()

    problem = PermutedPerceptronProblem.generate(args.m, args.n, rng=3)
    neighborhood = KHammingNeighborhood(problem.n, args.order)
    solution = problem.random_solution(0)
    print(f"{args.order}-Hamming neighborhood of a {args.m} x {args.n} PPP instance: "
          f"{neighborhood.size} neighbors per iteration\n")

    # Single-device baseline.
    single = GPUEvaluator(problem, neighborhood)
    single.evaluate(solution)
    baseline = single.stats.simulated_time

    rows = [["1", format_time(baseline), "x1.00", "100%"]]
    for devices in (2, 4, 8):
        evaluator = MultiGPUEvaluator(problem, neighborhood, devices=devices)
        evaluator.evaluate(solution)
        elapsed = evaluator.stats.simulated_time
        speedup = baseline / elapsed
        rows.append([
            str(devices),
            format_time(elapsed),
            f"x{speedup:.2f}",
            f"{100 * speedup / devices:.0f}%",
        ])

    print(render_markdown_table(
        ["Simulated GPUs", "Time per iteration (model)", "Speedup", "Parallel efficiency"],
        rows))
    print(
        "\nEfficiency drops below 100% because each device pays the fixed kernel-launch\n"
        "and transfer overheads on its own slice — exactly the management cost the paper\n"
        "warns about when discussing the multi-GPU extension."
    )


if __name__ == "__main__":
    main()
