#!/usr/bin/env python3
"""Large-neighborhood tabu search on random Max-3SAT.

The paper's methodology is problem-agnostic: any binary problem can plug its
fitness function into the neighborhood kernels.  This example applies the
same machinery to random Max-3SAT and compares hill climbing and tabu search
with 1- and 2-Hamming neighborhoods, plus a variable neighborhood search
that uses all of them.

Run with:  python examples/maxsat_large_neighborhood.py [--vars 60] [--clauses 260]
"""

import argparse

import numpy as np

from repro.core import CPUEvaluator, GPUEvaluator, iteration_times
from repro.harness import render_markdown_table
from repro.localsearch import HillClimbing, TabuSearch, VariableNeighborhoodSearch
from repro.neighborhoods import KHammingNeighborhood
from repro.problems import MaxSat


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vars", type=int, default=60, help="number of boolean variables")
    parser.add_argument("--clauses", type=int, default=260, help="number of 3-SAT clauses")
    parser.add_argument("--trials", type=int, default=3, help="runs per configuration")
    parser.add_argument("--iterations", type=int, default=120, help="iteration cap per run")
    args = parser.parse_args()

    problem = MaxSat.random(args.vars, args.clauses, k=3, rng=11)
    print(f"Random Max-3SAT: {args.vars} variables, {args.clauses} clauses "
          f"(clause/variable ratio {args.clauses / args.vars:.2f})\n")

    rows = []

    def record(label, results, neighborhood=None):
        fitnesses = [r.best_fitness for r in results]
        gpu_note = "-"
        if neighborhood is not None:
            gpu_note = f"x{iteration_times(problem, neighborhood).speedup:.1f}"
        rows.append([
            label,
            f"{np.mean(fitnesses):.1f}",
            f"{np.min(fitnesses):.0f}",
            f"{np.mean([r.iterations for r in results]):.0f}",
            gpu_note,
        ])

    for order in (1, 2):
        neighborhood = KHammingNeighborhood(problem.n, order)
        hc = HillClimbing(CPUEvaluator(problem, neighborhood), max_iterations=args.iterations)
        record(f"hill climbing, {order}-Hamming",
               [hc.run(rng=s) for s in range(args.trials)], neighborhood)
        ts = TabuSearch(GPUEvaluator(problem, neighborhood), max_iterations=args.iterations)
        record(f"tabu search, {order}-Hamming",
               [ts.run(rng=s) for s in range(args.trials)], neighborhood)

    vns = VariableNeighborhoodSearch(problem, max_order=2, max_rounds=6,
                                     max_iterations_per_descent=args.iterations)
    record("variable neighborhood search (1..2)", [vns.run(rng=s) for s in range(args.trials)])

    print(render_markdown_table(
        ["Algorithm", "Mean unsatisfied", "Best", "Mean iterations", "Modeled GPU speedup"],
        rows))
    print("\nUnsatisfied-clause counts: lower is better; 0 means a satisfying assignment.")


if __name__ == "__main__":
    main()
