#!/usr/bin/env python3
"""GPU acceleration vs problem size (the paper's Figure 8, as a script).

Sweeps PPP instances of growing size and prints the modeled CPU and GPU
execution times of 10 000 1-Hamming tabu-search iterations, locating the
crossover point where the GPU starts to pay off and the asymptotic speedup.

Run with:  python examples/neighborhood_scaling.py [--points 8] [--order 1]
"""

import argparse

from repro.core import iteration_times
from repro.harness import format_time, render_markdown_table
from repro.neighborhoods import KHammingNeighborhood
from repro.problems import FIGURE8_INSTANCES, PermutedPerceptronProblem
from repro.problems.instances import instance_seed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=8,
                        help="number of instance sizes to sweep (max 15)")
    parser.add_argument("--order", type=int, default=1, choices=(1, 2, 3),
                        help="Hamming order of the neighborhood")
    parser.add_argument("--iterations", type=int, default=10_000,
                        help="number of LS iterations the reported times cover")
    args = parser.parse_args()

    rows = []
    crossover = None
    for spec in FIGURE8_INSTANCES[: args.points]:
        problem = PermutedPerceptronProblem.generate(spec.m, spec.n,
                                                     rng=instance_seed(spec.m, spec.n))
        neighborhood = KHammingNeighborhood(problem.n, args.order)
        t = iteration_times(problem, neighborhood)
        cpu, gpu = t.cpu_time * args.iterations, t.gpu_time * args.iterations
        if crossover is None and gpu < cpu:
            crossover = spec.label
        rows.append([spec.label, f"{neighborhood.size}", format_time(cpu), format_time(gpu),
                     f"x{cpu / gpu:.1f}"])

    print(f"{args.order}-Hamming neighborhood, {args.iterations} iterations "
          f"(modeled times, GTX 280 vs single-core Xeon)\n")
    print(render_markdown_table(
        ["Problem size", "|N| (threads)", "CPU time", "GPU time", "Acceleration"], rows))
    if crossover:
        print(f"\nGPU becomes faster than the CPU at instance size {crossover} "
              "(the paper locates this crossover around 201 x 217 for the 1-Hamming kernel).")
    else:
        print("\nThe GPU never overtakes the CPU in this sweep "
              "(expected for very small instances / the 1-Hamming neighborhood).")


if __name__ == "__main__":
    main()
