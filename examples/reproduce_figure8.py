#!/usr/bin/env python3
"""Regenerate Figure 8 of the paper (GPU acceleration on growing PPP instances).

Prints the CPU / GPU execution-time series for 10 000 1-Hamming tabu-search
iterations over the fifteen instance sizes of the paper, plus an ASCII plot
of the two curves.

Run with:
    python examples/reproduce_figure8.py --scale smoke
    python examples/reproduce_figure8.py --scale reduced --points 15
"""

import argparse

from repro.harness import PAPER_FIGURE8_REFERENCE, figure_eight, format_figure8_series, get_scale


def ascii_plot(points, width: int = 60) -> str:
    """Rough ASCII rendition of the paper's two execution-time curves."""
    max_time = max(p.cpu_time for p in points)
    lines = []
    for p in points:
        cpu_bar = int(width * p.cpu_time / max_time)
        gpu_bar = max(1, int(width * p.gpu_time / max_time))
        lines.append(f"{p.label:>12} CPU |{'#' * cpu_bar}")
        lines.append(f"{'':>12} GPU |{'*' * gpu_bar}  (x{p.acceleration:.1f})")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=("smoke", "reduced", "paper"))
    parser.add_argument("--points", type=int, default=None,
                        help="restrict the sweep to the first N instance sizes")
    args = parser.parse_args()

    scale = get_scale(args.scale)
    points = figure_eight(scale, max_points=args.points)

    print(format_figure8_series(
        points,
        title=(f"Figure 8 — PPP GPU acceleration, 1-Hamming neighborhood, "
               f"{scale.figure8_nominal_iterations} iterations ({scale.name} scale)"),
    ))
    print()
    print(ascii_plot(points))
    print("\nPaper reference points: "
          + ", ".join(f"{label}: x{value}" for label, value in PAPER_FIGURE8_REFERENCE.items()))


if __name__ == "__main__":
    main()
