#!/usr/bin/env python3
"""Profile the neighborhood kernels of a tabu-search run (nvprof-style summary).

Runs a short 3-Hamming tabu search on a PPP instance with launch recording
enabled and prints the per-kernel profile: launch counts, simulated time,
share of the total, average occupancy and whether each kernel is compute- or
memory-bound.  This is the view a practitioner would use to validate the
timing model against a real card.

Run with:  python examples/profile_kernels.py [--m 73] [--n 73] [--iterations 30]
"""

import argparse

from repro.core import GPUEvaluator
from repro.gpu import GPUContext, GTX_280, format_profile, profile
from repro.harness import format_time
from repro.localsearch import TabuSearch
from repro.neighborhoods import KHammingNeighborhood
from repro.problems import PermutedPerceptronProblem


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=73)
    parser.add_argument("--n", type=int, default=73)
    parser.add_argument("--order", type=int, default=3, choices=(1, 2, 3))
    parser.add_argument("--iterations", type=int, default=30)
    args = parser.parse_args()

    problem = PermutedPerceptronProblem.generate(args.m, args.n, rng=0)
    context = GPUContext(GTX_280, keep_launch_records=True)
    neighborhood = KHammingNeighborhood(problem.n, args.order)
    evaluator = GPUEvaluator(problem, neighborhood, context=context)

    print(f"tabu search, {args.order}-Hamming neighborhood of a {args.m} x {args.n} PPP instance, "
          f"{args.iterations} iterations on a simulated {GTX_280.name}\n")
    result = TabuSearch(evaluator, max_iterations=args.iterations, target_fitness=-1.0).run(rng=1)
    print(result.summary())
    print(f"simulated device time: {format_time(context.stats.total_time)}\n")

    print(format_profile(profile(context)))


if __name__ == "__main__":
    main()
