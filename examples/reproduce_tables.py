#!/usr/bin/env python3
"""Regenerate Tables I, II and III of the paper.

Runs the tabu-search protocol (50 runs per instance at paper scale) on the
four literature PPP instances for the requested neighborhood order(s) and
prints the reproduced rows next to the paper's published values.

Run with:
    python examples/reproduce_tables.py --scale smoke            # seconds
    python examples/reproduce_tables.py --scale reduced          # minutes
    python examples/reproduce_tables.py --scale paper --table 1  # the full protocol
"""

import argparse

from repro.harness import (
    PAPER_REFERENCE,
    format_experiment_table,
    get_scale,
    table_one,
    table_three,
    table_two,
)

TABLES = {1: ("I", table_one), 2: ("II", table_two), 3: ("III", table_three)}


def print_reference(numeral: str) -> None:
    print(f"\nPaper's published Table {numeral} (for comparison):")
    for (tab, instance), ref in PAPER_REFERENCE.items():
        if tab != numeral:
            continue
        acc = f", acceleration x{ref['acceleration']}" if "acceleration" in ref else ""
        print(
            f"  {instance}: fitness {ref['fitness'][0]} (+/-{ref['fitness'][1]}), "
            f"{ref['iterations']:.0f} iterations, {ref['successes']}/50 solutions, "
            f"CPU {ref['cpu_time_s']:.0f}s, GPU {ref['gpu_time_s']:.0f}s{acc}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=("smoke", "reduced", "paper"),
                        help="experiment scale preset (see repro.harness.config)")
    parser.add_argument("--table", type=int, choices=(1, 2, 3), action="append",
                        help="which table(s) to regenerate (default: all three)")
    args = parser.parse_args()

    scale = get_scale(args.scale)
    tables = args.table or [1, 2, 3]
    print(f"Scale: {scale.name} — {scale.trials} trials per instance, instances "
          f"{[s.label for s in scale.table_instances]}")
    if scale.name != "paper":
        print("(times in the CPU/GPU columns are modeled for the measured number of "
              "iterations; see EXPERIMENTS.md)")

    for index in tables:
        numeral, builder = TABLES[index]
        rows = builder(scale)
        print()
        print(format_experiment_table(
            rows,
            title=f"Table {numeral} — {rows[0].order}-Hamming distance ({scale.name} scale)",
            include_acceleration=(index != 1),
        ))
        print_reference(numeral)


if __name__ == "__main__":
    main()
