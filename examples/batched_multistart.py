#!/usr/bin/env python3
"""Solution-parallel multi-start: many independent searches per kernel launch.

The paper's protocol runs 50 independent tabu-search trials per instance.
Run serially, every iteration of every trial pays its own solution upload,
kernel launch and fitness download.  The batched execution engine instead
advances all replicas in lockstep: each iteration uploads one ``(S, n)``
solution block and issues a single ``S x M``-thread launch — the paper's
kernel generalized over replicas.

This example runs the same 50 seeds both ways on a simulated GPU and prints
the per-trial agreement plus the amortized launch/transfer accounting.

Run with:  python examples/batched_multistart.py
"""

from repro import GPUEvaluator, KHammingNeighborhood, PermutedPerceptronProblem, TabuSearch
from repro.gpu import GPUContext, GTX_280, format_profile, profile
from repro.harness import format_time
from repro.localsearch import MultiStartRunner


def main() -> None:
    problem = PermutedPerceptronProblem.generate(m=41, n=41, rng=2024)
    neighborhood = KHammingNeighborhood(problem.n, k=1)
    seeds = list(range(50))
    cap = 150

    # --- Serial: one TabuSearch run per seed ---------------------------
    serial_ev = GPUEvaluator(problem, neighborhood)
    search = TabuSearch(serial_ev, max_iterations=cap)
    serial = [search.run(rng=seed) for seed in seeds]
    serial_stats = serial_ev.context.stats

    # --- Batched: all 50 replicas in lockstep --------------------------
    context = GPUContext(GTX_280, keep_launch_records=True)
    batched_ev = GPUEvaluator(problem, neighborhood, context=context)
    runner = MultiStartRunner(batched_ev, algorithm="tabu", max_iterations=cap)
    batched = runner.run(seeds=seeds)

    agree = all(
        s.best_fitness == b.best_fitness and s.iterations == b.iterations
        for s, b in zip(serial, batched)
    )
    print(f"Replicas               : {len(seeds)} (agree with serial runs: {agree})")
    print(f"Best fitness           : {batched.best_fitness:g} "
          f"({batched.num_successes} successes)")
    print(f"Lockstep iterations    : {batched.iterations}")
    print()
    print("Simulated GPU activity, serial -> batched:")
    print(f"  kernel launches      : {serial_stats.kernel_launches} -> "
          f"{context.stats.kernel_launches}")
    print(f"  transfer time        : {format_time(serial_stats.transfer_time)} -> "
          f"{format_time(context.stats.transfer_time)}")
    print(f"  total simulated time : {format_time(serial_stats.total_time)} -> "
          f"{format_time(context.stats.total_time)}")
    print()
    print("Profiler view of the batched run (note the batch column):")
    print(format_profile(profile(context)))


if __name__ == "__main__":
    main()
