#!/usr/bin/env python3
"""Quickstart: crack a small Permuted Perceptron instance on the simulated GPU.

This is the 60-second tour of the library:

1. generate a PPP instance (the paper's cryptographic workload),
2. pick a neighborhood (here the 2-Hamming structure, whose thread mapping
   uses the closed form of the paper's Appendix A/B),
3. build a GPU evaluator (one simulated thread per neighbor),
4. run the paper's tabu search, and
5. inspect the result and the simulated device activity.

Run with:  python examples/quickstart.py
"""

from repro import GPUEvaluator, KHammingNeighborhood, PermutedPerceptronProblem, TabuSearch
from repro.core import iteration_times
from repro.harness import format_time


def main() -> None:
    # 1. A random 41 x 41 instance with a planted secret (fitness 0 exists).
    problem = PermutedPerceptronProblem.generate(m=41, n=41, rng=2024)
    print(f"Problem: {problem!r} — secret fitness = {problem.evaluate(problem.secret)}")

    # 2. The 2-Hamming neighborhood: flip two bits, n(n-1)/2 = 820 neighbors.
    neighborhood = KHammingNeighborhood(problem.n, k=2)
    print(f"Neighborhood: {neighborhood!r}")

    # 3. One simulated GTX 280; every neighbor is evaluated by its own thread.
    evaluator = GPUEvaluator(problem, neighborhood)

    # 4. The paper's tabu search: tenure |N|/6, stop at fitness 0 or the
    #    iteration cap.
    search = TabuSearch(evaluator, max_iterations=2_000, track_history=True)
    result = search.run(rng=7)

    # 5. Results + simulated device activity.
    print(f"\n{result.summary()}")
    print(f"Initial fitness      : {result.initial_fitness:g}")
    print(f"Best fitness         : {result.best_fitness:g}")
    print(f"Iterations           : {result.iterations}")
    print(f"Neighbor evaluations : {result.evaluations}")
    print(f"Simulated GPU time   : {format_time(result.simulated_time)}")

    stats = evaluator.context.stats
    print(f"Kernel launches      : {stats.kernel_launches}")
    print(f"Simulated kernel time: {format_time(stats.kernel_time)}")
    print(f"Simulated transfers  : {format_time(stats.transfer_time)}")

    per_iter = iteration_times(problem, neighborhood)
    print(
        f"Modeled acceleration vs single-core CPU: x{per_iter.speedup:.1f} "
        f"({format_time(per_iter.cpu_time)} -> {format_time(per_iter.gpu_time)} per iteration)"
    )


if __name__ == "__main__":
    main()
