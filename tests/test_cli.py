"""Tests for the command-line interface (``python -m repro ...``)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.m == 73 and args.n == 73 and args.k == 2
        assert args.platform == "gpu"


class TestDevicesCommand:
    def test_lists_presets(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "GTX 280" in out
        assert "Xeon" in out


class TestMappingCommand:
    def test_prints_mapping_table(self, capsys):
        assert main(["mapping", "--n", "6", "--k", "2", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "15 moves" in out
        assert "thread    0 -> flip bits (0, 1)" in out
        assert "more" in out  # truncation notice

    def test_full_table_without_truncation(self, capsys):
        assert main(["mapping", "--n", "5", "--k", "1", "--limit", "10"]) == 0
        out = capsys.readouterr().out
        assert "more" not in out


class TestSolveCommand:
    def test_solves_small_instance_on_gpu(self, capsys):
        code = main(["solve", "--m", "25", "--n", "25", "--k", "3",
                     "--iterations", "60", "--seed", "0"])
        out = capsys.readouterr().out
        assert "25 x 25 PPP" in out
        assert "modeled acceleration" in out
        assert code in (0, 1)

    def test_cpu_and_multigpu_platforms(self, capsys):
        for platform in ("cpu", "multi-gpu"):
            code = main(["solve", "--m", "15", "--n", "15", "--k", "2",
                         "--iterations", "40", "--platform", platform])
            assert code in (0, 1)
        out = capsys.readouterr().out
        assert "platform: cpu" in out and "platform: multi-gpu" in out

    def test_texture_flag(self, capsys):
        code = main(["solve", "--m", "15", "--n", "15", "--k", "1",
                     "--iterations", "20", "--texture"])
        assert code in (0, 1)


class TestExperimentCommand:
    def test_batched_experiment(self, capsys):
        assert main(["experiment", "--m", "25", "--n", "25", "--k", "1",
                     "--trials", "4", "--iterations", "20",
                     "--trial-mode", "batched"]) == 0
        out = capsys.readouterr().out
        assert "25 x 25 PPP" in out
        assert "batched mode" in out
        assert "successes" in out

    def test_serial_and_batched_report_identical_statistics(self, capsys):
        args = ["experiment", "--m", "25", "--n", "25", "--k", "1",
                "--trials", "3", "--iterations", "15"]
        assert main(args + ["--trial-mode", "serial"]) == 0
        serial_out = capsys.readouterr().out
        assert main(args + ["--trial-mode", "batched"]) == 0
        batched_out = capsys.readouterr().out
        pick = lambda text: [l for l in text.splitlines() if l.startswith("fitness")]
        assert pick(serial_out) == pick(batched_out)

    def test_trial_mode_flag_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--trial-mode", "quantum"])

    def test_tables_accepts_trial_mode(self, capsys):
        assert main(["tables", "--scale", "smoke", "--table", "1",
                     "--trial-mode", "batched"]) == 0
        out = capsys.readouterr().out
        assert "batched trial mode" in out
        assert "Table I" in out


class TestTablesAndFigureCommands:
    def test_tables_smoke_single_table(self, capsys):
        assert main(["tables", "--scale", "smoke", "--table", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" not in out
        assert "25 x 25" in out

    def test_figure8_smoke_truncated(self, capsys):
        assert main(["figure8", "--scale", "smoke", "--points", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "101 x 117" in out
        assert "401 x 417" not in out


class TestServeCommand:
    def test_generated_trace_both_policies(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        assert main(["serve", "--m", "15", "--n", "15", "--devices", "2",
                     "--capacity", "8", "--trace-jobs", "12",
                     "--save-trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "15 x 15 PPP" in out
        assert "capacity 8 replica slots" in out
        assert "p99 latency" in out
        assert "continuous" in out and "drain" in out
        assert "goodput: x" in out
        assert trace_path.exists()

    def test_replays_saved_trace(self, capsys, tmp_path):
        from repro.service import poisson_trace, save_trace

        trace_path = tmp_path / "trace.json"
        jobs = poisson_trace(6, 50.0, rng=2, replicas=(1, 2), budget=(5, 15))
        save_trace(trace_path, jobs, problem={"m": 17, "n": 17, "k": 1, "seed": 3})
        assert main(["serve", "--trace", str(trace_path), "--evaluator", "gpu",
                     "--capacity", "4", "--policy", "continuous"]) == 0
        out = capsys.readouterr().out
        # Instance geometry comes from the trace metadata, not the defaults.
        assert "17 x 17 PPP" in out
        assert "6 jobs" in out
        assert "drain" not in out
