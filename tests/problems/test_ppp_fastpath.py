"""Property tests of the precompiled PPP delta evaluator.

The bilinear fast scorer must be *bit-identical* to the chunked reference
evaluation for every move table it accepts, and must fall back (not fail)
on the tables it cannot represent.  These tests compare the two paths on
randomized instances — square and rectangular, tiny and protocol-sized —
over randomized solution blocks including the degenerate all-zeros /
all-ones states and the planted secret.
"""

import numpy as np
import pytest

from repro.problems import PermutedPerceptronProblem
from repro.problems.ppp import _FAST_ENV, _PPPFastScorer


def pair_moves(n: int) -> np.ndarray:
    moves = np.array(
        [(i, j) for i in range(n) for j in range(i + 1, n)], dtype=np.int64
    )
    moves.setflags(write=False)
    return moves


def solution_block(problem, rng, rows: int) -> np.ndarray:
    block = rng.integers(0, 2, size=(rows, problem.n)).astype(np.int8)
    block[0] = 0
    block[1] = 1
    if problem.secret is not None:
        block[2] = problem.secret
    return block


@pytest.mark.parametrize("m,n", [(73, 73), (41, 29), (29, 41), (7, 5), (4, 4)])
def test_pairwise_moves_bit_identical(m, n):
    rng = np.random.default_rng(m * 1000 + n)
    problem = PermutedPerceptronProblem.generate(m, n, rng=rng)
    solutions = solution_block(problem, rng, 9)
    moves = pair_moves(n)
    fast = problem.evaluate_neighborhood_batch(solutions, moves)
    reference = problem._evaluate_neighborhood_batch_reference(solutions, moves)
    assert fast.dtype == reference.dtype
    assert np.array_equal(fast, reference)


@pytest.mark.parametrize("m,n", [(73, 73), (41, 29), (17, 23)])
def test_single_bit_moves_bit_identical(m, n):
    rng = np.random.default_rng(m + n)
    problem = PermutedPerceptronProblem.generate(m, n, rng=rng)
    solutions = solution_block(problem, rng, 8)
    moves = np.arange(n, dtype=np.int64)[:, None]
    moves.setflags(write=False)
    assert np.array_equal(
        problem.evaluate_neighborhood_batch(solutions, moves),
        problem._evaluate_neighborhood_batch_reference(solutions, moves),
    )


def test_random_subset_tables_and_writable_arrays():
    rng = np.random.default_rng(5)
    problem = PermutedPerceptronProblem.generate(31, 37, rng=rng)
    solutions = solution_block(problem, rng, 6)
    for _ in range(10):
        count = int(rng.integers(1, 40))
        i = rng.integers(0, problem.n, size=count)
        j = rng.integers(0, problem.n, size=count)
        keep = i != j
        if not keep.any():
            continue
        moves = np.stack([i[keep], j[keep]], axis=1).astype(np.int64)  # writable
        assert np.array_equal(
            problem.evaluate_neighborhood_batch(solutions, moves),
            problem._evaluate_neighborhood_batch_reference(solutions, moves),
        )


def test_unsupported_tables_fall_back_to_reference():
    rng = np.random.default_rng(9)
    problem = PermutedPerceptronProblem.generate(19, 13, rng=rng)
    scorer = problem._fast()
    assert scorer is not None
    solutions = solution_block(problem, rng, 4)
    # Duplicate indices (a double flip), k=3 and empty tables are out of the
    # bilinear model: the scorer must refuse them and the dispatcher must
    # still produce reference-exact results.
    duplicates = np.array([[0, 0], [3, 3], [1, 2]], dtype=np.int64)
    assert scorer.move_table(duplicates) is None
    triples = rng.integers(0, problem.n, size=(11, 3)).astype(np.int64)
    assert scorer.move_table(triples) is None
    assert scorer.move_table(np.empty((0, 2), dtype=np.int64)) is None
    for moves in (duplicates, triples):
        assert np.array_equal(
            problem.evaluate_neighborhood_batch(solutions, moves),
            problem._evaluate_neighborhood_batch_reference(solutions, moves),
        )


def test_scalar_neighborhood_matches_batch_row():
    rng = np.random.default_rng(3)
    problem = PermutedPerceptronProblem.generate(73, 73, rng=rng)
    solution = rng.integers(0, 2, size=problem.n).astype(np.int8)
    moves = pair_moves(problem.n)
    assert np.array_equal(
        problem.evaluate_neighborhood(solution, moves),
        problem._evaluate_neighborhood_batch_reference(solution[None, :], moves)[0],
    )


def test_out_parameter_writes_in_place():
    rng = np.random.default_rng(17)
    problem = PermutedPerceptronProblem.generate(23, 19, rng=rng)
    solutions = solution_block(problem, rng, 5)
    moves = pair_moves(problem.n)
    out = np.empty((5, moves.shape[0]), dtype=np.float64)
    result = problem.evaluate_neighborhood_batch(solutions, moves, out=out)
    assert result is out
    assert np.array_equal(out, problem._evaluate_neighborhood_batch_reference(solutions, moves))


def test_move_table_cache_reuses_readonly_tables():
    problem = PermutedPerceptronProblem.generate(11, 11, rng=0)
    scorer = problem._fast()
    moves = pair_moves(problem.n)
    table = scorer.move_table(moves)
    assert scorer.move_table(moves) is table
    writable = np.array(moves)
    assert scorer.move_table(writable) is not scorer.move_table(writable)


def test_env_switch_disables_fast_path(monkeypatch):
    monkeypatch.setenv(_FAST_ENV, "0")
    problem = PermutedPerceptronProblem.generate(11, 11, rng=0)
    assert problem._fast() is None
    monkeypatch.setenv(_FAST_ENV, "1")
    problem = PermutedPerceptronProblem.generate(11, 11, rng=0)
    assert isinstance(problem._fast(), _PPPFastScorer)
