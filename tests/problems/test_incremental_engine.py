"""Unit tests of the incremental gain-cache engine.

The engine's contract (:mod:`repro.problems.incremental`): served
evaluations are bit-identical to the full recompute, anything outside the
compiled model declines to the reference chain, and rows whose mirror
diverges from the actual solutions (restarts, kicks, migration, restores —
any out-of-band mutation) are silently re-derived.  These tests drive the
engine directly, without a search loop on top.
"""

import numpy as np
import pytest

from repro.neighborhoods import KHammingNeighborhood
from repro.problems import (
    MaxSat,
    NKLandscape,
    OneMax,
    UBQP,
    generate_random_ksat,
)
from repro.problems.fastpath import BoundedCache, MoveTableCache, cache_stats
from repro.problems.incremental import (
    GainEngine,
    attach_gain_engine,
    create_gain_engine,
    detach_gain_engine,
)
from repro.problems.instances import make_table_instance

PROBLEM_FACTORIES = {
    "ppp": lambda: make_table_instance((25, 25), trial=0),
    "onemax": lambda: OneMax(24),
    "maxsat": lambda: MaxSat(24, *generate_random_ksat(24, 100, k=3, rng=2)),
    "nk": lambda: NKLandscape(24, 3, rng=4),
    "ubqp": lambda: UBQP.random(24, rng=1),
}


def frozen_moves(n: int, order: int) -> np.ndarray:
    moves = KHammingNeighborhood(n, order).moves()
    moves.setflags(write=False)
    return moves


def reference(problem, solutions, moves):
    """The recompute path, guaranteed engine-free."""
    engine = problem._gain_engine
    problem._gain_engine = None
    try:
        return problem.evaluate_neighborhood_batch(solutions, moves)
    finally:
        problem._gain_engine = engine


def random_block(problem, rng, rows):
    return np.stack([problem.random_solution(rng) for _ in range(rows)])


@pytest.mark.parametrize("name", sorted(PROBLEM_FACTORIES))
@pytest.mark.parametrize("order", [1, 2])
def test_randomized_commits_stay_bit_identical(name, order):
    """25 iterations of expect/evaluate/commit match the recompute exactly,
    including rows perturbed behind the engine's back (self-heal)."""
    problem = PROBLEM_FACTORIES[name]()
    moves = frozen_moves(problem.n, order)
    rng = np.random.default_rng(20260808)
    rows = 6
    solutions = random_block(problem, rng, rows)
    engine = GainEngine(problem, rows_hint=rows)
    all_rows = np.arange(rows, dtype=np.int64)

    served_any = False
    for step in range(25):
        engine.expect(all_rows)
        got = engine.try_evaluate(solutions, moves, None)
        want = reference(problem, solutions, moves)
        if got is None:
            # Outside the model (e.g. the PPP state is pair-flip only):
            # declining is the contract, nothing to compare.
            assert not engine.stats["evals"]
            return
        served_any = True
        np.testing.assert_array_equal(got, want)

        # Commit one random flip per row, through the engine.
        bits = np.stack(
            [rng.choice(problem.n, size=order, replace=False) for _ in range(rows)]
        ).astype(np.int64)
        engine.commit(all_rows, bits)
        solutions[all_rows[:, None], bits] ^= 1

        if step % 7 == 3:
            # Out-of-band mutation: the engine only sees the changed content
            # at the next evaluation and must re-derive that row.
            victim = int(rng.integers(rows))
            solutions[victim] = problem.random_solution(rng)
    assert served_any
    assert engine.stats["reinit_rows"] > rows  # initial derivation + self-heals


@pytest.mark.parametrize("name", sorted(PROBLEM_FACTORIES))
def test_duplicate_bit_commits_self_heal(name):
    """A commit that repeats a bit is outside the state model: the row is
    invalidated and re-derived, and results stay exact."""
    problem = PROBLEM_FACTORIES[name]()
    moves = frozen_moves(problem.n, 2)
    rng = np.random.default_rng(7)
    solutions = random_block(problem, rng, 3)
    engine = GainEngine(problem, rows_hint=3)
    rows = np.arange(3, dtype=np.int64)

    engine.expect(rows)
    if engine.try_evaluate(solutions, moves, None) is None:
        pytest.skip("problem declines this move table")
    dup = np.array([[1, 1], [2, 5], [4, 4]], dtype=np.int64)
    engine.commit(rows, dup)
    solutions[rows[:, None], dup] ^= 1  # double flips: rows 0 and 2 unchanged
    assert not engine.valid[0] and engine.valid[1] and not engine.valid[2]

    engine.expect(rows)
    got = engine.try_evaluate(solutions, moves, None)
    np.testing.assert_array_equal(got, reference(problem, solutions, moves))


def test_declines_without_expected_rows_and_on_foreign_tables():
    problem = PROBLEM_FACTORIES["ubqp"]()
    moves = frozen_moves(problem.n, 2)
    other = frozen_moves(problem.n, 2)
    rng = np.random.default_rng(3)
    solutions = random_block(problem, rng, 2)
    engine = GainEngine(problem, rows_hint=2)
    rows = np.arange(2, dtype=np.int64)

    # No expect() declaration -> decline.
    assert engine.try_evaluate(solutions, moves, None) is None

    # Writable move table -> decline (it may be mutated between calls).
    writable = moves.copy()
    engine.expect(rows)
    assert engine.try_evaluate(solutions, writable, None) is None

    # Bind the real table, then a different array with equal content must
    # decline: the gain state's coupling indices belong to the bound table.
    engine.expect(rows)
    assert engine.try_evaluate(solutions, moves, None) is not None
    engine.expect(rows)
    assert engine.try_evaluate(solutions, other, None) is None
    assert engine.stats["declined"] >= 3

    # Row-count mismatch between expect() and the actual batch -> decline.
    engine.expect(rows)
    assert engine.try_evaluate(solutions[:1], moves, None) is None


def test_kill_switch_disables_engine_creation(monkeypatch):
    problem = PROBLEM_FACTORIES["onemax"]()
    monkeypatch.setenv("REPRO_INCREMENTAL", "0")
    assert create_gain_engine(problem) is None
    monkeypatch.setenv("REPRO_INCREMENTAL", "1")
    assert create_gain_engine(problem) is not None
    # Unsupported problems never get an engine.
    class Alien:
        name = "alien"
        n = 4
    assert create_gain_engine(Alien()) is None


def test_invalidate_all_resets_and_rederives():
    problem = PROBLEM_FACTORIES["maxsat"]()
    moves = frozen_moves(problem.n, 2)
    rng = np.random.default_rng(5)
    solutions = random_block(problem, rng, 4)
    engine = GainEngine(problem, rows_hint=4)
    rows = np.arange(4, dtype=np.int64)

    engine.expect(rows)
    engine.try_evaluate(solutions, moves, None)
    assert engine.valid.all()
    engine.invalidate_all()
    assert not engine.valid.any()
    assert engine.drain_ops() == [("reset",)]

    engine.expect(rows)
    got = engine.try_evaluate(solutions, moves, None)
    np.testing.assert_array_equal(got, reference(problem, solutions, moves))


def test_ops_buffer_collapses_to_reset_at_cap():
    from repro.problems.incremental import OPS_BUFFER_CAP

    problem = PROBLEM_FACTORIES["onemax"]()
    engine = GainEngine(problem, rows_hint=1)
    row = np.zeros(1, dtype=np.int64)
    for i in range(OPS_BUFFER_CAP + 5):
        engine.commit(row, np.array([[i % problem.n]], dtype=np.int64))
    ops = engine.drain_ops()
    assert ops[0] == ("reset",)
    assert len(ops) <= OPS_BUFFER_CAP


def test_drained_ops_replay_into_a_worker_engine():
    """The pool protocol: a shadow engine fed only the drained op stream
    reaches the same state as the parent engine."""
    problem = PROBLEM_FACTORIES["nk"]()
    moves = frozen_moves(problem.n, 2)
    rng = np.random.default_rng(9)
    solutions = random_block(problem, rng, 3)
    parent = GainEngine(problem, rows_hint=3)
    worker = GainEngine(problem, rows_hint=3)
    rows = np.arange(3, dtype=np.int64)

    for _ in range(6):
        parent.expect(rows)
        expect = worker.apply_ops(parent.drain_ops())
        worker.set_expected(expect)
        got_parent = parent.try_evaluate(solutions, moves, None)
        got_worker = worker.try_evaluate(solutions, moves, None)
        np.testing.assert_array_equal(got_parent, got_worker)
        bits = np.stack(
            [rng.choice(problem.n, size=2, replace=False) for _ in range(3)]
        ).astype(np.int64)
        parent.commit(rows, bits)
        solutions[rows[:, None], bits] ^= 1


def test_attach_helpers_nest_and_restore():
    problem = PROBLEM_FACTORIES["onemax"]()
    outer = create_gain_engine(problem)
    prev = attach_gain_engine(problem, outer)
    assert prev is None and problem._gain_engine is outer
    inner = create_gain_engine(problem)
    prev_inner = attach_gain_engine(problem, inner)
    assert prev_inner is outer
    detach_gain_engine(problem, prev_inner)
    assert problem._gain_engine is outer
    detach_gain_engine(problem, prev)
    assert problem._gain_engine is None


def test_debug_check_mode_verifies_served_results(monkeypatch):
    monkeypatch.setenv("REPRO_INCREMENTAL_CHECK", "1")
    problem = PROBLEM_FACTORIES["ubqp"]()
    moves = frozen_moves(problem.n, 1)
    rng = np.random.default_rng(13)
    solutions = random_block(problem, rng, 2)
    engine = GainEngine(problem, rows_hint=2)
    rows = np.arange(2, dtype=np.int64)
    for _ in range(4):
        engine.expect(rows)
        assert engine.try_evaluate(solutions, moves, None) is not None
        bits = rng.integers(0, problem.n, size=(2, 1)).astype(np.int64)
        engine.commit(rows, bits)
        solutions[rows[:, None], bits] ^= 1
    assert engine.stats["checks"] == 4


# ---------------------------------------------------------------------------
# Cache observability (BoundedCache / MoveTableCache counters)
# ---------------------------------------------------------------------------
def test_bounded_cache_counts_hits_misses_evictions():
    cache = BoundedCache(2)
    assert cache.get("a") is None  # miss
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # hit
    cache.put("c", 3)  # evicts "b" (least recently used)
    assert cache.get("b") is None
    stats = cache.stats()
    assert stats == {"size": 2, "maxsize": 2, "hits": 1, "misses": 2, "evictions": 1}
    cache.clear()
    assert cache.stats()["size"] == 0
    assert cache.stats()["hits"] == 1  # counters survive clear()


def test_move_table_cache_counts_writable_rebuilds():
    built = []
    cache = MoveTableCache(lambda m: built.append(1) or ("table", m.shape), maxsize=2)
    frozen = np.arange(6, dtype=np.int64).reshape(3, 2)
    frozen.setflags(write=False)
    writable = frozen.copy()
    cache.lookup(frozen)
    cache.lookup(frozen)  # served from cache
    assert len(built) == 1
    cache.lookup(writable)
    cache.lookup(writable)  # rebuilt every time
    assert len(built) == 3
    assert cache.stats()["writable_rebuilds"] == 2


def test_cache_stats_aggregates_live_caches():
    before = cache_stats()
    cache = BoundedCache(4)
    cache.get("missing")
    cache.put("k", "v")
    cache.get("k")
    after = cache_stats()
    assert after["caches"] >= before["caches"] + 1
    assert after["hits"] >= before["hits"] + 1
    assert after["misses"] >= before["misses"] + 1
