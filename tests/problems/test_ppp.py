"""Tests for the Permuted Perceptron Problem objective and instance generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mappings import mapping_for
from repro.problems import (
    FIGURE8_INSTANCES,
    TABLE_INSTANCES,
    PermutedPerceptronProblem,
    PPPInstanceSpec,
    generate_ppp_instance,
    instance_seed,
    make_figure8_instance,
    make_table_instance,
)
from repro.problems.base import flip_bits


@pytest.fixture(scope="module")
def small_ppp():
    return PermutedPerceptronProblem.generate(15, 15, rng=42)


class TestInstanceGeneration:
    def test_shapes_and_domains(self):
        A, S, secret = generate_ppp_instance(20, 17, rng=0)
        assert A.shape == (20, 17)
        assert set(np.unique(A)) <= {-1, 1}
        assert S.shape == (20,)
        assert S.min() >= 0
        assert secret.shape == (17,)
        assert set(np.unique(secret)) <= {0, 1}

    def test_planted_secret_is_a_solution(self):
        for seed in range(5):
            problem = PermutedPerceptronProblem.generate(25, 21, rng=seed)
            assert problem.evaluate(problem.secret) == 0.0
            assert problem.is_solution(problem.evaluate(problem.secret))

    def test_products_of_secret_match_S(self):
        A, S, secret = generate_ppp_instance(30, 23, rng=3)
        V = 2 * secret.astype(np.int64) - 1
        assert np.array_equal(np.sort(A.astype(np.int64) @ V), np.sort(S))

    def test_odd_dimension_products_are_odd(self):
        # With n odd every +/-1 dot product has the parity of n.
        A, S, _ = generate_ppp_instance(31, 21, rng=1)
        assert np.all(S % 2 == 1)

    def test_generation_is_deterministic_in_seed(self):
        a = PermutedPerceptronProblem.generate(10, 9, rng=7)
        b = PermutedPerceptronProblem.generate(10, 9, rng=7)
        assert np.array_equal(a.A, b.A)
        assert np.array_equal(a.S, b.S)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            generate_ppp_instance(0, 5)
        with pytest.raises(ValueError):
            generate_ppp_instance(5, -1)


class TestConstructorValidation:
    def test_rejects_non_epsilon_matrix(self):
        with pytest.raises(ValueError):
            PermutedPerceptronProblem(np.zeros((3, 3)), np.ones(3))

    def test_rejects_mismatched_S(self):
        A = np.ones((3, 3), dtype=np.int8)
        with pytest.raises(ValueError):
            PermutedPerceptronProblem(A, np.array([1, 1]))

    def test_rejects_negative_S(self):
        A = np.ones((3, 3), dtype=np.int8)
        with pytest.raises(ValueError):
            PermutedPerceptronProblem(A, np.array([1, -1, 1]))

    def test_rejects_S_value_above_n(self):
        A = np.ones((3, 3), dtype=np.int8)
        with pytest.raises(ValueError):
            PermutedPerceptronProblem(A, np.array([1, 4, 1]))

    def test_rejects_non_2d_matrix(self):
        with pytest.raises(ValueError):
            PermutedPerceptronProblem(np.ones(5), np.ones(5))


class TestObjective:
    def test_zero_only_for_matching_histogram(self, small_ppp):
        assert small_ppp.evaluate(small_ppp.secret) == 0.0
        # The all-ones and all-zeros vectors are (with overwhelming
        # probability for this seed) not solutions.
        assert small_ppp.evaluate(np.ones(small_ppp.n, dtype=np.int8)) > 0
        assert small_ppp.evaluate(np.zeros(small_ppp.n, dtype=np.int8)) > 0

    def test_fitness_is_nonnegative(self, small_ppp):
        rng = np.random.default_rng(0)
        for _ in range(50):
            fitness = small_ppp.evaluate(small_ppp.random_solution(rng))
            assert fitness >= 0

    def test_matches_naive_reference(self, small_ppp):
        """Cross-check against a direct transcription of the paper's formula."""
        rng = np.random.default_rng(5)
        A = small_ppp.A.astype(np.int64)
        for _ in range(25):
            bits = small_ppp.random_solution(rng)
            V = 2 * bits.astype(np.int64) - 1
            Y = A @ V
            term1 = 30 * np.sum(np.abs(Y) - Y)
            h_candidate = np.array([(Y == v).sum() for v in range(1, small_ppp.n + 1)])
            term2 = np.abs(small_ppp.target_histogram - h_candidate).sum()
            assert small_ppp.evaluate(bits) == float(term1 + term2)

    def test_sign_term_weight(self):
        # A single constraint pushed negative by one unit costs 60 by itself.
        A = np.array([[1]], dtype=np.int8)
        problem = PermutedPerceptronProblem(A, np.array([1]))
        # bits=[1] -> V=+1 -> Y=1 -> fitness 0.
        # bits=[0] -> Y=-1 -> sign term 30*(|-1| - (-1)) = 60, histogram term
        # |H_1 - H'_1| = |1 - 0| = 1 (only bins 1..n are compared).
        assert problem.evaluate(np.array([1], dtype=np.int8)) == 0
        assert problem.evaluate(np.array([0], dtype=np.int8)) == 60 + 1

    def test_rejects_wrong_length_solution(self, small_ppp):
        with pytest.raises(ValueError):
            small_ppp.evaluate(np.zeros(small_ppp.n + 1, dtype=np.int8))

    def test_rejects_non_binary_solution(self, small_ppp):
        with pytest.raises(ValueError):
            small_ppp.evaluate(np.full(small_ppp.n, 2, dtype=np.int8))


class TestBatchAndNeighborhoodEvaluation:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_neighborhood_matches_full_evaluation(self, small_ppp, k):
        mapping = mapping_for(small_ppp.n, k)
        moves = mapping.all_moves()
        rng = np.random.default_rng(11)
        bits = small_ppp.random_solution(rng)
        fast = small_ppp.evaluate_neighborhood(bits, moves)
        slow = np.array([small_ppp.evaluate(flip_bits(bits, mv)) for mv in moves])
        assert np.array_equal(fast, slow)

    def test_neighborhood_chunking_is_transparent(self, small_ppp):
        mapping = mapping_for(small_ppp.n, 2)
        moves = mapping.all_moves()
        bits = small_ppp.random_solution(3)
        a = small_ppp.evaluate_neighborhood(bits, moves, chunk=7)
        b = small_ppp.evaluate_neighborhood(bits, moves, chunk=100_000)
        assert np.array_equal(a, b)

    def test_evaluate_batch_matches_scalar(self, small_ppp):
        rng = np.random.default_rng(2)
        batch = np.stack([small_ppp.random_solution(rng) for _ in range(16)])
        vec = small_ppp.evaluate_batch(batch)
        scalar = np.array([small_ppp.evaluate(row) for row in batch])
        assert np.array_equal(vec, scalar)

    def test_delta_evaluate_single_move(self, small_ppp):
        bits = small_ppp.random_solution(9)
        move = (1, 4, 7)
        assert small_ppp.delta_evaluate(bits, move) == small_ppp.evaluate(flip_bits(bits, move))

    def test_bad_move_array_shape(self, small_ppp):
        with pytest.raises(ValueError):
            small_ppp.evaluate_neighborhood(small_ppp.secret, np.zeros(4, dtype=np.int64))

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_neighborhood_consistency(self, seed):
        rng = np.random.default_rng(seed)
        problem = PermutedPerceptronProblem.generate(9, 9, rng=seed)
        bits = problem.random_solution(rng)
        moves = mapping_for(9, 2).all_moves()
        fast = problem.evaluate_neighborhood(bits, moves)
        slow = np.array([problem.evaluate(flip_bits(bits, mv)) for mv in moves])
        assert np.array_equal(fast, slow)


class TestCostProfile:
    def test_cost_scales_with_k_and_m(self):
        problem = PermutedPerceptronProblem.generate(40, 31, rng=0)
        c1 = problem.cost_profile(1)
        c3 = problem.cost_profile(3)
        assert c3["flops"] > c1["flops"]
        assert c3["bytes"] > c1["bytes"]
        bigger = PermutedPerceptronProblem.generate(80, 31, rng=0)
        assert bigger.cost_profile(1)["flops"] > c1["flops"]


class TestInstanceRegistry:
    def test_table_instances_match_paper(self):
        assert [(s.m, s.n) for s in TABLE_INSTANCES] == [(73, 73), (81, 81), (101, 101), (101, 117)]

    def test_figure8_instances_match_paper(self):
        assert len(FIGURE8_INSTANCES) == 15
        assert (FIGURE8_INSTANCES[0].m, FIGURE8_INSTANCES[0].n) == (101, 117)
        assert (FIGURE8_INSTANCES[-1].m, FIGURE8_INSTANCES[-1].n) == (1501, 1517)

    def test_neighborhood_sizes_match_table_iteration_caps(self):
        # The paper's stopping criterion column pins these values.
        spec = PPPInstanceSpec(101, 101)
        assert spec.neighborhood_sizes[3] == 166650
        spec = PPPInstanceSpec(101, 117)
        assert spec.neighborhood_sizes[3] == 260130

    def test_make_table_instance_is_deterministic(self):
        a = make_table_instance(TABLE_INSTANCES[0], trial=1)
        b = make_table_instance((73, 73), trial=1)
        assert np.array_equal(a.A, b.A)
        c = make_table_instance((73, 73), trial=2)
        assert not np.array_equal(a.A, c.A)

    def test_make_figure8_instance(self):
        problem = make_figure8_instance(0)
        assert (problem.m, problem.n) == (101, 117)
        assert problem.evaluate(problem.secret) == 0

    def test_instance_seed_unique_per_dimension_and_trial(self):
        seeds = {
            instance_seed(m, n, t)
            for (m, n) in [(73, 73), (81, 81), (101, 101), (101, 117)]
            for t in range(10)
        }
        assert len(seeds) == 40

    def test_labels(self):
        assert TABLE_INSTANCES[0].label == "73 x 73"
