"""Tests for the solution-parallel ``evaluate_neighborhood_batch`` contract."""

import numpy as np
import pytest

from repro.neighborhoods import KHammingNeighborhood
from repro.problems import (
    LeadingOnes,
    MaxSat,
    NKLandscape,
    OneMax,
    PermutedPerceptronProblem,
    UBQP,
)

N = 13


def all_problems():
    return [
        PermutedPerceptronProblem.generate(15, N, rng=0),
        OneMax(N),
        UBQP.random(N, rng=1),
        MaxSat.random(N, 30, rng=2),
        NKLandscape(N, 3, rng=3),
        LeadingOnes(N),  # no override: exercises the generic fallback
    ]


def solution_block(problem, count=6, seed=7):
    rng = np.random.default_rng(seed)
    return np.stack([problem.random_solution(rng) for _ in range(count)])


class TestBatchMatchesRowByRow:
    @pytest.mark.parametrize("problem", all_problems(), ids=lambda p: p.name)
    @pytest.mark.parametrize("order", [1, 2])
    def test_batch_equals_per_solution_rows(self, problem, order):
        neighborhood = KHammingNeighborhood(problem.n, order)
        moves = neighborhood.moves()
        solutions = solution_block(problem)
        batch = problem.evaluate_neighborhood_batch(solutions, moves)
        reference = np.stack(
            [problem.evaluate_neighborhood(row, moves) for row in solutions]
        )
        assert batch.shape == (solutions.shape[0], moves.shape[0])
        assert np.array_equal(batch, reference), problem.name

    @pytest.mark.parametrize("problem", all_problems(), ids=lambda p: p.name)
    def test_move_subsets(self, problem):
        neighborhood = KHammingNeighborhood(problem.n, 2)
        moves = neighborhood.moves()[::3]
        solutions = solution_block(problem, count=4)
        batch = problem.evaluate_neighborhood_batch(solutions, moves)
        reference = np.stack(
            [problem.evaluate_neighborhood(row, moves) for row in solutions]
        )
        assert np.array_equal(batch, reference)

    def test_chunked_paths_agree_with_unchunked(self):
        # Force tiny chunks through the PPP broadcast path and the
        # flipped-copies fallback; results must not depend on chunking.
        ppp = PermutedPerceptronProblem.generate(15, N, rng=0)
        nb = KHammingNeighborhood(N, 2)
        moves = nb.moves()
        solutions = solution_block(ppp)
        small = ppp.evaluate_neighborhood_batch(solutions, moves, element_budget=32)
        large = ppp.evaluate_neighborhood_batch(solutions, moves)
        assert np.array_equal(small, large)

        sat = MaxSat.random(N, 30, rng=2)
        sols = solution_block(sat)
        tiny = sat._evaluate_neighborhood_batch_by_flips(sols, moves, row_budget=5)
        assert np.array_equal(tiny, sat.evaluate_neighborhood_batch(sols, moves))


class TestValidation:
    def test_bad_solution_block_shape(self):
        problem = OneMax(N)
        moves = np.zeros((3, 1), dtype=np.int64)
        with pytest.raises(ValueError):
            problem.evaluate_neighborhood_batch(np.zeros((2, N + 1), dtype=np.int8), moves)
        with pytest.raises(ValueError):
            problem.evaluate_neighborhood_batch(np.zeros(N, dtype=np.int8), moves)

    def test_bad_move_shape(self):
        problem = OneMax(N)
        solutions = np.zeros((2, N), dtype=np.int8)
        with pytest.raises(ValueError):
            problem.evaluate_neighborhood_batch(solutions, np.zeros(3, dtype=np.int64))

    def test_empty_batch(self):
        problem = OneMax(N)
        empty = problem.evaluate_neighborhood_batch(
            np.empty((0, N), dtype=np.int8), np.empty((0, 1), dtype=np.int64)
        )
        assert empty.shape == (0, 0)
