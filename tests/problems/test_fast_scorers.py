"""Bit-identity suites for the UBQP / MaxSAT / NK precompiled fast scorers.

Modeled on the PPP fast-path suite: every fast path must agree *bit for bit*
with its chunked reference evaluation on qualifying move tables, silently
fall back on everything else, and die entirely behind its kill switch.
"""

import numpy as np
import pytest

from repro.problems import MaxSat, NKLandscape, UBQP, clear_fast_caches
from repro.problems.fastpath import BoundedCache


def frozen(arr):
    arr = np.ascontiguousarray(arr, dtype=np.int64)
    arr.setflags(write=False)
    return arr


def random_pairs(rng, n, num, allow_duplicates=False):
    a = rng.integers(0, n, size=num)
    if allow_duplicates:
        b = rng.integers(0, n, size=num)
    else:
        b = (a + 1 + rng.integers(0, n - 1, size=num)) % n
    return frozen(np.stack([a, b], axis=1))


def make_problem(kind, rng_seed=0):
    if kind == "ubqp":
        return UBQP.random(40, rng=rng_seed)
    if kind == "maxsat":
        return MaxSat.random(40, 170, k=3, rng=rng_seed)
    return NKLandscape(40, 4, rng=rng_seed)


PROBLEMS = ("ubqp", "maxsat", "nk")


@pytest.mark.parametrize("kind", PROBLEMS)
@pytest.mark.parametrize("k", [1, 2])
def test_fast_matches_reference_bitwise(kind, k):
    rng = np.random.default_rng(17)
    problem = make_problem(kind)
    solutions = rng.integers(0, 2, size=(9, problem.n), dtype=np.int8)
    for trial in range(5):
        if k == 1:
            moves = frozen(rng.integers(0, problem.n, size=(64, 1)))
        else:
            moves = random_pairs(rng, problem.n, 64, allow_duplicates=kind == "ubqp")
        fast = problem.evaluate_neighborhood_batch(solutions, moves)
        ref = problem._evaluate_neighborhood_batch_reference(solutions, moves)
        np.testing.assert_array_equal(fast, ref)


@pytest.mark.parametrize("kind", PROBLEMS)
def test_fast_path_actually_engages(kind):
    problem = make_problem(kind)
    rng = np.random.default_rng(3)
    solutions = rng.integers(0, 2, size=(4, problem.n), dtype=np.int8)
    moves = random_pairs(rng, problem.n, 32)
    problem.evaluate_neighborhood_batch(solutions, moves)
    scorer = problem._fast()
    assert scorer is not None
    table = scorer.move_table(moves)
    assert table is not None
    # Frozen arrays are preprocessed once and served from the id-keyed cache.
    assert scorer.move_table(moves) is table


@pytest.mark.parametrize("kind", PROBLEMS)
def test_out_parameter_writes_in_place(kind):
    problem = make_problem(kind)
    rng = np.random.default_rng(5)
    solutions = rng.integers(0, 2, size=(6, problem.n), dtype=np.int8)
    for moves in (frozen(rng.integers(0, problem.n, size=(20, 1))),
                  frozen(rng.integers(0, problem.n, size=(10, 3)))):
        ref = problem._evaluate_neighborhood_batch_reference(solutions, moves)
        out = np.full((6, moves.shape[0]), np.nan)
        returned = problem.evaluate_neighborhood_batch(solutions, moves, out=out)
        assert returned is out
        np.testing.assert_array_equal(out, ref)


@pytest.mark.parametrize("kind", PROBLEMS)
def test_unsupported_tables_fall_back(kind):
    problem = make_problem(kind)
    rng = np.random.default_rng(11)
    solutions = rng.integers(0, 2, size=(3, problem.n), dtype=np.int8)
    scorer = problem._fast()
    assert scorer is not None
    k3 = frozen(rng.integers(0, problem.n, size=(12, 3)))
    out_of_range = frozen(np.array([[0], [problem.n]]))
    empty = frozen(np.empty((0, 2)))
    assert scorer.move_table(k3) is None
    assert scorer.move_table(out_of_range) is None
    assert scorer.move_table(empty) is None
    np.testing.assert_array_equal(
        problem.evaluate_neighborhood_batch(solutions, k3),
        problem._evaluate_neighborhood_batch_reference(solutions, k3),
    )


@pytest.mark.parametrize("kind", ["maxsat", "nk"])
def test_duplicate_indices_fall_back(kind):
    # The reference path buffers the fancy-index flip, so a repeated index
    # flips once; the delta formulas would count it twice.  MaxSAT and NK
    # must therefore decline duplicate pairs (UBQP's arithmetic reference
    # represents them exactly — covered by the bitwise suite above).
    problem = make_problem(kind)
    rng = np.random.default_rng(13)
    solutions = rng.integers(0, 2, size=(4, problem.n), dtype=np.int8)
    dup = frozen(np.array([[7, 7], [1, 2]]))
    assert problem._fast().move_table(dup) is None
    np.testing.assert_array_equal(
        problem.evaluate_neighborhood_batch(solutions, dup),
        problem._evaluate_neighborhood_batch_reference(solutions, dup),
    )


def test_ubqp_non_integer_q_disables_fast_path():
    rng = np.random.default_rng(19)
    Q = rng.random((16, 16))
    Q = (Q + Q.T) / 2
    problem = UBQP(Q)
    assert problem._fast() is None
    solutions = rng.integers(0, 2, size=(3, 16), dtype=np.int8)
    moves = frozen(np.arange(16)[:, None])
    np.testing.assert_array_equal(
        problem.evaluate_neighborhood_batch(solutions, moves),
        problem._evaluate_neighborhood_batch_reference(solutions, moves),
    )


def test_maxsat_repeated_variable_clause_disables_fast_path():
    variables = np.array([[0, 0, 1], [2, 3, 4]])
    signs = np.ones((2, 3), dtype=np.int8)
    problem = MaxSat(6, variables, signs)
    assert problem._fast() is None
    rng = np.random.default_rng(23)
    solutions = rng.integers(0, 2, size=(4, 6), dtype=np.int8)
    moves = frozen(np.arange(6)[:, None])
    np.testing.assert_array_equal(
        problem.evaluate_neighborhood_batch(solutions, moves),
        problem._evaluate_neighborhood_batch_reference(solutions, moves),
    )


@pytest.mark.parametrize("kind,env", [("ubqp", "REPRO_UBQP_FAST"),
                                      ("maxsat", "REPRO_MAXSAT_FAST"),
                                      ("nk", "REPRO_NK_FAST")])
def test_kill_switch_forces_reference(kind, env, monkeypatch):
    monkeypatch.setenv(env, "0")
    problem = make_problem(kind)
    assert problem._fast() is None
    rng = np.random.default_rng(29)
    solutions = rng.integers(0, 2, size=(3, problem.n), dtype=np.int8)
    moves = random_pairs(rng, problem.n, 16)
    np.testing.assert_array_equal(
        problem.evaluate_neighborhood_batch(solutions, moves),
        problem._evaluate_neighborhood_batch_reference(solutions, moves),
    )


def test_bounded_cache_evicts_least_recently_used():
    cache = BoundedCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a" -> "b" is now oldest
    cache.put("c", 3)
    assert "b" not in cache
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert len(cache) == 2
    with pytest.raises(ValueError):
        BoundedCache(0)


def test_move_table_cache_is_bounded():
    problem = UBQP.random(24, rng=7)
    rng = np.random.default_rng(31)
    solutions = rng.integers(0, 2, size=(2, 24), dtype=np.int8)
    tables = [frozen(rng.integers(0, 24, size=(8, 1))) for _ in range(12)]
    for moves in tables:
        problem.evaluate_neighborhood_batch(solutions, moves)
    scorer = problem._fast()
    assert len(scorer._tables) <= 8


def test_clear_fast_caches_empties_live_caches():
    problem = NKLandscape(20, 2, rng=2)
    rng = np.random.default_rng(37)
    solutions = rng.integers(0, 2, size=(3, 20), dtype=np.int8)
    moves = frozen(np.arange(20)[:, None])
    problem.evaluate_neighborhood_batch(solutions, moves)
    scorer = problem._fast()
    assert len(scorer._tables_cache) == 1
    clear_fast_caches()
    assert len(scorer._tables_cache) == 0
    # Still correct afterwards: tables rebuild transparently.
    np.testing.assert_array_equal(
        problem.evaluate_neighborhood_batch(solutions, moves),
        problem._evaluate_neighborhood_batch_reference(solutions, moves),
    )
