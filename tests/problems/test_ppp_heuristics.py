"""Tests for the PPP construction heuristics (warm starts)."""

import numpy as np
import pytest

from repro.core import CPUEvaluator
from repro.localsearch import TabuSearch
from repro.neighborhoods import KHammingNeighborhood
from repro.problems import (
    PermutedPerceptronProblem,
    best_of_pool,
    majority_vote_solution,
    randomized_majority_solution,
)


@pytest.fixture(scope="module")
def problem():
    return PermutedPerceptronProblem.generate(51, 51, rng=7)


class TestMajorityVote:
    def test_returns_valid_solution(self, problem):
        bits = majority_vote_solution(problem)
        assert bits.shape == (problem.n,)
        assert set(np.unique(bits)) <= {0, 1}

    def test_beats_random_on_average(self, problem):
        rng = np.random.default_rng(0)
        random_fitness = np.mean(
            [problem.evaluate(problem.random_solution(rng)) for _ in range(30)]
        )
        majority_fitness = problem.evaluate(majority_vote_solution(problem))
        assert majority_fitness < random_fitness

    def test_is_deterministic(self, problem):
        a = majority_vote_solution(problem)
        b = majority_vote_solution(problem)
        assert np.array_equal(a, b)


class TestRandomizedMajority:
    def test_flip_probability_validation(self, problem):
        with pytest.raises(ValueError):
            randomized_majority_solution(problem, flip_probability=1.5)

    def test_zero_probability_equals_majority(self, problem):
        assert np.array_equal(
            randomized_majority_solution(problem, rng=0, flip_probability=0.0),
            majority_vote_solution(problem),
        )

    def test_different_seeds_decorrelate_runs(self, problem):
        a = randomized_majority_solution(problem, rng=1, flip_probability=0.3)
        b = randomized_majority_solution(problem, rng=2, flip_probability=0.3)
        assert not np.array_equal(a, b)

    def test_still_better_than_uniform_random_on_average(self, problem):
        rng = np.random.default_rng(3)
        random_fitness = np.mean(
            [problem.evaluate(problem.random_solution(rng)) for _ in range(30)]
        )
        warm_fitness = np.mean(
            [problem.evaluate(randomized_majority_solution(problem, rng=s)) for s in range(30)]
        )
        assert warm_fitness < random_fitness


class TestBestOfPool:
    def test_pool_size_validation(self, problem):
        with pytest.raises(ValueError):
            best_of_pool(problem, pool_size=0)

    def test_no_worse_than_single_random(self, problem):
        rng = np.random.default_rng(5)
        pool_best = problem.evaluate(best_of_pool(problem, pool_size=64, rng=5))
        singles = [problem.evaluate(problem.random_solution(rng)) for _ in range(20)]
        assert pool_best <= np.median(singles)


class TestWarmStartSpeedsUpSearch:
    def test_tabu_search_with_warm_start_needs_fewer_iterations(self):
        problem = PermutedPerceptronProblem.generate(25, 25, rng=11)
        neighborhood = KHammingNeighborhood(25, 3)
        search = TabuSearch(CPUEvaluator(problem, neighborhood), max_iterations=60)
        cold = search.run(rng=4)
        warm = search.run(initial_solution=randomized_majority_solution(problem, rng=4), rng=4)
        # The warm start must not hurt, and usually converges in fewer iterations.
        assert warm.best_fitness <= cold.best_fitness
        assert warm.initial_fitness <= cold.initial_fitness
