"""Tests for the auxiliary binary workloads (OneMax, MaxSat, NK, UBQP)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mappings import mapping_for
from repro.problems import (
    LeadingOnes,
    MaxSat,
    NKLandscape,
    OneMax,
    UBQP,
    generate_random_ksat,
)
from repro.problems.base import as_solution, flip_bits


class TestSolutionHelpers:
    def test_as_solution_validates_length(self):
        with pytest.raises(ValueError):
            as_solution([0, 1, 0], n=4)

    def test_as_solution_validates_domain(self):
        with pytest.raises(ValueError):
            as_solution([0, 2, 0])

    def test_flip_bits_copies(self):
        x = np.array([0, 0, 1, 1], dtype=np.int8)
        y = flip_bits(x, (0, 3))
        assert np.array_equal(y, [1, 0, 1, 0])
        assert np.array_equal(x, [0, 0, 1, 1])


class TestOneMax:
    def test_extremes(self):
        p = OneMax(10)
        assert p.evaluate(np.ones(10, dtype=np.int8)) == 0
        assert p.evaluate(np.zeros(10, dtype=np.int8)) == 10
        assert p.is_solution(0) and not p.is_solution(1)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            OneMax(0)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_neighborhood_matches_bruteforce(self, k):
        p = OneMax(12)
        bits = p.random_solution(0)
        moves = mapping_for(12, k).all_moves()
        fast = p.evaluate_neighborhood(bits, moves)
        slow = np.array([p.evaluate(flip_bits(bits, mv)) for mv in moves])
        assert np.array_equal(fast, slow)

    def test_batch_matches_scalar(self):
        p = OneMax(20)
        rng = np.random.default_rng(1)
        batch = np.stack([p.random_solution(rng) for _ in range(8)])
        assert np.array_equal(p.evaluate_batch(batch), [p.evaluate(r) for r in batch])

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(min_value=1, max_value=64), seed=st.integers(0, 1000))
    def test_value_equals_number_of_zeros(self, n, seed):
        p = OneMax(n)
        bits = p.random_solution(seed)
        assert p.evaluate(bits) == n - bits.sum()


class TestLeadingOnes:
    def test_known_values(self):
        p = LeadingOnes(6)
        assert p.evaluate([1, 1, 1, 1, 1, 1]) == 0
        assert p.evaluate([1, 1, 0, 1, 1, 1]) == 4
        assert p.evaluate([0, 1, 1, 1, 1, 1]) == 6

    def test_batch_matches_scalar(self):
        p = LeadingOnes(15)
        rng = np.random.default_rng(3)
        batch = np.stack([p.random_solution(rng) for _ in range(20)])
        assert np.array_equal(p.evaluate_batch(batch), [p.evaluate(r) for r in batch])


class TestMaxSat:
    def test_generator_shapes(self):
        variables, signs = generate_random_ksat(20, 50, 3, rng=0)
        assert variables.shape == (50, 3) and signs.shape == (50, 3)
        # literals within a clause are distinct variables
        assert all(len(set(row)) == 3 for row in variables)
        assert set(np.unique(signs)) <= {-1, 1}

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            generate_random_ksat(2, 10, 3)
        with pytest.raises(ValueError):
            generate_random_ksat(10, 0, 3)

    def test_count_unsatisfied_small_formula(self):
        # (x0 or x1) and (not x0 or x2)
        variables = np.array([[0, 1], [0, 2]])
        signs = np.array([[1, 1], [-1, 1]], dtype=np.int8)
        p = MaxSat(3, variables, signs)
        assert p.evaluate([0, 0, 0]) == 1  # first clause unsatisfied
        assert p.evaluate([1, 0, 0]) == 1  # second clause unsatisfied
        assert p.evaluate([1, 0, 1]) == 0
        assert p.is_solution(0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MaxSat(3, np.array([[0, 5]]), np.array([[1, 1]], dtype=np.int8))
        with pytest.raises(ValueError):
            MaxSat(3, np.array([[0, 1]]), np.array([[1, 0]], dtype=np.int8))
        with pytest.raises(ValueError):
            MaxSat(3, np.array([[0, 1]]), np.array([[1, 1], [1, 1]], dtype=np.int8))

    @pytest.mark.parametrize("k", [1, 2])
    def test_neighborhood_matches_bruteforce(self, k):
        p = MaxSat.random(15, 60, rng=4)
        bits = p.random_solution(0)
        moves = mapping_for(15, k).all_moves()
        fast = p.evaluate_neighborhood(bits, moves)
        slow = np.array([p.evaluate(flip_bits(bits, mv)) for mv in moves])
        assert np.array_equal(fast, slow)

    def test_fitness_bounded_by_clause_count(self):
        p = MaxSat.random(12, 40, rng=9)
        rng = np.random.default_rng(0)
        for _ in range(20):
            f = p.evaluate(p.random_solution(rng))
            assert 0 <= f <= 40


class TestNKLandscape:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            NKLandscape(0, 0)
        with pytest.raises(ValueError):
            NKLandscape(5, 5)

    def test_k0_landscape_is_separable(self):
        p = NKLandscape(10, 0, rng=0)
        # With K=0 each locus contributes independently; flipping a bit can
        # only change that locus' contribution.
        bits = p.random_solution(1)
        base_contrib = p._contributions(bits[None, :])[0]
        flipped = flip_bits(bits, (3,))
        new_contrib = p._contributions(flipped[None, :])[0]
        changed = np.nonzero(base_contrib != new_contrib)[0]
        assert np.array_equal(changed, [3])

    def test_fitness_range(self):
        p = NKLandscape(16, 3, rng=2)
        rng = np.random.default_rng(0)
        for _ in range(30):
            f = p.evaluate(p.random_solution(rng))
            assert 0.0 <= f <= 1.0

    def test_batch_matches_scalar(self):
        p = NKLandscape(14, 2, rng=5)
        rng = np.random.default_rng(1)
        batch = np.stack([p.random_solution(rng) for _ in range(10)])
        assert np.allclose(p.evaluate_batch(batch), [p.evaluate(r) for r in batch])

    def test_never_reports_success(self):
        p = NKLandscape(8, 1, rng=0)
        assert not p.is_solution(0.0)

    def test_deterministic_in_seed(self):
        a = NKLandscape(12, 2, rng=7)
        b = NKLandscape(12, 2, rng=7)
        bits = a.random_solution(0)
        assert a.evaluate(bits) == b.evaluate(bits)


class TestUBQP:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            UBQP(np.ones((2, 3)))
        with pytest.raises(ValueError):
            UBQP(np.array([[1.0, 2.0], [3.0, 4.0]]))

    def test_random_generator_validation(self):
        with pytest.raises(ValueError):
            UBQP.random(5, density=0.0)

    def test_quadratic_form_value(self):
        Q = np.array([[1.0, -2.0], [-2.0, 3.0]])
        p = UBQP(Q)
        assert p.evaluate([1, 1]) == pytest.approx(1 - 2 - 2 + 3)
        assert p.evaluate([1, 0]) == pytest.approx(1.0)
        assert p.evaluate([0, 0]) == pytest.approx(0.0)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_incremental_matches_bruteforce(self, k):
        p = UBQP.random(14, rng=6)
        bits = p.random_solution(2)
        moves = mapping_for(14, k).all_moves()
        fast = p.evaluate_neighborhood(bits, moves)
        slow = np.array([p.evaluate(flip_bits(bits, mv)) for mv in moves])
        assert np.allclose(fast, slow)

    def test_batch_matches_scalar(self):
        p = UBQP.random(10, rng=8)
        rng = np.random.default_rng(1)
        batch = np.stack([p.random_solution(rng) for _ in range(12)])
        assert np.allclose(p.evaluate_batch(batch), [p.evaluate(r) for r in batch])

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_property_incremental_consistency(self, seed):
        p = UBQP.random(9, rng=seed)
        bits = p.random_solution(seed)
        moves = mapping_for(9, 2).all_moves()
        fast = p.evaluate_neighborhood(bits, moves)
        slow = np.array([p.evaluate(flip_bits(bits, mv)) for mv in moves])
        assert np.allclose(fast, slow)
