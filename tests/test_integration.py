"""End-to-end integration tests: the paper's claims, exercised across every layer.

These tests cross module boundaries on purpose (problem -> mapping ->
neighborhood -> kernel -> evaluator -> local search -> harness) and assert
the qualitative results the paper reports.
"""

import numpy as np
import pytest

from repro import (
    CPUEvaluator,
    GPUEvaluator,
    KHammingNeighborhood,
    MultiGPUEvaluator,
    PermutedPerceptronProblem,
    SequentialEvaluator,
    TabuSearch,
)
from repro.core import iteration_times
from repro.gpu import ExecutionMode, GTX_280, GTX_8800
from repro.harness import run_ppp_experiment
from repro.localsearch import HillClimbing, VariableNeighborhoodSearch
from repro.problems import MaxSat, UBQP


class TestCrossPlatformEquivalence:
    """All execution platforms must produce bit-identical search trajectories."""

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_four_platforms_same_trajectory(self, order):
        problem = PermutedPerceptronProblem.generate(17, 17, rng=1)
        neighborhood = KHammingNeighborhood(problem.n, order)
        evaluators = [
            SequentialEvaluator(problem, neighborhood),
            CPUEvaluator(problem, neighborhood),
            GPUEvaluator(problem, neighborhood),
            MultiGPUEvaluator(problem, neighborhood, devices=3),
        ]
        results = [
            TabuSearch(ev, max_iterations=12, target_fitness=-1.0).run(rng=4)
            for ev in evaluators
        ]
        reference = results[0]
        for result in results[1:]:
            assert result.best_fitness == reference.best_fitness
            assert result.iterations == reference.iterations
            assert np.array_equal(result.best_solution, reference.best_solution)

    def test_per_thread_interpreter_matches_vectorized_backend(self):
        problem = PermutedPerceptronProblem.generate(11, 11, rng=2)
        neighborhood = KHammingNeighborhood(problem.n, 2)
        vec = TabuSearch(
            GPUEvaluator(problem, neighborhood, mode=ExecutionMode.VECTORIZED),
            max_iterations=6, target_fitness=-1.0,
        ).run(rng=0)
        thr = TabuSearch(
            GPUEvaluator(problem, neighborhood, mode=ExecutionMode.PER_THREAD),
            max_iterations=6, target_fitness=-1.0,
        ).run(rng=0)
        assert vec.best_fitness == thr.best_fitness
        assert np.array_equal(vec.best_solution, thr.best_solution)

    def test_float_sqrt_kernel_arithmetic_matches_exact(self):
        # The paper's single-precision kernel arithmetic must not change the search.
        problem = PermutedPerceptronProblem.generate(19, 19, rng=5)
        exact_nb = KHammingNeighborhood(problem.n, 3)
        float_nb = KHammingNeighborhood(problem.n, 3, float_sqrt=True)
        a = TabuSearch(CPUEvaluator(problem, exact_nb), max_iterations=8, target_fitness=-1.0).run(rng=1)
        b = TabuSearch(CPUEvaluator(problem, float_nb), max_iterations=8, target_fitness=-1.0).run(rng=1)
        assert a.best_fitness == b.best_fitness
        assert np.array_equal(a.best_solution, b.best_solution)


class TestPaperClaims:
    def test_planted_secret_always_recoverable_from_nearby_start(self):
        # Starting one 3-flip away from the secret, the 3-Hamming tabu search
        # must find fitness 0 in very few iterations on any instance.
        from repro.problems.base import flip_bits

        for seed in range(3):
            problem = PermutedPerceptronProblem.generate(31, 31, rng=seed)
            neighborhood = KHammingNeighborhood(31, 3)
            start = flip_bits(problem.secret, (1, 5, 9))
            result = TabuSearch(
                CPUEvaluator(problem, neighborhood), max_iterations=10
            ).run(initial_solution=start, rng=seed)
            assert result.success
            assert result.iterations <= 3

    def test_1hamming_gpu_slower_but_2_3_hamming_much_faster(self):
        problem = PermutedPerceptronProblem.generate(101, 117, rng=0)
        speedups = {
            k: iteration_times(problem, KHammingNeighborhood(117, k)).speedup for k in (1, 2, 3)
        }
        assert speedups[1] < 1.0          # Table I: GPU loses
        assert 10 <= speedups[2] <= 30    # Table II band (x18.5 in the paper)
        assert 15 <= speedups[3] <= 40    # Table III band (x24.8 in the paper)
        assert speedups[3] > speedups[2] > speedups[1]

    def test_figure8_crossover_band(self):
        # The 1-Hamming GPU kernel starts paying off for instances a few
        # hundred bits wide (the paper: around 201x217).
        speedup_at = {}
        for m, n in [(101, 117), (201, 217), (401, 417)]:
            problem = PermutedPerceptronProblem.generate(m, n, rng=0)
            speedup_at[n] = iteration_times(problem, KHammingNeighborhood(n, 1)).speedup
        assert speedup_at[117] < 1.0
        assert speedup_at[217] > 1.0
        assert speedup_at[417] > speedup_at[217]

    def test_g80_generation_card_is_slower_than_gtx280(self):
        # The paper singles out the GTX 280's relaxed coalescing rules as the
        # reason for better global-memory performance than the G80 series.
        problem = PermutedPerceptronProblem.generate(73, 73, rng=0)
        neighborhood = KHammingNeighborhood(73, 2)
        gtx280 = iteration_times(problem, neighborhood, device=GTX_280)
        g80 = iteration_times(problem, neighborhood, device=GTX_8800)
        assert g80.gpu_time > gtx280.gpu_time

    def test_multi_gpu_partitioning_reduces_iteration_time(self):
        # Section V perspective: partitioning the 3-Hamming neighborhood over
        # several devices shortens the (simulated) iteration.
        problem = PermutedPerceptronProblem.generate(41, 41, rng=0)
        neighborhood = KHammingNeighborhood(41, 3)
        solution = problem.random_solution(0)
        single = GPUEvaluator(problem, neighborhood)
        dual = MultiGPUEvaluator(problem, neighborhood, devices=2)
        quad = MultiGPUEvaluator(problem, neighborhood, devices=4)
        single.evaluate(solution)
        dual.evaluate(solution)
        quad.evaluate(solution)
        assert quad.stats.simulated_time < dual.stats.simulated_time < single.stats.simulated_time

    def test_harness_experiment_is_reproducible_end_to_end(self):
        row_a = run_ppp_experiment((27, 27), 3, trials=2, max_iterations=20)
        row_b = run_ppp_experiment((27, 27), 3, trials=2, max_iterations=20)
        assert row_a.as_dict() == row_b.as_dict()


class TestOtherWorkloadsEndToEnd:
    def test_tabu_search_on_maxsat_with_gpu_evaluator(self):
        problem = MaxSat.random(30, 120, rng=3)
        neighborhood = KHammingNeighborhood(30, 2)
        result = TabuSearch(GPUEvaluator(problem, neighborhood), max_iterations=60).run(rng=0)
        assert result.best_fitness <= result.initial_fitness
        assert result.evaluations == result.iterations * neighborhood.size

    def test_vns_with_gpu_evaluators_on_ubqp(self):
        problem = UBQP.random(26, rng=7)
        vns = VariableNeighborhoodSearch(
            problem,
            max_order=3,
            max_rounds=4,
            evaluator_factory=lambda p, nb: GPUEvaluator(p, nb),
            target_fitness=-np.inf,
        )
        result = vns.run(rng=1)
        assert result.best_fitness <= result.initial_fitness

    def test_hill_climbing_chain_matches_across_problems(self):
        # Smoke-level sanity across every auxiliary workload.
        from repro.problems import NKLandscape, OneMax

        for problem in (OneMax(20), NKLandscape(20, 2, rng=0), UBQP.random(20, rng=0)):
            nb = KHammingNeighborhood(20, 1)
            result = HillClimbing(
                CPUEvaluator(problem, nb), max_iterations=100, target_fitness=-np.inf
            ).run(rng=3)
            assert result.best_fitness <= result.initial_fitness
