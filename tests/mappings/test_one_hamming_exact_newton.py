"""Tests for the 1-Hamming mapping, the exact reference mapping and the Newton solver."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mappings import (
    ExactKHammingMapping,
    OneHammingMapping,
    check_bijection,
    check_roundtrip,
    mapping_for,
    minimal_k_tetrahedral,
    minimal_k_tetrahedral_batch,
    neighborhood_size,
    newton_cubic_root,
    newton_cubic_root_batch,
    rank_combination,
    unrank_combination,
)


class TestOneHamming:
    @pytest.mark.parametrize("n", [1, 2, 10, 73, 1517])
    def test_size_is_n(self, n):
        assert OneHammingMapping(n).size == n

    def test_identity_mapping(self):
        mapping = OneHammingMapping(50)
        for i in (0, 1, 25, 49):
            assert mapping.from_flat(i) == (i,)
            assert mapping.to_flat((i,)) == i

    def test_batch_identity(self):
        mapping = OneHammingMapping(20)
        idx = np.arange(20)
        assert np.array_equal(mapping.from_flat_batch(idx)[:, 0], idx)
        assert np.array_equal(mapping.to_flat_batch(idx.reshape(-1, 1)), idx)

    def test_roundtrip_and_bijection(self):
        mapping = OneHammingMapping(37)
        assert check_roundtrip(mapping)
        assert check_bijection(mapping)

    def test_out_of_range(self):
        mapping = OneHammingMapping(5)
        with pytest.raises(IndexError):
            mapping.from_flat(5)
        with pytest.raises(ValueError):
            mapping.to_flat((5,))
        with pytest.raises(IndexError):
            mapping.from_flat_batch(np.array([0, 5]))
        with pytest.raises(ValueError):
            mapping.to_flat_batch(np.array([[5]]))


class TestNeighborhoodSizeHelper:
    def test_matches_paper_formulas(self):
        n = 101
        assert neighborhood_size(n, 1) == n
        assert neighborhood_size(n, 2) == n * (n - 1) // 2
        assert neighborhood_size(n, 3) == n * (n - 1) * (n - 2) // 6

    def test_degenerate_cases(self):
        assert neighborhood_size(0, 0) == 1
        assert neighborhood_size(3, 5) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            neighborhood_size(-1, 2)
        with pytest.raises(ValueError):
            neighborhood_size(4, -1)


class TestExactMapping:
    @pytest.mark.parametrize("n,k", [(5, 1), (6, 2), (7, 3), (8, 4), (9, 5)])
    def test_exhaustive_roundtrip(self, n, k):
        mapping = ExactKHammingMapping(n, k)
        assert check_roundtrip(mapping)
        assert check_bijection(mapping)

    def test_all_moves_is_lexicographic(self):
        mapping = ExactKHammingMapping(6, 3)
        moves = mapping.all_moves()
        as_tuples = [tuple(m) for m in moves]
        assert as_tuples == sorted(as_tuples)

    def test_rank_unrank_are_inverse(self):
        n, k = 12, 4
        for rank in range(math.comb(n, k)):
            move = unrank_combination(rank, n, k)
            assert rank_combination(move, n) == rank

    def test_rank_rejects_bad_moves(self):
        with pytest.raises(ValueError):
            rank_combination((3, 3), 10)
        with pytest.raises(ValueError):
            rank_combination((3, 12), 10)
        with pytest.raises(IndexError):
            unrank_combination(1000, 5, 2)

    def test_factory_dispatch(self):
        assert mapping_for(10, 1).__class__.__name__ == "OneHammingMapping"
        assert mapping_for(10, 2).__class__.__name__ == "TwoHammingMapping"
        assert mapping_for(10, 3).__class__.__name__ == "ThreeHammingMapping"
        assert mapping_for(10, 4).__class__.__name__ == "ExactKHammingMapping"

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_factory_sizes_agree_with_binomial(self, k):
        assert mapping_for(12, k).size == math.comb(12, k)


class TestNewtonSolver:
    def test_exact_roots(self):
        # u^3 - u = 6Y with u integer: Y = C(u+1, 3)
        for u in (2, 3, 5, 10, 100, 1000):
            y = (u + 1) * u * (u - 1) // 6
            root = newton_cubic_root(float(y))
            assert root == pytest.approx(u, rel=1e-9)

    def test_zero_y(self):
        assert newton_cubic_root(0.0) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            newton_cubic_root(-1.0)
        with pytest.raises(ValueError):
            newton_cubic_root_batch(np.array([-3.0]))

    def test_batch_matches_scalar(self):
        ys = np.array([0, 1, 2, 5, 100, 10_000, 1_000_000], dtype=np.float64)
        batch = newton_cubic_root_batch(ys)
        scalar = np.array([newton_cubic_root(float(y)) for y in ys])
        assert np.allclose(batch, scalar, rtol=1e-9)

    @settings(max_examples=300, deadline=None)
    @given(y=st.integers(min_value=1, max_value=10**12))
    def test_minimal_k_is_minimal(self, y):
        k = minimal_k_tetrahedral(y)
        assert k * (k - 1) * (k - 2) // 6 >= y
        if k > 2:
            km1 = k - 1
            assert km1 * (km1 - 1) * (km1 - 2) // 6 < y

    def test_minimal_k_batch_matches_scalar(self):
        ys = np.array([0, 1, 2, 3, 4, 5, 10, 35, 56, 57, 10_000, 166650, 581130609], dtype=np.int64)
        batch = minimal_k_tetrahedral_batch(ys)
        scalar = np.array([minimal_k_tetrahedral(int(y)) for y in ys])
        assert np.array_equal(batch, scalar)
