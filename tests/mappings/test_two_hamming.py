"""Tests for the 2-Hamming closed-form index transformations (Appendix A/B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mappings import (
    TwoHammingMapping,
    check_against_exact,
    check_bijection,
    check_roundtrip,
    flat_to_pair,
    pair_to_flat,
)


class TestPaperWorkedExample:
    """The worked example of Appendix A/B: n = 6, m = 15, (i=2, j=3) <-> 9."""

    def test_two_to_one(self):
        assert pair_to_flat(2, 3, 6) == 9

    def test_one_to_two(self):
        assert flat_to_pair(9, 6) == (2, 3)

    def test_first_move_is_zero(self):
        assert pair_to_flat(0, 1, 6) == 0

    def test_last_move_is_size_minus_one(self):
        assert pair_to_flat(4, 5, 6) == 14


class TestNeighborhoodSize:
    @pytest.mark.parametrize("n,expected", [(2, 1), (3, 3), (6, 15), (73, 2628), (117, 6786)])
    def test_size_formula(self, n, expected):
        assert TwoHammingMapping(n).size == expected
        assert TwoHammingMapping(n).size == n * (n - 1) // 2

    def test_too_small_n_rejected(self):
        with pytest.raises(ValueError):
            TwoHammingMapping(1)


class TestBijection:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 10, 17, 33, 73])
    def test_exhaustive_roundtrip(self, n):
        mapping = TwoHammingMapping(n)
        assert check_roundtrip(mapping)
        assert check_bijection(mapping)

    @pytest.mark.parametrize("n", [5, 10, 33, 73])
    def test_matches_exact_lexicographic_order(self, n):
        assert check_against_exact(TwoHammingMapping(n))

    @pytest.mark.parametrize("n", [6, 73, 117])
    def test_float_sqrt_variant_matches_exact_variant(self, n):
        exact = TwoHammingMapping(n)
        gpu_like = TwoHammingMapping(n, float_sqrt=True)
        idx = np.arange(exact.size)
        assert np.array_equal(exact.from_flat_batch(idx), gpu_like.from_flat_batch(idx))

    def test_large_instance_spot_checks(self):
        # 1517 bits is the largest instance of Figure 8.
        mapping = TwoHammingMapping(1517)
        rng = np.random.default_rng(0)
        idx = rng.integers(0, mapping.size, size=2000)
        assert check_roundtrip(mapping, idx)


class TestScalarVectorConsistency:
    @pytest.mark.parametrize("n", [4, 9, 50])
    def test_from_flat_batch_matches_scalar(self, n):
        mapping = TwoHammingMapping(n)
        idx = np.arange(mapping.size)
        batch = mapping.from_flat_batch(idx)
        scalar = np.array([mapping.from_flat(int(i)) for i in idx])
        assert np.array_equal(batch, scalar)

    @pytest.mark.parametrize("n", [4, 9, 50])
    def test_to_flat_batch_matches_scalar(self, n):
        mapping = TwoHammingMapping(n)
        moves = mapping.all_moves()
        batch = mapping.to_flat_batch(moves)
        scalar = np.array([mapping.to_flat(tuple(m)) for m in moves])
        assert np.array_equal(batch, scalar)


class TestInputValidation:
    def test_out_of_range_flat_index(self):
        mapping = TwoHammingMapping(10)
        with pytest.raises(IndexError):
            mapping.from_flat(mapping.size)
        with pytest.raises(IndexError):
            mapping.from_flat(-1)

    def test_out_of_range_move(self):
        mapping = TwoHammingMapping(10)
        with pytest.raises(ValueError):
            mapping.to_flat((3, 10))

    def test_duplicate_indices_rejected(self):
        mapping = TwoHammingMapping(10)
        with pytest.raises(ValueError):
            mapping.to_flat((4, 4))

    def test_move_order_is_canonicalised(self):
        mapping = TwoHammingMapping(10)
        assert mapping.to_flat((7, 2)) == mapping.to_flat((2, 7))

    def test_bad_batch_shape(self):
        mapping = TwoHammingMapping(10)
        with pytest.raises(ValueError):
            mapping.to_flat_batch(np.zeros((3, 3), dtype=np.int64))

    def test_non_increasing_batch_rejected(self):
        mapping = TwoHammingMapping(10)
        with pytest.raises(ValueError):
            mapping.to_flat_batch(np.array([[5, 2]]))


class TestPropertyBased:
    @settings(max_examples=200, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=400),
        data=st.data(),
    )
    def test_roundtrip_random_indices(self, n, data):
        mapping = TwoHammingMapping(n)
        index = data.draw(st.integers(min_value=0, max_value=mapping.size - 1))
        move = mapping.from_flat(index)
        assert len(move) == 2
        assert 0 <= move[0] < move[1] < n
        assert mapping.to_flat(move) == index

    @settings(max_examples=200, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=400),
        data=st.data(),
    )
    def test_roundtrip_random_moves(self, n, data):
        mapping = TwoHammingMapping(n)
        i = data.draw(st.integers(min_value=0, max_value=n - 2))
        j = data.draw(st.integers(min_value=i + 1, max_value=n - 1))
        flat = mapping.to_flat((i, j))
        assert 0 <= flat < mapping.size
        assert mapping.from_flat(flat) == (i, j)
